"""Tests for the paper-style plan printer and the core unparser."""

import pytest

from repro import Engine
from repro.algebra.plan import paper_plan
from repro.lang.core_pretty import core_to_source
from repro.lang.normalize import normalize
from repro.lang.parser import parse
from repro.xmark import XMarkConfig, generate_auction_xml


def render(text: str) -> str:
    from repro.lang.simplify import simplify

    return core_to_source(simplify(normalize(parse(text))))


class TestCoreToSource:
    @pytest.mark.parametrize(
        ("query", "fragment"),
        [
            ("1 + 2", "(1 + 2)"),
            ("$x/buyer/@person", "$x/buyer/@person"),
            ("for $t in $s return $t", "for $t in $s return $t"),
            ("let $a := 1 return $a", "let $a := 1 return $a"),
            ("if ($c) then 1 else 2", "if ($c) then 1 else 2"),
            ("count($a)", "count($a)"),
            ("'it''s'", '"it\'s"'),
            ("snap ordered { delete { $x } }", "snap ordered { delete { $x } }"),
            ("some $x in $s satisfies $x", "some $x in $s satisfies $x"),
            ("$a//b", "$a/descendant::b"),
            ("$x instance of xs:integer", "instance of xs:integer"),
            ("typeswitch (1) case xs:integer return 1 default return 2",
             "typeswitch (1) case xs:integer return 1"),
        ],
    )
    def test_renderings(self, query, fragment):
        assert fragment in render(query)

    def test_insert_shows_implicit_copy(self):
        # The §3.3 normalization is visible in core text — by design.
        out = render("insert { $n } into { $t }")
        assert out == "insert { copy { $n } } as last into { $t }"

    def test_replace_expansion(self):
        out = render("replace { $a } with { $b }")
        assert out == "replace { $a } with { copy { $b } }"


class TestPaperPlan:
    @pytest.fixture(scope="class")
    def engine(self) -> Engine:
        e = Engine()
        e.load_document(
            "auction",
            generate_auction_xml(XMarkConfig(persons=5, items=4, closed_auctions=5)),
        )
        e.bind("purchasers", e.parse_fragment("<purchasers/>"))
        return e

    Q8 = """
        for $p in $auction//person
        let $a := for $t in $auction//closed_auction
                  where $t/buyer/@person = $p/@id
                  return (insert { <buyer person="{$t/buyer/@person}" /> }
                          into { $purchasers }, $t)
        return <item person="{ $p/name }">{ count($a) }</item>
    """

    def test_q8_plan_rendering(self, engine):
        text = paper_plan(engine.compile(self.Q8))
        # The structural elements of the paper's Section 4.3 printout:
        assert text.startswith("Snap {")
        assert "MapFromItem {" in text
        assert "GroupBy [ a," in text
        assert "LeftOuterJoin(" in text
        assert "MapConcat{[p:Input]}($auction/descendant::person)" in text
        assert "MapConcat{[t:Input]}($auction/descendant::closed_auction)" in text
        assert "on { $p/@id = $t/buyer/@person }" in text
        assert "insert { copy {" in text  # per-match effect visible

    def test_naive_plan_rendering(self, engine):
        snapped_q8 = self.Q8.replace("insert {", "snap insert {", 1)
        text = paper_plan(engine.compile(snapped_q8))
        assert "LeftOuterJoin" not in text
        assert "MapConcat" in text and "LetBind" in text

    def test_eval_fallback_rendering(self, engine):
        text = paper_plan(engine.compile("1 + 1"))
        assert "Eval{ (1 + 1) }" in text

    def test_select_rendering(self, engine):
        text = paper_plan(
            engine.compile(
                "for $p in $auction//person "
                "where $p/income > 5000 return $p"
            )
        )
        assert "Select{" in text
