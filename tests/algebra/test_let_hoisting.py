"""Tests for loop-invariant let hoisting."""

import pytest

from repro import Engine
from repro.algebra.compile import LetStep, decompose_pipeline
from repro.algebra.plan import plan_operators, pretty_plan
from repro.algebra.properties import EffectAnalyzer
from repro.algebra.rewrite import hoist_invariant_lets
from repro.lang.normalize import normalize
from repro.lang.parser import parse
from repro.semantics.functions import default_registry


def hoist(text: str):
    pipeline = decompose_pipeline(normalize(parse(text)))
    analyzer = EffectAnalyzer(default_registry())
    return pipeline, hoist_invariant_lets(pipeline, analyzer)


class TestHoisting:
    def test_invariant_let_moves_before_loop(self):
        before, after = hoist(
            "for $x in $s let $k := count($t) return $x + $k"
        )
        assert isinstance(before.steps[1], LetStep)
        assert isinstance(after.steps[0], LetStep)
        assert after.steps[0].var == "k"

    def test_dependent_let_stays(self):
        before, after = hoist(
            "for $x in $s let $k := $x + 1 return $k"
        )
        assert after is before  # untouched

    def test_effectful_let_stays(self):
        before, after = hoist(
            "for $x in $s let $k := (insert { <l/> } into { $t }, 1) "
            "return $k"
        )
        assert after is before

    def test_positional_var_dependency_respected(self):
        before, after = hoist(
            "for $x at $i in $s let $k := $i * 2 return $k"
        )
        assert after is before

    def test_partial_hoist_over_two_loops(self):
        _, after = hoist(
            "for $a in $s for $b in $t let $k := count($u) return $k"
        )
        assert isinstance(after.steps[0], LetStep)

    def test_hoist_stops_at_binder(self):
        _, after = hoist(
            "for $a in $s for $b in $t let $k := count($b) return $k"
        )
        # $k depends on $b: it may move above nothing past $b's loop.
        kinds = [type(s).__name__ for s in after.steps]
        assert kinds == ["ForStep", "ForStep", "LetStep"]


class TestEndToEnd:
    def make_engine(self) -> Engine:
        engine = Engine()
        engine.load_document(
            "db", "<db>" + "<n/>" * 50 + "<m/>" * 50 + "</db>"
        )
        engine.bind("sink", engine.parse_fragment("<sink/>"))
        return engine

    QUERY = "for $x in $db//n let $total := count($db//m) return $total"

    def test_values_unchanged(self):
        naive = self.make_engine().execute(self.QUERY, optimize=False)
        optimized = self.make_engine().execute(self.QUERY, optimize=True)
        assert naive.values() == optimized.values()

    def test_plan_shows_hoist(self):
        engine = self.make_engine()
        plan = engine.compile(self.QUERY)
        text = pretty_plan(plan)
        # LetBind must appear BELOW MapConcat in the tree (evaluated first).
        assert text.index("MapConcat[x]") < text.index("LetBind[total]")

    def test_effectful_query_not_hoisted(self):
        engine = self.make_engine()
        query = (
            "for $x in $db//n "
            "let $probe := (insert { <p/> } into { $sink }, 1) "
            "return $probe"
        )
        engine.execute(query, optimize=True)
        # One insert per n — cardinality preserved.
        assert engine.execute("count($sink/p)").first_value() == 50
