"""E10 — the Section 4.3 optimized plan.

The paper prints the plan its compiler produces for the XMark Q8 variant::

    Snap {
      MapFromItem { <person ...>{count(Input#a)}</person> }
        (GroupBy [ Input#p, { (insert ..., Input#t) } ]
          ( LeftOuterJoin( MapFromItem{[p:Input]}($auction//person),
                           MapFromItem{[t:Input]}($auction//closed_auction))
            on { Input#t/buyer/@person = Input#p/@id } ))
    }

Our compiler must produce the same operator tree, and its execution must be
value- and effect-equivalent to the interpreted nested loop.
"""

import pytest

from repro import Engine
from repro.algebra.plan import GroupBy, LeftOuterJoin, MapFromItem, Snap, plan_operators
from repro.xmark import XMarkConfig, generate_auction_xml

Q8_VARIANT = """
for $p in $auction//person
let $a :=
  for $t in $auction//closed_auction
  where $t/buyer/@person = $p/@id
  return (insert { <buyer person="{$t/buyer/@person}"
                          itemid="{$t/itemref/@item}" /> }
          into { $purchasers }, $t)
return <item person="{ $p/name }">{ count($a) }</item>
"""


@pytest.fixture(scope="module")
def xml() -> str:
    return generate_auction_xml(
        XMarkConfig(persons=25, items=15, closed_auctions=35)
    )


def fresh(xml: str) -> Engine:
    engine = Engine()
    engine.load_document("auction", xml)
    engine.bind("purchasers", engine.parse_fragment("<purchasers/>"))
    return engine


class TestPlanShape:
    def test_q8_compiles_to_groupby_outer_join(self, xml):
        plan = fresh(xml).compile(Q8_VARIANT)
        assert isinstance(plan, Snap)
        assert isinstance(plan.input, MapFromItem)
        assert isinstance(plan.input.input, GroupBy)
        assert isinstance(plan.input.input.input, LeftOuterJoin)

    def test_operator_list(self, xml):
        ops = plan_operators(fresh(xml).compile(Q8_VARIANT))
        assert ops == [
            "Snap",
            "MapFromItem",
            "GroupBy",
            "LeftOuterJoin",
            "MapConcat",   # person stream
            "UnitTuple",
            "MapConcat",   # closed_auction stream
            "UnitTuple",
        ]

    def test_group_variable(self, xml):
        plan = fresh(xml).compile(Q8_VARIANT)
        assert plan.input.input.group_var == "a"

    def test_pure_q8_also_rewrites(self, xml):
        pure_q8 = """
            for $p in $auction//person
            let $a := for $t in $auction//closed_auction
                      where $t/buyer/@person = $p/@id
                      return $t
            return <item person="{ $p/name }">{ count($a) }</item>
        """
        ops = plan_operators(fresh(xml).compile(pure_q8))
        assert "GroupBy" in ops and "LeftOuterJoin" in ops


class TestEquivalence:
    """The optimized plan must preserve values AND side effects."""

    def test_values_identical(self, xml):
        naive = fresh(xml).execute(Q8_VARIANT, optimize=False)
        optimized = fresh(xml).execute(Q8_VARIANT, optimize=True)
        assert naive.serialize() == optimized.serialize()

    def test_side_effects_identical(self, xml):
        e1, e2 = fresh(xml), fresh(xml)
        e1.execute(Q8_VARIANT, optimize=False)
        e2.execute(Q8_VARIANT, optimize=True)
        buyers1 = e1.execute("$purchasers").serialize()
        buyers2 = e2.execute("$purchasers").serialize()
        assert buyers1 == buyers2
        assert e1.execute("count($purchasers/buyer)").first_value() > 0

    def test_matches_count(self, xml):
        engine = fresh(xml)
        engine.execute(Q8_VARIANT, optimize=True)
        buyers = engine.execute("count($purchasers/buyer)").first_value()
        closed = engine.execute(
            "count($auction//closed_auction)"
        ).first_value()
        assert buyers == closed  # every closed auction matches one person


class TestHashJoinRewrite:
    """The plain join of Section 2.1 (insert-per-match, no grouping)."""

    JOIN_QUERY = """
        for $p in $auction//person
        for $t in $auction//closed_auction
        where $t/buyer/@person = $p/@id
        return insert { <buyer person="{$t/buyer/@person}" /> }
               into { $purchasers }
    """

    def test_compiles_to_hash_join(self, xml):
        ops = plan_operators(fresh(xml).compile(self.JOIN_QUERY))
        assert "HashJoin" in ops
        assert "Select" not in ops  # the predicate became the join condition

    def test_join_equivalence(self, xml):
        e1, e2 = fresh(xml), fresh(xml)
        e1.execute(self.JOIN_QUERY, optimize=False)
        e2.execute(self.JOIN_QUERY, optimize=True)
        assert (
            e1.execute("$purchasers").serialize()
            == e2.execute("$purchasers").serialize()
        )

    def test_pure_join_values(self, xml):
        query = """
            for $p in $auction//person
            for $t in $auction//closed_auction
            where $t/buyer/@person = $p/@id
            return string($p/name)
        """
        naive = fresh(xml).execute(query, optimize=False).values()
        optimized = fresh(xml).execute(query, optimize=True).values()
        assert naive == optimized

    def test_swapped_predicate_sides(self, xml):
        query = """
            for $p in $auction//person
            for $t in $auction//closed_auction
            where $p/@id = $t/buyer/@person
            return string($p/name)
        """
        ops = plan_operators(fresh(xml).compile(query))
        assert "HashJoin" in ops
        naive = fresh(xml).execute(query, optimize=False).values()
        optimized = fresh(xml).execute(query, optimize=True).values()
        assert naive == optimized
