"""Tests for order-by pipelines in the algebra (OrderBySort operator)."""

import pytest

from repro import Engine
from repro.algebra.plan import plan_operators
from repro.xmark import XMarkConfig, generate_auction_xml


@pytest.fixture(scope="module")
def e() -> Engine:
    engine = Engine()
    engine.load_document(
        "auction",
        generate_auction_xml(XMarkConfig(persons=20, items=10, closed_auctions=25)),
    )
    engine.bind("sink", engine.parse_fragment("<sink/>"))
    return engine


class TestPlanShapes:
    def test_orderby_compiles_to_sort_operator(self, e):
        plan = e.compile(
            "for $p in $auction//person order by $p/name return string($p/name)"
        )
        ops = plan_operators(plan)
        assert "OrderBySort" in ops
        assert "EvalExpr" not in ops  # no longer an interpreter fallback

    def test_orderby_with_join_rewrites(self, e):
        plan = e.compile(
            """
            for $p in $auction//person
            for $t in $auction//closed_auction
            where $t/buyer/@person = $p/@id
            order by $p/name
            return string($p/name)
            """
        )
        ops = plan_operators(plan)
        assert "HashJoin" in ops and "OrderBySort" in ops
        # The sort sits above the join, below the return.
        assert ops.index("OrderBySort") < ops.index("HashJoin")

    def test_orderby_groupby_combination(self, e):
        plan = e.compile(
            """
            for $p in $auction//person
            let $a := for $t in $auction//closed_auction
                      where $t/buyer/@person = $p/@id
                      return $t
            order by count($a) descending
            return <row n="{$p/name}">{ count($a) }</row>
            """
        )
        ops = plan_operators(plan)
        assert "GroupBy" in ops and "OrderBySort" in ops


class TestEquivalence:
    QUERIES = [
        "for $p in $auction//person order by string($p/name) return string($p/name)",
        "for $p in $auction//person order by number($p/income) descending "
        "return string($p/income)",
        """for $p in $auction//person
           for $t in $auction//closed_auction
           where $t/buyer/@person = $p/@id
           order by string($p/name), string($t/itemref/@item)
           return concat($p/name, ':', $t/itemref/@item)""",
        """for $p in $auction//person
           let $a := for $t in $auction//closed_auction
                     where $t/buyer/@person = $p/@id
                     return $t
           order by count($a) descending, string($p/name)
           return concat($p/name, '=', count($a))""",
    ]

    @pytest.mark.parametrize("query", QUERIES, ids=["sort", "desc", "join", "group"])
    def test_naive_vs_optimized(self, e, query):
        naive = e.execute(query, optimize=False).values()
        optimized = e.execute(query, optimize=True).values()
        assert naive == optimized

    def test_effects_in_return_after_sort(self, e):
        query = """
            for $p in $auction//person
            order by string($p/name)
            return insert { <v n="{$p/name}"/> } into { $sink }
        """
        e1 = Engine()
        e1.load_document("auction", e.execute("$auction").serialize())
        e1.bind("sink", e1.parse_fragment("<sink/>"))
        e1.execute(query, optimize=False)
        expected = e1.execute("$sink/v/@n").strings()

        e2 = Engine()
        e2.load_document("auction", e.execute("$auction").serialize())
        e2.bind("sink", e2.parse_fragment("<sink/>"))
        e2.execute(query, optimize=True)
        assert e2.execute("$sink/v/@n").strings() == expected
        # And they arrive in sorted order (effects follow sorted tuples).
        assert expected == sorted(expected)

    def test_empty_handling_in_plans(self, e):
        query = (
            "for $x in (<a k='2'/>, <a/>, <a k='1'/>) "
            "order by $x/@k empty greatest return string($x/@k)"
        )
        naive = e.execute(query, optimize=False).values()
        optimized = e.execute(query, optimize=True).values()
        assert naive == optimized == ["1", "2", ""]
