"""Tests for selection pushdown around the hash-join rewrite."""

import pytest

from repro import Engine
from repro.algebra.plan import HashJoin, Select, plan_operators


@pytest.fixture
def e() -> Engine:
    engine = Engine()
    engine.load_document(
        "db",
        '<db><l><a id="1" k="x" keep="y"/><a id="2" k="x" keep="n"/>'
        '<a id="3" k="z" keep="y"/></l>'
        '<r><b id="9" k="x" big="y"/><b id="8" k="z" big="n"/></r></db>',
    )
    return engine


QUERY = """
    for $a in $db//a
    for $b in $db//b
    where $a/@k = $b/@k and $a/@keep = 'y' and $b/@big = 'y'
    return concat($a/@id, '-', $b/@id)
"""


def find_join(plan):
    stack = [plan]
    while stack:
        node = stack.pop()
        if isinstance(node, HashJoin):
            return node
        stack.extend(node.children())
    return None


class TestPushdown:
    def test_one_sided_conjuncts_pushed(self, e):
        plan = e.compile(QUERY)
        join = find_join(plan)
        assert join is not None
        # Both streams gained a Select below the join.
        assert isinstance(join.left, Select)
        assert isinstance(join.right, Select)
        # And no Select remains above it.
        ops_above = plan_operators(plan)
        assert ops_above.index("Select") > ops_above.index("HashJoin") or (
            ops_above.count("Select") == 2
        )

    def test_results_unchanged(self, e):
        naive = e.execute(QUERY, optimize=False).values()
        optimized = e.execute(QUERY, optimize=True).values()
        assert naive == optimized == ["1-9"]

    def test_cross_side_conjunct_stays_above(self, e):
        query = """
            for $a in $db//a
            for $b in $db//b
            where $a/@k = $b/@k and concat($a/@id, $b/@id) != '19'
            return concat($a/@id, $b/@id)
        """
        plan = e.compile(query)
        join = find_join(plan)
        assert join is not None
        assert not isinstance(join.left, Select)
        assert not isinstance(join.right, Select)
        naive = e.execute(query, optimize=False).values()
        optimized = e.execute(query, optimize=True).values()
        assert naive == optimized

    def test_effectful_conjunct_not_pushed(self, e):
        e.bind("sink", e.parse_fragment("<sink/>"))
        query = """
            for $a in $db//a
            for $b in $db//b
            where $a/@k = $b/@k
              and ((insert { <probe/> } into { $sink }, true()))
            return concat($a/@id, $b/@id)
        """
        e1 = Engine()
        e1.load_document("db", e.execute("$db").serialize())
        e1.bind("sink", e1.parse_fragment("<sink/>"))
        e1.execute(query, optimize=False)
        expected_probes = e1.execute("count($sink/probe)").first_value()

        e.execute(query, optimize=True)
        assert e.execute("count($sink/probe)").first_value() == expected_probes
