"""The streaming plan executor: laziness, recursion safety, equivalence.

The executor drives MapConcat/LetBind/Select chains with an explicit
iterator stack instead of one generator frame per operator — FLWOR
nesting depth is bounded by memory, not ``sys.getrecursionlimit()`` — and
it must only materialize at the documented barriers (Snap, OrderBySort,
the build side of joins).
"""

import sys

from repro import Engine
from repro.algebra import plan as P
from repro.algebra.execute import execute_plan
from repro.lang import core_ast as core
from repro.xdm.values import AtomicValue


def _literal(n: int) -> core.CoreExpr:
    return core.CLiteral(value=AtomicValue.integer(n))


def test_deep_chain_exceeds_recursion_limit():
    """A MapConcat chain far deeper than the recursion limit executes.

    With one generator frame per operator this would raise RecursionError
    at ~1000 levels; the iterative driver only ever holds the chain as a
    list plus a resume stack.
    """
    depth = 4 * sys.getrecursionlimit()
    node: P.Plan = P.UnitTuple()
    for i in range(depth):
        node = P.MapConcat(input=node, var=f"v{i}", source=_literal(1))
    plan = P.Snap(input=P.MapFromItem(input=node, ret=_literal(7)))
    engine = Engine()
    # One tuple flows through every level; one item out.
    assert execute_plan(plan, engine) == [AtomicValue.integer(7)]


def test_deep_chain_with_fanout_and_select():
    """Mixed chain: fan-out (2 items per level) x select filtering."""
    node: P.Plan = P.UnitTuple()
    two = core.CSequence(items=[_literal(1), _literal(2)])
    for i in range(10):
        node = P.MapConcat(input=node, var=f"v{i}", source=two)
    # Keep only tuples whose innermost binding is 2: half of 2^10.
    node = P.Select(
        input=node,
        predicate=core.CComparison(
            style="general",
            op="eq",
            left=core.CVar(name="v9"),
            right=_literal(2),
        ),
    )
    plan = P.Snap(input=P.MapFromItem(input=node, ret=core.CVar(name="v9")))
    engine = Engine()
    items = execute_plan(plan, engine)
    assert len(items) == 2**9
    assert all(item.value == 2 for item in items)


def test_chain_is_lazy_until_the_barrier():
    """MapConcat sources are pulled tuple-by-tuple: the per-tuple return
    expression runs interleaved with source expansion, not after a full
    materialization of the tuple stream.  Observed through evaluation
    order: deltas (insert requests) accumulate in exactly the interpreter's
    depth-first order, which only happens if tuples flow one at a time."""
    engine = Engine()
    engine.bind("sink", engine.parse_fragment("<sink/>"))
    query = (
        "for $i in (1, 2, 3) "
        "for $j in (1, 2) "
        "return insert { <e v='{concat($i, \".\", $j)}'/> } into { $sink }"
    )
    interpreted = Engine()
    interpreted.bind("sink", interpreted.parse_fragment("<sink/>"))
    interpreted.execute(query)
    engine.execute(query, optimize=True)
    assert (
        engine.execute("$sink").serialize()
        == interpreted.execute("$sink").serialize()
    )
    # Depth-first order: 1.1, 1.2, 2.1, ...
    values = engine.execute("$sink/e/@v/data(.)").strings()
    assert values == ["1.1", "1.2", "2.1", "2.2", "3.1", "3.2"]


def test_nested_flwor_parsed_matches_interpreter():
    """A parsed, moderately nested FLWOR through the optimizer equals the
    interpreter byte-for-byte (values and store)."""
    doc = "<d>" + "".join(
        f'<g k="{i % 3}"><x>{i}</x></g>' for i in range(12)
    ) + "</d>"
    query = (
        "for $g in $doc//g "
        "for $x in $g/x "
        "where $g/@k = 1 "
        "order by number($x) descending "
        "return string($x)"
    )
    plain, optimized = [], []
    for target, optimize in ((plain, False), (optimized, True)):
        engine = Engine()
        engine.load_document("doc", doc)
        target.append(engine.execute(query, optimize=optimize).serialize())
    assert plain == optimized
