"""Unit tests for pipeline decomposition and plan construction."""

import pytest

from repro import Engine
from repro.algebra.compile import (
    ForStep,
    LetStep,
    WhereStep,
    decompose_pipeline,
    naive_plan,
)
from repro.algebra.execute import execute_plan
from repro.algebra.plan import (
    EvalExpr,
    MapFromItem,
    Snap,
    plan_operators,
    pretty_plan,
)
from repro.lang.normalize import normalize
from repro.lang.parser import parse


def decompose(text: str):
    return decompose_pipeline(normalize(parse(text)))


class TestDecomposition:
    def test_single_for(self):
        p = decompose("for $x in $s return $x")
        assert len(p.steps) == 1
        assert isinstance(p.steps[0], ForStep)

    def test_for_let_where(self):
        p = decompose(
            "for $x in $s let $y := $x where $y > 1 return $y"
        )
        kinds = [type(s).__name__ for s in p.steps]
        assert kinds == ["ForStep", "LetStep", "WhereStep"]

    def test_where_conjuncts_split(self):
        p = decompose(
            "for $x in $s where $x > 1 and $x < 9 and $x != 5 return $x"
        )
        wheres = [s for s in p.steps if isinstance(s, WhereStep)]
        assert len(wheres) == 3

    def test_non_flwor_returns_none(self):
        assert decompose("1 + 1") is None
        assert decompose("if ($c) then 1 else ()") is None

    def test_positional_var_kept(self):
        p = decompose("for $x at $i in $s return $i")
        assert p.steps[0].position_var == "i"

    def test_ordered_flwor_decomposes_with_specs(self):
        p = decompose("for $x in $s order by $x return $x")
        assert p is not None
        assert len(p.order_specs) == 1
        assert isinstance(p.steps[0], ForStep)


class TestNaivePlan:
    def test_operator_chain(self):
        pipeline = decompose(
            "for $x in $s let $y := $x where $y > 1 return $y"
        )
        ops = plan_operators(naive_plan(pipeline))
        assert ops == [
            "MapFromItem", "Select", "LetBind", "MapConcat", "UnitTuple",
        ]


class TestCompileQuery:
    def test_non_pipeline_falls_back_to_eval(self):
        engine = Engine()
        engine.bind("x", 1)
        plan = engine.compile("$x + 1")
        assert isinstance(plan, Snap)
        assert isinstance(plan.input, EvalExpr)

    def test_snap_always_at_top(self):
        engine = Engine()
        engine.bind("s", [1, 2])
        plan = engine.compile("for $x in $s return $x")
        assert isinstance(plan, Snap)
        assert plan.mode == "ordered"

    def test_pretty_plan_renders(self):
        engine = Engine()
        engine.bind("s", [1])
        text = pretty_plan(engine.compile("for $x in $s return $x"))
        assert "Snap[ordered]" in text
        assert "MapConcat[x]" in text


class TestPlanExecution:
    """Direct execution of compiled plans on simple data."""

    def exec_query(self, query: str, optimize: bool = True, **bindings):
        engine = Engine()
        for name, value in bindings.items():
            engine.bind(name, value)
        return engine.execute(query, optimize=optimize)

    def test_map_concat_positions(self):
        out = self.exec_query(
            "for $x at $i in ('a','b') return concat($i, $x)"
        )
        assert out.values() == ["1a", "2b"]

    def test_select_filters(self):
        out = self.exec_query(
            "for $x in (1,2,3,4) where $x mod 2 = 0 return $x"
        )
        assert out.values() == [2, 4]

    def test_let_bind(self):
        out = self.exec_query(
            "for $x in (1,2) let $y := $x * 10 return $y"
        )
        assert out.values() == [10, 20]

    def test_eval_fallback_runs_updates(self):
        engine = Engine()
        engine.bind("x", engine.parse_fragment("<x/>"))
        engine.execute("insert { <a/> } into { $x }", optimize=True)
        assert engine.execute("count($x/a)").first_value() == 1

    def test_execute_plan_api(self):
        engine = Engine()
        engine.bind("s", [1, 2, 3])
        plan = engine.compile("for $x in $s return $x + 1")
        items = execute_plan(plan, engine)
        assert [av.value for av in items] == [2, 3, 4]


class TestJoinKeySemantics:
    """The hash join must honor general-'=' matching rules."""

    def setup_engine(self):
        engine = Engine()
        engine.load_document(
            "db",
            '<db><l><a k="1"/><a k="01"/><a k="x"/></l>'
            '<r><b k="1"/><b k="01"/></r></db>',
        )
        return engine

    JOIN = """
        for $a in $db//a
        for $b in $db//b
        where $a/@k = $b/@k
        return concat($a/@k, '~', $b/@k)
    """

    def test_untyped_matches_numerically_and_textually(self):
        # untyped '1' = untyped '01' compares as *strings* (no match), but
        # '1' = '1' and '01' = '01' match; 'x' matches nothing.
        engine = self.setup_engine()
        naive = engine.execute(self.JOIN, optimize=False).values()
        optimized = self.setup_engine().execute(self.JOIN, optimize=True).values()
        assert naive == optimized == ["1~1", "01~01"]
