"""E11 — the optimizer's guards (Section 4.3).

"if we had used a snap insert at line 5 of the source code, the group-by
optimization would be more difficult to detect" — our conservative guard
disables the rewrite whenever any sub-expression may snap; it also blocks
rewrites whose *inputs* may update (cardinality) while allowing effects in
per-tuple positions.
"""

import pytest

from repro import Engine
from repro.algebra.plan import plan_operators
from repro.xmark import XMarkConfig, generate_auction_xml


@pytest.fixture(scope="module")
def xml() -> str:
    return generate_auction_xml(
        XMarkConfig(persons=20, items=10, closed_auctions=25)
    )


def fresh(xml: str) -> Engine:
    engine = Engine()
    engine.load_document("auction", xml)
    engine.bind("purchasers", engine.parse_fragment("<purchasers/>"))
    return engine


class TestSnapGuard:
    """Guard 1 — any snap inside the query body disables rewriting."""

    SNAPPED_Q8 = """
        for $p in $auction//person
        let $a :=
          for $t in $auction//closed_auction
          where $t/buyer/@person = $p/@id
          return (snap insert { <buyer person="{$t/buyer/@person}" /> }
                  into { $purchasers }, $t)
        return <item person="{ $p/name }">{ count($a) }</item>
    """

    def test_snap_insert_blocks_groupby(self, xml):
        ops = plan_operators(fresh(xml).compile(self.SNAPPED_Q8))
        assert "GroupBy" not in ops and "LeftOuterJoin" not in ops
        assert "MapConcat" in ops  # fell back to the naive pipeline

    def test_snap_in_return_blocks_join(self, xml):
        query = """
            for $p in $auction//person
            for $t in $auction//closed_auction
            where $t/buyer/@person = $p/@id
            return snap insert { <b/> } into { $purchasers }
        """
        ops = plan_operators(fresh(xml).compile(query))
        assert "HashJoin" not in ops

    def test_snapping_function_blocks_rewrite(self, xml):
        engine = fresh(xml)
        engine.load_module(
            "declare function bump() { snap insert { <t/> } into { $purchasers } };"
        )
        query = """
            for $p in $auction//person
            for $t in $auction//closed_auction
            where $t/buyer/@person = $p/@id
            return bump()
        """
        ops = plan_operators(engine.compile(query))
        assert "HashJoin" not in ops

    def test_blocked_plan_still_correct(self, xml):
        e1, e2 = fresh(xml), fresh(xml)
        e1.execute(self.SNAPPED_Q8, optimize=False)
        e2.execute(self.SNAPPED_Q8, optimize=True)
        assert (
            e1.execute("$purchasers").serialize()
            == e2.execute("$purchasers").serialize()
        )


class TestPurityOfInputsGuard:
    """Guard 2 — 'we must check that the inner branch of a join does not
    have updates': the join evaluates its inner branch once instead of once
    per outer tuple."""

    def test_updating_inner_source_blocks_join(self, xml):
        query = """
            for $p in $auction//person
            for $t in (insert { <probe/> } into { $purchasers },
                       $auction//closed_auction)
            where $t/buyer/@person = $p/@id
            return $t
        """
        ops = plan_operators(fresh(xml).compile(query))
        assert "HashJoin" not in ops

    def test_updating_inner_source_blocks_groupby(self, xml):
        query = """
            for $p in $auction//person
            let $a := for $t in (insert { <probe/> } into { $purchasers },
                                 $auction//closed_auction)
                      where $t/buyer/@person = $p/@id
                      return $t
            return count($a)
        """
        ops = plan_operators(fresh(xml).compile(query))
        assert "GroupBy" not in ops

    def test_naive_fallback_preserves_cardinality(self, xml):
        # The blocked query's probe fires once per person — verify the
        # naive plan (used under optimize=True after the guard) matches
        # the interpreter.
        query = """
            for $p in $auction//person
            for $t in (insert { <probe/> } into { $purchasers },
                       $auction//closed_auction)
            where $t/buyer/@person = $p/@id
            return $t
        """
        e1, e2 = fresh(xml), fresh(xml)
        e1.execute(query, optimize=False)
        e2.execute(query, optimize=True)
        probes1 = e1.execute("count($purchasers/probe)").first_value()
        probes2 = e2.execute("count($purchasers/probe)").first_value()
        persons = e1.execute("count($auction//person)").first_value()
        assert probes1 == probes2 == persons


class TestIndependenceGuard:
    """The inner stream must not depend on outer pipeline variables."""

    def test_correlated_inner_source_blocks_join(self, xml):
        query = """
            for $p in $auction//person
            for $t in $p/likes
            where $t/@ref = $p/@id
            return $t
        """
        ops = plan_operators(fresh(xml).compile(query))
        assert "HashJoin" not in ops

    def test_non_equality_predicate_blocks_join(self, xml):
        query = """
            for $p in $auction//person
            for $t in $auction//closed_auction
            where $t/price > $p/income
            return $t
        """
        ops = plan_operators(fresh(xml).compile(query))
        assert "HashJoin" not in ops

    def test_positional_variable_blocks_join(self, xml):
        query = """
            for $p in $auction//person
            for $t at $i in $auction//closed_auction
            where $t/buyer/@person = $p/@id
            return $i
        """
        ops = plan_operators(fresh(xml).compile(query))
        assert "HashJoin" not in ops


class TestEffectsInAllowedPositions:
    """Effects in the return clause / per-match expression survive the
    rewrite (evaluated once per original iteration, in original order)."""

    def test_return_clause_updates_allowed_with_join(self, xml):
        query = """
            for $p in $auction//person
            for $t in $auction//closed_auction
            where $t/buyer/@person = $p/@id
            return insert { <pair/> } into { $purchasers }
        """
        ops = plan_operators(fresh(xml).compile(query))
        assert "HashJoin" in ops

    def test_outer_source_updates_allowed(self, xml):
        # The outer branch runs once either way, so effects there are safe.
        query = """
            for $p in (insert { <started/> } into { $purchasers },
                       $auction//person)
            for $t in $auction//closed_auction
            where $t/buyer/@person = $p/@id
            return $t
        """
        ops = plan_operators(fresh(xml).compile(query))
        assert "HashJoin" in ops
        e1, e2 = fresh(xml), fresh(xml)
        e1.execute(query, optimize=False)
        e2.execute(query, optimize=True)
        assert (
            e1.execute("count($purchasers/started)").first_value()
            == e2.execute("count($purchasers/started)").first_value()
            == 1
        )
