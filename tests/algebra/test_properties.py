"""Unit tests for the side-effect judgment (Sections 4.2 and 5)."""

from repro.algebra.properties import (
    EffectAnalyzer,
    effect_properties,
    free_variables,
    is_pure,
)
from repro.lang.normalize import normalize, normalize_module
from repro.lang.parser import parse, parse_module
from repro.semantics.context import FunctionRegistry
from repro.semantics.functions import default_registry


def props(text: str, registry=None):
    return effect_properties(normalize(parse(text)), registry)


def registry_for(module_text: str) -> FunctionRegistry:
    registry = default_registry()
    module = normalize_module(parse_module(module_text))
    for decl in module.declarations:
        if hasattr(decl, "params"):
            registry.register_user(decl)
    return registry


class TestBasicFlags:
    def test_pure_expression(self):
        p = props("1 + count($x//item)", default_registry())
        assert p.pure and not p.may_update and not p.may_snap

    def test_update_sets_may_update(self):
        p = props("insert { <a/> } into { $x }")
        assert p.may_update and not p.may_snap
        assert p.collecting_only

    def test_all_update_primitives(self):
        for text in (
            "delete { $x }",
            "replace { $x } with { <a/> }",
            'rename { $x } to { "n" }',
        ):
            assert props(text).may_update

    def test_copy_is_pure(self):
        p = props("copy { $x }", default_registry())
        assert p.pure  # "allocations and copies can be commuted"

    def test_constructors_are_pure(self):
        assert props('<a x="{1}">{2}</a>', default_registry()).pure

    def test_snap_sets_may_snap(self):
        p = props("snap { insert { <a/> } into { $x } }")
        assert p.may_snap
        # The snap discharged the body's pending updates.
        assert not p.may_update

    def test_update_beside_snap(self):
        p = props("(snap { delete { $x } }, insert { <a/> } into { $y })")
        assert p.may_snap and p.may_update

    def test_nested_update_in_flwor(self):
        p = props("for $i in $s return insert { $i } into { $t }")
        assert p.may_update


class TestFunctionPropagation:
    """Section 5: 'a function that calls an updating function is updating
    as well' — the monadic rule."""

    def test_updating_function(self):
        registry = registry_for(
            "declare function logit($v) { insert { <l/> } into { $log } };"
        )
        assert props("logit(1)", registry).may_update

    def test_transitively_updating(self):
        registry = registry_for(
            "declare function inner() { delete { $x } };"
            "declare function outer() { inner() };"
        )
        assert props("outer()", registry).may_update

    def test_snapping_function(self):
        registry = registry_for(
            "declare function bump() { snap { delete { $x } } };"
        )
        p = props("bump()", registry)
        assert p.may_snap

    def test_pure_function(self):
        registry = registry_for("declare function f($x) { $x * 2 };")
        assert props("f(2)", registry).pure

    def test_builtins_pure(self):
        assert props("count($x) + sum($y)", default_registry()).pure

    def test_unknown_function_conservative(self):
        p = props("mystery($x)", default_registry())
        assert p.may_update and p.may_snap

    def test_recursive_function_conservative(self):
        registry = registry_for(
            "declare function loop($n) { if ($n) then loop($n - 1) else 0 };"
        )
        p = props("loop(3)", registry)
        # The cycle is resolved conservatively (assume effects).
        assert p.may_update and p.may_snap

    def test_memoization(self):
        registry = registry_for("declare function f() { 1 };")
        analyzer = EffectAnalyzer(registry)
        expr = normalize(parse("f() + f() + f()"))
        assert analyzer.analyze(expr).pure
        assert len(analyzer._function_cache) == 1

    def test_no_registry_assumes_worst(self):
        assert props("f()").may_snap


class TestIsPure:
    def test_shorthand(self):
        assert is_pure(normalize(parse("1 + 1")), default_registry())
        assert not is_pure(normalize(parse("delete { $x }")))


class TestFreeVariables:
    def free(self, text: str) -> set[str]:
        return free_variables(normalize(parse(text)))

    def test_simple(self):
        assert self.free("$a + $b") == {"a", "b"}

    def test_for_binds(self):
        assert self.free("for $x in $s return $x + $y") == {"s", "y"}

    def test_let_binds(self):
        assert self.free("let $x := $a return $x") == {"a"}

    def test_position_var_bound(self):
        assert self.free("for $x at $i in $s return $i") == {"s"}

    def test_quantifier_binds(self):
        assert self.free("some $q in $s satisfies $q = $t") == {"s", "t"}

    def test_source_not_in_scope_of_itself(self):
        assert self.free("for $x in $x return 1") == {"x"}

    def test_ordered_flwor_scoping(self):
        assert self.free(
            "for $x in $s order by $x, $k return $x"
        ) == {"s", "k"}

    def test_shadowing(self):
        assert self.free("let $x := 1 return let $x := $x return $x") == set()

    def test_path_predicates(self):
        assert self.free("$doc//a[@id = $key]") == {"doc", "key"}
