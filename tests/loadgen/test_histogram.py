"""Histogram percentile math against a sorted-list reference.

The contract under test: bounded relative error (one part in 1024) and
the HdrHistogram highest-equivalent-value convention — a reported
percentile never *understates* the observed latency at that rank.
"""

import random

import pytest

from repro.loadgen import LatencyHistogram


def reference_percentile(values: list[int], p: float) -> int:
    """Nearest-rank percentile on the exact sample list."""
    ordered = sorted(values)
    rank = max(1, round(len(ordered) * (p / 100.0)))
    return ordered[rank - 1]


def assert_close(observed: int, exact: int) -> None:
    """Highest-equivalent convention: never below the exact value, and
    at most one sub-bucket width (value/1024 + 1) above it."""
    assert observed >= exact
    assert observed <= exact + exact // 1024 + 1


class TestAgainstReference:
    @pytest.mark.parametrize("seed", [1, 7, 20060329])
    def test_uniform_samples(self, seed):
        rng = random.Random(seed)
        values = [rng.randrange(0, 5_000_000) for _ in range(5000)]
        histogram = LatencyHistogram()
        for value in values:
            histogram.record(value)
        for p in (50.0, 90.0, 99.0, 99.9, 100.0):
            assert_close(
                histogram.percentile(p), reference_percentile(values, p)
            )

    def test_lognormal_samples(self):
        rng = random.Random(99)
        values = [
            int(rng.lognormvariate(9.0, 1.5)) for _ in range(20000)
        ]
        histogram = LatencyHistogram()
        for value in values:
            histogram.record(value)
        for p in (50.0, 99.0, 99.9):
            assert_close(
                histogram.percentile(p), reference_percentile(values, p)
            )

    def test_small_values_are_exact(self):
        # The bottom bucket is linear at 1us resolution: exact.
        histogram = LatencyHistogram()
        for value in (0, 1, 2, 500, 1000, 1023):
            histogram.record(value)
        assert histogram.percentile(100.0) == 1023
        assert histogram.min_recorded == 0
        assert histogram.max_recorded == 1023


class TestRecording:
    def test_mean_and_count(self):
        histogram = LatencyHistogram()
        histogram.record(100, count=3)
        histogram.record(200)
        assert histogram.count == 4
        assert histogram.mean == pytest.approx(125.0)

    def test_negative_values_clamp_to_zero(self):
        histogram = LatencyHistogram()
        histogram.record(-50)
        assert histogram.count == 1
        assert histogram.min_recorded == 0

    def test_over_max_values_clamp_and_still_count(self):
        histogram = LatencyHistogram(max_value_us=1_000_000)
        histogram.record(5_000_000)
        assert histogram.count == 1
        assert histogram.max_recorded == 1_000_000

    def test_record_corrected_synthesizes_missing_samples(self):
        # A 100ms stall observed under a 10ms expected interval hides
        # 9 delayed samples; the corrected record restores them.
        histogram = LatencyHistogram()
        histogram.record_corrected(100_000, expected_interval_us=10_000)
        assert histogram.count == 10

    def test_record_corrected_fast_value_records_once(self):
        histogram = LatencyHistogram()
        histogram.record_corrected(5_000, expected_interval_us=10_000)
        assert histogram.count == 1


class TestMerge:
    def test_merge_equals_recording_into_one(self):
        rng = random.Random(4)
        values = [rng.randrange(0, 1_000_000) for _ in range(2000)]
        merged = LatencyHistogram()
        one = LatencyHistogram()
        two = LatencyHistogram()
        for index, value in enumerate(values):
            (one if index % 2 else two).record(value)
            merged.record(value)
        one.merge(two)
        assert one.count == merged.count
        assert one.total == merged.total
        assert one.min_recorded == merged.min_recorded
        assert one.max_recorded == merged.max_recorded
        for p in (50.0, 99.0, 99.9):
            assert one.percentile(p) == merged.percentile(p)

    def test_merge_rejects_different_ranges(self):
        with pytest.raises(ValueError):
            LatencyHistogram().merge(LatencyHistogram(max_value_us=10_000))


class TestQueries:
    def test_empty_histogram(self):
        histogram = LatencyHistogram()
        assert histogram.percentile(99.0) == 0
        assert histogram.mean == 0.0
        assert histogram.to_dict()["count"] == 0

    def test_percentile_domain(self):
        histogram = LatencyHistogram()
        histogram.record(10)
        with pytest.raises(ValueError):
            histogram.percentile(0.0)
        with pytest.raises(ValueError):
            histogram.percentile(101.0)

    def test_to_dict_labels(self):
        histogram = LatencyHistogram()
        histogram.record(1000)
        payload = histogram.to_dict()
        for key in ("count", "min_us", "max_us", "mean_us",
                    "p50_us", "p90_us", "p99_us", "p999_us"):
            assert key in payload

    def test_constructor_rejects_tiny_range(self):
        with pytest.raises(ValueError):
            LatencyHistogram(max_value_us=100)
