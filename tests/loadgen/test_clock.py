"""Clocks: wall time blocks, virtual time jumps, neither goes backwards."""

import time

import pytest

from repro.loadgen import VirtualClock, WallClock


class TestWallClock:
    def test_now_is_monotonic(self):
        clock = WallClock()
        a = clock.now()
        b = clock.now()
        assert b >= a
        assert clock.real is True

    def test_sleep_until_blocks_to_the_deadline(self):
        clock = WallClock()
        start = clock.now()
        clock.sleep_until(start + 0.02)
        assert clock.now() >= start + 0.02

    def test_sleep_until_past_deadline_is_a_noop(self):
        clock = WallClock()
        start = time.monotonic()
        clock.sleep_until(clock.now() - 10.0)
        assert time.monotonic() - start < 0.5


class TestVirtualClock:
    def test_starts_at_zero_and_jumps(self):
        clock = VirtualClock()
        assert clock.now() == 0.0
        assert clock.real is False
        clock.sleep_until(12.5)
        assert clock.now() == 12.5

    def test_never_moves_backwards(self):
        clock = VirtualClock()
        clock.sleep_until(5.0)
        clock.sleep_until(1.0)  # a past deadline is a no-op
        assert clock.now() == 5.0

    def test_advance(self):
        clock = VirtualClock(start=2.0)
        clock.advance(3.0)
        assert clock.now() == 5.0

    def test_advance_refuses_negative(self):
        with pytest.raises(ValueError):
            VirtualClock().advance(-1.0)

    def test_no_wall_time_involved(self):
        # A "20 second" virtual schedule completes instantly.
        clock = VirtualClock()
        start = time.monotonic()
        for i in range(2000):
            clock.sleep_until(i * 0.01)
        assert clock.now() == pytest.approx(19.99)
        assert time.monotonic() - start < 1.0
