"""Virtual-time driver: determinism, shedding, deadlines, live outcomes.

The acceptance property: a virtual-time run is a *pure function of the
profile seed* — two same-seed runs serialize to byte-identical JSON.
"""

import pytest

from repro.loadgen import (
    LoadDriver,
    LoadProfile,
    Workload,
    validate_report,
)


def run_virtual(profile: LoadProfile, *, live: bool = False):
    return LoadDriver(profile, mode="virtual", live=live).run()


class TestDeterminism:
    def test_same_seed_bit_for_bit(self):
        profile = LoadProfile(rate=200.0, duration_s=3.0, seed=42)
        a = run_virtual(profile).to_json()
        b = run_virtual(profile).to_json()
        assert a == b

    def test_same_seed_bit_for_bit_live(self):
        # Live mode runs real engine operations; outcomes and report
        # must still be deterministic (single-threaded simulation,
        # modeled durations).
        profile = LoadProfile(
            rate=60.0, duration_s=2.0, seed=7, items=6, persons=6
        )
        a = run_virtual(profile, live=True).to_json()
        b = run_virtual(profile, live=True).to_json()
        assert a == b

    def test_different_seed_differs(self):
        base = LoadProfile(rate=200.0, duration_s=3.0, seed=1,
                           arrivals="poisson")
        other = LoadProfile(rate=200.0, duration_s=3.0, seed=2,
                            arrivals="poisson")
        assert run_virtual(base).to_json() != run_virtual(other).to_json()

    def test_workload_stream_is_seed_deterministic(self):
        ops_a = [Workload("xmark-rw", 5).operation() for _ in range(50)]
        ops_b = [Workload("xmark-rw", 5).operation() for _ in range(50)]
        assert ops_a == ops_b
        ops_c = [Workload("xmark-rw", 6).operation() for _ in range(50)]
        assert ops_a != ops_c


class TestVirtualSemantics:
    def test_report_validates_and_counts_add_up(self):
        profile = LoadProfile(rate=100.0, duration_s=2.0)
        report = run_virtual(profile)
        data = report.data
        assert validate_report(data) == []
        assert data["mode"] == "virtual"
        requests = data["requests"]
        assert requests["scheduled"] == 200
        assert requests["dispatched"] == 200
        assert (
            requests["successes"]
            + requests["refused_total"]
            + requests["internal_errors"]
            == 200
        )

    def test_overload_sheds_with_registry_code(self):
        # 2000 req/s against 1 worker with a 4-deep queue: the modeled
        # backlog must shed most arrivals with the REPR0003 code.
        profile = LoadProfile(
            rate=2000.0, duration_s=1.0, workers=1, queue_size=4
        )
        data = run_virtual(profile).data
        assert data["requests"]["shed"] > 0
        assert data["requests"]["refusals"].get("REPR0003", 0) == \
            data["requests"]["shed"]

    def test_slow_service_times_out_with_registry_code(self):
        # A 0.1ms deadline is below every modeled service time: every
        # dispatched request that is not shed must end REPR0001.
        profile = LoadProfile(
            rate=50.0, duration_s=1.0, timeout_ms=0.1
        )
        data = run_virtual(profile).data
        refusals = data["requests"]["refusals"]
        assert refusals.get("REPR0001", 0) > 0
        assert data["requests"]["successes"] == 0
        # Timeouts are not sheds: latency SLOs see the deadline, the
        # shed SLO stays clean.
        assert data["requests"]["shed"] == 0

    def test_live_run_produces_real_successes(self):
        profile = LoadProfile(
            rate=40.0, duration_s=1.0, items=6, persons=6
        )
        data = run_virtual(profile, live=True).data
        assert data["requests"]["successes"] > 0
        assert data["requests"]["internal_errors"] == 0

    def test_no_wall_time_in_the_report(self):
        profile = LoadProfile(rate=500.0, duration_s=20.0)
        data = run_virtual(profile).data
        # elapsed is virtual: a 20s schedule reports ~20s regardless of
        # how fast the simulation actually ran.
        assert data["elapsed_s"] >= 20.0
        assert data["elapsed_s"] < 25.0


class TestProfileValidation:
    def test_rejects_nonpositive_rate(self):
        with pytest.raises(ValueError):
            LoadProfile(rate=0.0)

    def test_rejects_unknown_arrivals(self):
        with pytest.raises(ValueError):
            LoadProfile(arrivals="bursty")

    def test_rejects_unknown_mix(self):
        with pytest.raises(ValueError, match="unknown mix"):
            Workload("xmark-nope", 1)

    def test_rejects_unknown_mode(self):
        with pytest.raises(ValueError):
            LoadDriver(LoadProfile(), mode="warp")

    def test_poisson_arrivals_are_sorted_and_seeded(self):
        profile = LoadProfile(rate=100.0, duration_s=2.0,
                              arrivals="poisson", seed=3)
        times = profile.arrival_times()
        assert times == sorted(times)
        assert len(times) == 200
        assert times == profile.arrival_times()
