"""Hostile corpus determinism and small-campaign behavior."""

import json

from repro.loadgen.hostile import (
    CHANNELS,
    FuzzCampaign,
    FuzzReport,
    HostileCorpus,
)


class TestCorpusDeterminism:
    def test_case_is_pure_in_seed_and_index(self):
        a = HostileCorpus(seed=7)
        b = HostileCorpus(seed=7)
        for index in (0, 1, 17, 999, 12345):
            assert a.case(index) == b.case(index)
        # Re-querying the same instance out of order changes nothing.
        assert a.case(17) == b.case(17)

    def test_different_seeds_differ(self):
        a = [HostileCorpus(seed=1).case(i) for i in range(200)]
        b = [HostileCorpus(seed=2).case(i) for i in range(200)]
        assert a != b

    def test_channels_are_the_declared_ones(self):
        seen = {HostileCorpus(seed=3).case(i)[0] for i in range(400)}
        assert seen == set(CHANNELS)

    def test_payloads_are_strings(self):
        corpus = HostileCorpus(seed=5)
        for index in range(200):
            channel, payload = corpus.case(index)
            assert channel in CHANNELS
            assert isinstance(payload, str)


class TestCampaign:
    def test_small_campaign_is_clean(self):
        report = FuzzCampaign(cases=150, seed=1).run()
        assert report.ok, report.render()
        assert report.crashes == []
        assert report.hangs == []
        assert report.escapes == []
        assert report.successes + report.refused_total == 150
        # All three channels got exercised even in a small run.
        assert set(report.per_channel) == set(CHANNELS)
        assert sum(report.per_channel.values()) == 150

    def test_campaign_is_replayable(self):
        one = FuzzCampaign(cases=60, seed=9).run().to_dict()
        two = FuzzCampaign(cases=60, seed=9).run().to_dict()
        # elapsed_s is wall time; everything else is deterministic.
        one.pop("elapsed_s")
        two.pop("elapsed_s")
        assert one == two

    def test_report_json_round_trips(self):
        report = FuzzCampaign(cases=40, seed=2).run()
        data = json.loads(json.dumps(report.to_dict(), sort_keys=True))
        assert data["schema"] == "repro.loadgen.fuzz/v1"
        assert data["cases"] == 40
        assert data["ok"] is True
        assert data["refused_total"] == sum(data["refused"].values())

    def test_rejects_nonpositive_cases(self):
        import pytest

        with pytest.raises(ValueError):
            FuzzCampaign(cases=0)


class TestVerdict:
    def test_crash_fails_the_campaign(self):
        report = FuzzReport(cases=1, seed=1, successes=1)
        assert report.ok
        report.crashes.append("case 0 [parser]: KeyError: boom")
        assert not report.ok
        assert "CRASHES" in report.render()
        assert report.to_dict()["ok"] is False

    def test_unaccounted_case_fails_the_campaign(self):
        report = FuzzReport(cases=5, seed=1, successes=3)
        report.refused["XPST0003"] = 1
        assert not report.ok  # 3 + 1 != 5

    def test_escape_fails_even_when_counts_add_up(self):
        report = FuzzReport(cases=2, seed=1, successes=2)
        report.escapes.append("case 1: store mutated")
        assert not report.ok
        assert "INJECTION ESCAPES" in report.render()
