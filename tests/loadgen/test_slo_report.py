"""SLO verdicts, override parsing, report assembly and schema validation."""

import json

import pytest

from repro.errors import ParseError, ServiceOverloadedError
from repro.loadgen import (
    SLO,
    LoadProfile,
    RunRecorder,
    build_report,
    default_slos,
    parse_slo_overrides,
    validate_report,
)


class TestSLO:
    def test_upper_bound_metric(self):
        slo = SLO("p99", "latency_p99_ms", 500.0)
        assert slo.evaluate(499.0).passed
        assert slo.evaluate(500.0).passed
        assert not slo.evaluate(500.1).passed

    def test_lower_bound_metric(self):
        slo = SLO("tput", "throughput_rps", 90.0)
        assert slo.evaluate(95.0).passed
        assert not slo.evaluate(89.9).passed

    def test_unknown_metric_refused(self):
        with pytest.raises(ValueError, match="unknown SLO metric"):
            SLO("x", "made_up_metric", 1.0)

    def test_verdict_payload(self):
        verdict = SLO("p99", "latency_p99_ms", 500.0).evaluate(123.4)
        payload = verdict.to_dict()
        assert payload == {
            "name": "p99",
            "metric": "latency_p99_ms",
            "direction": "<=",
            "threshold": 500.0,
            "observed": 123.4,
            "passed": True,
        }

    def test_default_slos_scale_throughput_with_rate(self):
        slos = {slo.metric: slo for slo in default_slos(200.0)}
        assert slos["throughput_rps"].threshold == pytest.approx(180.0)
        assert slos["internal_error_rate"].threshold == 0.0

    def test_overrides_replace_and_append(self):
        base = default_slos(100.0)
        out = parse_slo_overrides(
            ["latency_p99_ms=250", "latency_max_ms=5000"], base
        )
        by_metric = {slo.metric: slo for slo in out}
        assert by_metric["latency_p99_ms"].threshold == 250.0
        assert by_metric["latency_p99_ms"].name == "p99-latency"
        assert by_metric["latency_max_ms"].threshold == 5000.0
        assert len(out) == len(base) + 1

    def test_override_without_equals_refused(self):
        with pytest.raises(ValueError, match="expected metric=threshold"):
            parse_slo_overrides(["latency_p99_ms"], default_slos(1.0))


def _recorder_with_outcomes() -> RunRecorder:
    recorder = RunRecorder()
    for index in range(90):
        recorder.record_dispatch(0.001)
        recorder.record_outcome(index * 0.01, index * 0.01 + 0.004, None)
    for index in range(8):
        recorder.record_dispatch(0.001)
        recorder.record_outcome(
            0.0, 0.0,
            ServiceOverloadedError("shed", queue_depth=4, queue_capacity=4),
        )
    recorder.record_dispatch(0.001)
    recorder.record_outcome(0.0, 0.01, ParseError("hostile text refused"))
    recorder.record_dispatch(0.001)
    recorder.record_outcome(0.0, 0.01, RuntimeError("engine bug"))
    return recorder


class TestBuildReport:
    def test_assembles_and_judges(self):
        profile = LoadProfile(rate=10.0, duration_s=10.0)
        report = build_report(
            profile=profile,
            mode="virtual",
            recorder=_recorder_with_outcomes(),
            elapsed_s=10.0,
            slos=default_slos(profile.rate),
            counters={},
        )
        data = report.data
        assert validate_report(data) == []
        assert data["requests"]["scheduled"] == 100
        assert data["requests"]["successes"] == 90
        assert data["requests"]["shed"] == 8
        assert data["requests"]["refusals"]["REPR0003"] == 8
        assert data["requests"]["refusals"]["XPST0003"] == 1
        assert data["requests"]["internal_errors"] == 1
        assert data["rates"]["throughput_rps"] == pytest.approx(9.0)
        # The internal error fails the zero-internal-errors SLO.
        assert not data["passed"]
        assert not report.ok
        assert "engine bug" in data["internal_errors"][0]

    def test_shed_rate_fails_its_slo(self):
        profile = LoadProfile(rate=10.0, duration_s=10.0)
        report = build_report(
            profile=profile,
            mode="virtual",
            recorder=_recorder_with_outcomes(),
            elapsed_s=10.0,
            slos=[SLO("shed", "shed_rate", 0.05)],
            counters={},
        )
        assert report.data["rates"]["shed_rate"] == pytest.approx(0.08)
        assert not report.passed

    def test_json_round_trip_is_sorted(self):
        profile = LoadProfile(rate=10.0, duration_s=1.0)
        report = build_report(
            profile=profile,
            mode="virtual",
            recorder=RunRecorder(),
            elapsed_s=1.0,
            slos=default_slos(10.0),
            counters={},
        )
        text = report.to_json()
        assert json.loads(text) == report.data
        assert text == json.dumps(report.data, sort_keys=True, indent=2)

    def test_render_mentions_verdicts(self):
        profile = LoadProfile(rate=10.0, duration_s=10.0)
        report = build_report(
            profile=profile,
            mode="virtual",
            recorder=_recorder_with_outcomes(),
            elapsed_s=10.0,
            slos=default_slos(10.0),
            counters={},
        )
        text = report.render()
        assert "SLOs FAIL" in text
        assert "no-internal-errors" in text


def _valid_report() -> dict:
    profile = LoadProfile(rate=10.0, duration_s=10.0)
    return build_report(
        profile=profile,
        mode="virtual",
        recorder=_recorder_with_outcomes(),
        elapsed_s=10.0,
        slos=default_slos(10.0),
        counters={},
    ).data


class TestValidateReport:
    def test_valid_report_has_no_problems(self):
        assert validate_report(_valid_report()) == []

    def test_not_an_object(self):
        assert validate_report([]) == ["report is not an object"]

    def test_missing_key(self):
        data = _valid_report()
        del data["latency_ms"]
        assert any("latency_ms" in p for p in validate_report(data))

    def test_wrong_schema_tag(self):
        data = _valid_report()
        data["schema"] = "something/else"
        assert any("schema" in p for p in validate_report(data))

    def test_unknown_mode(self):
        data = _valid_report()
        data["mode"] = "dreamtime"
        assert any("mode" in p for p in validate_report(data))

    def test_rate_out_of_range(self):
        data = _valid_report()
        data["rates"]["shed_rate"] = 1.5
        assert any("outside [0, 1]" in p for p in validate_report(data))

    def test_refusal_counts_must_add_up(self):
        data = _valid_report()
        data["requests"]["refusals"]["REPR0003"] += 1
        assert any("refusals" in p for p in validate_report(data))

    def test_passed_must_agree_with_verdicts(self):
        data = _valid_report()
        data["passed"] = not data["passed"]
        assert any("disagrees" in p for p in validate_report(data))

    def test_outcomes_cannot_exceed_dispatched(self):
        data = _valid_report()
        data["requests"]["successes"] += 1000
        assert any("exceed" in p for p in validate_report(data))
