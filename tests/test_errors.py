"""Tests for the error hierarchy: codes, messages, and that user-facing
failures carry the right exception types."""

import pytest

from repro import Engine
from repro.errors import (
    ConflictError,
    DynamicError,
    LexerError,
    ParseError,
    StaticError,
    TypeError_,
    UndefinedFunctionError,
    UndefinedVariableError,
    UpdateApplicationError,
    UpdateError,
    XMLParseError,
    XQueryError,
)


class TestHierarchy:
    def test_all_are_xquery_errors(self):
        for cls in (
            LexerError, ParseError, StaticError, DynamicError, TypeError_,
            UpdateError, UpdateApplicationError, ConflictError,
            UndefinedVariableError, UndefinedFunctionError, XMLParseError,
        ):
            assert issubclass(cls, XQueryError)

    def test_static_vs_dynamic(self):
        assert issubclass(ParseError, StaticError)
        assert not issubclass(DynamicError, StaticError)
        assert issubclass(ConflictError, UpdateError)

    def test_codes(self):
        assert ParseError("x").code == "XPST0003"
        assert UndefinedVariableError("x").code == "XPST0008"
        assert UndefinedFunctionError("x").code == "XPST0017"
        assert ConflictError("x").code == "XUDY0024"
        assert TypeError_("x").code == "XPTY0004"

    def test_custom_code(self):
        assert DynamicError("x", code="FOER0000").code == "FOER0000"

    def test_message_format(self):
        error = ParseError("unexpected thing", 3, 7)
        assert "[XPST0003]" in str(error)
        assert "line 3" in str(error)
        assert error.line == 3 and error.column == 7


class TestErrorsFromQueries:
    def test_lexer_error(self):
        with pytest.raises(LexerError):
            Engine().execute("§")

    def test_parse_error(self):
        with pytest.raises(ParseError):
            Engine().execute("for for for")

    def test_undefined_variable_at_runtime(self):
        with pytest.raises(UndefinedVariableError):
            Engine().execute("$ghost")

    def test_undefined_function(self):
        with pytest.raises(UndefinedFunctionError):
            Engine().execute("ghost()")

    def test_type_error(self):
        with pytest.raises(TypeError_):
            Engine().execute("'a' - 1")

    def test_context_item_error_code(self):
        try:
            Engine().execute(".")
        except DynamicError as error:
            assert error.code == "XPDY0002"
        else:
            pytest.fail("expected DynamicError")

    def test_xml_parse_error(self):
        with pytest.raises(XMLParseError):
            Engine().load_document("d", "<broken")

    def test_catch_all_base_class(self):
        # Library users can catch XQueryError for any engine failure.
        for bad in ("$x +", "$nope", "ghost()", "1 idiv 0"):
            with pytest.raises(XQueryError):
                Engine().execute(bad)
