"""Locks the redesigned public API surface.

These tests pin down what ``import repro`` exports, the
:class:`ExecutionOptions` contract (keyword-only, immutable, defaults),
the deprecation shim for the old positional ``optimize`` argument, the
scoped-prolog-registration guarantee and the JSON round-trip of the
stats/explain reports.  A change that breaks any of them is an API break
and should be deliberate.
"""

import dataclasses
import json

import pytest

import repro
from repro import Engine, ExecutionOptions
from repro.errors import DynamicError, XQueryError


EXPECTED_ALL = {
    "Engine",
    "ExecutionOptions",
    "QueryResult",
    "PreparedQuery",
    "PreparedQueryCache",
    "QueryStats",
    "ExplainReport",
    "SlowQueryRecord",
    "Tracer",
    "to_sequence",
    "CancelToken",
    "ConcurrentExecutor",
    "DurableEngine",
    "FaultInjector",
    "recover",
    "XQueryError",
    "DurabilityError",
    "JournalCorruptionError",
    "QueryTimeoutError",
    "QueryCancelledError",
    "ServiceOverloadedError",
    "CircuitOpenError",
    "ResourceLimitError",
    "TransactionConflictError",
    "ReplicaLagError",
    "StaleEpochError",
    "Session",
    "Transaction",
    "ResiliencePolicy",
    "RetryPolicy",
    "CircuitBreaker",
    "AdmissionLimits",
    "HealthReport",
    "AtomicValue",
    "Node",
    "NodeKind",
    "Store",
    "parse_document",
    "parse_fragment",
    "serialize",
    "__version__",
}


def make_engine() -> Engine:
    engine = Engine()
    engine.load_document(
        "doc",
        "<inventory><item id='a' price='10'/><item id='b' price='20'/>"
        "</inventory>",
    )
    return engine


class TestModuleSurface:
    def test_all_is_exactly_the_documented_surface(self):
        assert set(repro.__all__) == EXPECTED_ALL

    def test_every_all_name_resolves(self):
        for name in repro.__all__:
            assert getattr(repro, name, None) is not None, name


class TestExecutionOptions:
    def test_defaults(self):
        opts = ExecutionOptions()
        assert opts.optimize is False
        assert opts.semantics is None
        assert opts.bindings is None
        assert opts.collect_stats is False
        assert opts.explain is False

    def test_fields_are_keyword_only(self):
        with pytest.raises(TypeError):
            ExecutionOptions(True)  # noqa: the point is the positional call

    def test_frozen(self):
        opts = ExecutionOptions()
        with pytest.raises(dataclasses.FrozenInstanceError):
            opts.optimize = True

    def test_invalid_semantics_rejected_at_construction(self):
        with pytest.raises(ValueError):
            ExecutionOptions(semantics="yolo")

    def test_semantics_accepts_enum_and_string(self):
        from repro.semantics.update import ApplySemantics

        assert (
            ExecutionOptions(semantics="conflict-detection").resolved_semantics
            is ApplySemantics.CONFLICT_DETECTION
        )
        assert (
            ExecutionOptions(
                semantics=ApplySemantics.ORDERED
            ).resolved_semantics
            is ApplySemantics.ORDERED
        )

    def test_explicit_keywords_override_options(self):
        engine = make_engine()
        opts = ExecutionOptions(collect_stats=False)
        result = engine.execute(
            "count($doc//item)", options=opts, collect_stats=True
        )
        assert result.stats is not None

    def test_options_object_is_reusable_across_calls(self):
        engine = make_engine()
        opts = ExecutionOptions(optimize=True, collect_stats=True)
        first = engine.execute("count($doc//item)", options=opts)
        second = engine.execute("count($doc//item)", options=opts)
        assert first.first_value() == second.first_value() == 2
        assert second.stats.cache_hits == 1


class TestPositionalOptimizeDeprecation:
    def test_positional_optimize_warns_but_works(self):
        engine = make_engine()
        with pytest.warns(DeprecationWarning, match="positionally"):
            result = engine.execute("count($doc//item)", True)
        assert result.first_value() == 2

    def test_prepare_and_compile_shims_warn(self):
        engine = make_engine()
        with pytest.warns(DeprecationWarning, match="positionally"):
            engine.prepare("count($doc//item)", True)
        with pytest.warns(DeprecationWarning, match="positionally"):
            engine.compile("count($doc//item)", False)

    def test_keyword_form_does_not_warn(self):
        import warnings

        engine = make_engine()
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            engine.execute("count($doc//item)", optimize=True)
            engine.prepare("count($doc//item)", optimize=False)
            engine.compile("count($doc//item)", optimize=True)

    def test_keyword_wins_when_both_given(self):
        engine = make_engine()
        with pytest.warns(DeprecationWarning):
            prepared = engine.prepare(
                "count($doc//item)", True, optimize=False
            )
        assert prepared.optimize is False


class TestEngineBindings:
    def test_execute_accepts_bindings_keyword(self):
        engine = make_engine()
        result = engine.execute("$n * 2", bindings={"n": 21})
        assert result.first_value() == 42

    def test_bindings_do_not_leak(self):
        engine = make_engine()
        engine.execute("$n * 2", bindings={"n": 21})
        with pytest.raises(DynamicError, match=r"\$n is not bound"):
            engine.variable("n")

    def test_variable_raises_dynamic_error_with_name(self):
        engine = Engine()
        with pytest.raises(DynamicError, match=r"\$missing is not bound"):
            engine.variable("missing")


class TestScopedPrologRegistration:
    def test_failed_compile_rolls_back_functions_and_generation(self):
        engine = make_engine()
        engine.execute("count($doc//item)")  # warm the prepared cache
        generation = engine.functions.generation
        with pytest.raises(DynamicError):
            engine.compile("declare function local:f() { 1 };")  # no body
        assert engine.functions.generation == generation
        assert ("local:f", 0) not in engine.functions._user
        # The cached prepared query is still valid (same generation).
        key = ("count($doc//item)", False, "ordered")
        assert engine.prepared_cache.lookup(key, generation) is not None

    def test_failed_prepare_rolls_back(self):
        engine = Engine(static_checks=True)
        engine.load_document("doc", "<d/>")
        engine.execute("count($doc)")
        generation = engine.functions.generation
        with pytest.raises(XQueryError):
            engine.prepare("declare function local:g() { 2 }; $no_such_var")
        assert engine.functions.generation == generation
        assert ("local:g", 0) not in engine.functions._user

    def test_successful_prepare_commits_registration(self):
        engine = make_engine()
        result = engine.execute("declare function local:two() { 2 }; local:two()")
        assert result.first_value() == 2
        assert ("local:two", 0) in engine.functions._user


class TestReportSerialization:
    def test_stats_to_dict_round_trips_through_json(self):
        engine = make_engine()
        result = engine.execute(
            'snap insert { <item id="c"/> } into { $doc/inventory }',
            collect_stats=True,
        )
        payload = json.loads(result.stats.to_json())
        assert payload == result.stats.to_dict()
        assert payload["snap_count"] == result.stats.snap_count >= 1
        assert "phase_times_ms" in payload
        assert isinstance(payload["counters"], dict)

    def test_explain_to_dict_round_trips_through_json(self):
        engine = make_engine()
        report = engine.explain(
            "for $x in $doc//item for $y in $doc//item "
            "where $x/@id = $y/@id return $x"
        )
        payload = json.loads(report.to_json())
        assert payload == report.to_dict()
        assert payload["rewritten"] is True
        assert {rule["rule"] for rule in payload["rules"]} == {
            "hoist-invariant-lets",
            "outer-join-group-by",
            "hash-join",
        }

    def test_slow_query_record_to_json(self):
        from repro import SlowQueryRecord

        record = SlowQueryRecord(
            query_text="1+1", duration_ms=5.0, threshold_ms=1.0
        )
        payload = json.loads(record.to_json())
        assert payload["query"] == "1+1"
        assert payload["stats"] is None

    def test_stats_absent_by_default(self):
        engine = make_engine()
        result = engine.execute("count($doc//item)")
        assert result.stats is None
        assert result.explain is None
