"""End-to-end tests of the pipeline observability layer.

Covers the tracer threading through the whole pipeline: frontend phase
spans, snap/update metrics, store churn counters, conflict-check
outcomes, streaming-executor barriers, the explain report and the
slow-query hook.
"""

import pytest

from repro import Engine, ExecutionOptions
from repro.errors import ConflictError


def make_engine(**kwargs) -> Engine:
    engine = Engine(**kwargs)
    engine.load_document(
        "doc",
        "<inventory>"
        "<item id='a' price='10'/><item id='b' price='20'/>"
        "<item id='c' price='30'/>"
        "</inventory>",
    )
    return engine


UPDATING = (
    'snap { insert { <item id="x"/> } into { $doc/inventory }, '
    'delete { $doc/inventory/item[@id="a"] } }'
)

JOIN = (
    "for $x in $doc//item for $y in $doc//item "
    "where $x/@id = $y/@id return <pair/>"
)


class TestPhaseSpans:
    def test_cold_execute_records_frontend_phases(self):
        engine = make_engine()
        stats = engine.execute("count($doc//item)", collect_stats=True).stats
        phases = stats.phase_times_ms
        for name in ("parse", "normalize", "simplify", "evaluate",
                     "snap-apply"):
            assert name in phases, name
            assert phases[name] >= 0.0

    def test_cache_hit_skips_frontend_phases(self):
        engine = make_engine()
        engine.execute("count($doc//item)", collect_stats=True)
        stats = engine.execute("count($doc//item)", collect_stats=True).stats
        phases = stats.phase_times_ms
        assert "parse" not in phases
        assert "evaluate" in phases
        assert stats.cache_hits == 1
        assert stats.cache_misses == 0

    def test_optimized_execute_records_compile_and_rule_spans(self):
        engine = make_engine()
        stats = engine.execute(JOIN, optimize=True, collect_stats=True).stats
        phases = stats.phase_times_ms
        assert "compile" in phases
        assert any(name.startswith("rewrite:") for name in phases)

    def test_spans_nest(self):
        engine = make_engine()
        stats = engine.execute(UPDATING, collect_stats=True).stats
        # snap-apply of the implicit snap is a top-level span; the explicit
        # inner snap's application nests under "evaluate".
        top = [span.name for span in stats.spans]
        assert "evaluate" in top and "snap-apply" in top

    def test_duration_totals(self):
        engine = make_engine()
        stats = engine.execute("1 to 100", collect_stats=True).stats
        assert stats.duration_ms > 0.0


class TestSnapMetrics:
    def test_snap_count_and_pending_updates(self):
        engine = make_engine()
        stats = engine.execute(UPDATING, collect_stats=True).stats
        # Explicit snap + the implicit top-level snap.
        assert stats.snap_count == 2
        assert stats.pending_updates_total == 2
        obs = stats.observations["snap.pending_updates"]
        assert obs.count == 2
        assert obs.max == 2.0 and obs.min == 0.0

    def test_pure_query_has_empty_update_list(self):
        engine = make_engine()
        stats = engine.execute("count($doc//item)", collect_stats=True).stats
        assert stats.snap_count == 1
        assert stats.pending_updates_total == 0


class TestStoreCounters:
    def test_nodes_created_and_detached(self):
        engine = make_engine()
        stats = engine.execute(UPDATING, collect_stats=True).stats
        assert stats.counters["store.nodes_created"] >= 1
        assert stats.counters["store.nodes_detached"] == 1

    def test_disabled_run_leaves_store_unobserved(self):
        engine = make_engine()
        engine.execute(UPDATING)
        assert engine.store._obs is None


class TestConflictMetrics:
    def test_conflict_free_snap_counts_ok(self):
        engine = make_engine()
        stats = engine.execute(
            UPDATING,
            options=ExecutionOptions(
                semantics="conflict-detection", collect_stats=True
            ),
        ).stats
        assert stats.counters["conflict.checks"] >= 1
        assert stats.counters["conflict.ok"] >= 1
        assert "conflict.detected" not in stats.counters
        assert stats.observations["conflict.table.writes"].count >= 1

    def test_detected_conflict_is_counted_before_raising(self):
        engine = make_engine()
        with pytest.raises(ConflictError):
            engine.execute(
                'snap conflict-detection { '
                'rename { $doc/inventory/item[@id="a"] } to { "x1" }, '
                'rename { $doc/inventory/item[@id="a"] } to { "x2" } }',
                collect_stats=True,
            )


class TestExecutorBarriers:
    def test_hash_join_barriers_counted(self):
        engine = make_engine()
        stats = engine.execute(JOIN, optimize=True, collect_stats=True).stats
        assert stats.counters["exec.barrier.snap"] == 1
        assert stats.counters["exec.barrier.hash_build"] == 1
        assert stats.observations["exec.hash_build.rows"].count == 1

    def test_order_by_barrier_counted(self):
        engine = make_engine()
        stats = engine.execute(
            "for $i in $doc//item order by $i/@price descending return $i",
            optimize=True,
            collect_stats=True,
        ).stats
        assert stats.counters["exec.barrier.order_by"] == 1


class TestExplain:
    def test_explain_lists_fired_rules_with_purity(self):
        engine = make_engine()
        report = engine.explain(JOIN)
        assert report.rewritten
        fired = {rule.rule for rule in report.fired_rules}
        assert fired == {"hash-join"}
        clauses = [verdict["clause"] for verdict in report.purity]
        assert clauses == ["for $x", "for $y", "where", "return"]
        assert all(verdict["pure"] for verdict in report.purity)
        assert "HashJoin" in report.operators_after
        assert "HashJoin" not in report.operators_before

    def test_snap_guard_blocks_all_rules_with_reason(self):
        engine = make_engine()
        report = engine.explain(
            "for $x in $doc//item "
            "return snap { insert { <seen/> } into { $x } }"
        )
        assert not report.rewritten
        assert report.fired_rules == []
        for rule in report.rules:
            assert "snap" in rule.detail["reason"]
        assert any(verdict["may_snap"] for verdict in report.purity)

    def test_effectful_inner_branch_blocks_join(self):
        engine = make_engine()
        report = engine.explain(
            "for $x in $doc//item "
            "for $y in (insert { <probe/> } into { $doc/inventory }, "
            "$doc//item) "
            "where $x/@id = $y/@id return $y"
        )
        assert "hash-join" not in {rule.rule for rule in report.fired_rules}
        impure = [v for v in report.purity if not v["pure"]]
        assert impure and any(v["may_update"] for v in impure)

    def test_explain_is_side_effect_free(self):
        engine = make_engine()
        generation = engine.functions.generation
        engine.explain("declare function local:f() { 1 }; local:f()")
        assert engine.functions.generation == generation
        assert ("local:f", 0) not in engine.functions._user

    def test_execute_with_explain_option_attaches_report(self):
        engine = make_engine()
        result = engine.execute(JOIN, optimize=True, explain=True)
        assert result.explain is not None
        assert result.explain.rewritten

    def test_render_is_printable(self):
        engine = make_engine()
        text = engine.explain(JOIN).render()
        assert "plan (before rewriting):" in text
        assert "hash-join: fired" in text


class TestSlowQueryHook:
    def test_hook_fires_above_threshold(self):
        records = []
        engine = make_engine(
            on_slow_query=records.append, slow_query_ms=0.0
        )
        engine.execute("count($doc//item)")
        assert len(records) == 1
        record = records[0]
        assert record.query_text == "count($doc//item)"
        assert record.duration_ms >= 0.0
        assert record.threshold_ms == 0.0
        assert record.stats is None  # stats were not collected

    def test_hook_receives_stats_when_collected(self):
        records = []
        engine = make_engine(
            on_slow_query=records.append, slow_query_ms=0.0
        )
        engine.execute("count($doc//item)", collect_stats=True)
        assert records[0].stats is not None
        assert records[0].stats.snap_count == 1

    def test_hook_respects_threshold(self):
        records = []
        engine = make_engine(
            on_slow_query=records.append, slow_query_ms=1e9
        )
        engine.execute("count($doc//item)")
        assert records == []

    def test_hook_fires_for_direct_prepared_execute(self):
        records = []
        engine = make_engine(
            on_slow_query=records.append, slow_query_ms=0.0
        )
        prepared = engine.prepare("count($doc//item)")
        prepared.execute()
        assert len(records) == 1


class TestPreparedExecuteOptions:
    def test_prepared_execute_accepts_options(self):
        engine = make_engine()
        prepared = engine.prepare("count($doc//item)")
        result = prepared.execute(
            options=ExecutionOptions(collect_stats=True)
        )
        assert result.stats is not None
        assert result.stats.snap_count == 1

    def test_option_bindings_merge_with_positional(self):
        engine = make_engine()
        prepared = engine.prepare("$a + $b")
        result = prepared.execute(
            bindings={"b": 2},
            options=ExecutionOptions(bindings={"a": 10, "b": 99}),
        )
        assert result.first_value() == 12

    def test_tracer_uninstalled_after_traced_run(self):
        engine = make_engine()
        engine.execute(UPDATING, collect_stats=True)
        assert engine.evaluator.tracer is None
        assert engine.store._obs is None

    def test_tracer_uninstalled_after_error(self):
        engine = make_engine()
        with pytest.raises(ConflictError):
            engine.execute(
                'snap conflict-detection { '
                'rename { $doc/inventory/item[@id="a"] } to { "x1" }, '
                'rename { $doc/inventory/item[@id="a"] } to { "x2" } }',
                collect_stats=True,
            )
        assert engine.evaluator.tracer is None
        assert engine.store._obs is None

    def test_semantics_option_changes_cache_key(self):
        engine = make_engine()
        engine.execute("count($doc//item)")
        engine.execute("count($doc//item)", semantics="conflict-detection")
        keys = engine.prepared_cache.keys()
        assert ("count($doc//item)", False, "ordered") in keys
        assert ("count($doc//item)", False, "conflict-detection") in keys
