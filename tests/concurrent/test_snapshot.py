"""Copy-on-write store snapshots: isolation, memoization, locality."""

import pytest

from repro.errors import StoreError, UpdateApplicationError
from repro.xdm import NodeKind, Store


def build_tree(store):
    """<doc><a>x</a><b k="1">y</b></doc> — returns (root, a, b, text_a)."""
    root = store.create_element("doc")
    a = store.create_element("a")
    ta = store.create_text("x")
    store.append_child(a, ta)
    b = store.create_element("b")
    store.set_attribute(b, store.create_attribute("k", "1"))
    tb = store.create_text("y")
    store.append_child(b, tb)
    store.append_child(root, a)
    store.append_child(root, b)
    return root, a, b, ta


class TestIsolation:
    def test_snapshot_sees_pre_mutation_state(self):
        store = Store()
        root, a, b, _ = build_tree(store)
        snap = store.begin_snapshot()
        new = store.create_element("c")
        store.append_child(root, new)
        store.set_value(store.children(a)[0], "CHANGED")
        store.rename(b, "renamed")
        # Live store reflects the mutations...
        assert len(store.children(root)) == 3
        assert store.string_value(a) == "CHANGED"
        assert store.name(b) == "renamed"
        # ...the snapshot does not.
        assert len(snap.children(root)) == 2
        assert snap.string_value(a) == "x"
        assert snap.name(b) == "b"
        store.release_snapshot(snap)

    def test_snapshot_survives_detach_and_gc(self):
        store = Store()
        root, a, b, _ = build_tree(store)
        snap = store.begin_snapshot()
        store.detach(a)
        reclaimed = store.gc([root])
        assert reclaimed > 0
        # The snapshot still reads the detached subtree via its overlay.
        assert snap.string_value(a) == "x"
        assert snap.parent(a) == root
        assert [snap.name(c) for c in snap.children(root)] == ["a", "b"]
        store.release_snapshot(snap)

    def test_two_snapshots_see_their_own_epochs(self):
        store = Store()
        root, a, _, _ = build_tree(store)
        first = store.begin_snapshot()
        store.set_value(store.children(a)[0], "second-epoch")
        second = store.begin_snapshot()
        store.set_value(store.children(a)[0], "live")
        assert first.string_value(a) == "x"
        assert second.string_value(a) == "second-epoch"
        assert store.string_value(a) == "live"
        store.release_snapshot(first)
        store.release_snapshot(second)

    def test_release_is_idempotent(self):
        store = Store()
        build_tree(store)
        snap = store.begin_snapshot()
        store.release_snapshot(snap)
        store.release_snapshot(snap)

    def test_released_snapshot_stops_accumulating(self):
        store = Store()
        root, a, _, _ = build_tree(store)
        snap = store.begin_snapshot()
        store.release_snapshot(snap)
        store.set_value(store.children(a)[0], "after-release")
        # Reads now follow the live store (no overlay entries recorded).
        assert snap.string_value(a) == "after-release"


class TestDerivedData:
    def test_string_value_is_memoized(self):
        store = Store()
        root, *_ = build_tree(store)
        snap = store.begin_snapshot()
        assert snap.string_value(root) == "xy"
        assert root in snap._string_values
        assert snap.string_value(root) == "xy"
        store.release_snapshot(snap)

    def test_descendants_named_tracks_snapshot_not_live(self):
        store = Store()
        root, a, b, _ = build_tree(store)
        snap = store.begin_snapshot()
        store.rename(a, "gone")          # renamed away live
        extra = store.create_element("a")  # added live, post-snapshot
        store.append_child(root, extra)
        live = store.descendants_named(root, "a")
        snapped = snap.descendants_named(root, "a")
        assert live == [extra]
        assert snapped == [a]
        store.release_snapshot(snap)

    def test_document_order_matches_live_for_unchanged_tree(self):
        store = Store()
        root, a, b, _ = build_tree(store)
        snap = store.begin_snapshot()
        nids = [b, a, root]
        assert snap.sort_document_order(nids) == store.sort_document_order(
            nids
        )
        assert snap.compare_order(a, b) == -1
        store.release_snapshot(snap)


class TestLocalSpace:
    def test_constructed_nodes_live_above_the_ceiling(self):
        store = Store()
        root, *_ = build_tree(store)
        snap = store.begin_snapshot()
        local = snap.create_element("fresh")
        assert local >= snap.ceiling
        assert snap._is_local(local)
        assert snap.kind(local) is NodeKind.ELEMENT
        store.release_snapshot(snap)

    def test_local_tree_construction_and_mutation(self):
        store = Store()
        build_tree(store)
        snap = store.begin_snapshot()
        el = snap.create_element("out")
        text = snap.create_text("hello")
        snap.append_child(el, text)
        assert snap.string_value(el) == "hello"
        snap.set_value(text, "bye")
        assert snap.string_value(el) == "bye"
        store.release_snapshot(snap)

    def test_deep_copy_of_base_subtree_into_local_space(self):
        store = Store()
        root, a, _, _ = build_tree(store)
        snap = store.begin_snapshot()
        copy = snap.deep_copy(a)
        assert snap._is_local(copy)
        assert snap.name(copy) == "a"
        assert snap.string_value(copy) == "x"
        # The copy is mutable; the base original still is not.
        snap.rename(copy, "mine")
        assert snap.name(copy) == "mine"
        assert store.name(a) == "a"
        store.release_snapshot(snap)

    def test_base_nodes_are_read_only(self):
        store = Store()
        root, a, _, _ = build_tree(store)
        snap = store.begin_snapshot()
        with pytest.raises(UpdateApplicationError, match="read-only"):
            snap.rename(a, "nope")
        with pytest.raises(UpdateApplicationError, match="read-only"):
            snap.set_value(store.children(a)[0], "nope")
        with pytest.raises(UpdateApplicationError, match="read-only"):
            snap.append_child(root, snap.create_element("x"))
        store.release_snapshot(snap)

    def test_checkpoint_restore_rejected(self):
        store = Store()
        build_tree(store)
        snap = store.begin_snapshot()
        with pytest.raises(StoreError):
            snap.checkpoint()
        store.release_snapshot(snap)


class TestStoreLifecycle:
    def test_restore_detaches_snapshots(self):
        store = Store()
        root, *_ = build_tree(store)
        checkpoint = store.checkpoint()
        snap = store.begin_snapshot()
        store.restore(checkpoint)
        assert snap.detached
        # A detached snapshot still answers from what it froze; the
        # executor just refuses to route new queries onto it.
        assert store._snapshots == []

    def test_unknown_node_raises(self):
        store = Store()
        build_tree(store)
        snap = store.begin_snapshot()
        with pytest.raises(StoreError):
            snap.kind(10_000)
        store.release_snapshot(snap)
