"""The concurrent executor: routing, deadlines, shedding, metrics."""

import threading
import time

import pytest

from repro import (
    CancelToken,
    ConcurrentExecutor,
    Engine,
    QueryCancelledError,
    QueryTimeoutError,
    ServiceOverloadedError,
)
from repro.usecases.webservice import AuctionFrontEnd, AuctionService


@pytest.fixture
def engine():
    e = Engine()
    e.load_document("doc", "<t><c>0</c></t>")
    return e


class TestRouting:
    def test_pure_read_routes_to_snapshot_path(self, engine):
        with ConcurrentExecutor(engine, workers=2) as executor:
            result = executor.execute("count($doc/t)")
            assert result.first_value() == 1
            assert executor.metrics.counter("reads_snapshot") == 1
            assert executor.metrics.counter("writes") == 0

    def test_update_routes_to_write_path(self, engine):
        with ConcurrentExecutor(engine, workers=2) as executor:
            executor.execute("insert { <n/> } into { $doc/t }")
            assert executor.metrics.counter("writes") == 1
            assert executor.execute("count($doc/t/n)").first_value() == 1

    def test_serialized_mode_skips_snapshots(self, engine):
        with ConcurrentExecutor(engine, reads="serialized") as executor:
            executor.execute("count($doc/t)")
            assert executor.metrics.counter("reads_serialized") == 1
            assert executor.metrics.counter("snapshots_built") == 0

    def test_write_invalidates_snapshot_for_next_read(self, engine):
        with ConcurrentExecutor(engine) as executor:
            assert executor.execute("count($doc/t/n)").first_value() == 0
            executor.execute("insert { <n/> } into { $doc/t }")
            assert executor.execute("count($doc/t/n)").first_value() == 1
            assert executor.metrics.counter("snapshots_built") == 2

    def test_reads_between_writes_share_one_snapshot(self, engine):
        with ConcurrentExecutor(engine) as executor:
            for _ in range(5):
                executor.execute("count($doc/t)")
            assert executor.metrics.counter("snapshots_built") == 1

    def test_direct_engine_mutation_needs_invalidate(self, engine):
        with ConcurrentExecutor(engine) as executor:
            assert executor.execute("count($doc//x)").first_value() == 0
            # Mutating through the engine bumps the store version, which
            # the freshness check notices on its own.
            engine.execute("insert { <x/> } into { $doc/t }")
            assert executor.execute("count($doc//x)").first_value() == 1
            # A pure rebind (no node construction) is the case that needs
            # the explicit hint.
            engine.bind("limit", 7)
            executor.invalidate_snapshot()
            assert executor.execute("$limit + 1").first_value() == 8

    def test_constructed_results_come_back_usable(self, engine):
        with ConcurrentExecutor(engine) as executor:
            result = executor.execute(
                "element wrap { count($doc/t/c) }"
            )
            assert result.serialize() == "<wrap>1</wrap>"

    def test_live_node_results_point_at_live_store(self, engine):
        with ConcurrentExecutor(engine) as executor:
            node = executor.execute("($doc/t/c)[1]").items[0]
            assert node.store is engine.store


class TestResultCache:
    def test_repeated_read_hits_the_cache(self, engine):
        with ConcurrentExecutor(engine) as executor:
            for _ in range(4):
                assert executor.execute("count($doc/t)").first_value() == 1
            assert executor.metrics.counter("result_cache_hits") == 3

    def test_distinct_bindings_miss(self, engine):
        with ConcurrentExecutor(engine) as executor:
            assert executor.execute(
                "$x + 1", bindings={"x": 1}
            ).first_value() == 2
            assert executor.execute(
                "$x + 1", bindings={"x": 5}
            ).first_value() == 6
            assert executor.metrics.counter("result_cache_hits") == 0
            assert executor.execute(
                "$x + 1", bindings={"x": 5}
            ).first_value() == 6
            assert executor.metrics.counter("result_cache_hits") == 1

    def test_write_invalidates_cached_results(self, engine):
        with ConcurrentExecutor(engine) as executor:
            assert executor.execute("count($doc/t/n)").first_value() == 0
            assert executor.execute("count($doc/t/n)").first_value() == 0
            executor.execute("insert { <n/> } into { $doc/t }")
            assert executor.execute("count($doc/t/n)").first_value() == 1

    def test_cache_can_be_disabled(self, engine):
        with ConcurrentExecutor(engine, result_cache_size=0) as executor:
            for _ in range(3):
                executor.execute("count($doc/t)")
            assert executor.metrics.counter("result_cache_hits") == 0

    def test_identical_concurrent_misses_single_flight(self, engine):
        """Eight simultaneous identical requests: one evaluation, seven
        served from it."""
        query = (
            "sum(for $a in 1 to 300, $b in 1 to 300 return $a * $b)"
        )
        with ConcurrentExecutor(engine, workers=4) as executor:
            futures = [executor.submit(query) for _ in range(8)]
            values = {f.result(timeout=120).first_value() for f in futures}
            assert len(values) == 1
            assert executor.metrics.counter("result_cache_hits") == 7

    def test_stats_requests_bypass_the_cache(self, engine):
        from repro import ExecutionOptions

        with ConcurrentExecutor(engine) as executor:
            options = ExecutionOptions(collect_stats=True)
            first = executor.execute("count($doc/t)", options=options)
            second = executor.execute("count($doc/t)", options=options)
            assert executor.metrics.counter("result_cache_hits") == 0
            assert first.stats is not None
            assert second.stats is not None


class TestDeadlines:
    def test_timeout_fails_future_with_typed_error(self, engine):
        with ConcurrentExecutor(engine, workers=1) as executor:
            future = executor.submit(
                "for $a in 1 to 1000, $b in 1 to 1000, $c in 1 to 100 "
                "return $a*$b*$c",
                timeout_ms=20,
            )
            with pytest.raises(QueryTimeoutError):
                future.result(timeout=30)
            assert executor.metrics.counter("timeouts") == 1

    def test_default_timeout_applies(self, engine):
        with ConcurrentExecutor(
            engine, workers=1, default_timeout_ms=20
        ) as executor:
            with pytest.raises(QueryTimeoutError):
                executor.execute(
                    "for $a in 1 to 1000, $b in 1 to 1000, "
                    "$c in 1 to 100 return $a*$b*$c"
                )

    def test_timed_out_write_leaves_store_unchanged(self, engine):
        with ConcurrentExecutor(engine, workers=1) as executor:
            with pytest.raises(QueryTimeoutError):
                executor.execute(
                    "for $i in 1 to 200000 "
                    "return insert { <n/> } into { $doc/t }",
                    timeout_ms=20,
                )
            assert executor.execute("count($doc/t/n)").first_value() == 0

    def test_cancel_token_stops_queued_request(self, engine):
        token = CancelToken()
        token.cancel()
        with ConcurrentExecutor(engine, workers=1) as executor:
            future = executor.submit("1 + 1", cancel=token)
            with pytest.raises(QueryCancelledError):
                future.result(timeout=30)
            assert executor.metrics.counter("expired_in_queue") == 1


class TestShedding:
    def test_full_queue_sheds_immediately(self, engine):
        # One worker wedged on a slow query + a size-2 queue: the third
        # enqueue must shed rather than buffer.
        with ConcurrentExecutor(engine, workers=1, queue_size=2) as executor:
            block = executor.submit(
                "for $a in 1 to 1000, $b in 1 to 1000 return $a*$b"
            )
            queued = []
            shed = 0
            for _ in range(8):
                try:
                    queued.append(executor.submit("1"))
                except ServiceOverloadedError:
                    shed += 1
            assert shed >= 1
            assert executor.metrics.counter("shed") == shed
            block.result(timeout=60)
            for future in queued:
                assert future.result(timeout=60).first_value() == 1

    def test_submit_after_shutdown_rejected(self, engine):
        executor = ConcurrentExecutor(engine)
        executor.shutdown()
        with pytest.raises(RuntimeError):
            executor.submit("1")

    def test_shutdown_is_idempotent(self, engine):
        executor = ConcurrentExecutor(engine)
        executor.shutdown()
        executor.shutdown()


class TestConcurrentReads:
    def test_parallel_readers_agree(self, engine):
        with ConcurrentExecutor(engine, workers=4) as executor:
            futures = [
                executor.submit("count($doc/t/c) + count($doc/t)")
                for _ in range(20)
            ]
            values = {f.result(timeout=60).first_value() for f in futures}
            assert values == {2}

    def test_readers_race_one_writer_without_tearing(self, engine):
        """Each write appends one <n/> AND bumps <c>; a reader must see
        matching values — count(n) == c — whichever epoch it lands in."""
        write = (
            "snap { insert { <n/> } into { $doc/t }, "
            "replace value of { $doc/t/c } "
            "with { data($doc/t/c) + 1 } }"
        )
        read = "concat(count($doc/t/n), ':', data($doc/t/c))"
        with ConcurrentExecutor(engine, workers=4) as executor:
            stop = threading.Event()
            torn = []

            def reader():
                while not stop.is_set():
                    left, _, right = (
                        executor.execute(read).first_value().partition(":")
                    )
                    if left != right:
                        torn.append((left, right))

            threads = [threading.Thread(target=reader) for _ in range(3)]
            for thread in threads:
                thread.start()
            for _ in range(15):
                executor.execute(write)
                time.sleep(0.001)
            stop.set()
            for thread in threads:
                thread.join()
            assert torn == []
            assert (
                executor.execute("number($doc/t/c)").first_value() == 15
            )


class TestMetricsSurface:
    def test_observations_and_counters_exposed(self, engine):
        with ConcurrentExecutor(engine) as executor:
            executor.execute("count($doc/t)")
            executor.execute("insert { <n/> } into { $doc/t }")
            counters = executor.metrics.counters()
            assert counters["concurrent.requests"] == 2
            observations = executor.metrics.observations()
            assert "concurrent.queue_depth" in observations
            assert "concurrent.snapshot_age_ms" in observations


class TestAuctionFrontEnd:
    def test_front_end_serves_and_logs(self):
        service = AuctionService(maxlog=5)
        item_ids = service.engine.execute(
            "for $i in ($auction//item)[position() <= 4] "
            "return string($i/@id)"
        ).strings()
        user_ids = service.engine.execute(
            "(for $p in $auction//person return string($p/@id))[1]"
        ).strings()
        with AuctionFrontEnd(service, workers=3) as front:
            futures = [
                front.submit_get_item_nolog(item, user_ids[0])
                for item in item_ids
            ]
            for item, future in zip(item_ids, futures):
                result = future.result(timeout=60)
                assert f'id="{item}"' in result.serialize()
            assert front.metrics.counter("reads_snapshot") == len(item_ids)
            # Logged calls go through the write path and actually log.
            for item in item_ids:
                front.get_item(item, user_ids[0])
            assert front.metrics.counter("writes") == len(item_ids)
            assert service.log_entries() == len(item_ids)
