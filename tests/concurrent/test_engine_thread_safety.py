"""Regression tests for the engine's shared mutable state under threads.

Before this subsystem the prepared-query cache (an OrderedDict LRU), the
function registry's generation counter and the module loader were all
mutated without locks; concurrent preparation could corrupt the LRU
links, double-bump generations (spuriously invalidating every cached
plan) or interleave module registration.  These tests hammer exactly
those paths.
"""

import threading

from repro import Engine
from repro.lang import core_ast as core
from repro.semantics.context import FunctionRegistry


def make_function(name):
    return core.CFunction(name=name, params=[], body=core.CLiteral(1))

THREADS = 8
ROUNDS = 30


def hammer(worker, threads=THREADS):
    errors = []

    def wrapped(index):
        try:
            worker(index)
        except Exception as exc:  # noqa: BLE001 - collected for the assert
            errors.append(exc)

    pool = [
        threading.Thread(target=wrapped, args=(index,))
        for index in range(threads)
    ]
    for thread in pool:
        thread.start()
    for thread in pool:
        thread.join()
    assert errors == []


class TestPreparedCache:
    def test_concurrent_prepare_of_distinct_queries(self):
        engine = Engine()

        def worker(index):
            for round_ in range(ROUNDS):
                prepared = engine.prepare(f"{index} + {round_}")
                assert prepared.execute().first_value() == index + round_

        hammer(worker)
        # The LRU is still internally consistent: every entry reachable.
        assert len(engine.prepared_cache.keys()) == len(
            set(engine.prepared_cache.keys())
        )

    def test_concurrent_prepare_of_same_query_counts_one_miss(self):
        engine = Engine()
        barrier = threading.Barrier(THREADS)

        def worker(index):
            barrier.wait()
            assert engine.prepare("6 * 7").execute().first_value() == 42

        hammer(worker)
        assert engine.prepared_cache.stats.misses == 1
        assert engine.prepared_cache.stats.hits == THREADS - 1

    def test_concurrent_eviction_churn(self):
        engine = Engine(prepared_cache_size=4)

        def worker(index):
            for round_ in range(ROUNDS):
                query = f"{index} * 100 + {round_ % 8}"
                assert (
                    engine.prepare(query).execute().first_value()
                    == index * 100 + round_ % 8
                )

        hammer(worker)
        assert len(engine.prepared_cache.keys()) <= 4


class TestFunctionRegistry:
    def test_concurrent_registration_bumps_generation_exactly(self):
        registry = FunctionRegistry()
        start = registry.generation
        barrier = threading.Barrier(THREADS)

        def worker(index):
            barrier.wait()
            for round_ in range(ROUNDS):
                registry.register_user(make_function(f"f{index}x{round_}"))

        hammer(worker)
        assert registry.generation == start + THREADS * ROUNDS
        for index in range(THREADS):
            assert registry.lookup_user(f"f{index}x0", 0) is not None

    def test_lookup_during_registration_does_not_explode(self):
        registry = FunctionRegistry()
        stop = threading.Event()

        def register(index):
            for round_ in range(200):
                registry.register_user(make_function(f"g{index}x{round_}"))
            stop.set()

        def lookup(index):
            while not stop.is_set():
                registry.lookup_user("g0x0", 0)

        errors = []

        def guard(fn, index):
            try:
                fn(index)
            except Exception as exc:  # noqa: BLE001
                errors.append(exc)

        threads = [
            threading.Thread(target=guard, args=(register, 0)),
            threading.Thread(target=guard, args=(lookup, 1)),
            threading.Thread(target=guard, args=(lookup, 2)),
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert errors == []


class TestModuleLoading:
    def test_concurrent_module_loads(self):
        engine = Engine()

        def worker(index):
            engine.load_module(
                f"declare function m{index}($x) {{ $x + {index} }};"
            )

        hammer(worker)
        for index in range(THREADS):
            assert (
                engine.execute(f"m{index}(10)").first_value() == 10 + index
            )
