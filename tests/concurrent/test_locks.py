"""The reader-writer lock: sharing, exclusion, writer preference."""

import threading
import time

import pytest

from repro.concurrent.locks import RWLock


class TestReadSide:
    def test_many_readers_share(self):
        lock = RWLock()
        lock.acquire_read()
        lock.acquire_read()
        assert lock.readers == 2
        lock.release_read()
        lock.release_read()
        assert lock.readers == 0

    def test_release_without_acquire_raises(self):
        with pytest.raises(RuntimeError):
            RWLock().release_read()

    def test_context_manager_balances(self):
        lock = RWLock()
        with lock.read_locked():
            assert lock.readers == 1
        assert lock.readers == 0


class TestWriteSide:
    def test_writer_is_exclusive_of_readers(self):
        lock = RWLock()
        entered = threading.Event()
        with lock.write_locked():
            reader = threading.Thread(
                target=lambda: (lock.acquire_read(), entered.set())
            )
            reader.start()
            assert not entered.wait(0.05)
            assert lock.readers == 0
        assert entered.wait(2.0)
        lock.release_read()
        reader.join()

    def test_writer_waits_for_readers_to_drain(self):
        lock = RWLock()
        lock.acquire_read()
        wrote = threading.Event()
        writer = threading.Thread(
            target=lambda: (lock.acquire_write(), wrote.set())
        )
        writer.start()
        assert not wrote.wait(0.05)
        lock.release_read()
        assert wrote.wait(2.0)
        lock.release_write()
        writer.join()

    def test_release_without_acquire_raises(self):
        with pytest.raises(RuntimeError):
            RWLock().release_write()


class TestWriterPreference:
    def test_waiting_writer_blocks_new_readers(self):
        lock = RWLock()
        lock.acquire_read()
        writer_ready = threading.Event()
        wrote = threading.Event()

        def write():
            writer_ready.set()
            lock.acquire_write()
            wrote.set()
            lock.release_write()

        writer = threading.Thread(target=write)
        writer.start()
        writer_ready.wait(2.0)
        # Give the writer time to register as waiting.
        deadline = time.monotonic() + 2.0
        while not lock._writers_waiting and time.monotonic() < deadline:
            time.sleep(0.005)
        late_read = threading.Event()
        reader = threading.Thread(
            target=lambda: (lock.acquire_read(), late_read.set())
        )
        reader.start()
        # The late reader must queue behind the waiting writer.
        assert not late_read.wait(0.05)
        lock.release_read()
        assert wrote.wait(2.0)
        assert late_read.wait(2.0)
        lock.release_read()
        writer.join()
        reader.join()


class TestWaitCallback:
    def test_uncontended_acquires_do_not_report(self):
        waits = []
        lock = RWLock(on_wait=lambda kind, s: waits.append((kind, s)))
        with lock.read_locked():
            pass
        with lock.write_locked():
            pass
        assert waits == []

    def test_blocked_acquire_reports_side_and_duration(self):
        waits = []
        lock = RWLock(on_wait=lambda kind, s: waits.append((kind, s)))
        lock.acquire_write()
        reader = threading.Thread(target=lambda: lock.acquire_read())
        reader.start()
        time.sleep(0.05)
        lock.release_write()
        reader.join()
        lock.release_read()
        assert len(waits) == 1
        kind, seconds = waits[0]
        assert kind == "read"
        assert seconds > 0


class TestStress:
    def test_counter_under_contention_is_exact(self):
        """The classic lost-update check: increments under the write
        side and sums under the read side never tear."""
        lock = RWLock()
        state = {"n": 0}
        writes_per_thread = 200

        def bump():
            for _ in range(writes_per_thread):
                with lock.write_locked():
                    state["n"] = state["n"] + 1

        reads = []

        def scan():
            for _ in range(200):
                with lock.read_locked():
                    reads.append(state["n"])

        threads = [threading.Thread(target=bump) for _ in range(4)]
        threads += [threading.Thread(target=scan) for _ in range(2)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert state["n"] == 4 * writes_per_thread
        assert reads == sorted(reads) or all(
            0 <= value <= 4 * writes_per_thread for value in reads
        )
