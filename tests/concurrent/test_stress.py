"""Sustained mixed-workload stress for the concurrent subsystem.

CI runs this module under ``PYTHONFAULTHANDLER=1`` with a hard job
timeout: a deadlock hangs the job (and faulthandler prints every
thread's stack), a race shows up as a torn read or a lost update.
Locally it finishes in a few seconds.

The invariants checked are the strong ones the subsystem promises:

* **Snapshot consistency** — a reader sees some committed store state,
  never a half-applied Δ (two values updated in one snap always agree).
* **No lost updates** — every write the service accepted is reflected
  in the final store exactly once.
* **Deadline discipline** — timeouts surface as the typed error and
  leave no partial effects behind.
"""

import threading

import pytest

from repro import (
    ConcurrentExecutor,
    Engine,
    QueryTimeoutError,
    ServiceOverloadedError,
)

WRITERS = 3
READERS = 4
WRITES_PER_WRITER = 25


@pytest.fixture
def engine():
    e = Engine()
    e.load_document("doc", "<t><n>0</n><sum>0</sum></t>")
    return e


class TestMixedWorkloadStress:
    def test_mixed_readers_and_writers(self, engine):
        """The core torture test: concurrent committed increments of a
        pair of mutually-redundant counters, with readers verifying the
        pair never disagrees."""
        # Each write bumps <n> by 1 and <sum> by 2 in ONE snap.
        write = (
            "snap { replace value of { $doc/t/n } "
            "with { data($doc/t/n) + 1 }, "
            "replace value of { $doc/t/sum } "
            "with { data($doc/t/sum) + 2 } }"
        )
        read = "concat(data($doc/t/n), ':', data($doc/t/sum))"
        torn = []
        write_errors = []
        stop = threading.Event()

        with ConcurrentExecutor(
            engine, workers=4, queue_size=256
        ) as executor:

            def writer(index):
                for _ in range(WRITES_PER_WRITER):
                    try:
                        executor.execute(write)
                    except Exception as exc:  # noqa: BLE001
                        write_errors.append(exc)

            def reader():
                while not stop.is_set():
                    value = executor.execute(read).first_value()
                    left, _, right = value.partition(":")
                    if int(right) != 2 * int(left):
                        torn.append(value)

            threads = [
                threading.Thread(target=writer, args=(index,))
                for index in range(WRITERS)
            ] + [threading.Thread(target=reader) for _ in range(READERS)]
            for thread in threads[:WRITERS]:
                thread.start()
            for thread in threads[WRITERS:]:
                thread.start()
            for thread in threads[:WRITERS]:
                thread.join()
            stop.set()
            for thread in threads[WRITERS:]:
                thread.join()

            assert write_errors == []
            assert torn == []
            expected = WRITERS * WRITES_PER_WRITER
            final = executor.execute(
                "concat(data($doc/t/n), ':', data($doc/t/sum))"
            ).first_value()
            assert final == f"{expected}:{2 * expected}"

    def test_insert_storm_loses_nothing(self, engine):
        """Structural inserts from many threads: the final child count
        equals the number of accepted writes."""
        accepted = []
        lock = threading.Lock()

        with ConcurrentExecutor(
            engine, workers=4, queue_size=512
        ) as executor:

            def writer(index):
                for round_ in range(WRITES_PER_WRITER):
                    try:
                        executor.execute(
                            "insert { <e/> } into { $doc/t }"
                        )
                    except ServiceOverloadedError:
                        continue
                    with lock:
                        accepted.append((index, round_))

            threads = [
                threading.Thread(target=writer, args=(index,))
                for index in range(WRITERS)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()

            count = executor.execute("count($doc/t/e)").first_value()
            assert count == len(accepted)

    def test_timeouts_under_load_leave_no_debris(self, engine):
        """Doomed slow writes race healthy fast writes; the slow ones
        must all time out cleanly and contribute nothing."""
        outcomes = {"timeout": 0, "ok": 0}
        lock = threading.Lock()

        with ConcurrentExecutor(
            engine, workers=4, queue_size=256
        ) as executor:

            def doomed():
                for _ in range(5):
                    try:
                        executor.execute(
                            "for $i in 1 to 200000 return "
                            "insert { <bad/> } into { $doc/t }",
                            timeout_ms=15,
                        )
                    except QueryTimeoutError:
                        with lock:
                            outcomes["timeout"] += 1

            def healthy():
                for _ in range(10):
                    executor.execute("insert { <good/> } into { $doc/t }")
                    with lock:
                        outcomes["ok"] += 1

            threads = [threading.Thread(target=doomed) for _ in range(2)]
            threads += [threading.Thread(target=healthy) for _ in range(2)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()

            assert outcomes["timeout"] == 10
            assert (
                executor.execute("count($doc/t/bad)").first_value() == 0
            )
            assert (
                executor.execute("count($doc/t/good)").first_value()
                == outcomes["ok"]
            )

    def test_snapshot_churn_with_interleaved_binds(self, engine):
        """Alternating reads, writes and direct engine mutation churns
        the snapshot-bundle lifecycle (build/retire/refcount) hard."""
        with ConcurrentExecutor(engine, workers=4) as executor:
            for round_ in range(20):
                futures = [
                    executor.submit("count($doc/t/*)") for _ in range(4)
                ]
                executor.execute("insert { <r/> } into { $doc/t }")
                counts = {f.result(timeout=60).first_value() for f in futures}
                # Readers saw the pre- or post-insert count, nothing else.
                assert counts <= {2 + round_, 3 + round_}
            built = executor.metrics.counter("snapshots_built")
            assert built >= 1
            assert executor.execute(
                "count($doc/t/r)"
            ).first_value() == 20
