"""Timeouts and cancellation: typed errors, atomic discard, clean reuse."""

import pytest

from repro import (
    CancelToken,
    Engine,
    ExecutionOptions,
    QueryCancelledError,
    QueryTimeoutError,
)
from repro.concurrent.control import ExecutionControl

SLOW_QUERY = (
    "for $a in 1 to 100, $b in 1 to 100, $c in 1 to 100 "
    "return $a * $b * $c"
)


class TestExecutionControl:
    def test_from_options_is_none_without_timeout_or_token(self):
        assert ExecutionControl.from_options(None) is None
        assert ExecutionControl.from_options(ExecutionOptions()) is None

    def test_from_options_builds_when_configured(self):
        control = ExecutionControl.from_options(
            ExecutionOptions(timeout_ms=50)
        )
        assert control is not None
        assert control.timeout_ms == 50
        control.check()  # fresh deadline: no raise

    def test_check_raises_after_deadline(self):
        clock = iter([0.0, 10.0]).__next__
        control = ExecutionControl(timeout_ms=100, clock=clock)
        with pytest.raises(QueryTimeoutError) as info:
            control.check()
        assert info.value.timeout_ms == 100

    def test_check_raises_when_token_fires(self):
        token = CancelToken()
        control = ExecutionControl(token=token)
        control.check()
        token.cancel()
        with pytest.raises(QueryCancelledError):
            control.check()

    def test_expired_and_remaining(self):
        times = [0.0]
        control = ExecutionControl(timeout_ms=100, clock=lambda: times[0])
        assert not control.expired()
        assert control.remaining_ms() == pytest.approx(100.0)
        times[0] = 1.0
        assert control.expired()
        assert control.remaining_ms() == 0.0

    def test_token_is_one_shot_and_reports_state(self):
        token = CancelToken()
        assert not token.cancelled()
        token.cancel()
        token.cancel()
        assert token.cancelled()


class TestOptionsValidation:
    def test_nonpositive_timeout_rejected(self):
        with pytest.raises(ValueError):
            ExecutionOptions(timeout_ms=0)
        with pytest.raises(ValueError):
            ExecutionOptions(timeout_ms=-5)


class TestEngineTimeout:
    def test_slow_query_times_out_with_typed_error(self):
        engine = Engine()
        with pytest.raises(QueryTimeoutError) as info:
            engine.execute(SLOW_QUERY, timeout_ms=10)
        assert info.value.timeout_ms == 10
        assert "REPR0001" in str(info.value)

    def test_engine_usable_after_timeout(self):
        engine = Engine()
        with pytest.raises(QueryTimeoutError):
            engine.execute(SLOW_QUERY, timeout_ms=10)
        assert engine.execute("1 + 1").first_value() == 2

    def test_timed_out_update_leaves_store_unchanged(self):
        """The deadline fires before the implicit snap applies: the
        pending Δ is discarded, never half-applied."""
        engine = Engine()
        engine.load_document("doc", "<t/>")
        query = (
            "for $i in 1 to 200000 "
            "return insert { <n/> } into { $doc/t }"
        )
        with pytest.raises(QueryTimeoutError):
            engine.execute(query, timeout_ms=20)
        assert engine.execute("count($doc/t/n)").first_value() == 0

    def test_explicit_snap_discarded_on_timeout(self):
        engine = Engine()
        engine.load_document("doc", "<t/>")
        query = (
            "snap { for $i in 1 to 200000 "
            "return insert { <n/> } into { $doc/t } }"
        )
        with pytest.raises(QueryTimeoutError):
            engine.execute(query, timeout_ms=20)
        assert engine.execute("count($doc/t/n)").first_value() == 0

    def test_generous_timeout_does_not_fire(self):
        engine = Engine()
        result = engine.execute(
            "sum(for $i in 1 to 100 return $i)", timeout_ms=60_000
        )
        assert result.first_value() == 5050

    def test_timeout_applies_on_optimized_path(self):
        engine = Engine()
        with pytest.raises(QueryTimeoutError):
            engine.execute(SLOW_QUERY, optimize=True, timeout_ms=10)
        assert (
            engine.execute("2 * 3", optimize=True).first_value() == 6
        )


class TestEngineCancellation:
    def test_prefired_token_cancels_immediately(self):
        engine = Engine()
        token = CancelToken()
        token.cancel()
        with pytest.raises(QueryCancelledError) as info:
            engine.execute(SLOW_QUERY, cancel=token)
        assert "REPR0002" in str(info.value)

    def test_cancelled_update_leaves_store_unchanged(self):
        engine = Engine()
        engine.load_document("doc", "<t/>")
        token = CancelToken()
        token.cancel()
        with pytest.raises(QueryCancelledError):
            engine.execute(
                "for $i in 1 to 50 return insert { <n/> } into { $doc/t }",
                cancel=token,
            )
        assert engine.execute("count($doc/t/n)").first_value() == 0

    def test_unfired_token_is_harmless(self):
        engine = Engine()
        token = CancelToken()
        assert engine.execute("1 + 1", cancel=token).first_value() == 2


class TestPreparedQueryControl:
    def test_prepared_execute_honours_timeout_option(self):
        engine = Engine()
        prepared = engine.prepare(SLOW_QUERY)
        with pytest.raises(QueryTimeoutError):
            prepared.execute(options=ExecutionOptions(timeout_ms=10))
        # The control is cleared afterwards: a plain execute succeeds.
        fast = engine.prepare("7 * 6")
        assert fast.execute().first_value() == 42
