"""FaultSchedule: seeded generation, serialization, minimizer steps."""

from __future__ import annotations

import pytest

from repro.sim.faults import (
    ALL_KINDS,
    FaultEvent,
    FaultSchedule,
    KILL_PRIMARY,
    PARTITION_REPLICA,
)


class TestGeneration:
    def test_same_seed_same_schedule(self):
        a = FaultSchedule.generate(42, replicas=2, horizon_s=8.0)
        b = FaultSchedule.generate(42, replicas=2, horizon_s=8.0)
        assert a.to_json() == b.to_json()

    def test_different_seeds_differ(self):
        schedules = {
            FaultSchedule.generate(seed, replicas=2, horizon_s=8.0).to_json()
            for seed in range(25)
        }
        assert len(schedules) > 20

    def test_events_land_inside_the_horizon(self):
        for seed in range(20):
            schedule = FaultSchedule.generate(
                seed, replicas=3, horizon_s=8.0
            )
            assert 2 <= len(schedule) <= 5
            for event in schedule:
                assert 0.5 <= event.at <= 8.0 * 0.8
                assert event.kind in ALL_KINDS
                if "replica" in event.args:
                    assert 0 <= event.args["replica"] < 3

    def test_schedule_is_time_sorted(self):
        schedule = FaultSchedule.generate(7, replicas=2, horizon_s=8.0)
        times = [event.at for event in schedule]
        assert times == sorted(times)


class TestSerialization:
    def test_json_round_trip(self):
        schedule = FaultSchedule.generate(3, replicas=2, horizon_s=8.0)
        again = FaultSchedule.from_json(schedule.to_json())
        assert again.to_json() == schedule.to_json()

    def test_unknown_kind_is_rejected(self):
        with pytest.raises(ValueError):
            FaultEvent.from_dict({"at": 1.0, "kind": "meteor-strike"})
        with pytest.raises(ValueError):
            FaultSchedule.from_json('{"not": "a list"}')


class TestWithout:
    def test_without_removes_exactly_one_event(self):
        schedule = FaultSchedule(
            [
                FaultEvent(at=1.0, kind=KILL_PRIMARY),
                FaultEvent(
                    at=2.0,
                    kind=PARTITION_REPLICA,
                    args={"replica": 0, "duration_s": 1.0},
                ),
            ]
        )
        shrunk = schedule.without(0)
        assert len(shrunk) == 1
        assert shrunk.events[0].kind == PARTITION_REPLICA
        assert len(schedule) == 2  # original untouched
