"""Locks the ``repro.sim`` public surface.

Mirrors ``tests/api/test_public_surface.py``: the simulator is driven
by CI sweeps and by one-line repro commands pasted from failure logs,
so its import surface is a compatibility contract — a name change here
breaks every recorded repro.  Changing this set is an API break and
should be deliberate.
"""

from __future__ import annotations

import repro.sim


EXPECTED_ALL = {
    "CONVERGENCE",
    "DURABILITY",
    "FENCING",
    "STALENESS",
    "Event",
    "EventScheduler",
    "FaultEvent",
    "FaultSchedule",
    "MinimizeResult",
    "Oracle",
    "SimConfig",
    "SimNetwork",
    "SimReport",
    "Simulation",
    "TraceRecorder",
    "Violation",
    "minimize",
    "run_seed",
}


class TestSimSurface:
    def test_all_is_exactly_the_documented_surface(self):
        assert set(repro.sim.__all__) == EXPECTED_ALL

    def test_every_all_name_resolves(self):
        for name in repro.sim.__all__:
            assert getattr(repro.sim, name, None) is not None, name

    def test_top_level_surface_is_untouched(self):
        # The simulator is a test harness, not an engine feature: it
        # must not leak into ``import repro``.
        import repro

        assert "sim" not in repro.__all__
        assert not any(name.startswith("Sim") for name in repro.__all__)
