"""End-to-end simulation: determinism, failover, oracle regressions.

These are the tentpole's acceptance tests:

* the determinism gate — one seed, two runs, byte-identical trace
  digests;
* a pinned fenced failover — a primary kill mid-workload must promote
  a replica, resume writes under the bumped epoch, and pass every
  oracle invariant;
* the known-class regression — reintroducing the skipped-fence bug
  (``skip_fence=True``: the primary appends and checkpoints without
  ``check_fence``) must be *caught* by the oracle, reproducibly;
* the unfenced-checkpoint regression the simulator itself found — a
  deposed primary's forced checkpoint used to repoint the manifest and
  orphan the promoted node's acked writes (seeds 178/194 of the
  original sweep); compaction is fenced now, and the zombie scenario
  must stay clean;
* greedy schedule minimization — a failing multi-fault schedule
  shrinks to the fault that matters and still fails.
"""

from __future__ import annotations

import pytest

from repro.sim.cluster import SimConfig, Simulation, run_seed
from repro.sim.faults import (
    FaultEvent,
    FaultSchedule,
    FORCE_CHECKPOINT,
    KILL_PRIMARY,
    KILL_REPLICA,
    PRESUME_PRIMARY_DEAD,
    SLOW_FSYNC_WINDOW,
)
from repro.sim.minimize import minimize

pytestmark = pytest.mark.slow

FAST = SimConfig(horizon_s=3.0)
FAST_BUGGY = SimConfig(horizon_s=3.0, skip_fence=True)

ZOMBIE = FaultSchedule([FaultEvent(at=1.0, kind=PRESUME_PRIMARY_DEAD)])


class TestDeterminism:
    def test_same_seed_replays_byte_for_byte(self):
        first = run_seed(11, config=FAST)
        again = run_seed(11, config=FAST)
        assert first.ok, first.violations
        assert first.digest == again.digest
        assert first.acked_writes == again.acked_writes
        assert first.fingerprint == again.fingerprint
        assert first.watermark == again.watermark

    def test_different_seeds_interleave_differently(self):
        digests = {run_seed(seed, config=FAST).digest for seed in (1, 2, 3)}
        assert len(digests) == 3

    def test_failure_summary_is_a_one_line_repro(self):
        report = run_seed(5, config=FAST_BUGGY, schedule=ZOMBIE)
        assert not report.ok
        assert "python -m repro.sim --seed 5" in report.summary_line()


class TestFencedFailover:
    def test_primary_kill_promotes_and_writes_resume_fenced(self, tmp_path):
        schedule = FaultSchedule(
            [FaultEvent(at=1.0, kind=KILL_PRIMARY)]
        )
        sim = Simulation(
            21, str(tmp_path / "d"), config=FAST, schedule=schedule
        )
        report = sim.run()
        assert report.ok, report.violations
        assert report.failovers >= 1
        assert report.converged
        # Writes resumed on the promoted node, under a bumped epoch.
        promoted_acks = [
            details
            for _, kind, details in sim.trace.events
            if kind == "write-ack"
            and details["target"].startswith("replica-")
        ]
        assert promoted_acks
        assert all(d["epoch"] >= 1 for d in promoted_acks)
        # And all of it survived into single-process recovery.
        assert report.watermark == max(
            seq for seq, _, _, _ in sim.oracle.acked
        )

    def test_zombie_primary_is_fenced_off(self):
        # Supervisor *believes* the primary died; the process lives.
        # Stale clients keep writing to it.  With fencing on, those
        # writes become typed refusals after the promotion — and every
        # invariant holds.
        report = run_seed(5, config=FAST, schedule=ZOMBIE)
        assert report.ok, report.violations
        assert report.failovers >= 1
        # The fence did real work: stale-epoch refusals were served.
        assert report.refused_writes.get("REPR0009", 0) >= 1


class TestKnownClassRegressions:
    def test_skipped_fence_bug_is_caught_and_replayable(self):
        # The known bug class: appending (and compacting) without
        # check_fence.  The zombie-primary schedule turns that into a
        # split-brain the oracle must flag.
        report = run_seed(5, config=FAST_BUGGY, schedule=ZOMBIE)
        assert not report.ok
        assert any("[fencing-safety]" in v for v in report.violations)
        # The failing seed replays byte-for-byte: same digest, same
        # violations.
        again = run_seed(5, config=FAST_BUGGY, schedule=ZOMBIE)
        assert again.digest == report.digest
        assert again.violations == report.violations

    def test_zombie_checkpoint_cannot_orphan_acked_writes(self):
        # Found by the simulator (sweep seeds 178/194): a deposed
        # primary's forced checkpoint rewrote the manifest from its
        # stale state, orphaning everything the promoted node had
        # acked.  Compaction is fenced now; the schedule that used to
        # lose acked writes must pass every invariant.
        schedule = FaultSchedule(
            [
                FaultEvent(at=1.0, kind=PRESUME_PRIMARY_DEAD),
                FaultEvent(at=2.0, kind=FORCE_CHECKPOINT),
            ]
        )
        report = run_seed(9, config=FAST, schedule=schedule)
        assert report.ok, report.violations
        assert report.failovers >= 1

    def test_unfenced_zombie_checkpoint_is_caught(self):
        # ...and with the fence knocked out, the same schedule is a
        # durability loss the oracle reports.
        schedule = FaultSchedule(
            [
                FaultEvent(at=1.0, kind=PRESUME_PRIMARY_DEAD),
                FaultEvent(at=2.0, kind=FORCE_CHECKPOINT),
            ]
        )
        report = run_seed(9, config=FAST_BUGGY, schedule=schedule)
        assert not report.ok


class TestMinimizer:
    def test_greedy_minimize_keeps_only_the_fault_that_matters(self):
        schedule = FaultSchedule(
            [
                FaultEvent(at=1.0, kind=PRESUME_PRIMARY_DEAD),
                FaultEvent(at=1.5, kind=KILL_REPLICA, args={"replica": 0}),
                FaultEvent(
                    at=2.0,
                    kind=SLOW_FSYNC_WINDOW,
                    args={"delay_s": 0.05, "duration_s": 0.5},
                ),
            ]
        )
        result = minimize(5, config=FAST_BUGGY, schedule=schedule)
        assert result.removed >= 1
        assert len(result.schedule) < 3
        assert not result.report.ok
        # The surviving schedule still contains the seed fault.
        kinds = {event.kind for event in result.schedule}
        assert PRESUME_PRIMARY_DEAD in kinds

    def test_minimize_refuses_a_passing_seed(self):
        with pytest.raises(ValueError):
            minimize(1, config=FAST, schedule=FaultSchedule([]))
