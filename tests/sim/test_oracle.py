"""Oracle unit tests: each invariant fires on its witness pattern."""

from __future__ import annotations

from repro.sim.oracle import (
    CONVERGENCE,
    DURABILITY,
    FENCING,
    STALENESS,
    Oracle,
)


def tags(oracle: Oracle) -> list[str]:
    return [v.invariant for v in oracle.violations]


class TestFencing:
    def test_single_writer_per_epoch_is_clean(self):
        oracle = Oracle()
        oracle.record_append("primary", 0, 1, 0.1)
        oracle.record_append("primary", 0, 2, 0.2)
        oracle.record_promotion(1, 0.3, "replica-0")
        oracle.record_append("replica-0", 1, 3, 0.4)
        assert oracle.ok

    def test_two_writers_in_one_epoch(self):
        oracle = Oracle()
        oracle.record_append("primary", 0, 1, 0.1)
        oracle.record_append("replica-0", 0, 2, 0.2)
        assert tags(oracle) == [FENCING]

    def test_append_under_deposed_epoch(self):
        oracle = Oracle()
        oracle.record_append("primary", 0, 1, 0.1)
        oracle.record_promotion(1, 0.2, "replica-0")
        oracle.record_append("primary", 0, 2, 0.3)
        assert FENCING in tags(oracle)

    def test_sequence_reuse_is_flagged(self):
        oracle = Oracle()
        oracle.record_append("primary", 0, 5, 0.1)
        oracle.record_promotion(1, 0.2, "replica-0")
        oracle.record_append("replica-0", 1, 5, 0.3)  # 5 again
        assert FENCING in tags(oracle)

    def test_promotion_claims_epoch_authorship(self):
        oracle = Oracle()
        oracle.record_promotion(1, 0.1, "replica-0")
        oracle.record_append("replica-1", 1, 1, 0.2)
        assert tags(oracle) == [FENCING]


class TestStaleness:
    def test_read_within_bound_is_clean(self):
        oracle = Oracle()
        oracle.record_read(
            backend="replica-0", bound=2, watermark=10, applied_seq=8,
            vtime=0.1,
        )
        assert oracle.ok
        assert oracle.reads_checked == 1

    def test_read_past_bound_is_flagged(self):
        oracle = Oracle()
        oracle.record_read(
            backend="replica-0", bound=2, watermark=10, applied_seq=7,
            vtime=0.1,
        )
        assert tags(oracle) == [STALENESS]

    def test_unbounded_reads_are_not_judged(self):
        oracle = Oracle()
        oracle.record_read(
            backend="replica-0", bound=None, watermark=10, applied_seq=0,
            vtime=0.1,
        )
        oracle.record_read(
            backend="replica-0", bound=1, watermark=None, applied_seq=0,
            vtime=0.2,
        )
        assert oracle.ok


class TestDurability:
    def test_recovery_covering_every_ack_is_clean(self):
        oracle = Oracle()
        oracle.record_ack(3, 0, 0.1, inserts=3)
        oracle.check_durability(5, 4, attempted_inserts=5)
        assert oracle.ok

    def test_lost_acked_write_is_flagged(self):
        oracle = Oracle()
        oracle.record_ack(7, 0, 0.1, inserts=1)
        oracle.check_durability(5, 1, attempted_inserts=1)
        assert tags(oracle) == [DURABILITY]

    def test_lost_acked_content_is_flagged(self):
        # Watermark covers the seq but the *content* went missing.
        oracle = Oracle()
        oracle.record_ack(3, 0, 0.1, inserts=3)
        oracle.check_durability(3, 2, attempted_inserts=3)
        assert tags(oracle) == [DURABILITY]

    def test_phantom_replay_is_flagged(self):
        oracle = Oracle()
        oracle.record_ack(3, 0, 0.1, inserts=1)
        oracle.check_durability(3, 9, attempted_inserts=4)
        assert tags(oracle) == [DURABILITY]

    def test_failed_recovery_with_acks_is_flagged(self):
        oracle = Oracle()
        oracle.record_ack(1, 0, 0.1, inserts=1)
        oracle.check_durability(None, None, attempted_inserts=1)
        assert tags(oracle) == [DURABILITY]

    def test_no_acks_means_nothing_to_judge(self):
        oracle = Oracle()
        oracle.check_durability(None, None, attempted_inserts=0)
        assert oracle.ok


class TestConvergence:
    def test_agreement_is_clean(self):
        oracle = Oracle()
        oracle.check_convergence("f00d", {"replica-0": "f00d"})
        assert oracle.ok

    def test_divergent_live_node_is_flagged(self):
        oracle = Oracle()
        oracle.check_convergence(
            "f00d", {"replica-0": "f00d", "replica-1": "dead"}
        )
        assert tags(oracle) == [CONVERGENCE]

    def test_no_recovery_with_live_nodes_is_flagged(self):
        oracle = Oracle()
        oracle.check_convergence(None, {"replica-0": "f00d"})
        assert tags(oracle) == [CONVERGENCE]

    def test_violation_str_carries_the_invariant_tag(self):
        oracle = Oracle()
        oracle.record_violation(CONVERGENCE, "fleet failed to quiesce")
        assert str(oracle.violations[0]).startswith("[convergence]")
