"""EventScheduler: ordering, seeded tie-breaks, cancellation, time."""

from __future__ import annotations

import pytest

from repro.sim.scheduler import EventScheduler


class TestOrdering:
    def test_events_run_in_virtual_time_order(self):
        scheduler = EventScheduler(1)
        ran: list[str] = []
        scheduler.call_at(0.3, lambda: ran.append("c"), label="c")
        scheduler.call_at(0.1, lambda: ran.append("a"), label="a")
        scheduler.call_at(0.2, lambda: ran.append("b"), label="b")
        scheduler.run()
        assert ran == ["a", "b", "c"]

    def test_clock_advances_to_each_event_then_to_until(self):
        scheduler = EventScheduler(1)
        seen: list[float] = []
        scheduler.call_at(0.5, lambda: seen.append(scheduler.clock.now()))
        scheduler.run(until=2.0)
        assert seen == [0.5]
        assert scheduler.clock.now() == 2.0

    def test_until_leaves_later_events_queued(self):
        scheduler = EventScheduler(1)
        ran: list[str] = []
        scheduler.call_at(1.0, lambda: ran.append("early"))
        scheduler.call_at(5.0, lambda: ran.append("late"))
        scheduler.run(until=2.0)
        assert ran == ["early"]
        assert len(scheduler) == 1
        scheduler.run()
        assert ran == ["early", "late"]

    def test_past_deadline_clamps_to_now(self):
        scheduler = EventScheduler(1)
        scheduler.call_at(1.0, lambda: None)
        scheduler.run()
        event = scheduler.call_at(0.25, lambda: None)  # already past
        assert event.when == scheduler.clock.now()

    def test_negative_delay_is_rejected(self):
        scheduler = EventScheduler(1)
        with pytest.raises(ValueError):
            scheduler.call_after(-0.1, lambda: None)


class TestDeterminism:
    @staticmethod
    def _simultaneous_run(seed: int) -> list[str]:
        scheduler = EventScheduler(seed)
        ran: list[str] = []
        for name in ("a", "b", "c", "d", "e"):
            scheduler.call_at(
                1.0, lambda n=name: ran.append(n), label=name
            )
        scheduler.run()
        return ran

    def test_same_seed_breaks_ties_identically(self):
        assert self._simultaneous_run(7) == self._simultaneous_run(7)

    def test_tie_break_is_owned_by_the_seed(self):
        # Across many seeds the simultaneous-event order must vary —
        # if it never does, insertion order is leaking through.
        orders = {tuple(self._simultaneous_run(seed)) for seed in range(20)}
        assert len(orders) > 1


class TestCancel:
    def test_cancelled_event_is_skipped(self):
        scheduler = EventScheduler(1)
        ran: list[str] = []
        keep = scheduler.call_at(0.1, lambda: ran.append("keep"))
        drop = scheduler.call_at(0.2, lambda: ran.append("drop"))
        drop.cancel()
        scheduler.run()
        assert ran == ["keep"]
        assert keep.when == 0.1

    def test_max_events_backstop(self):
        scheduler = EventScheduler(1)

        def reschedule() -> None:
            scheduler.call_after(0.01, reschedule)

        scheduler.call_after(0.01, reschedule)
        ran = scheduler.run(max_events=25)
        assert ran == 25
