"""SimChannel + SimNetwork: framing, FIFO links, loss, partitions."""

from __future__ import annotations

import pytest

from repro.cluster.protocol import (
    ChannelClosed,
    SimChannel,
    decode_message,
    encode_message,
)
from repro.sim.net import SimNetwork
from repro.sim.scheduler import EventScheduler


class DirectTransport:
    """Delivers every frame immediately (channel-layer unit tests)."""

    def transmit(self, source: SimChannel, blob: bytes) -> None:
        assert source.peer is not None
        source.peer.deliver(blob)


class TestSimChannel:
    def test_round_trip_preserves_the_message(self):
        a, b = SimChannel.pair(DirectTransport(), "a", "b")
        a.send({"t": "hello", "n": 42})
        assert b.recv() == {"t": "hello", "n": 42}

    def test_callback_delivery(self):
        a, b = SimChannel.pair(DirectTransport(), "a", "b")
        got: list[dict] = []
        b.on_message = got.append
        a.send({"t": "x"})
        assert got == [{"t": "x"}]
        assert b.pending() == 0

    def test_send_on_closed_endpoint_raises(self):
        a, b = SimChannel.pair(DirectTransport(), "a", "b")
        b.close()
        with pytest.raises(ChannelClosed):
            a.send({"t": "x"})
        with pytest.raises(ChannelClosed):
            b.send({"t": "y"})

    def test_recv_on_empty_closed_channel_raises(self):
        a, b = SimChannel.pair(DirectTransport(), "a", "b")
        a.close()
        with pytest.raises(ChannelClosed):
            a.recv()

    def test_garbled_frame_closes_the_endpoint(self):
        _, b = SimChannel.pair(DirectTransport(), "a", "b")
        blob = bytearray(encode_message({"t": "x"}))
        blob[-1] ^= 0xFF  # corrupt the payload
        b.deliver(bytes(blob))
        assert b.closed

    def test_decode_rejects_header_and_payload_damage(self):
        blob = encode_message({"t": "x", "k": [1, 2]})
        assert decode_message(blob) == {"t": "x", "k": [1, 2]}
        with pytest.raises(ChannelClosed):
            decode_message(blob[:10])  # short header
        damaged = bytearray(blob)
        damaged[0] ^= 0xFF  # magic
        with pytest.raises(ChannelClosed):
            decode_message(bytes(damaged))
        damaged = bytearray(blob)
        damaged[-1] ^= 0xFF  # payload CRC mismatch
        with pytest.raises(ChannelClosed):
            decode_message(bytes(damaged))


def network(seed: int = 1, **kwargs) -> tuple[EventScheduler, SimNetwork]:
    scheduler = EventScheduler(seed)
    return scheduler, SimNetwork(scheduler, seed, **kwargs)


class TestSimNetwork:
    def test_one_link_is_fifo_despite_random_delays(self):
        scheduler, net = network(3, min_delay_s=0.001, max_delay_s=0.5)
        a, b = net.channel_pair("a", "b")
        got: list[int] = []
        b.on_message = lambda m: got.append(m["n"])
        for n in range(20):
            a.send({"n": n})
        scheduler.run()
        assert got == list(range(20))

    def test_partition_drops_silently_and_heals(self):
        scheduler, net = network(3)
        a, b = net.channel_pair("a", "b")
        got: list[int] = []
        b.on_message = lambda m: got.append(m["n"])
        net.isolate("b")
        a.send({"n": 1})  # no error: a blackhole, not a refusal
        scheduler.run()
        assert got == []
        assert net.dropped == 1
        net.heal("b")
        a.send({"n": 2})
        scheduler.run()
        assert got == [2]

    def test_pairwise_partition_cuts_only_that_link(self):
        scheduler, net = network(3)
        a, b = net.channel_pair("a", "b")
        c, d = net.channel_pair("c", "d")
        got: list[str] = []
        b.on_message = lambda m: got.append("b")
        d.on_message = lambda m: got.append("d")
        net.partition("a", "b")
        a.send({})
        c.send({})
        scheduler.run()
        assert got == ["d"]
        net.heal_all()
        a.send({})
        scheduler.run()
        assert got == ["d", "b"]

    def test_frames_in_flight_to_a_dead_endpoint_are_dropped(self):
        scheduler, net = network(3)
        a, b = net.channel_pair("a", "b")
        got: list[dict] = []
        b.on_message = got.append
        a.send({})  # in flight...
        b.close()  # ...receiver dies before delivery
        scheduler.run()
        assert got == []

    def test_loss_draw_keeps_the_stream_aligned_across_partitions(self):
        # The delay stream must not depend on whether a partition was
        # active: a run where some frames were cut must give the SAME
        # delays to the surviving frames as a run where none were.
        def delivery_times(cut: bool) -> dict[int, float]:
            scheduler, net = network(9, loss=0.0)
            times: dict[int, float] = {}
            # Three independent links so FIFO clamping cannot couple
            # the delivery times — each frame's time IS its delay draw.
            senders = []
            for name in ("ab", "cd", "ef"):
                src, dst = net.channel_pair(name + ":s", name + ":r")
                dst.on_message = lambda m: times.__setitem__(
                    m["n"], scheduler.clock.now()
                )
                senders.append(src)
            senders[0].send({"n": 0})
            if cut:
                net.isolate("cd:r")
            senders[1].send({"n": 1})  # dropped in the cut run
            if cut:
                net.heal("cd:r")
            senders[2].send({"n": 2})
            scheduler.run()
            return times

        clean = delivery_times(cut=False)
        cut = delivery_times(cut=True)
        assert set(clean) == {0, 1, 2}
        assert cut == {0: clean[0], 2: clean[2]}

    def test_loss_probability_validation(self):
        scheduler = EventScheduler(1)
        with pytest.raises(ValueError):
            SimNetwork(scheduler, 1, loss=1.0)
        with pytest.raises(ValueError):
            SimNetwork(scheduler, 1, min_delay_s=0.5, max_delay_s=0.1)
