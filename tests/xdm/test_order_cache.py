"""Scoped order-key cache invalidation.

``Store._touch`` drops cached document-order keys only for the trees a
mutation actually restructures (computed *before* the mutation moves
nodes between trees); unrelated trees keep their keys warm.  These tests
pin the scoping behaviour and the bookkeeping around it; staleness itself
is policed by ``check_invariants`` (every cached key must equal a fresh
recomputation), which the shared property suites call after every
mutation sequence.
"""

from repro.xdm.store import Store


def _build_tree(store: Store, width: int = 4) -> tuple[int, list[int]]:
    """A root element with *width* children; returns (root, children)."""
    root = store.create_element("root")
    children = []
    for i in range(width):
        child = store.create_element(f"c{i}")
        store.append_child(root, child)
        children.append(child)
    return root, children


def _warm(store: Store, nids: list[int]) -> None:
    for nid in nids:
        store.order_key(nid)


def _cached(store: Store, nid: int) -> bool:
    return nid in store._order_cache


class TestScopedInvalidation:
    def test_mutating_one_tree_preserves_the_other(self):
        store = Store()
        root_a, kids_a = _build_tree(store)
        root_b, kids_b = _build_tree(store)
        _warm(store, kids_a + kids_b)
        # Mid-list insert restructures tree B only.
        newcomer = store.create_element("new")
        store.insert_child_at(root_b, 0, newcomer)
        assert all(_cached(store, nid) for nid in kids_a)
        assert not any(_cached(store, nid) for nid in kids_b)
        store.check_invariants()

    def test_append_as_last_keeps_sibling_keys(self):
        """Appending never renumbers existing siblings, so only the
        attached subtree needs (no) invalidation — existing keys stay."""
        store = Store()
        root, kids = _build_tree(store)
        _warm(store, kids)
        store.append_child(root, store.create_element("tail"))
        assert all(_cached(store, nid) for nid in kids)
        store.check_invariants()

    def test_detach_invalidates_the_containing_tree(self):
        store = Store()
        root, kids = _build_tree(store)
        _warm(store, kids)
        store.detach(kids[1])
        assert not any(_cached(store, nid) for nid in kids)
        # Keys recompute correctly for both resulting trees.
        assert store.order_key(kids[0]) < store.order_key(kids[2])
        assert store.order_key(kids[1])[0] == kids[1]  # now its own root
        store.check_invariants()

    def test_moving_subtree_between_trees_invalidates_both(self):
        store = Store()
        root_a, kids_a = _build_tree(store)
        root_b, kids_b = _build_tree(store)
        other_root, other_kids = _build_tree(store)
        _warm(store, kids_a + kids_b + other_kids)
        # Detach from A, insert into B: both trees' keys drop (the moved
        # node's pre-mutation root is A; the insert's target tree is B)...
        moved = kids_a[0]
        store.detach(moved)
        store.insert_child_at(root_b, 1, moved)
        assert not any(_cached(store, nid) for nid in kids_a + kids_b)
        # ...while the bystander tree stays warm.
        assert all(_cached(store, nid) for nid in other_kids)
        store.check_invariants()

    def test_set_attribute_keeps_other_trees(self):
        store = Store()
        root_a, kids_a = _build_tree(store)
        root_b, kids_b = _build_tree(store)
        _warm(store, kids_a + kids_b)
        store.set_attribute(kids_b[0], store.create_attribute("k", "v"))
        assert all(_cached(store, nid) for nid in kids_a)
        store.check_invariants()


class TestBookkeeping:
    def test_gc_drops_dead_cache_entries(self):
        store = Store()
        root_a, kids_a = _build_tree(store)
        root_b, kids_b = _build_tree(store)
        _warm(store, kids_a + kids_b)
        reclaimed = store.gc([root_a])
        assert reclaimed > 0
        assert not any(_cached(store, nid) for nid in kids_b)
        assert all(_cached(store, nid) for nid in kids_a)
        store.check_invariants()

    def test_full_wipe_without_arguments(self):
        store = Store()
        root, kids = _build_tree(store)
        _warm(store, kids)
        store._touch()
        assert not store._order_cache
        assert not store._cached_roots
        store.check_invariants()

    def test_cached_roots_index_tracks_cache(self):
        store = Store()
        root, kids = _build_tree(store)
        _warm(store, kids)
        assert set(store._cached_roots) == {root}
        assert store._cached_roots[root] >= set(kids)
        store.check_invariants()

    def test_keys_stay_fresh_across_mutation_burst(self):
        """Interleave queries and mutations; check_invariants recomputes
        every cached key from scratch and must find no staleness."""
        store = Store()
        root, kids = _build_tree(store, width=6)
        for round_ in range(5):
            _warm(store, kids)
            extra = store.create_element(f"x{round_}")
            store.insert_child_at(root, round_ % 3, extra)
            kids.append(extra)
            _warm(store, kids)
            store.check_invariants()
