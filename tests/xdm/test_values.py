"""Unit tests for atomic values, atomization and EBV."""

import math

import pytest

from repro.errors import AtomizationError, CardinalityError, TypeError_
from repro.xdm.nodes import Node
from repro.xdm.store import Store
from repro.xdm.values import (
    XS_DOUBLE,
    XS_INTEGER,
    XS_UNTYPED,
    AtomicValue,
    UntypedAtomic,
    QName,
    atomize,
    atomize_optional,
    atomize_single,
    cast_to_number,
    effective_boolean_value,
    item_string,
    sequence_string,
    single_node,
    singleton,
)


class TestAtomicValue:
    def test_constructors_and_types(self):
        assert AtomicValue.integer(3).type == XS_INTEGER
        assert AtomicValue.double(1.5).type == XS_DOUBLE
        assert UntypedAtomic("x").type == XS_UNTYPED

    def test_equality_is_typed(self):
        assert AtomicValue.integer(1) == AtomicValue.integer(1)
        assert AtomicValue.integer(1) != AtomicValue.string("1")

    def test_hashable(self):
        assert len({AtomicValue.integer(1), AtomicValue.integer(1)}) == 1

    def test_lexical_forms(self):
        assert AtomicValue.boolean(True).lexical() == "true"
        assert AtomicValue.boolean(False).lexical() == "false"
        assert AtomicValue.integer(-7).lexical() == "-7"
        assert AtomicValue.double(3.0).lexical() == "3"
        assert AtomicValue.double(3.25).lexical() == "3.25"
        assert AtomicValue.double(float("nan")).lexical() == "NaN"
        assert AtomicValue.double(float("inf")).lexical() == "INF"
        assert AtomicValue.double(float("-inf")).lexical() == "-INF"


class TestQName:
    def test_parse_prefixed(self):
        q = QName.parse("fn:count")
        assert (q.prefix, q.local) == ("fn", "count")
        assert str(q) == "fn:count"

    def test_parse_unprefixed(self):
        q = QName.parse("item")
        assert q.prefix is None and q.local == "item"


class TestAtomization:
    def test_node_atomizes_to_untyped_string_value(self):
        store = Store()
        e = store.create_element("n")
        store.append_child(e, store.create_text("42"))
        [av] = atomize([Node(store, e)])
        assert av.type == XS_UNTYPED
        assert av.value == "42"

    def test_atomics_pass_through(self):
        av = AtomicValue.integer(5)
        assert atomize([av]) == [av]

    def test_atomize_single_requires_one(self):
        with pytest.raises(AtomizationError):
            atomize_single([])
        with pytest.raises(AtomizationError):
            atomize_single([AtomicValue.integer(1), AtomicValue.integer(2)])

    def test_atomize_optional(self):
        assert atomize_optional([]) is None
        assert atomize_optional([AtomicValue.integer(1)]).value == 1

    def test_singleton_and_single_node(self):
        store = Store()
        node = Node(store, store.create_element("x"))
        assert singleton([node]) is node
        assert single_node([node]) is node
        with pytest.raises(CardinalityError):
            singleton([])
        with pytest.raises(TypeError_):
            single_node([AtomicValue.integer(1)])


class TestEffectiveBooleanValue:
    def test_empty_is_false(self):
        assert effective_boolean_value([]) is False

    def test_node_first_is_true(self):
        store = Store()
        node = Node(store, store.create_element("x"))
        assert effective_boolean_value([node]) is True
        assert effective_boolean_value([node, node]) is True

    def test_boolean(self):
        assert effective_boolean_value([AtomicValue.boolean(True)]) is True
        assert effective_boolean_value([AtomicValue.boolean(False)]) is False

    def test_string_by_emptiness(self):
        assert effective_boolean_value([AtomicValue.string("")]) is False
        assert effective_boolean_value([AtomicValue.string("x")]) is True

    def test_numeric_zero_and_nan_false(self):
        assert effective_boolean_value([AtomicValue.integer(0)]) is False
        assert effective_boolean_value([AtomicValue.double(float("nan"))]) is False
        assert effective_boolean_value([AtomicValue.double(0.5)]) is True

    def test_multiple_atomics_error(self):
        with pytest.raises(TypeError_):
            effective_boolean_value(
                [AtomicValue.integer(1), AtomicValue.integer(2)]
            )


class TestCastToNumber:
    def test_integer_string(self):
        assert cast_to_number(AtomicValue.string("42")).value == 42

    def test_decimal_string(self):
        assert cast_to_number(UntypedAtomic("1.5")).value == 1.5

    def test_untyped_garbage_is_nan(self):
        assert math.isnan(cast_to_number(UntypedAtomic("abc")).value)

    def test_typed_string_garbage_raises(self):
        with pytest.raises(TypeError_):
            cast_to_number(AtomicValue.string("abc"))

    def test_boolean_to_number(self):
        assert cast_to_number(AtomicValue.boolean(True)).value == 1


class TestRendering:
    def test_item_string_of_node(self):
        store = Store()
        e = store.create_element("n")
        store.append_child(e, store.create_text("hello"))
        assert item_string(Node(store, e)) == "hello"

    def test_sequence_string_space_joins(self):
        seq = [AtomicValue.integer(1), AtomicValue.string("two")]
        assert sequence_string(seq) == "1 two"
