"""Unit tests for comparison semantics and document-order utilities."""

import pytest

from repro.errors import TypeError_
from repro.xdm.compare import (
    atomic_equal,
    compare_atomic,
    deep_equal,
    general_compare,
    nodes_in_document_order,
    value_compare,
)
from repro.xdm.nodes import Node
from repro.xdm.store import Store
from repro.xdm.values import AtomicValue, UntypedAtomic
from repro.xmlio import parse_fragment


class TestValueComparison:
    def test_eq_integers(self):
        [r] = value_compare("eq", [AtomicValue.integer(2)], [AtomicValue.integer(2)])
        assert r.value is True

    def test_lt_mixed_numeric(self):
        [r] = value_compare("lt", [AtomicValue.integer(2)], [AtomicValue.double(2.5)])
        assert r.value is True

    def test_empty_operand_propagates(self):
        assert value_compare("eq", [], [AtomicValue.integer(1)]) == []

    def test_multi_item_operand_rejected(self):
        with pytest.raises(TypeError_):
            value_compare(
                "eq",
                [AtomicValue.integer(1), AtomicValue.integer(2)],
                [AtomicValue.integer(1)],
            )

    def test_string_ordering(self):
        [r] = value_compare("ge", [AtomicValue.string("b")], [AtomicValue.string("a")])
        assert r.value is True

    def test_ne(self):
        [r] = value_compare("ne", [AtomicValue.string("a")], [AtomicValue.string("b")])
        assert r.value is True


class TestGeneralComparison:
    def test_existential_equality(self):
        left = [AtomicValue.integer(i) for i in (1, 2, 3)]
        right = [AtomicValue.integer(3), AtomicValue.integer(9)]
        assert general_compare("eq", left, right) is True
        assert general_compare("eq", left, [AtomicValue.integer(9)]) is False

    def test_untyped_vs_numeric_casts_to_double(self):
        assert general_compare("eq", [UntypedAtomic("07")], [AtomicValue.integer(7)])

    def test_untyped_vs_untyped_compares_as_string(self):
        assert not general_compare("eq", [UntypedAtomic("07")], [UntypedAtomic("7")])
        assert general_compare("eq", [UntypedAtomic("7")], [UntypedAtomic("7")])

    def test_untyped_vs_boolean(self):
        assert general_compare(
            "eq", [UntypedAtomic("true")], [AtomicValue.boolean(True)]
        )

    def test_empty_never_matches(self):
        assert general_compare("eq", [], [AtomicValue.integer(1)]) is False

    def test_ne_is_existential_not_negation(self):
        values = [AtomicValue.integer(1), AtomicValue.integer(2)]
        # 1 != 2 holds for some pair, even though 'eq' also holds.
        assert general_compare("ne", values, values) is True

    def test_lt_on_untyped_numbers(self):
        assert general_compare("lt", [UntypedAtomic("9")], [AtomicValue.integer(10)])


class TestAtomicHelpers:
    def test_nan_equals_nothing(self):
        nan = AtomicValue.double(float("nan"))
        assert atomic_equal(nan, nan) is False

    def test_compare_rejects_nan(self):
        nan = AtomicValue.double(float("nan"))
        with pytest.raises(TypeError_):
            compare_atomic(nan, AtomicValue.double(1.0))

    def test_incomparable_types(self):
        with pytest.raises(TypeError_):
            compare_atomic(AtomicValue.boolean(True), AtomicValue.integer(1))


class TestDeepEqual:
    def test_equal_trees(self):
        a = parse_fragment('<a x="1"><b>t</b></a>')
        b = parse_fragment('<a x="1"><b>t</b></a>')
        assert deep_equal([a], [b]) is True

    def test_attribute_order_ignored(self):
        a = parse_fragment('<a x="1" y="2"/>')
        b = parse_fragment('<a y="2" x="1"/>')
        assert deep_equal([a], [b]) is True

    def test_different_text(self):
        a = parse_fragment("<a>1</a>")
        b = parse_fragment("<a>2</a>")
        assert deep_equal([a], [b]) is False

    def test_length_mismatch(self):
        a = parse_fragment("<a/>")
        assert deep_equal([a], [a, a]) is False

    def test_atomics_with_coercion(self):
        assert deep_equal([AtomicValue.integer(1)], [AtomicValue.double(1.0)])

    def test_comments_ignored_in_elements(self):
        a = parse_fragment("<a><!--x--><b/></a>")
        b = parse_fragment("<a><b/><!--y--></a>")
        assert deep_equal([a], [b]) is True


class TestDocumentOrderHelper:
    def test_sorts_and_dedupes(self):
        root = parse_fragment("<a><b/><c/></a>")
        b, c = root.children
        result = nodes_in_document_order([c, b, c, root])
        assert result == [root, b, c]

    def test_empty(self):
        assert nodes_in_document_order([]) == []

    def test_mixed_stores_rejected(self):
        a = parse_fragment("<a/>")
        b = parse_fragment("<b/>")  # different store
        with pytest.raises(TypeError_):
            nodes_in_document_order([a, b])
