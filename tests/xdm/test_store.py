"""Unit tests for the XDM node store (paper Section 3.2)."""

import pytest

from repro.errors import StoreError, UpdateApplicationError
from repro.xdm.store import NodeKind, Store


@pytest.fixture
def store() -> Store:
    return Store()


def build_tree(store: Store) -> dict[str, int]:
    """<a x="1"><b>text</b><c/></a> plus a free-standing <free/>."""
    a = store.create_element("a")
    b = store.create_element("b")
    c = store.create_element("c")
    t = store.create_text("text")
    x = store.create_attribute("x", "1")
    free = store.create_element("free")
    store.append_child(a, b)
    store.append_child(b, t)
    store.append_child(a, c)
    store.set_attribute(a, x)
    return {"a": a, "b": b, "c": c, "t": t, "x": x, "free": free}


class TestConstructorsAndAccessors:
    def test_element_kind_and_name(self, store):
        nid = store.create_element("item")
        assert store.kind(nid) is NodeKind.ELEMENT
        assert store.name(nid) == "item"
        assert store.parent(nid) is None
        assert store.children(nid) == ()

    def test_empty_element_name_rejected(self, store):
        with pytest.raises(StoreError):
            store.create_element("")

    def test_attribute_value(self, store):
        nid = store.create_attribute("id", "42")
        assert store.kind(nid) is NodeKind.ATTRIBUTE
        assert store.value(nid) == "42"

    def test_text_comment_pi(self, store):
        t = store.create_text("hi")
        c = store.create_comment("note")
        p = store.create_processing_instruction("target", "data")
        assert store.kind(t) is NodeKind.TEXT
        assert store.kind(c) is NodeKind.COMMENT
        assert store.kind(p) is NodeKind.PROCESSING_INSTRUCTION
        assert store.name(p) == "target"

    def test_unknown_node_id(self, store):
        with pytest.raises(StoreError):
            store.kind(999)

    def test_string_value_concatenates_descendant_text(self, store):
        ids = build_tree(store)
        extra = store.create_text("-more")
        store.append_child(ids["c"], extra)
        assert store.string_value(ids["a"]) == "text-more"
        assert store.string_value(ids["x"]) == "1"

    def test_attribute_named(self, store):
        ids = build_tree(store)
        assert store.attribute_named(ids["a"], "x") == ids["x"]
        assert store.attribute_named(ids["a"], "nope") is None

    def test_root_and_ancestors(self, store):
        ids = build_tree(store)
        assert store.root(ids["t"]) == ids["a"]
        assert list(store.ancestors(ids["t"])) == [ids["b"], ids["a"]]

    def test_descendants_in_document_order(self, store):
        ids = build_tree(store)
        assert list(store.descendants(ids["a"])) == [ids["b"], ids["t"], ids["c"]]

    def test_size_counts_subtree_and_attributes(self, store):
        ids = build_tree(store)
        assert store.size(ids["a"]) == 5  # a, x, b, t, c


class TestMutators:
    def test_append_child_sets_parent(self, store):
        ids = build_tree(store)
        store.append_child(ids["c"], ids["free"])
        assert store.parent(ids["free"]) == ids["c"]

    def test_insert_requires_parentless_node(self, store):
        ids = build_tree(store)
        with pytest.raises(UpdateApplicationError):
            store.append_child(ids["a"], ids["b"])  # b already has a parent

    def test_cannot_insert_into_text(self, store):
        ids = build_tree(store)
        with pytest.raises(UpdateApplicationError):
            store.append_child(ids["t"], ids["free"])

    def test_cycle_rejected(self, store):
        ids = build_tree(store)
        # a is a parentless root; inserting it under its own descendant c
        # would create a cycle.
        with pytest.raises(UpdateApplicationError):
            store.append_child(ids["c"], ids["a"])

    def test_insert_before_after(self, store):
        ids = build_tree(store)
        n1 = store.create_element("n1")
        n2 = store.create_element("n2")
        store.insert_after(ids["a"], ids["b"], n1)
        store.insert_before(ids["a"], ids["b"], n2)
        assert store.children(ids["a"]) == (n2, ids["b"], n1, ids["c"])

    def test_insert_anchor_must_be_child(self, store):
        ids = build_tree(store)
        with pytest.raises(UpdateApplicationError):
            store.insert_after(ids["a"], ids["t"], ids["free"])

    def test_insert_position_out_of_range(self, store):
        ids = build_tree(store)
        with pytest.raises(UpdateApplicationError):
            store.insert_child_at(ids["a"], 7, ids["free"])

    def test_detach_is_idempotent(self, store):
        ids = build_tree(store)
        store.detach(ids["b"])
        assert store.parent(ids["b"]) is None
        assert store.children(ids["a"]) == (ids["c"],)
        store.detach(ids["b"])  # no-op, no error
        # The detached subtree is still intact (paper Section 3.1).
        assert store.string_value(ids["b"]) == "text"

    def test_detach_attribute(self, store):
        ids = build_tree(store)
        store.detach(ids["x"])
        assert store.attributes(ids["a"]) == ()
        assert store.value(ids["x"]) == "1"

    def test_set_attribute_replaces_same_name(self, store):
        ids = build_tree(store)
        x2 = store.create_attribute("x", "2")
        store.set_attribute(ids["a"], x2)
        assert store.attribute_named(ids["a"], "x") == x2
        assert store.parent(ids["x"]) is None  # old one detached

    def test_set_attribute_rejects_non_attribute(self, store):
        ids = build_tree(store)
        with pytest.raises(UpdateApplicationError):
            store.set_attribute(ids["a"], ids["free"])

    def test_rename_element_and_attribute(self, store):
        ids = build_tree(store)
        store.rename(ids["b"], "renamed")
        store.rename(ids["x"], "y")
        assert store.name(ids["b"]) == "renamed"
        assert store.name(ids["x"]) == "y"

    def test_rename_text_rejected(self, store):
        ids = build_tree(store)
        with pytest.raises(UpdateApplicationError):
            store.rename(ids["t"], "nope")

    def test_set_value(self, store):
        ids = build_tree(store)
        store.set_value(ids["t"], "new")
        assert store.string_value(ids["a"]) == "new"
        with pytest.raises(UpdateApplicationError):
            store.set_value(ids["a"], "elements have no value")


class TestDocumentOrder:
    def test_total_order_within_tree(self, store):
        ids = build_tree(store)
        order = store.sort_document_order(
            [ids["c"], ids["t"], ids["a"], ids["b"], ids["x"]]
        )
        assert order == [ids["a"], ids["x"], ids["b"], ids["t"], ids["c"]]

    def test_attributes_before_children(self, store):
        ids = build_tree(store)
        assert store.compare_order(ids["x"], ids["b"]) == -1
        assert store.compare_order(ids["a"], ids["x"]) == -1

    def test_cross_tree_order_stable(self, store):
        ids = build_tree(store)
        assert store.compare_order(ids["a"], ids["free"]) == -1
        assert store.compare_order(ids["free"], ids["a"]) == 1

    def test_compare_self(self, store):
        ids = build_tree(store)
        assert store.compare_order(ids["b"], ids["b"]) == 0

    def test_sort_deduplicates(self, store):
        ids = build_tree(store)
        assert store.sort_document_order([ids["b"], ids["b"]]) == [ids["b"]]

    def test_order_cache_invalidation(self, store):
        ids = build_tree(store)
        assert store.compare_order(ids["b"], ids["c"]) == -1
        # Move c before b; cached keys must refresh.
        store.detach(ids["c"])
        store.insert_child_at(ids["a"], 0, ids["c"])
        assert store.compare_order(ids["b"], ids["c"]) == 1


class TestDeepCopy:
    def test_copy_is_parentless_with_fresh_ids(self, store):
        ids = build_tree(store)
        copy = store.deep_copy(ids["a"])
        assert store.parent(copy) is None
        assert copy != ids["a"]
        assert store.string_value(copy) == "text"
        assert store.name(copy) == "a"
        copied_attr = store.attribute_named(copy, "x")
        assert copied_attr is not None and copied_attr != ids["x"]

    def test_copy_is_independent(self, store):
        ids = build_tree(store)
        copy = store.deep_copy(ids["a"])
        store.rename(ids["b"], "changed")
        copied_b = store.children(copy)[0]
        assert store.name(copied_b) == "b"


class TestGC:
    def test_gc_reclaims_unreachable(self, store):
        ids = build_tree(store)
        store.detach(ids["b"])
        reclaimed = store.gc(live_roots=[ids["a"]])
        assert reclaimed == 3  # b, its text, and <free/>
        assert ids["b"] not in store
        assert ids["a"] in store

    def test_gc_keeps_detached_but_referenced(self, store):
        ids = build_tree(store)
        store.detach(ids["b"])
        reclaimed = store.gc(live_roots=[ids["a"], ids["b"]])
        assert reclaimed == 1  # only <free/>
        assert ids["t"] in store  # kept via b


class TestInvariants:
    def test_invariants_hold_after_mutations(self, store):
        ids = build_tree(store)
        store.detach(ids["b"])
        store.append_child(ids["c"], ids["b"])
        store.rename(ids["a"], "z")
        store.check_invariants()

    def test_invariants_detect_corruption(self, store):
        ids = build_tree(store)
        # Corrupt directly: duplicate child entry.
        store._records[ids["a"]].children.append(ids["b"])
        with pytest.raises(StoreError):
            store.check_invariants()
