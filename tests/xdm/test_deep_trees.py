"""Robustness on very deep trees: the store's traversals are iterative and
must not hit Python's recursion limit."""

import sys

import pytest

from repro.xdm.nodes import Node
from repro.xdm.store import Store

DEPTH = 5000  # far beyond sys.getrecursionlimit()


@pytest.fixture(scope="module")
def deep() -> tuple[Store, int, int]:
    store = Store()
    root = store.create_element("n0")
    current = root
    for i in range(1, DEPTH):
        child = store.create_element(f"n{i}")
        store.append_child(current, child)
        current = child
    store.append_child(current, store.create_text("bottom"))
    return store, root, current


class TestDeepTrees:
    def test_depth_exceeds_recursion_limit(self):
        assert DEPTH > sys.getrecursionlimit()

    def test_descendants_iterative(self, deep):
        store, root, _ = deep
        assert sum(1 for _ in store.descendants(root)) == DEPTH

    def test_string_value_iterative(self, deep):
        store, root, _ = deep
        assert store.string_value(root) == "bottom"

    def test_size_iterative(self, deep):
        store, root, _ = deep
        assert store.size(root) == DEPTH + 1  # elements + text

    def test_deep_copy_iterative(self, deep):
        store, root, _ = deep
        copy = store.deep_copy(root)
        assert store.size(copy) == DEPTH + 1
        assert store.string_value(copy) == "bottom"

    def test_order_key_iterative_enough(self, deep):
        store, root, leaf = deep
        # order_key recurses once per ancestor with memoization; prime the
        # cache root-down to keep each step shallow, as real traversals do.
        chain = [leaf]
        while True:
            parent = store.parent(chain[-1])
            if parent is None:
                break
            chain.append(parent)
        for nid in reversed(chain):
            store.order_key(nid)
        assert store.compare_order(root, leaf) == -1

    def test_ancestors_iterative(self, deep):
        store, _, leaf = deep
        assert sum(1 for _ in store.ancestors(leaf)) == DEPTH - 1

    def test_gc_iterative(self, deep):
        store, root, _ = deep
        orphan = store.create_element("orphan")
        reclaimed = store.gc([root])
        assert reclaimed >= 1
        assert orphan not in store
