"""Conformance cases for the extension features: exact decimals, dynamic
typing, typeswitch, sequencing, modules, snap semantics corner cases."""

import pytest

from repro import Engine


@pytest.fixture(scope="module")
def engine() -> Engine:
    e = Engine()
    e.load_document("d", "<r><n>5</n><n>7</n><m x='1.5'/></r>")
    e.register_module(
        "urn:util",
        'module namespace u = "urn:util";'
        "declare function u:inc($x) { $x + 1 };",
    )
    return e


CASES = [
    # --- exact decimals ---------------------------------------------------
    ("0.1 + 0.2", "0.3"),
    ("0.3 - 0.1", "0.2"),
    ("1.10 * 10", "11"),
    ("0.1 * 0.1", "0.01"),
    ("2.5 mod 1", "0.5"),
    ("(0.1 + 0.2) eq 0.3", "true"),
    ("xs:decimal('1.50')", "1.5"),
    ("3 div 4", "0.75"),
    ("sum((0.1, 0.2, 0.3)) instance of xs:decimal", "true"),
    # --- typing operators ----------------------------------------------------
    ("'x' instance of xs:string", "true"),
    ("() instance of xs:string?", "true"),
    ("5 treat as xs:integer", "5"),
    ("(5, 6) treat as xs:integer+", "5 6"),
    ("'12' cast as xs:integer instance of xs:integer", "true"),
    ("'bad' castable as xs:double", "false"),
    ("'1e3' castable as xs:double", "true"),
    ("1 instance of item()", "true"),
    ("(1, 'a') instance of xs:anyAtomicType*", "true"),
    # --- typeswitch --------------------------------------------------------------
    (
        "typeswitch ('s') case xs:integer return 'i' "
        "case xs:string return 's' default return 'o'",
        "s",
    ),
    (
        "typeswitch (()) case empty-sequence() return 'none' "
        "default return 'some'",
        "none",
    ),
    (
        "typeswitch (<a/>) case element(b) return 'b' "
        "case element(a) return 'a' default return 'x'",
        "a",
    ),
    # --- sequencing ------------------------------------------------------------------
    ("(1; 2; 3)", "1 2 3"),
    ("count((1, 2; 3))", "3"),
    # --- documents and modules ----------------------------------------------------------
    ("doc-available('d')", "true"),
    ("count(doc('d')//n)", "2"),
    ('import module namespace u = "urn:util"; u:inc(41)', "42"),
    # --- snap visibility corner cases ------------------------------------------------------
    (
        "let $x := <h/> return "
        "(snap insert { <k/> } into { $x }, count($x/k))",
        "1",
    ),
    (
        "let $x := <h/> return "
        "(insert { <k/> } into { $x }, count($x/k))",
        "0",  # pending insert not yet visible inside the same snap scope
    ),
    # --- node identity / order -----------------------------------------------------------------
    ("let $a := <a/> return $a is $a", "true"),
    ("<a/> is <a/>", "false"),
    ("let $r := <r><a/><b/></r> return ($r/a << $r/b)", "true"),
    ("let $r := <r><a/><b/></r> return ($r/b >> $r/a)", "true"),
    # --- focus and positional tricks ----------------------------------------------------------
    ("(11 to 20)[position() = (1, last())]", "11 20"),
    ("(1 to 10)[. mod 3 eq 0]", "3 6 9"),
    ("string-join((1 to 3)[position() < 3] ! '', '')", None),  # skipped: '!' unsupported
    # --- strings via nodes -----------------------------------------------------------------------
    ("number(doc('d')//m/@x) + 0.5", "2"),
    ("string-join(doc('d')//n/string(), '+')", "5+7"),
]

CASES = [c for c in CASES if c[1] is not None]


@pytest.mark.parametrize(
    ("query", "expected"), CASES, ids=[c[0][:48] for c in CASES]
)
def test_case(engine, query, expected):
    assert engine.execute(query).serialize() == expected
