"""A data-driven conformance mini-suite.

Each case is ``(query, expected_serialization)`` run on a fixed fixture
document, in the style of the W3C QT test suites.  These lock in dozens of
small behaviours in one place; anything with more setup lives in the
dedicated unit-test modules.

Fixture bound to $d:
    <shelf>
      <book year="2000" price="10"><t>Alpha</t><lang>en</lang></book>
      <book year="2010" price="25"><t>Beta</t><lang>it</lang></book>
      <book year="2020" price="15"><t>Gamma</t></book>
    </shelf>
plus $nums = (1, 2, 3, 4, 5).
"""

import pytest

from repro import Engine

FIXTURE = (
    '<shelf>'
    '<book year="2000" price="10"><t>Alpha</t><lang>en</lang></book>'
    '<book year="2010" price="25"><t>Beta</t><lang>it</lang></book>'
    '<book year="2020" price="15"><t>Gamma</t></book>'
    '</shelf>'
)


@pytest.fixture(scope="module")
def engine() -> Engine:
    e = Engine()
    e.load_document("d", FIXTURE)
    e.bind("nums", [1, 2, 3, 4, 5])
    return e


CASES = [
    # --- literals and arithmetic -------------------------------------
    ("2 + 3 * 4", "14"),
    ("(2 + 3) * 4", "20"),
    ("7 mod 2", "1"),
    ("7 idiv 2", "3"),
    ("10 div 4", "2.5"),
    ("-3 + 1", "-2"),
    ("1.5 + 1.5", "3"),
    ("2e2 div 100", "2"),
    ("5 - -5", "10"),
    # --- sequences -----------------------------------------------------
    ("count(())", "0"),
    ("count((1, (2, 3), ()))", "3"),
    ("1 to 5", "1 2 3 4 5"),
    ("reverse(1 to 3)", "3 2 1"),
    ("(1 to 3, 5 to 6)", "1 2 3 5 6"),
    ("subsequence(1 to 10, 3, 2)", "3 4"),
    ("distinct-values((3, 1, 3, 2, 1))", "3 1 2"),
    ("insert-before((1, 2), 2, 9)", "1 9 2"),
    ("remove((9, 8, 7), 2)", "9 7"),
    ("index-of((5, 6, 5), 5)", "1 3"),
    ("string-join(for $n in 1 to 3 return string($n), '-')", "1-2-3"),
    # --- comparisons -----------------------------------------------------
    ("1 = 1.0", "true"),
    ("(1, 2) = (2, 3)", "true"),
    ("(1, 2) != (1, 2)", "true"),
    ("'a' < 'b'", "true"),
    ("2 eq 2", "true"),
    ("'07' = '7'", "false"),
    ("not(1 > 2)", "true"),
    ("() = ()", "false"),
    ("1 < 2 and 2 < 3", "true"),
    ("false() or true()", "true"),
    # --- conditionals and quantifiers ------------------------------------
    ("if (count($nums) > 3) then 'big' else 'small'", "big"),
    ("some $n in $nums satisfies $n > 4", "true"),
    ("every $n in $nums satisfies $n > 0", "true"),
    ("every $n in $nums satisfies $n > 1", "false"),
    # --- FLWOR ----------------------------------------------------------
    ("for $n in $nums return $n * $n", "1 4 9 16 25"),
    ("for $n in $nums where $n mod 2 = 0 return $n", "2 4"),
    ("let $s := sum($nums) return $s", "15"),
    ("for $n at $i in ('a', 'b') return $i", "1 2"),
    ("for $n in $nums order by $n descending return $n", "5 4 3 2 1"),
    (
        "for $b in $d//book order by number($b/@price) return string($b/t)",
        "Alpha Gamma Beta",
    ),
    ("for $x in (1, 2), $y in (10, 20) return $x + $y", "11 21 12 22"),
    # --- paths ------------------------------------------------------------
    ("count($d//book)", "3"),
    ("count($d/shelf/book)", "3"),
    ("string($d/shelf/book[1]/t)", "Alpha"),
    ("$d//book[@year = 2010]/t/text()", "Beta"),
    ("count($d//book[lang])", "2"),
    ("count($d//book[not(lang)])", "1"),
    ("string($d//book[last()]/t)", "Gamma"),
    ("count($d//@price)", "3"),
    ("sum($d//book/@price)", "50"),
    ("avg($d//book/@year)", "2010"),
    ("$d//t[. = 'Beta']/../@year/string()", "2010"),
    ("count($d/shelf/*)", "3"),
    ("count($d//node()) > 10", "true"),
    ("name(($d//book)[2])", "book"),
    ("count($d//book/self::book)", "3"),
    ("count($d//t/parent::book)", "3"),
    ("($d//book)[2]/preceding-sibling::book/@year/string()", "2000"),
    ("($d//book)[1]/following-sibling::book[1]/@year/string()", "2010"),
    ("count($d//book[t]/lang | $d//book/t)", "5"),
    ("count($d//book except ($d//book)[1])", "2"),
    ("count($d//book intersect $d//book[@price > 12])", "2"),
    # --- strings -----------------------------------------------------------
    ("upper-case('mixed Case')", "MIXED CASE"),
    ("concat('a', 'b', 'c')", "abc"),
    ("contains(string(($d//t)[1]), 'lph')", "true"),
    ("substring('abcdef', 3, 2)", "cd"),
    ("string-length(string(($d//t)[2]))", "4"),
    ("normalize-space('  x   y ')", "x y"),
    ("translate('banana', 'an', 'AN')", "bANANA"),
    ("starts-with('hello', 'he')", "true"),
    ("tokenize('a b c', ' ')", "a b c"),
    ("matches('2026', '^[0-9]+$')", "true"),
    ("replace('a-b-c', '-', '+')", "a+b+c"),
    # --- constructors --------------------------------------------------------
    ("<x/>", "<x/>"),
    ("<x a='1'>t</x>", '<x a="1">t</x>'),
    ("<x>{ 1 + 1 }</x>", "<x>2</x>"),
    ("<x>{ ($d//t)[1]/text() }</x>", "<x>Alpha</x>"),
    ("element e { attribute k { 'v' }, 'body' }", '<e k="v">body</e>'),
    ("text { 'plain' }", "plain"),
    ("comment { 'note' }", "<!--note-->"),
    ("<w>{ ($d//book)[1]/t }</w>", "<w><t>Alpha</t></w>"),
    ('<p z="{ 1 + 2 }"/>', '<p z="3"/>'),
    ("string(<a>x{ 'y' }z</a>)", "xyz"),
    # --- types ----------------------------------------------------------------
    ("1 instance of xs:integer", "true"),
    ("'5' cast as xs:integer", "5"),
    ("5 castable as xs:boolean", "true"),
    ("(1, 2) instance of xs:integer+", "true"),
    ("($d//book)[1] instance of element(book)", "true"),
    (
        "typeswitch (3.5) case xs:integer return 'i' "
        "case xs:decimal return 'd' default return 'o'",
        "d",
    ),
    # --- sequencing -------------------------------------------------------------
    ("1; 2; 3", "1 2 3"),
    # --- misc ---------------------------------------------------------------------
    ("string(number('x')) = 'NaN'", "true"),
    ("floor(2.5), ceiling(2.5), round(2.5)", "2 3 3"),
    ("abs(-2.5)", "2.5"),
    ("min($nums), max($nums)", "1 5"),
    ("boolean($d//book)", "true"),
    ("exists($d//pamphlet)", "false"),
    ("deep-equal(<a><b/></a>, <a><b/></a>)", "true"),
    ("zero-or-one(())", ""),
    ("xs:string(12) instance of xs:string", "true"),
]


@pytest.mark.parametrize(("query", "expected"), CASES, ids=[c[0][:48] for c in CASES])
def test_case(engine, query, expected):
    assert engine.execute(query).serialize() == expected


@pytest.mark.parametrize(
    ("query", "expected"), CASES, ids=[c[0][:48] for c in CASES]
)
def test_case_through_optimizer(engine, query, expected):
    """Every conformance case must behave identically through the algebra
    compiler (plans or the EvalExpr fallback)."""
    assert engine.execute(query, optimize=True).serialize() == expected


UPDATE_CASES = [
    # (setup-fragment, update-query, observation-query, expected)
    ("<t><a/></t>", "insert { <b/> } into { $f }", "count($f/*)", "2"),
    ("<t><a/></t>", "insert { <b/> } as first into { $f }", "name($f/*[1])", "b"),
    ("<t><a/><c/></t>", "insert { <b/> } after { $f/a }",
     "string-join($f/*/name(), ',')", "a,b,c"),
    ("<t><a/></t>", "delete { $f/a }", "count($f/*)", "0"),
    ("<t><a/></t>", 'rename { $f/a } to { "z" }', "name($f/*)", "z"),
    ("<t><a>1</a></t>", "replace { $f/a } with { <b>2</b> }", "string($f)", "2"),
    ("<t><a/></t>", "snap { insap() } ", None, None),  # placeholder row ignored
]


@pytest.mark.parametrize(
    ("fragment", "update", "observe", "expected"),
    [case for case in UPDATE_CASES if case[2] is not None],
    ids=[c[1][:40] for c in UPDATE_CASES if c[2] is not None],
)
def test_update_case(fragment, update, observe, expected):
    e = Engine()
    e.bind("f", e.parse_fragment(fragment))
    e.execute(update)
    assert e.execute(observe).serialize() == expected
