"""The W3C Use Cases 'TREE' (recursive structure) and 'SEQ' (document
order) sections, adapted to this engine's subset.

TREE exercises recursive user functions over arbitrarily nested sections;
SEQ exercises the node-order operators (<<, >>) over a surgical report.
"""

import pytest

from repro import Engine

BOOK = """
<book>
  <title>Data on the Web</title>
  <section id="intro" difficulty="easy">
    <title>Introduction</title>
    <p>Audience</p>
    <section>
      <title>Web Data and the Two Cultures</title>
      <p>text</p>
      <figure height="400" width="400"><title>Traditional client/server</title></figure>
    </section>
  </section>
  <section id="syntax" difficulty="medium">
    <title>A Syntax For Data</title>
    <p>text</p>
    <figure height="200" width="500"><title>Graph representations</title></figure>
    <section>
      <title>Base Types</title>
      <p>text</p>
    </section>
    <section>
      <title>Representing Relational Databases</title>
      <p>text</p>
      <figure height="250" width="400"><title>Examples of relations</title></figure>
    </section>
  </section>
</book>
"""

REPORT = """
<report>
  <section><title>Procedure</title>
    <p>The patient was taken to the operating room.</p>
    <anesthesia>general</anesthesia>
    <incision>A skin incision was made.</incision>
    <action>The gallbladder was removed.</action>
    <incision>A second incision was made.</incision>
    <action>The appendix was removed.</action>
    <observation>There were no complications.</observation>
  </section>
</report>
"""


@pytest.fixture(scope="module")
def e() -> Engine:
    engine = Engine()
    engine.load_document("book", BOOK)
    engine.load_document("report", REPORT)
    return engine


class TestTreeUseCases:
    def test_t1_table_of_contents_recursive(self, e):
        """TREE Q1: a toc keeping only sections and their titles, with
        nesting preserved — needs a recursive function."""
        e.load_module(
            """
            declare function toc($section) {
              <section>{
                $section/title,
                for $sub in $section/section return toc($sub)
              }</section>
            };
            """
        )
        out = e.execute(
            "<toc>{ for $s in $book/book/section return toc($s) }</toc>"
        )
        xml = out.serialize()
        assert xml.count("<section>") == 5
        assert xml.count("<title>") == 5
        assert "<p>" not in xml and "figure" not in xml
        # Nesting preserved: Base Types sits inside A Syntax For Data.
        syntax = xml.index("A Syntax For Data")
        base = xml.index("Base Types")
        assert syntax < base

    def test_t2_figure_list(self, e):
        """TREE Q2: all figures with their titles, flattened."""
        out = e.execute(
            """<figlist>{
                 for $f in $book//figure
                 return <figure>{ $f/title }</figure>
               }</figlist>"""
        )
        assert out.serialize().count("<figure>") == 3

    def test_t3_counts(self, e):
        """TREE Q3: how many sections and figures."""
        assert e.execute("count($book//section)").first_value() == 5
        assert e.execute("count($book//figure)").first_value() == 3

    def test_t4_top_level_section_titles(self, e):
        out = e.execute("$book/book/section/title/string()").values()
        assert out == ["Introduction", "A Syntax For Data"]

    def test_t5_sections_with_figures(self, e):
        """Sections (at any depth) that directly contain a figure."""
        out = e.execute(
            "$book//section[figure]/title[1]/string()"
        ).values()
        assert out == [
            "Web Data and the Two Cultures",
            "A Syntax For Data",
            "Representing Relational Databases",
        ]

    def test_t6_depth_via_recursion(self, e):
        e.load_module(
            """
            declare function depth($node) {
              if (empty($node/*)) then 1
              else 1 + max(for $c in $node/* return depth($c))
            };
            """
        )
        # document -> book -> section -> section -> figure -> title
        assert e.execute("depth($book)").first_value() == 6
        assert e.execute("depth($book/book)").first_value() == 5


class TestSeqUseCases:
    def test_s1_actions_between_incisions(self, e):
        """SEQ Q1: actions after the first and before the second incision."""
        out = e.execute(
            """let $i1 := ($report//incision)[1]
               let $i2 := ($report//incision)[2]
               for $a in $report//action
               where $a >> $i1 and $a << $i2
               return string($a)"""
        )
        assert out.values() == ["The gallbladder was removed."]

    def test_s2_everything_after_second_incision(self, e):
        out = e.execute(
            """let $i2 := ($report//incision)[2]
               for $n in $report//section/*
               where $n >> $i2
               return name($n)"""
        )
        assert out.values() == ["action", "observation"]

    def test_s3_first_action_after_anesthesia(self, e):
        out = e.execute(
            """let $an := exactly-one($report//anesthesia)
               return string(($report//action[. >> $an])[1])"""
        )
        assert out.first_value() == "The gallbladder was removed."

    def test_s4_order_operators_consistent_with_position(self, e):
        assert e.execute(
            """every $x in $report//section/*, $y in $report//section/*
               satisfies (($x << $y) or ($y << $x) or ($x is $y))"""
        ).first_value() is True
