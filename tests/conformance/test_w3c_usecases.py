"""The W3C 'XML Query Use Cases' XMP queries (adapted to this engine's
subset) over the canonical bib.xml / reviews.xml / prices.xml fixtures.

These are the queries the XQuery 1.0 design was validated against; running
them end-to-end exercises FLWOR, joins, grouping, ordering, deep-equal and
constructor composition together.  Where a use case needs a feature we
exclude (full-text, schema types) it is adapted minimally and noted.
"""

import pytest

from repro import Engine

BIB = """
<bib>
  <book year="1994">
    <title>TCP/IP Illustrated</title>
    <author><last>Stevens</last><first>W.</first></author>
    <publisher>Addison-Wesley</publisher>
    <price>65.95</price>
  </book>
  <book year="1992">
    <title>Advanced Programming in the Unix environment</title>
    <author><last>Stevens</last><first>W.</first></author>
    <publisher>Addison-Wesley</publisher>
    <price>65.95</price>
  </book>
  <book year="2000">
    <title>Data on the Web</title>
    <author><last>Abiteboul</last><first>Serge</first></author>
    <author><last>Buneman</last><first>Peter</first></author>
    <author><last>Suciu</last><first>Dan</first></author>
    <publisher>Morgan Kaufmann Publishers</publisher>
    <price>39.95</price>
  </book>
  <book year="1999">
    <title>The Economics of Technology and Content for Digital TV</title>
    <editor><last>Gerbarg</last><first>Darcy</first>
      <affiliation>CITI</affiliation></editor>
    <publisher>Kluwer Academic Publishers</publisher>
    <price>129.95</price>
  </book>
</bib>
"""

REVIEWS = """
<reviews>
  <entry><title>Data on the Web</title><price>34.95</price>
    <review>A very good discussion of semi-structured database
      systems and XML.</review></entry>
  <entry><title>Advanced Programming in the Unix environment</title>
    <price>65.95</price>
    <review>A clear and detailed discussion of UNIX programming.</review>
  </entry>
  <entry><title>TCP/IP Illustrated</title><price>65.95</price>
    <review>One of the best books on TCP/IP.</review></entry>
</reviews>
"""


@pytest.fixture(scope="module")
def e() -> Engine:
    engine = Engine()
    engine.load_document("bib", BIB)
    engine.load_document("reviews", REVIEWS)
    return engine


class TestXMPUseCases:
    def test_q1_publisher_and_year_selection(self, e):
        """Q1: books published by Addison-Wesley after 1991."""
        out = e.execute(
            """<bib>{
                 for $b in $bib/bib/book
                 where $b/publisher = "Addison-Wesley" and $b/@year > 1991
                 return <book year="{ $b/@year }">{ $b/title }</book>
               }</bib>"""
        )
        xml = out.serialize()
        assert xml.count("<book") == 2
        assert "TCP/IP Illustrated" in xml
        assert "Unix environment" in xml
        assert "Data on the Web" not in xml

    def test_q2_flattened_title_author_pairs(self, e):
        """Q2: one <result> per (title, author) pair."""
        out = e.execute(
            """<results>{
                 for $b in $bib/bib/book, $t in $b/title, $a in $b/author
                 return <result>{ $t }{ $a }</result>
               }</results>"""
        )
        # 1 + 1 + 3 + 0 author pairs.
        assert out.serialize().count("<result>") == 5

    def test_q3_titles_with_all_authors(self, e):
        """Q3: one <result> per book with its title and all its authors."""
        out = e.execute(
            """<results>{
                 for $b in $bib/bib/book
                 return <result>{ $b/title }{ $b/author }</result>
               }</results>"""
        )
        xml = out.serialize()
        assert xml.count("<result>") == 4
        assert xml.count("<author>") == 5

    def test_q4_books_per_author(self, e):
        """Q4: one <result> per distinct author, with the titles of their
        books (adapted: distinct by last name)."""
        out = e.execute(
            """<results>{
                 for $last in distinct-values($bib//author/last)
                 return
                   <result>
                     <author>{ $last }</author>
                     {
                       for $b in $bib/bib/book
                       where $b/author/last = $last
                       return $b/title
                     }
                   </result>
               }</results>"""
        )
        xml = out.serialize()
        assert xml.count("<result>") == 4  # Stevens, Abiteboul, Buneman, Suciu
        # Stevens has two books:
        stevens = e.execute(
            "count($bib/bib/book[author/last = 'Stevens']/title)"
        ).first_value()
        assert stevens == 2

    def test_q5_join_with_reviews(self, e):
        """Q5: join bib and reviews on title, output title + review price."""
        query = """
            <books-with-prices>{
              for $b in $bib//book
              for $a in $reviews//entry
              where $b/title = $a/title
              return <book-with-prices>
                       { $b/title }
                       <price-review>{ string($a/price) }</price-review>
                       <price>{ string($b/price) }</price>
                     </book-with-prices>
            }</books-with-prices>
        """
        naive = e.execute(query, optimize=False).serialize()
        optimized = e.execute(query, optimize=True).serialize()
        assert naive == optimized
        assert naive.count("book-with-prices>") == 6  # 3 matches x open+close
        assert "<price-review>34.95</price-review>" in naive

    def test_q5_join_plan(self, e):
        from repro.algebra.plan import plan_operators

        query = """
            for $b in $bib//book
            for $a in $reviews//entry
            where $b/title = $a/title
            return $b/title
        """
        assert "HashJoin" in plan_operators(e.compile(query))

    def test_q6_books_with_multiple_authors(self, e):
        """Q6: books with at least one author, first two authors and an
        et-al marker when there are more than two."""
        out = e.execute(
            """<bib>{
                 for $b in $bib//book
                 where count($b/author) > 0
                 return <book>
                          { $b/title }
                          { for $a at $i in $b/author where $i <= 2 return $a }
                          { if (count($b/author) > 2)
                            then <et-al/> else () }
                        </book>
               }</bib>"""
        )
        xml = out.serialize()
        assert xml.count("<book>") == 3  # the editor-only book drops out
        assert xml.count("<et-al/>") == 1
        assert xml.count("<author>") == 4  # 1 + 1 + 2

    def test_q7_sorted_expensive_books(self, e):
        """Q7: books > $60, sorted by title."""
        out = e.execute(
            """<bib>{
                 for $b in $bib//book
                 where number($b/price) > 60
                 order by string($b/title)
                 return <book year="{$b/@year}">{ $b/title }</book>
               }</bib>"""
        )
        xml = out.serialize()
        # String order: "Advanced..." < "TCP/IP..." < "The Economics..."
        assert xml.index("Advanced Programming") < xml.index("TCP/IP")
        assert xml.index("TCP/IP") < xml.index("Economics")

    def test_q10_price_aggregation(self, e):
        """Q10: minimum, maximum and average book price."""
        out = e.execute(
            """let $prices := for $p in $bib//book/price return number($p)
               return <summary min="{ min($prices) }"
                               max="{ max($prices) }"
                               avg="{ avg($prices) }"/>"""
        )
        xml = out.serialize()
        assert 'min="39.95"' in xml
        assert 'max="129.95"' in xml
        assert 'avg="75.45"' in xml

    def test_q11_editor_affiliations(self, e):
        """Q11: books with editors, output title + editor affiliation."""
        out = e.execute(
            """<bib>{
                 for $b in $bib//book[editor]
                 return <book>{ $b/title }
                          <aff>{ string($b/editor/affiliation) }</aff>
                        </book>
               }</bib>"""
        )
        xml = out.serialize()
        assert xml.count("<book>") == 1
        assert "<aff>CITI</aff>" in xml

    def test_q12_books_with_same_authors(self, e):
        """Q12: pairs of books with exactly the same author sets."""
        out = e.execute(
            """<pairs>{
                 for $b1 in $bib//book, $b2 in $bib//book
                 where $b1 << $b2
                   and deep-equal($b1/author, $b2/author)
                   and exists($b1/author)
                 return <pair>{ $b1/title }{ $b2/title }</pair>
               }</pairs>"""
        )
        xml = out.serialize()
        assert xml.count("<pair>") == 1  # the two Stevens books
        assert "TCP/IP Illustrated" in xml and "Unix environment" in xml

    def test_update_extension_discount(self, e):
        """Beyond XMP: apply a 10% discount to Addison-Wesley books, the
        XQuery! way (one snap, conflict-detection)."""
        engine = Engine()
        engine.load_document("bib", BIB)
        engine.execute(
            """snap conflict-detection {
                 for $p in $bib//book[publisher = "Addison-Wesley"]/price
                 return replace { $p }
                        with { <price>{ xs:decimal($p) * 0.9 }</price> }
               }"""
        )
        prices = engine.execute(
            '$bib//book[publisher = "Addison-Wesley"]/price/string()'
        ).values()
        # Exact xs:decimal arithmetic: 65.95 * 0.9 is exactly 59.355.
        assert prices == ["59.355", "59.355"]
