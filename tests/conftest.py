"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import pytest

from repro import Engine
from repro.xmark import XMarkConfig, generate_auction_xml


@pytest.fixture
def engine() -> Engine:
    """A fresh engine with an empty store."""
    return Engine()


@pytest.fixture
def library_engine() -> Engine:
    """An engine with a small library document bound to $doc."""
    e = Engine()
    e.load_document(
        "doc",
        """<library>
             <book year="2006" id="b1"><title>XQuery!</title><pages>13</pages></book>
             <book year="2002" id="b2"><title>XMark</title><pages>12</pages></book>
             <book year="1997" id="b3"><title>SML</title><pages>114</pages></book>
           </library>""",
    )
    return e


@pytest.fixture(scope="session")
def small_auction_xml() -> str:
    """A small deterministic XMark-style document (shared, read-only)."""
    return generate_auction_xml(
        XMarkConfig(persons=30, items=20, open_auctions=10, closed_auctions=40)
    )


@pytest.fixture
def auction_engine(small_auction_xml: str) -> Engine:
    """An engine with the small auction doc plus $purchasers and $log."""
    e = Engine()
    e.load_document("auction", small_auction_xml)
    e.bind("purchasers", e.parse_fragment("<purchasers/>"))
    e.bind("log", e.parse_fragment("<log/>"))
    return e


def run(engine: Engine, query: str):
    """Execute and return the result items."""
    return engine.execute(query).items


def val(engine: Engine, query: str):
    """Execute and return the first item's Python value."""
    return engine.execute(query).first_value()


def xml(engine: Engine, query: str) -> str:
    """Execute and serialize."""
    return engine.execute(query).serialize()
