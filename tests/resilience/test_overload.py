"""Sustained overload: typed shedding, then throughput recovery.

Satellite: a burst far past queue capacity must shed with *structured*
ServiceOverloadedError (never hang, never crash a worker), and once the
burst drains the service must be back at full throughput — shedding is
a mode, not a ratchet.
"""

from __future__ import annotations

from repro import ConcurrentExecutor, Engine, ResiliencePolicy
from repro.errors import ServiceOverloadedError


SLOW_WRITE = (
    "snap { for $i in 1 to 40 "
    "return insert { <e/> } into { $doc/log } }"
)


def make_executor(**kwargs):
    engine = Engine()
    engine.load_document("doc", "<log/>")
    kwargs.setdefault("workers", 1)
    kwargs.setdefault("queue_size", 4)
    kwargs.setdefault("reads", "serialized")
    return ConcurrentExecutor(engine, **kwargs)


def drain(futures):
    """Resolve every future; return (successes, shed_errors, others)."""
    ok, shed, other = [], [], []
    for future in futures:
        try:
            ok.append(future.result(timeout=30))
        except ServiceOverloadedError as exc:
            shed.append(exc)
        except Exception as exc:  # noqa: BLE001 - the test sorts them
            other.append(exc)
    return ok, shed, other


class TestSustainedOverload:
    def test_burst_sheds_typed_and_structured(self):
        executor = make_executor()
        try:
            submitted, shed_at_submit = [], []
            for _ in range(60):
                try:
                    submitted.append(executor.submit(SLOW_WRITE))
                except ServiceOverloadedError as exc:
                    shed_at_submit.append(exc)
            ok, shed_queued, other = drain(submitted)
            assert other == []  # nothing untyped escaped
            assert shed_at_submit  # the burst overran a 4-deep queue
            for exc in shed_at_submit:
                assert exc.code == "REPR0003"
                assert exc.queue_capacity == 4
                assert exc.queue_depth >= 4
                assert exc.retry_after_ms >= 50.0
                payload = exc.to_dict()
                assert payload["queue_capacity"] == 4
            assert ok  # admitted requests still completed
        finally:
            executor.shutdown()

    def test_throughput_recovers_after_the_burst(self):
        executor = make_executor()
        try:
            futures = []
            for _ in range(60):
                try:
                    futures.append(executor.submit(SLOW_WRITE))
                except ServiceOverloadedError:
                    pass
            drain(futures)  # let the backlog fully drain
            # Post-burst: sequential submits must all be admitted and
            # succeed — shedding ended with the overload.
            for _ in range(10):
                result = executor.submit("count($doc/log/e)").result(
                    timeout=30
                )
                assert result.first_value() >= 40
        finally:
            executor.shutdown()

    def test_shed_counter_is_observable(self):
        executor = make_executor()
        try:
            sheds = 0
            for _ in range(60):
                try:
                    executor.submit(SLOW_WRITE)
                except ServiceOverloadedError:
                    sheds += 1
            assert sheds > 0
            assert executor.metrics.counter("shed") == sheds
            assert (
                executor.metrics.counters()["resilience.admission.shed"]
                == sheds
            )
        finally:
            executor.shutdown()

    def test_latency_aware_shedding_in_the_soft_region(self):
        # With a max_wait_ms target and a poisoned EWMA, the controller
        # sheds above the soft limit even though the queue is not full.
        policy = ResiliencePolicy(max_wait_ms=10.0)
        executor = make_executor(queue_size=8, resilience=policy)
        try:
            for _ in range(20):
                executor.admission.observe_wait(500.0)
            # Park enough slow writes to push the queue into the soft
            # region (soft limit of 8 is 6).
            futures, shed = [], []
            for _ in range(40):
                try:
                    futures.append(executor.submit(SLOW_WRITE))
                except ServiceOverloadedError as exc:
                    shed.append(exc)
            assert shed
            assert any(
                "service target" in str(exc) or "full" in str(exc)
                for exc in shed
            )
            drain(futures)
        finally:
            executor.shutdown()

    def test_never_overloaded_below_capacity(self):
        executor = make_executor(workers=2, queue_size=64)
        try:
            futures = [
                executor.submit("count($doc/log)") for _ in range(32)
            ]
            ok, shed, other = drain(futures)
            assert len(ok) == 32 and shed == [] and other == []
        finally:
            executor.shutdown()
