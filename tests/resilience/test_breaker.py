"""CircuitBreaker: trip rules, half-open probe protocol, recovery.

The clock is injected everywhere, so state transitions are exercised
without real waiting.
"""

from __future__ import annotations

import pytest

from repro.errors import CircuitOpenError
from repro.obs import Tracer
from repro.resilience import CircuitBreaker
from repro.resilience.breaker import CLOSED, HALF_OPEN, OPEN


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance_ms(self, ms: float) -> None:
        self.now += ms / 1000.0


def make(clock=None, **kwargs):
    kwargs.setdefault("failure_threshold", 3)
    kwargs.setdefault("min_calls", 4)
    kwargs.setdefault("reset_timeout_ms", 100.0)
    return CircuitBreaker(clock=clock or FakeClock(), **kwargs)


class TestTripRules:
    def test_starts_closed_and_admits(self):
        breaker = make()
        assert breaker.state == CLOSED
        breaker.admit()  # does not raise

    def test_consecutive_failures_trip(self):
        breaker = make(failure_threshold=3)
        breaker.record_failure("EIO")
        breaker.record_failure("EIO")
        assert breaker.state == CLOSED
        breaker.record_failure("EIO")
        assert breaker.state == OPEN
        assert "EIO" in breaker.open_reason

    def test_success_resets_the_consecutive_count(self):
        breaker = make(failure_threshold=3, min_calls=100)
        for _ in range(5):
            breaker.record_failure()
            breaker.record_success()
        assert breaker.state == CLOSED

    def test_failure_rate_trips_once_min_calls_reached(self):
        breaker = make(
            failure_threshold=100,  # keep the consecutive rule out of play
            failure_rate=0.5,
            window=8,
            min_calls=4,
        )
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state == CLOSED  # 2/3 failed but only 3 calls seen
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state == OPEN  # 3/5 = 60% with min_calls reached

    def test_open_refusal_is_typed_and_structured(self):
        clock = FakeClock()
        breaker = make(clock=clock, reset_timeout_ms=100.0)
        for _ in range(3):
            breaker.record_failure("disk on fire")
        clock.advance_ms(40.0)
        with pytest.raises(CircuitOpenError) as info:
            breaker.admit()
        err = info.value
        assert err.code == "REPR0006"
        assert err.reason == "disk on fire"
        assert err.retry_after_ms == pytest.approx(60.0)
        assert "read-only" in str(err)

    def test_tracer_counts_transitions(self):
        tracer = Tracer()
        clock = FakeClock()
        breaker = make(clock=clock, tracer=tracer)
        for _ in range(3):
            breaker.record_failure()
        assert tracer.counters["resilience.breaker.opened"] == 1
        clock.advance_ms(150.0)
        breaker.admit()  # half-open probe
        assert tracer.counters["resilience.breaker.half_open"] == 1
        breaker.record_success()
        assert tracer.counters["resilience.breaker.closed"] == 1


class TestHalfOpenProbe:
    def trip(self, clock):
        breaker = make(clock=clock)
        for _ in range(3):
            breaker.record_failure("EIO")
        return breaker

    def test_reset_timeout_makes_the_state_half_open(self):
        clock = FakeClock()
        breaker = self.trip(clock)
        assert breaker.state == OPEN
        clock.advance_ms(100.0)
        assert breaker.state == HALF_OPEN
        assert breaker.retry_after_ms() == 0.0

    def test_exactly_one_probe_is_admitted(self):
        clock = FakeClock()
        breaker = self.trip(clock)
        clock.advance_ms(150.0)
        breaker.admit()  # the probe slot
        with pytest.raises(CircuitOpenError):
            breaker.admit()  # concurrent request: no thundering herd

    def test_probe_success_closes_and_clears_the_window(self):
        clock = FakeClock()
        breaker = self.trip(clock)
        clock.advance_ms(150.0)
        breaker.admit()
        breaker.record_success()
        assert breaker.state == CLOSED
        assert breaker.to_dict()["calls_in_window"] == 0
        breaker.admit()  # admits freely again

    def test_probe_failure_reopens_and_restarts_the_clock(self):
        tracer = Tracer()
        clock = FakeClock()
        breaker = make(clock=clock, tracer=tracer)
        for _ in range(3):
            breaker.record_failure("EIO")
        clock.advance_ms(150.0)
        breaker.admit()
        breaker.record_failure("still dead")
        assert breaker.state == OPEN
        assert tracer.counters["resilience.breaker.reopened"] == 1
        assert breaker.retry_after_ms() == pytest.approx(100.0)
        with pytest.raises(CircuitOpenError):
            breaker.admit()

    def test_release_probe_frees_the_slot(self):
        # An admitted call that never exercised the journal (precondition
        # failure) must not wedge the half-open state.
        clock = FakeClock()
        breaker = self.trip(clock)
        clock.advance_ms(150.0)
        breaker.admit()
        breaker.release_probe()
        breaker.admit()  # the next write can probe instead

    def test_reset_force_closes(self):
        breaker = self.trip(FakeClock())
        breaker.reset()
        assert breaker.state == CLOSED
        breaker.admit()


class TestIntrospection:
    def test_to_dict_shape(self):
        breaker = make()
        breaker.record_failure("EIO")
        snapshot = breaker.to_dict()
        assert snapshot == {
            "state": "closed",
            "failures_in_window": 1,
            "calls_in_window": 1,
            "consecutive_failures": 1,
            "open_reason": None,
        }

    def test_validation(self):
        with pytest.raises(ValueError, match="failure_threshold"):
            CircuitBreaker(failure_threshold=0)
        with pytest.raises(ValueError, match="failure_rate"):
            CircuitBreaker(failure_rate=1.5)
        with pytest.raises(ValueError, match="reset_timeout_ms"):
            CircuitBreaker(reset_timeout_ms=0)
