"""Admission control: pre-parse guards, runtime budgets, load shedding.

Covers the static query-text bounds, the ResourceGuard riding
ExecutionControl, the Δ-length bound enforced at snap application, and
the AdmissionController's depth- and latency-aware shed decisions.
"""

from __future__ import annotations

import pytest

from repro import Engine, ExecutionOptions
from repro.concurrent.control import ExecutionControl
from repro.errors import ResourceLimitError, ServiceOverloadedError
from repro.obs import Tracer
from repro.resilience import AdmissionLimits
from repro.resilience.admission import AdmissionController, nesting_depth


class TestNestingDepth:
    def test_flat_text(self):
        assert nesting_depth("1 + 2") == 0

    def test_mixed_brackets(self):
        assert nesting_depth("snap { insert { (<a/>) } into { $d } }") == 3

    def test_unbalanced_closers_do_not_underflow(self):
        assert nesting_depth(")))((") == 2


class TestQueryTextGuards:
    def test_depth_bound_refuses_with_structure(self):
        limits = AdmissionLimits(max_depth=4)
        query = "(((((1)))))"
        with pytest.raises(ResourceLimitError) as info:
            limits.check_query_text(query)
        err = info.value
        assert err.code == "REPR0007"
        assert err.limit_name == "max_depth"
        assert err.limit == 4
        assert err.observed == 5

    def test_size_bound(self):
        limits = AdmissionLimits(max_query_bytes=16)
        with pytest.raises(ResourceLimitError, match="bytes"):
            limits.check_query_text("count($doc//item[position() < 10])")

    def test_within_bounds_is_silent(self):
        AdmissionLimits(max_depth=8, max_query_bytes=100).check_query_text(
            "count($d)"
        )

    def test_no_bounds_means_no_guard_object(self):
        assert AdmissionLimits().guard(object()) is None
        assert not AdmissionLimits().enabled
        assert AdmissionLimits(max_depth=2).enabled

    def test_validation(self):
        with pytest.raises(ValueError, match="max_depth"):
            AdmissionLimits(max_depth=0)


def run_guarded(engine: Engine, query: str, limits: AdmissionLimits):
    """Execute *query* with a per-call ResourceGuard riding the
    evaluator's ExecutionControl, the way the concurrent executor
    installs it per request."""
    control = ExecutionControl.from_options(
        ExecutionOptions(), guard=limits.guard(engine.store)
    )
    engine.evaluator.control = control
    try:
        return engine.execute(query)
    finally:
        engine.evaluator.control = None


class TestResourceGuard:
    def test_store_node_budget_enforced_via_control(self):
        # The guard rides ExecutionControl: a query constructing nodes
        # past its budget dies at a polling boundary with a typed error,
        # and the pending Δ is discarded whole (store untouched).
        engine = Engine()
        engine.load_document("doc", "<d/>")
        with pytest.raises(ResourceLimitError) as info:
            run_guarded(
                engine,
                "snap { for $i in 1 to 500 "
                'return insert { <x v="{$i}"/> } into { $doc/d } }',
                AdmissionLimits(max_store_nodes=50),
            )
        assert info.value.limit_name == "max_store_nodes"
        # The refused snap committed nothing.
        assert engine.execute("count($doc/d/x)").first_value() == 0

    def test_pending_delta_bound_discards_the_whole_list(self):
        engine = Engine()
        engine.load_document("doc", "<d/>")
        with pytest.raises(ResourceLimitError) as info:
            run_guarded(
                engine,
                "snap { for $i in 1 to 11 "
                "return insert { <x/> } into { $doc/d } }",
                AdmissionLimits(max_pending_delta=10),
            )
        err = info.value
        assert err.limit_name == "max_pending_delta"
        assert err.observed == 11
        assert engine.execute("count($doc/d/x)").first_value() == 0

    def test_under_budget_commits_normally(self):
        engine = Engine()
        engine.load_document("doc", "<d/>")
        run_guarded(
            engine,
            "snap { for $i in 1 to 20 "
            "return insert { <x/> } into { $doc/d } }",
            AdmissionLimits(max_store_nodes=10_000, max_pending_delta=100),
        )
        assert engine.execute("count($doc/d/x)").first_value() == 20


class TestAdmissionController:
    def test_below_soft_limit_always_admits(self):
        controller = AdmissionController(16, max_wait_ms=1.0)
        controller.observe_wait(5000.0)  # terrible latency...
        controller.admit(3)  # ...but the queue is short: admit

    def test_full_queue_sheds_with_structured_error(self):
        tracer = Tracer()
        controller = AdmissionController(8, tracer=tracer)
        with pytest.raises(ServiceOverloadedError) as info:
            controller.admit(8, wait_budget_ms=500.0)
        err = info.value
        assert err.code == "REPR0003"
        assert err.queue_depth == 8
        assert err.queue_capacity == 8
        assert err.wait_budget_ms == 500.0
        assert err.retry_after_ms >= 50.0
        payload = err.to_dict()
        assert payload["queue_depth"] == 8
        assert payload["retry_after_ms"] == err.retry_after_ms
        assert tracer.counters["resilience.admission.shed"] == 1

    def test_soft_region_sheds_when_latency_target_missed(self):
        controller = AdmissionController(16, max_wait_ms=100.0)
        for _ in range(10):
            controller.observe_wait(400.0)
        with pytest.raises(ServiceOverloadedError, match="service target"):
            controller.admit(13)  # soft limit is 12

    def test_soft_region_sheds_when_request_budget_would_expire(self):
        controller = AdmissionController(16, max_wait_ms=1000.0)
        for _ in range(10):
            controller.observe_wait(300.0)  # healthy vs the 1s target
        controller.admit(13, wait_budget_ms=2000.0)  # plenty of budget
        with pytest.raises(ServiceOverloadedError, match="expire"):
            controller.admit(13, wait_budget_ms=50.0)  # would die queued

    def test_ewma_tracks_recent_waits(self):
        controller = AdmissionController(16)
        controller.observe_wait(100.0)
        assert controller.expected_wait_ms == 100.0
        controller.observe_wait(0.0)
        assert controller.expected_wait_ms == pytest.approx(80.0)

    def test_retry_after_is_floored(self):
        assert AdmissionController(4).retry_after_ms() == 50.0

    def test_query_text_limits_apply_at_admission(self):
        controller = AdmissionController(
            16, limits=AdmissionLimits(max_depth=2)
        )
        with pytest.raises(ResourceLimitError):
            controller.admit(0, query="((((1))))")

    def test_to_dict(self):
        controller = AdmissionController(16, max_wait_ms=250.0)
        snapshot = controller.to_dict()
        assert snapshot["capacity"] == 16
        assert snapshot["soft_limit"] == 12
        assert snapshot["max_wait_ms"] == 250.0

    def test_validation(self):
        with pytest.raises(ValueError, match="capacity"):
            AdmissionController(0)
        with pytest.raises(ValueError, match="soft_limit"):
            AdmissionController(4, soft_limit=5)
