"""Health/readiness probes at every layer, and the CLI probe.

One HealthReport shape composes across the stack: Engine (store +
caches), DurableEngine (journal lag + circuit), ConcurrentExecutor
(serving + admission), AuctionService/AuctionFrontEnd (whole stack),
and ``repro health DIR`` for scripts.
"""

from __future__ import annotations

import json

from repro import DurableEngine, Engine, ResiliencePolicy
from repro.cli import health_main
from repro.resilience import HealthReport
from repro.resilience.health import DEGRADED, HEALTHY, UNHEALTHY
from repro.usecases.webservice import AuctionFrontEnd, AuctionService


class TestHealthReport:
    def test_defaults(self):
        report = HealthReport()
        assert report.status == HEALTHY
        assert report.ok and not report.degraded

    def test_worsen_is_monotone(self):
        report = HealthReport()
        report.worsen(DEGRADED)
        assert report.status == DEGRADED
        report.worsen(HEALTHY)  # cannot get better by folding
        assert report.status == DEGRADED
        report.worsen(UNHEALTHY)
        assert not report.ok

    def test_degraded_is_still_ready(self):
        report = HealthReport(status=DEGRADED)
        assert report.ok  # reads keep serving: don't pull the instance

    def test_merge_folds_status_and_sections(self):
        outer = HealthReport(sections={"serving": {"queue_depth": 0}})
        inner = HealthReport(status=DEGRADED, sections={"circuit": {"x": 1}})
        outer.merge(inner)
        assert outer.status == DEGRADED
        assert set(outer.sections) == {"serving", "circuit"}

    def test_json_round_trip(self):
        report = HealthReport(sections={"engine": {"store_nodes": 3}})
        payload = json.loads(report.to_json())
        assert payload == report.to_dict()
        assert payload["sections"]["engine"]["store_nodes"] == 3

    def test_render_is_human_readable(self):
        report = HealthReport(sections={"engine": {"store_nodes": 3}})
        text = report.render()
        assert text.startswith("status: healthy")
        assert "store_nodes=3" in text


class TestEngineHealth:
    def test_bare_engine_is_healthy(self):
        engine = Engine()
        engine.load_document("doc", "<d><x/></d>")
        report = engine.health()
        assert report.status == HEALTHY
        section = report.sections["engine"]
        assert section["store_nodes"] > 0
        assert section["documents"] >= 1
        assert section["journal_attached"] is False


class TestDurableEngineHealth:
    def test_sections_and_journal_lag(self, tmp_path):
        path = str(tmp_path / "store")
        with DurableEngine(
            path, resilience=ResiliencePolicy(), fsync="batch",
            fsync_batch=1000,
        ) as engine:
            engine.load_document("doc", "<log/>")
            engine.execute("snap insert { <e/> } into { $doc/log }")
            report = engine.health()
            assert report.status == HEALTHY
            durability = report.sections["durability"]
            assert durability["journal_records"] >= 1
            assert durability["unflushed_commits"] >= 1  # batch lag
            assert durability["journal_closed"] is False
            circuit = report.sections["circuit"]
            assert circuit["state"] == "closed"
            assert circuit["retry_after_ms"] == 0.0
            assert report.sections["engine"]["journal_attached"] is True

    def test_closed_journal_is_unhealthy(self, tmp_path):
        engine = DurableEngine(
            str(tmp_path / "store"), resilience=ResiliencePolicy()
        )
        engine.close()
        report = engine.health()
        assert report.status == UNHEALTHY
        assert not report.ok

    def test_recovery_summary_after_reopen(self, tmp_path):
        path = str(tmp_path / "store")
        with DurableEngine(path) as engine:
            engine.load_document("doc", "<log/>")
            engine.execute("snap insert { <e/> } into { $doc/log }")
        with DurableEngine(path, resilience=ResiliencePolicy()) as engine:
            report = engine.health()
            durability = report.sections["durability"]
            assert durability["recovered"] is True
            assert durability["last_recovery"]["records_replayed"] >= 1

    def test_without_policy_health_still_reports(self, tmp_path):
        with DurableEngine(str(tmp_path / "store")) as engine:
            report = engine.health()
            assert report.status == HEALTHY
            assert "durability" in report.sections
            assert "circuit" not in report.sections  # no breaker installed


class TestServiceHealth:
    def test_front_end_composes_the_whole_stack(self, tmp_path):
        service = AuctionService(
            auction_xml="<site><people><person id='p0'><name>A</name>"
            "</person></people><regions><item id='i0'/></regions></site>",
            durable_path=str(tmp_path / "store"),
            resilience=ResiliencePolicy(),
        )
        front = AuctionFrontEnd(service, workers=2, queue_size=8)
        try:
            front.get_item_nolog("i0", "p0")
            report = front.health()
            assert report.status == HEALTHY
            assert {"engine", "durability", "circuit", "serving",
                    "admission"} <= set(report.sections)
            serving = report.sections["serving"]
            assert serving["queue_capacity"] == 8
            assert serving["workers"] == 2
            assert serving["requests"] >= 1
        finally:
            front.shutdown()
            service.close()

    def test_shutdown_executor_is_unhealthy(self):
        front = AuctionFrontEnd(AuctionService(
            auction_xml="<site/>"), workers=1, queue_size=2)
        front.shutdown()
        report = front.health()
        assert report.status == UNHEALTHY
        assert report.sections["serving"]["shutdown"] is True


class TestCliHealth:
    def make_store(self, tmp_path) -> str:
        path = str(tmp_path / "store")
        with DurableEngine(path) as engine:
            engine.load_document("doc", "<log/>")
            engine.execute("snap insert { <e/> } into { $doc/log }")
        return path

    def test_healthy_store_exits_zero(self, tmp_path, capsys):
        assert health_main([self.make_store(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert out.startswith("status: healthy")

    def test_json_output_parses(self, tmp_path, capsys):
        assert health_main([self.make_store(tmp_path), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["status"] == "healthy"
        assert payload["ok"] is True
        assert "durability" in payload["sections"]

    def test_unopenable_path_exits_one(self, tmp_path, capsys):
        # A regular file where the durable directory should be: the
        # probe reports the failure and exits nonzero instead of
        # crashing (or silently creating a store).
        blocker = tmp_path / "blocker"
        blocker.write_text("not a directory")
        assert health_main([str(blocker)]) == 1
        assert "error" in capsys.readouterr().err
