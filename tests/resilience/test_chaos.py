"""The whole-stack chaos suite (the CI quality gate).

Runs the :class:`~repro.resilience.chaos.ChaosHarness` — the full
durable, concurrent auction stack under injected journal EIO, slow
fsync, a lock stall and snapshot pressure — and enforces the subsystem
invariant: every request ends in success or a typed refusal, the store
is never silently wrong, and the service returns to healthy.
"""

from __future__ import annotations

import pytest

from repro.errors import (
    CircuitOpenError,
    DurabilityError,
    ParseError,
    QueryTimeoutError,
    ServiceOverloadedError,
)
from repro.resilience.chaos import (
    CIRCUIT_OPEN,
    DURABILITY,
    OVERLOADED,
    SEMANTIC,
    SUCCESS,
    TIMEOUT,
    UNEXPECTED,
    ChaosHarness,
    ChaosReport,
    ChaosSchedule,
)


class TestClassify:
    def test_every_typed_error_maps_to_its_class(self):
        classify = ChaosHarness.classify
        assert classify(None) == SUCCESS
        assert classify(CircuitOpenError("open")) == CIRCUIT_OPEN
        assert classify(ServiceOverloadedError("shed")) == OVERLOADED
        assert classify(QueryTimeoutError("late")) == TIMEOUT
        assert classify(DurabilityError("EIO")) == DURABILITY
        assert classify(ParseError("oops")) == SEMANTIC

    def test_untyped_errors_are_flagged(self):
        assert ChaosHarness.classify(RuntimeError("boom")) == UNEXPECTED

    def test_circuit_open_is_not_misfiled_as_durability(self):
        # CircuitOpenError subclasses DurabilityError; the degraded-mode
        # refusal must be counted as its own outcome class.
        assert ChaosHarness.classify(CircuitOpenError("x")) == CIRCUIT_OPEN


class TestReportVerdicts:
    def healthy_report(self) -> ChaosReport:
        return ChaosReport(
            outcomes={SUCCESS: 10},
            store_invariants_ok=True,
            accounting_ok=True,
            durability_consistent=True,
            recovered_healthy=True,
        )

    def test_invariant_holds_when_everything_checks_out(self):
        assert self.healthy_report().invariant_holds

    def test_one_untyped_error_violates(self):
        report = self.healthy_report()
        report.unexpected.append("RuntimeError: boom")
        assert not report.all_typed
        assert not report.invariant_holds
        assert "UNTYPED" in report.render()

    def test_failed_recovery_violates(self):
        report = self.healthy_report()
        report.recovered_healthy = False
        assert not report.invariant_holds


class TestChaosRuns:
    @pytest.mark.slow
    def test_quiet_run_all_success(self, tmp_path):
        # No fault window at all: the stack under concurrent load with
        # nothing injected — every request succeeds, service healthy.
        schedule = ChaosSchedule(
            duration_s=1.0, eio_start_s=0.0, eio_stop_s=0.0
        )
        report = ChaosHarness(
            schedule,
            path=str(tmp_path / "state"),
            readers=2,
            writers=1,
            workers=2,
        ).run()
        assert report.invariant_holds, report.render()
        assert report.outcomes.get(SUCCESS, 0) > 0
        assert UNEXPECTED not in report.outcomes
        assert report.faults_fired == {}

    @pytest.mark.slow
    def test_eio_window_degrades_then_recovers(self, tmp_path):
        # Journal EIO mid-run: the breaker must trip (degraded read-only
        # mode observed), refusals must stay typed, and the service must
        # be healthy again by the end.
        schedule = ChaosSchedule(
            duration_s=2.0, eio_start_s=0.4, eio_stop_s=1.0
        )
        report = ChaosHarness(
            schedule, path=str(tmp_path / "state")
        ).run()
        assert report.invariant_holds, report.render()
        assert report.degraded_observed
        assert report.faults_fired.get("eio-on-write", 0) > 0
        # Writers hit either the raw journal error or the breaker.
        assert (
            report.outcomes.get(DURABILITY, 0)
            + report.outcomes.get(CIRCUIT_OPEN, 0)
            > 0
        )

    @pytest.mark.slow
    def test_everything_schedule(self, tmp_path):
        # The CI schedule: all four fault families composed.
        report = ChaosHarness(
            ChaosSchedule.everything(duration_s=2.5),
            path=str(tmp_path / "state"),
        ).run()
        assert report.invariant_holds, report.render()
        assert report.degraded_observed
        assert report.total_entries_live == report.total_entries_recovered
