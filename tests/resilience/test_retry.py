"""RetryPolicy: transient classification, jittered backoff, budgets.

All tests are fully deterministic — the clock, the sleep and the RNG are
injected, so no test actually waits.
"""

from __future__ import annotations

import random

import pytest

from repro.errors import (
    CircuitOpenError,
    DurabilityError,
    JournalCorruptionError,
    ParseError,
    QueryTimeoutError,
    ReplicaLagError,
    ServiceOverloadedError,
    StaleEpochError,
    UpdateError,
)
from repro.obs import Tracer
from repro.resilience import RetryPolicy


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def sleep(self, seconds: float) -> None:
        self.now += seconds


def flaky(failures: int, error: Exception):
    """A callable that fails *failures* times, then returns 'ok'."""
    state = {"left": failures}

    def fn():
        if state["left"] > 0:
            state["left"] -= 1
            raise error
        return "ok"

    return fn


class TestClassification:
    def test_transient_whitelist(self):
        policy = RetryPolicy()
        assert policy.is_transient(DurabilityError("EIO"))
        assert policy.is_transient(ServiceOverloadedError("shed"))
        assert policy.is_transient(QueryTimeoutError("slow"))

    def test_semantic_errors_are_never_transient(self):
        policy = RetryPolicy()
        assert not policy.is_transient(ParseError("bad query"))
        assert not policy.is_transient(UpdateError("conflict"))

    def test_corruption_is_never_transient(self):
        # Even though JournalCorruptionError subclasses DurabilityError
        # (which IS whitelisted), corruption does not heal on retry.
        policy = RetryPolicy()
        assert not policy.is_transient(JournalCorruptionError("torn frame"))

    def test_replica_lag_is_transient(self):
        # Replication lag heals: replicas catch up, restarted replicas
        # replay the journal, partition windows close.
        policy = RetryPolicy()
        assert policy.is_transient(
            ReplicaLagError("behind", lag_seq=9, max_lag_seq=4)
        )
        assert policy.is_transient(
            ReplicaLagError("replica-0 is unreachable: reset")
        )

    def test_stale_epoch_is_permanently_fatal(self):
        # A deposed primary's fenced write must never be retried —
        # success on retry would be split-brain by persistence.
        policy = RetryPolicy()
        assert not policy.is_transient(
            StaleEpochError("deposed", stale_epoch=1, fence_epoch=2)
        )

    def test_follower_resync_is_never_retried(self):
        # FollowerResyncRequired subclasses JournalCorruptionError:
        # the shipped frames are gone, only a resync helps.
        from repro.durability.journal import FollowerResyncRequired

        assert not RetryPolicy().is_transient(
            FollowerResyncRequired("compacted past the follower")
        )

    def test_circuit_open_opt_in(self):
        assert not RetryPolicy().is_transient(CircuitOpenError("open"))
        assert RetryPolicy(retry_circuit_open=True).is_transient(
            CircuitOpenError("open")
        )

    def test_semantic_error_propagates_from_first_attempt(self):
        calls = []

        def fn():
            calls.append(1)
            raise ParseError("nope")

        with pytest.raises(ParseError):
            RetryPolicy(max_attempts=5).call(fn, sleep=lambda s: None)
        assert len(calls) == 1


class TestBackoff:
    def test_full_jitter_bounds(self):
        policy = RetryPolicy(base_delay_ms=10.0, max_delay_ms=100.0)
        rng = random.Random(42)
        for attempt in range(1, 12):
            cap = min(100.0, 10.0 * (2 ** (attempt - 1)))
            for _ in range(50):
                delay = policy.backoff_ms(attempt, rng)
                assert 0.0 <= delay <= cap

    def test_delays_sequence_length(self):
        policy = RetryPolicy(max_attempts=4)
        assert len(list(policy.delays_ms(random.Random(1)))) == 3

    def test_circuit_retry_after_is_a_floor(self):
        # With retry_circuit_open, the breaker's retry_after_ms hint
        # floors the backoff: sleeping less is guaranteed wasted work.
        policy = RetryPolicy(
            max_attempts=2,
            base_delay_ms=0.0,
            retry_circuit_open=True,
            budget_ms=None,
        )
        clock = FakeClock()
        slept = []
        with pytest.raises(CircuitOpenError):
            policy.call(
                flaky(5, CircuitOpenError("open", retry_after_ms=500.0)),
                sleep=slept.append,
                clock=clock,
            )
        assert slept == [0.5]

    def test_overload_retry_after_is_a_floor(self):
        policy = RetryPolicy(max_attempts=2, base_delay_ms=0.0, budget_ms=None)
        slept = []
        with pytest.raises(ServiceOverloadedError):
            policy.call(
                flaky(5, ServiceOverloadedError("shed", retry_after_ms=250.0)),
                sleep=slept.append,
                clock=FakeClock(),
            )
        assert slept == [0.25]

    def test_replica_lag_retry_after_is_a_floor(self):
        # The router stamps one shipping interval on lag refusals;
        # retrying sooner cannot find a fresher replica.
        policy = RetryPolicy(max_attempts=2, base_delay_ms=0.0, budget_ms=None)
        slept = []
        with pytest.raises(ReplicaLagError):
            policy.call(
                flaky(5, ReplicaLagError("behind", retry_after_ms=40.0)),
                sleep=slept.append,
                clock=FakeClock(),
            )
        assert slept == [0.04]


class TestLoop:
    def test_recovers_after_transient_failures(self):
        tracer = Tracer()
        result = RetryPolicy(max_attempts=4, base_delay_ms=1.0).call(
            flaky(2, DurabilityError("EIO")),
            tracer=tracer,
            rng=random.Random(0),
            sleep=lambda s: None,
        )
        assert result == "ok"
        assert tracer.counters["resilience.retry.attempts"] == 3
        assert tracer.counters["resilience.retry.retries"] == 2
        assert tracer.counters["resilience.retry.recovered"] == 1
        assert "resilience.retry.exhausted" not in tracer.counters

    def test_exhaustion_raises_last_error(self):
        tracer = Tracer()
        with pytest.raises(DurabilityError, match="EIO"):
            RetryPolicy(max_attempts=3, base_delay_ms=1.0).call(
                flaky(10, DurabilityError("EIO")),
                tracer=tracer,
                rng=random.Random(0),
                sleep=lambda s: None,
            )
        assert tracer.counters["resilience.retry.attempts"] == 3
        assert tracer.counters["resilience.retry.exhausted"] == 1

    def test_budget_stops_retries_early(self):
        # Budget of 100ms; each backoff draw is ~forced to 80ms, so the
        # second retry cannot land inside the budget and is not tried.
        clock = FakeClock()

        class FixedRng:
            def uniform(self, low, high):
                return 80.0

        calls = []

        def fn():
            calls.append(clock.now)
            raise DurabilityError("EIO")

        with pytest.raises(DurabilityError):
            RetryPolicy(
                max_attempts=10, base_delay_ms=80.0, budget_ms=100.0
            ).call(fn, rng=FixedRng(), sleep=clock.sleep, clock=clock)
        assert len(calls) == 2  # first try + the one retry that fit

    def test_on_retry_hook_sees_attempt_error_delay(self):
        seen = []
        RetryPolicy(max_attempts=3, base_delay_ms=4.0).call(
            flaky(1, DurabilityError("EIO")),
            rng=random.Random(7),
            sleep=lambda s: None,
            on_retry=lambda attempt, exc, delay: seen.append(
                (attempt, type(exc).__name__, delay)
            ),
        )
        assert len(seen) == 1
        attempt, name, delay = seen[0]
        assert attempt == 1 and name == "DurabilityError"
        assert 0.0 <= delay <= 4.0

    def test_single_attempt_policy_never_sleeps(self):
        slept = []
        with pytest.raises(DurabilityError):
            RetryPolicy(max_attempts=1).call(
                flaky(1, DurabilityError("EIO")), sleep=slept.append
            )
        assert slept == []

    def test_validation(self):
        with pytest.raises(ValueError, match="max_attempts"):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError, match="delays"):
            RetryPolicy(base_delay_ms=-1.0)
        with pytest.raises(ValueError, match="budget_ms"):
            RetryPolicy(budget_ms=0.0)
