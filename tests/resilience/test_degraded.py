"""Degraded read-only mode, end to end through the DurableEngine.

A failing journal (injected EIO) trips the circuit breaker; while it is
open, reads keep serving from the last consistent state and writes get
a typed :class:`CircuitOpenError` without touching the store.  Once the
fault clears and the reset timeout passes, one half-open probe write
recovers the service to fully healthy.
"""

from __future__ import annotations

import time

import pytest

from repro import DurableEngine, FaultInjector, ResiliencePolicy
from repro.durability.faults import EIO_ON_WRITE
from repro.errors import CircuitOpenError, DurabilityError
from repro.resilience.breaker import CLOSED, OPEN


POLICY = ResiliencePolicy(
    breaker_failure_threshold=2,
    breaker_min_calls=100,  # keep the rate rule out of play
    breaker_reset_timeout_ms=40.0,
)


def make_engine(tmp_path, injector):
    engine = DurableEngine(
        str(tmp_path / "store"),
        faults=injector,
        resilience=POLICY,
    )
    engine.load_document("doc", "<log/>")
    engine.execute("snap insert { <item n='0'/> } into { $doc/log }")
    return engine


@pytest.fixture
def injector():
    return FaultInjector()


def trip(engine, injector):
    """Drive enough failing writes to open the circuit."""
    for _ in range(POLICY.breaker_failure_threshold):
        injector.arm(EIO_ON_WRITE, after=1)
        with pytest.raises(DurabilityError):
            engine.execute("snap insert { <item n='x'/> } into { $doc/log }")
    injector.disarm(EIO_ON_WRITE)
    assert engine.breaker.state == OPEN
    assert engine.degraded


class TestDegradedMode:
    def test_fixture_engine_starts_healthy(self, tmp_path, injector):
        with make_engine(tmp_path, injector) as engine:
            assert engine.breaker is not None
            assert engine.breaker.state == CLOSED
            assert not engine.degraded
            assert engine.health().status == "healthy"

    def test_journal_failures_open_the_circuit(self, tmp_path, injector):
        with make_engine(tmp_path, injector) as engine:
            trip(engine, injector)
            assert engine.health().status == "degraded"
            circuit = engine.health().sections["circuit"]
            assert circuit["state"] in ("open", "half-open")

    def test_open_circuit_refuses_writes_without_applying(
        self, tmp_path, injector
    ):
        with make_engine(tmp_path, injector) as engine:
            trip(engine, injector)
            before = engine.execute("count($doc/log/item)").first_value()
            with pytest.raises(CircuitOpenError) as info:
                engine.execute(
                    "snap insert { <item n='y'/> } into { $doc/log }"
                )
            assert info.value.code == "REPR0006"
            # The refused snap's Δ was discarded whole.
            count = engine.execute("count($doc/log/item)").first_value()
            assert count == before

    def test_reads_keep_serving_while_degraded(self, tmp_path, injector):
        with make_engine(tmp_path, injector) as engine:
            trip(engine, injector)
            # An empty Δ never consults the breaker: reads are untouched.
            assert engine.execute("count($doc/log/item)").first_value() == 1
            assert engine.execute("$doc/log/item/@n").strings() == ["0"]

    def test_probe_write_recovers_to_healthy(self, tmp_path, injector):
        with make_engine(tmp_path, injector) as engine:
            trip(engine, injector)
            time.sleep(POLICY.breaker_reset_timeout_ms / 1000.0 + 0.02)
            # Fault cleared + reset timeout passed: the next write is the
            # half-open probe, succeeds, and closes the circuit.
            engine.execute("snap insert { <item n='z'/> } into { $doc/log }")
            assert engine.breaker.state == CLOSED
            assert not engine.degraded
            assert engine.health().status == "healthy"
            assert engine.execute("count($doc/log/item)").first_value() == 2

    def test_probe_failure_reopens(self, tmp_path, injector):
        with make_engine(tmp_path, injector) as engine:
            trip(engine, injector)
            time.sleep(POLICY.breaker_reset_timeout_ms / 1000.0 + 0.02)
            injector.arm(EIO_ON_WRITE, after=1)  # the disk is still dead
            with pytest.raises(DurabilityError):
                engine.execute("snap insert { <item/> } into { $doc/log }")
            injector.disarm(EIO_ON_WRITE)
            assert engine.breaker.state == OPEN
            with pytest.raises(CircuitOpenError):
                engine.execute("snap insert { <item/> } into { $doc/log }")

    def test_degraded_state_survives_until_probe_not_restart(
        self, tmp_path, injector
    ):
        # Closing and reopening the durable directory resets the breaker
        # (circuit state is process-local, not persisted) and recovers
        # exactly the committed writes.
        path = str(tmp_path / "store")
        engine = DurableEngine(path, faults=injector, resilience=POLICY)
        engine.load_document("doc", "<log/>")
        engine.execute("snap insert { <item n='0'/> } into { $doc/log }")
        trip(engine, injector)
        engine.close()
        with DurableEngine(path, resilience=POLICY) as reopened:
            assert reopened.breaker.state == CLOSED
            assert not reopened.degraded
            assert reopened.execute("count($doc/log/item)").first_value() == 1

    def test_disabled_policy_keeps_failing_hard(self, tmp_path, injector):
        # The explicit off switch: every write rides the full failure
        # path, no breaker, no degraded mode.
        engine = DurableEngine(
            str(tmp_path / "store"),
            faults=injector,
            resilience=ResiliencePolicy.disabled(),
        )
        engine.load_document("doc", "<log/>")
        with engine:
            assert engine.breaker is None
            for _ in range(4):
                injector.arm(EIO_ON_WRITE, after=1)
                with pytest.raises(DurabilityError):
                    engine.execute("snap insert { <x/> } into { $doc/log }")
            injector.disarm(EIO_ON_WRITE)
            engine.execute("snap insert { <x/> } into { $doc/log }")
            assert engine.execute("count($doc/log/x)").first_value() == 1
