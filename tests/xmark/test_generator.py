"""Tests for the XMark-style data generator."""

import pytest

from repro import Engine
from repro.xmark import XMarkConfig, generate_auction_xml
from repro.xmlio import parse_document


@pytest.fixture(scope="module")
def engine() -> Engine:
    e = Engine()
    e.load_document(
        "auction",
        generate_auction_xml(
            XMarkConfig(persons=25, items=15, open_auctions=8, closed_auctions=30)
        ),
    )
    return e


class TestDeterminism:
    def test_same_seed_same_document(self):
        config = XMarkConfig(persons=10, items=5, seed=7)
        assert generate_auction_xml(config) == generate_auction_xml(config)

    def test_different_seed_differs(self):
        a = generate_auction_xml(XMarkConfig(persons=10, items=5, seed=1))
        b = generate_auction_xml(XMarkConfig(persons=10, items=5, seed=2))
        assert a != b

    def test_scale_factor(self):
        small = XMarkConfig.scale(0.1)
        large = XMarkConfig.scale(1.0)
        assert large.persons == 10 * small.persons or large.persons > small.persons
        assert large.closed_auctions > small.closed_auctions


class TestSchemaShape:
    def test_well_formed(self):
        xml = generate_auction_xml(XMarkConfig(persons=5, items=3))
        doc = parse_document(xml)
        assert doc.children[0].name == "site"

    def test_counts(self, engine):
        assert engine.execute("count($auction//person)").first_value() == 25
        assert engine.execute("count($auction//item)").first_value() == 15
        assert engine.execute("count($auction//open_auction)").first_value() == 8
        assert engine.execute("count($auction//closed_auction)").first_value() == 30

    def test_ids_unique(self, engine):
        assert engine.execute(
            "count(distinct-values($auction//person/@id))"
        ).first_value() == 25

    def test_referential_integrity_buyers(self, engine):
        ok = engine.execute(
            "every $t in $auction//closed_auction satisfies "
            "exists($auction//person[@id = $t/buyer/@person])"
        )
        assert ok.first_value() is True

    def test_referential_integrity_items(self, engine):
        ok = engine.execute(
            "every $t in $auction//closed_auction satisfies "
            "exists($auction//item[@id = $t/itemref/@item])"
        )
        assert ok.first_value() is True

    def test_person_fields(self, engine):
        person = engine.execute("($auction//person)[1]")
        xml = person.serialize()
        for field in ("<name>", "<emailaddress>", "<city>", "<income>"):
            assert field in xml

    def test_open_auction_current_consistent(self, engine):
        ok = engine.execute(
            "every $o in $auction//open_auction satisfies "
            "number($o/current) ge number($o/initial)"
        )
        assert ok.first_value() is True

    def test_regions_partition_items(self, engine):
        in_regions = engine.execute(
            "count($auction//namerica/item) + count($auction//europe/item)"
        ).first_value()
        assert in_regions == 15
