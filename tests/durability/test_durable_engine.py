"""DurableEngine end-to-end: the crash matrix, compaction, atomicity.

The heart of this module is the **crash matrix**: every registered crash
point × {ordered, conflict-detection} application semantics, each case
proving the recovery contract — the recovered store equals a prefix of
the acknowledged snaps (exactly the acknowledged ones for a crash before
the fsync, at most one extra for a crash after it).
"""

from __future__ import annotations

import os

import pytest

from repro import Engine
from repro.concurrent.executor import ConcurrentExecutor
from repro.durability import (
    ALL_CRASH_POINTS,
    CRASH_AFTER_JOURNAL,
    CRASH_BEFORE_FSYNC,
    CRASH_MID_CHECKPOINT,
    EIO_ON_WRITE,
    DurableEngine,
    FaultInjector,
    InjectedCrash,
    recover,
)
from repro.durability.manifest import read_manifest
from repro.errors import DurabilityError, UpdateApplicationError

SEMANTICS = ["ordered", "conflict-detection"]


def snap_query(semantics: str, n: int) -> str:
    keyword = "" if semantics == "ordered" else f"{semantics} "
    return f'snap {keyword}{{ insert {{ <e n="{n}"/> }} into {{ $doc/log }} }}'


def fresh(tmp_path, **kwargs) -> tuple[str, DurableEngine]:
    path = str(tmp_path / "d")
    engine = DurableEngine(path, **kwargs)
    engine.load_document("doc", "<log/>")
    return path, engine


def entries(engine) -> int:
    return engine.execute("count($doc/log/e)").first_value()


class TestCrashMatrix:
    """Every crash point × every update-application semantics."""

    @pytest.mark.parametrize("semantics", SEMANTICS)
    @pytest.mark.parametrize("point", ALL_CRASH_POINTS)
    def test_recovery_is_a_prefix_of_acknowledged_snaps(
        self, tmp_path, point, semantics
    ):
        faults = FaultInjector()
        path, engine = fresh(tmp_path, faults=faults)
        acked = 0
        for n in range(3):
            engine.execute(snap_query(semantics, n))
            acked += 1

        if point == CRASH_MID_CHECKPOINT:
            # The crash lands after the new checkpoint file is written
            # but before the manifest points at it: the old pair must
            # stay authoritative.
            faults.arm(point)
            with pytest.raises(InjectedCrash):
                engine.checkpoint()
            expected = acked
        elif point == EIO_ON_WRITE:
            # Survivable I/O failure: typed error, store rolled back,
            # engine usable afterwards.
            faults.arm(point)
            with pytest.raises(DurabilityError):
                engine.execute(snap_query(semantics, 99))
            assert entries(engine) == acked  # rolled back in memory too
            engine.execute(snap_query(semantics, 100))
            expected = acked + 1
        else:
            faults.arm(point)
            with pytest.raises(InjectedCrash):
                engine.execute(snap_query(semantics, 99))
            # Before the fsync: the frame is torn, the snap was never
            # acknowledged — it must vanish.  After the journal append:
            # durable but unacknowledged — it may (here: must) appear.
            expected = acked + (1 if point == CRASH_AFTER_JOURNAL else 0)

        # Simulated process death: abandon the engine, recover from disk.
        result = recover(path)
        assert entries(result.engine) == expected
        result.engine.store.check_invariants()
        assert faults.fired == [point]

    def test_torn_frame_is_truncated_not_fatal(self, tmp_path):
        faults = FaultInjector()
        path, engine = fresh(tmp_path, faults=faults)
        engine.execute(snap_query("ordered", 1))
        faults.arm(CRASH_BEFORE_FSYNC)
        with pytest.raises(InjectedCrash):
            engine.execute(snap_query("ordered", 2))
        result = recover(path)
        assert result.report.truncated_bytes > 0
        assert result.report.records_replayed == 1

    def test_mid_checkpoint_crash_leaves_recoverable_orphans(self, tmp_path):
        faults = FaultInjector()
        path, engine = fresh(tmp_path, faults=faults)
        engine.execute(snap_query("ordered", 1))
        generation = read_manifest(path)["generation"]
        faults.arm(CRASH_MID_CHECKPOINT)
        with pytest.raises(InjectedCrash):
            engine.checkpoint()
        # The manifest still names the old pair; the half-finished
        # checkpoint is an orphan that reopening cleans up.
        manifest = read_manifest(path)
        assert manifest["generation"] == generation
        orphan = os.path.join(
            path, f"checkpoint-{generation + 1:06d}.json"
        )
        assert os.path.exists(orphan)
        reopened = DurableEngine(path)
        assert not os.path.exists(orphan)
        assert entries(reopened) == 1
        reopened.close()


class TestAtomicSnaps:
    FAILING_SNAP = (
        'snap { insert { <e n="a"/> } into { $doc/log },'
        "       delete { $doc/log/x },"
        '       insert { <e n="b"/> } after { $doc/log/x } }'
    )

    def test_failed_snap_rolls_back_and_journals_nothing(self, tmp_path):
        path, engine = fresh(tmp_path)
        assert engine.evaluator.atomic_snaps  # the DurableEngine default
        engine.execute("snap { insert { <x/> } into { $doc/log } }")
        records_before = engine.journal.records
        # The anchor <x/> passes validation at evaluation time but the
        # snap's own delete detaches it before the last insert applies —
        # a genuine mid-application precondition failure.  The snap must
        # roll back whole and leave no journal record.
        with pytest.raises(UpdateApplicationError):
            engine.execute(self.FAILING_SNAP)
        assert entries(engine) == 0
        assert engine.execute("count($doc/log/x)").first_value() == 1
        assert engine.journal.records == records_before
        engine.close()
        result = recover(path)
        assert entries(result.engine) == 0

    def test_memory_and_disk_agree_after_failed_snap(self, tmp_path):
        path, engine = fresh(tmp_path)
        engine.execute("snap { insert { <x/> } into { $doc/log } }")
        with pytest.raises(UpdateApplicationError):
            engine.execute(self.FAILING_SNAP)
        engine.execute(snap_query("ordered", 7))
        before = engine.execute("$doc").serialize()
        engine.close()
        assert recover(path).engine.execute("$doc").serialize() == before


class TestCompaction:
    def test_journal_folds_into_new_checkpoint_past_threshold(
        self, tmp_path
    ):
        path, engine = fresh(tmp_path, compact_max_records=5)
        generation = read_manifest(path)["generation"]
        for n in range(6):
            engine.execute(snap_query("ordered", n))
        manifest = read_manifest(path)
        assert manifest["generation"] > generation
        assert manifest["seq"] >= 5  # records folded into the checkpoint
        # The old pair is gone, the new journal is (nearly) empty.
        assert engine.journal.records <= 1
        engine.execute(snap_query("ordered", 99))
        engine.close()
        result = recover(path)
        assert entries(result.engine) == 7
        result.engine.store.check_invariants()

    def test_sequence_numbering_survives_compaction(self, tmp_path):
        path, engine = fresh(tmp_path, compact_max_records=2)
        for n in range(7):
            engine.execute(snap_query("ordered", n))
        engine.close()
        # Whatever generation we landed on, recovery must see contiguous
        # sequence numbers (manifest seq + 1 onwards) or refuse.
        result = recover(path)
        assert entries(result.engine) == 7

    def test_explicit_checkpoint_empties_the_journal(self, tmp_path):
        path, engine = fresh(tmp_path)
        engine.execute(snap_query("ordered", 1))
        assert engine.journal.records == 1
        engine.checkpoint()
        assert engine.journal.records == 0
        engine.close()
        result = recover(path)
        assert result.report.records_replayed == 0
        assert entries(result.engine) == 1


class TestEngineSurface:
    def test_reopening_with_an_engine_argument_is_an_error(self, tmp_path):
        path, engine = fresh(tmp_path)
        engine.close()
        with pytest.raises(DurabilityError, match="already holds"):
            DurableEngine(path, engine=Engine())

    def test_transaction_commits_atomically_and_survives_recovery(
        self, tmp_path
    ):
        # Historically refused: the legacy checkpoint/rollback transaction
        # would have un-applied journaled snaps.  The session-based
        # transaction buffers on a snapshot and journals the commit as
        # one atomic frame group, so durable engines now support it.
        path, engine = fresh(tmp_path)
        with engine.transaction() as txn:
            txn.execute(snap_query("ordered", 1))
            txn.execute(snap_query("ordered", 2))
        assert entries(engine) == 2
        engine.close()
        result = recover(path)
        assert entries(result.engine) == 2
        assert result.report.groups_replayed == 1

    def test_transaction_rollback_leaves_store_and_journal_untouched(
        self, tmp_path
    ):
        path, engine = fresh(tmp_path)
        records_before = engine.journal.records
        session = engine.session()
        txn = session.begin()
        txn.execute(snap_query("ordered", 1))
        txn.rollback()
        session.close()
        assert entries(engine) == 0
        assert engine.journal.records == records_before

    def test_delegation_covers_the_engine_surface(self, tmp_path):
        path, engine = fresh(tmp_path)
        prepared = engine.prepare("count($doc/log/e)")
        assert prepared.execute().first_value() == 0
        assert engine.variable("doc") is not None
        assert engine.store is engine.engine.store

    def test_context_manager_closes_the_journal(self, tmp_path):
        path, _ = fresh(tmp_path)
        with DurableEngine(str(tmp_path / "d2")) as engine:
            journal = engine.journal
        assert journal.closed

    def test_journal_counters_reach_the_tracer(self, tmp_path):
        path, engine = fresh(tmp_path)
        engine.execute(snap_query("ordered", 1))
        counters = engine.tracer.snapshot_counters()
        assert counters["journal.records"] == 1
        assert counters["journal.fsyncs"] >= 1
        assert counters["journal.bytes"] > 0

    def test_prepared_queries_are_journaled_too(self, tmp_path):
        path, engine = fresh(tmp_path)
        prepared = engine.prepare(
            'snap { insert { <e n="{$n}"/> } into { $doc/log } }'
        )
        prepared.execute(bindings={"n": 1})
        prepared.execute(bindings={"n": 2})
        engine.close()
        result = recover(path)
        assert entries(result.engine) == 2


class TestConcurrentDurability:
    def test_durable_engine_under_the_concurrent_executor(self, tmp_path):
        path, engine = fresh(tmp_path, compact_max_records=8)
        executor = ConcurrentExecutor(engine, workers=4, queue_size=64)
        try:
            futures = [
                executor.submit(
                    'snap { insert { <e n="{$n}"/> } into { $doc/log } }',
                    bindings={"n": n},
                )
                for n in range(24)
            ]
            for future in futures:
                future.result(timeout=30)
        finally:
            executor.shutdown()
        total = entries(engine)
        assert total == 24
        engine.close()
        result = recover(path)
        assert entries(result.engine) == 24
        result.engine.store.check_invariants()
        # The executor's post-write hook compacted along the way.
        assert read_manifest(path)["generation"] > 1
