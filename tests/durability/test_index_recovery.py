"""Crash recovery × indexes: a store rebuilt from checkpoint + journal
replay must yield indexes in exact agreement with a from-scratch rebuild
over the recovered records — no stale postings survive a crash, and no
postings are lost.

The index is deliberately *not* journaled: recovery replays ops against a
fresh store whose ``_touch()``/per-op hooks keep (or lazily rebuild) the
index, so agreement here proves the maintenance hooks and the bulk
rebuild compute the same function of the records.
"""

import pytest

from repro.durability import DurableEngine, recover
from repro.durability.faults import (
    CRASH_AFTER_JOURNAL,
    CRASH_BEFORE_FSYNC,
    FaultInjector,
    InjectedCrash,
)
from repro.index.manager import IndexManager

DOC = (
    "<inventory>"
    "<item id='a'><name>widget</name></item>"
    "<item id='b'><name>sprocket</name></item>"
    "<item id='c'><name>flywheel</name></item>"
    "</inventory>"
)

UPDATES = [
    'snap { replace value of { $doc//item[@id="a"]/name } '
    'with { "gadget" } }',
    'snap { rename { $doc//item[@id="b"]/@id } to { "ident" } }',
    'snap { insert { <item id="d"><name>cog</name></item> } '
    "into { $doc/inventory } }",
    'snap { delete { $doc//item[@id="c"] } }',
]


def assert_indexes_match_fresh_rebuild(store):
    """Build via probes, verify, and compare against a scratch manager."""
    store.token_probe("gadget")  # forces ensure_built on the live index
    live = store.indexes
    live.verify()
    scratch = IndexManager(store)
    scratch.ensure_built()
    assert live.attr_index == scratch.attr_index
    assert live.token_index == scratch.token_index


def crash_recover(tmp_path, crash_point, crash_on_update):
    faults = FaultInjector()
    path = str(tmp_path / "d")
    engine = DurableEngine(path, faults=faults)
    engine.load_document("doc", DOC)
    # Warm the live index so the crash interrupts *maintained* state, not
    # a never-built one.
    engine.store.token_probe("widget")
    for update in UPDATES[:crash_on_update]:
        engine.execute(update)
    faults.arm(crash_point)
    with pytest.raises(InjectedCrash):
        engine.execute(UPDATES[crash_on_update])
    return recover(path).engine


class TestIndexRecovery:
    def test_clean_shutdown_indexes_agree(self, tmp_path):
        path = str(tmp_path / "d")
        engine = DurableEngine(path)
        engine.load_document("doc", DOC)
        for update in UPDATES:
            engine.execute(update)
        engine.close()
        recovered = recover(path).engine
        assert_indexes_match_fresh_rebuild(recovered.store)

    @pytest.mark.parametrize("crash_on_update", [0, 2, 3])
    def test_crash_before_fsync_drops_the_snap(
        self, tmp_path, crash_on_update
    ):
        engine = crash_recover(
            tmp_path, CRASH_BEFORE_FSYNC, crash_on_update
        )
        store = engine.store
        assert_indexes_match_fresh_rebuild(store)
        # The crashed snap never committed: with crash_on_update == 0 the
        # replace-value never happened, so "widget" is still indexed.
        if crash_on_update == 0:
            assert len(store.token_probe("widget")) == 1
            assert store.token_probe("gadget") == ()

    def test_crash_after_journal_keeps_the_snap(self, tmp_path):
        engine = crash_recover(tmp_path, CRASH_AFTER_JOURNAL, 0)
        store = engine.store
        assert_indexes_match_fresh_rebuild(store)
        # The record hit the journal before the crash, so recovery
        # replays it — and the index must reflect the replayed write.
        # (gc first: replace-value-of detaches the old text node, whose
        # posting rightly lives until the node is reclaimed.)
        engine.gc()
        assert store.token_probe("widget") == ()
        assert len(store.token_probe("gadget")) == 1

    def test_recovered_engine_maintains_incrementally(self, tmp_path):
        engine = crash_recover(tmp_path, CRASH_BEFORE_FSYNC, 2)
        store = engine.store
        store.token_probe("gadget")  # build on the recovered store
        rebuilds = store.indexes.rebuilds
        engine.execute(UPDATES[2])  # re-issue the crashed insert
        engine.gc()  # reclaim constructor intermediates
        assert len(store.token_probe("cog")) == 1
        assert store.indexes.rebuilds == rebuilds  # maintained, not rebuilt
        assert_indexes_match_fresh_rebuild(store)
        store.check_invariants()
