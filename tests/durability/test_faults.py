"""The fault-injection harness itself: injector countdowns, FaultyFile."""

from __future__ import annotations

import errno
import io

import pytest

from repro.durability.faults import (
    ALL_CRASH_POINTS,
    CRASH_AFTER_JOURNAL,
    CRASH_BEFORE_FSYNC,
    EIO_ON_WRITE,
    FaultInjector,
    FaultyFile,
    InjectedCrash,
)


class TestFaultInjector:
    def test_unarmed_points_never_fire(self):
        injector = FaultInjector()
        for point in ALL_CRASH_POINTS:
            injector.hit(point)  # no exception
        assert injector.fired == []

    def test_armed_point_fires_once_then_disarms(self):
        injector = FaultInjector()
        injector.arm(CRASH_AFTER_JOURNAL)
        with pytest.raises(InjectedCrash) as excinfo:
            injector.hit(CRASH_AFTER_JOURNAL)
        assert excinfo.value.point == CRASH_AFTER_JOURNAL
        injector.hit(CRASH_AFTER_JOURNAL)  # disarmed now
        assert injector.fired == [CRASH_AFTER_JOURNAL]

    def test_countdown_fires_on_nth_hit(self):
        injector = FaultInjector()
        injector.arm(CRASH_BEFORE_FSYNC, after=3)
        injector.hit(CRASH_BEFORE_FSYNC)
        assert not injector.will_fire(CRASH_BEFORE_FSYNC)
        injector.hit(CRASH_BEFORE_FSYNC)
        assert injector.will_fire(CRASH_BEFORE_FSYNC)
        with pytest.raises(InjectedCrash):
            injector.hit(CRASH_BEFORE_FSYNC)

    def test_eio_raises_survivable_oserror(self):
        injector = FaultInjector()
        injector.arm(EIO_ON_WRITE)
        with pytest.raises(OSError) as excinfo:
            injector.hit(EIO_ON_WRITE)
        assert excinfo.value.errno == errno.EIO
        assert not isinstance(excinfo.value, InjectedCrash)

    def test_injected_crash_is_not_an_exception_subclass(self):
        # It must sail through `except Exception` and `except OSError`
        # handlers, the way a real process death would.
        assert issubclass(InjectedCrash, BaseException)
        assert not issubclass(InjectedCrash, Exception)

    def test_unknown_point_and_bad_countdown_rejected(self):
        injector = FaultInjector()
        with pytest.raises(ValueError):
            injector.arm("crash-on-tuesdays")
        with pytest.raises(ValueError):
            injector.arm(EIO_ON_WRITE, after=0)

    def test_disarm(self):
        injector = FaultInjector()
        injector.arm(EIO_ON_WRITE)
        injector.disarm(EIO_ON_WRITE)
        injector.hit(EIO_ON_WRITE)  # no exception
        injector.disarm("crash-on-tuesdays")  # unknown: no-op

    def test_persistent_arm_fires_every_hit_until_disarmed(self):
        injector = FaultInjector()
        injector.arm(EIO_ON_WRITE, persistent=True)
        for _ in range(3):
            with pytest.raises(OSError):
                injector.hit(EIO_ON_WRITE)
        assert injector.fired == [EIO_ON_WRITE] * 3
        injector.disarm(EIO_ON_WRITE)
        injector.hit(EIO_ON_WRITE)  # window closed: no exception
        assert len(injector.fired) == 3

    def test_persistent_arm_honours_the_countdown(self):
        injector = FaultInjector()
        injector.arm(EIO_ON_WRITE, after=2, persistent=True)
        injector.hit(EIO_ON_WRITE)  # countdown: first hit passes
        with pytest.raises(OSError):
            injector.hit(EIO_ON_WRITE)
        with pytest.raises(OSError):
            injector.hit(EIO_ON_WRITE)  # and keeps firing

    def test_persistent_arm_rejected_on_crash_points(self):
        # A fired crash ends the simulated process, so persistence is
        # only meaningful for the survivable EIO point.
        injector = FaultInjector()
        with pytest.raises(ValueError):
            injector.arm(CRASH_BEFORE_FSYNC, persistent=True)

    def test_rearming_non_persistent_clears_persistence(self):
        injector = FaultInjector()
        injector.arm(EIO_ON_WRITE, persistent=True)
        injector.arm(EIO_ON_WRITE)  # downgrade to one-shot
        with pytest.raises(OSError):
            injector.hit(EIO_ON_WRITE)
        injector.hit(EIO_ON_WRITE)  # one-shot: disarmed after firing


class TestFaultyFile:
    def test_writes_within_budget_pass_through(self):
        backing = io.BytesIO()
        faulty = FaultyFile(backing, fail_after_bytes=10)
        assert faulty.write(b"12345") == 5
        assert backing.getvalue() == b"12345"

    def test_mid_write_failure_persists_the_partial_prefix(self):
        backing = io.BytesIO()
        faulty = FaultyFile(backing, fail_after_bytes=3)
        with pytest.raises(OSError) as excinfo:
            faulty.write(b"abcdef")
        assert excinfo.value.errno == errno.EIO
        assert backing.getvalue() == b"abc"  # a genuine torn write

    def test_exhausted_budget_fails_immediately(self):
        backing = io.BytesIO()
        faulty = FaultyFile(backing, fail_after_bytes=2)
        with pytest.raises(OSError):
            faulty.write(b"abc")
        with pytest.raises(OSError):
            faulty.write(b"x")
        assert backing.getvalue() == b"ab"

    def test_other_attributes_delegate(self):
        backing = io.BytesIO()
        faulty = FaultyFile(backing, fail_after_bytes=100)
        faulty.write(b"ok")
        assert faulty.getvalue() == b"ok"
        faulty.seek(0)
        assert faulty.read() == b"ok"
