"""The journal file format: frames, CRCs, scanning, torn-tail rules.

These tests drive :mod:`repro.durability.journal` directly — no engine —
so every byte-level claim of the format docstring is pinned down
independently of the recovery machinery built on top of it.
"""

from __future__ import annotations

import json
import struct
from zlib import crc32

import pytest

from repro import Engine
from repro.durability.journal import (
    FILE_MAGIC,
    FRAME_MAGIC,
    FSYNC_ALWAYS,
    FSYNC_BATCH,
    FSYNC_NEVER,
    HEADER_SIZE,
    Journal,
    decode_request,
    encode_request,
    materialize_rows,
    scan_journal,
)
from repro.errors import JournalCorruptionError
from repro.semantics.update import (
    ApplySemantics,
    DeleteRequest,
    InsertRequest,
    RenameRequest,
    SetValueRequest,
)


def journal_at(tmp_path, **kwargs):
    return Journal.create(str(tmp_path / "j.wal"), **kwargs)


def commit_one(journal, store, requests):
    """build_entry + apply + commit, the way apply_update_list does."""
    entry = journal.build_entry(store, requests, ApplySemantics.ORDERED)
    for request in requests:
        request.apply(store)
    journal.commit(entry, store)
    return entry


def make_store_with_fragment(xml="<inventory><item id='a'/></inventory>"):
    engine = Engine()
    engine.load_document("doc", xml)
    return engine


class TestRequestCodec:
    def test_round_trip_every_request_kind(self):
        requests = [
            InsertRequest(nodes=(4, 5), position="into" and "last", target=2),
            DeleteRequest(node=7),
            RenameRequest(node=3, name="gadget"),
            SetValueRequest(node=9, text="hello"),
        ]
        for request in requests:
            op, refs = encode_request(request)
            assert decode_request(op) == request
            assert all(isinstance(ref, int) for ref in refs)

    def test_insert_refs_include_payload_and_target(self):
        op, refs = encode_request(
            InsertRequest(nodes=(4, 5), position="first", target=2)
        )
        assert set(refs) == {4, 5, 2}

    def test_decode_rejects_unknown_and_malformed_ops(self):
        with pytest.raises(JournalCorruptionError):
            decode_request({"op": "explode", "node": 1})
        with pytest.raises(JournalCorruptionError):
            decode_request({"op": "delete"})  # missing node


class TestFileFormat:
    def test_create_writes_magic_header(self, tmp_path):
        journal = journal_at(tmp_path)
        journal.close()
        data = (tmp_path / "j.wal").read_bytes()
        assert data == FILE_MAGIC

    def test_commit_appends_one_checksummed_frame_per_snap(self, tmp_path):
        engine = make_store_with_fragment()
        store = engine.store
        journal = journal_at(tmp_path, base_next_id=store._next_id)
        item = engine.execute('($doc//item)[1]').items[0].nid
        commit_one(journal, store, [RenameRequest(node=item, name="widget")])
        journal.close()

        data = (tmp_path / "j.wal").read_bytes()
        offset = len(FILE_MAGIC)
        magic, length, payload_crc, header_crc = struct.unpack_from(
            "<IIII", data, offset
        )
        assert magic == FRAME_MAGIC
        assert header_crc == crc32(data[offset : offset + 12])
        payload = data[offset + HEADER_SIZE : offset + HEADER_SIZE + length]
        assert crc32(payload) == payload_crc
        record = json.loads(payload)
        assert record["seq"] == 1
        assert record["sem"] == "ordered"
        assert record["ops"] == [
            {"op": "rename", "node": item, "name": "widget"}
        ]
        # The rename target lives in the checkpointed world (below the
        # watermark) — no subtree rows needed.
        assert record["nodes"] == []
        assert offset + HEADER_SIZE + length == len(data)

    def test_empty_delta_leaves_no_record(self, tmp_path):
        engine = make_store_with_fragment()
        journal = journal_at(tmp_path, base_next_id=engine.store._next_id)
        assert (
            journal.build_entry(engine.store, [], ApplySemantics.ORDERED)
            is None
        )
        journal.close()
        assert scan_journal(str(tmp_path / "j.wal")).records == []

    def test_constructed_payload_subtrees_are_captured_once(self, tmp_path):
        engine = make_store_with_fragment()
        store = engine.store
        journal = journal_at(tmp_path, base_next_id=store._next_id)
        root = engine.execute("$doc/inventory").items[0].nid
        payload = engine.parse_fragment("<extra a='1'><sub/></extra>")
        new_root = payload.nid
        commit_one(
            journal,
            store,
            [
                InsertRequest(nodes=(new_root,), position="last", target=root),
                RenameRequest(node=new_root, name="renamed"),
            ],
        )
        journal.close()
        [record] = scan_journal(str(tmp_path / "j.wal")).records
        ids = [row[0] for row in record["nodes"]]
        # element + attribute + child element, serialized exactly once
        # even though two ops reference the same constructed root.
        assert len(ids) == len(set(ids)) == 3
        assert new_root in ids


class TestScanRules:
    def _write_frames(self, tmp_path, count=3):
        engine = make_store_with_fragment(
            "<inventory><item id='a'/><item id='b'/><item id='c'/>"
            "<item id='d'/></inventory>"
        )
        store = engine.store
        journal = journal_at(tmp_path, base_next_id=store._next_id)
        items = [
            item.nid
            for item in engine.execute("$doc//item").items
        ]
        for index in range(count):
            commit_one(
                journal,
                store,
                [RenameRequest(node=items[index], name=f"r{index}")],
            )
        journal.close()
        return tmp_path / "j.wal"

    def test_scan_reads_all_frames(self, tmp_path):
        path = self._write_frames(tmp_path)
        scan = scan_journal(str(path))
        assert [record["seq"] for record in scan.records] == [1, 2, 3]
        assert scan.torn_bytes == 0
        assert scan.good_offset == path.stat().st_size

    def test_missing_file_magic_is_corruption(self, tmp_path):
        path = tmp_path / "j.wal"
        path.write_bytes(b"not a journal at all")
        with pytest.raises(JournalCorruptionError, match="magic"):
            scan_journal(str(path))

    def test_partial_header_at_eof_is_torn(self, tmp_path):
        path = self._write_frames(tmp_path)
        data = path.read_bytes()
        path.write_bytes(data + struct.pack("<I", FRAME_MAGIC))
        scan = scan_journal(str(path))
        assert len(scan.records) == 3
        assert scan.torn_bytes == 4
        assert scan.good_offset == len(data)

    def test_partial_payload_at_eof_is_torn(self, tmp_path):
        path = self._write_frames(tmp_path)
        data = path.read_bytes()
        payload = b'{"seq":4}'
        header = struct.pack(
            "<III", FRAME_MAGIC, len(payload) + 40, crc32(payload)
        )
        frame_prefix = (
            header + struct.pack("<I", crc32(header)) + payload
        )  # short of the declared length
        path.write_bytes(data + frame_prefix)
        scan = scan_journal(str(path))
        assert len(scan.records) == 3
        assert scan.good_offset == len(data)

    def test_bad_payload_crc_at_eof_is_torn(self, tmp_path):
        path = self._write_frames(tmp_path)
        data = bytearray(path.read_bytes())
        data[-1] ^= 0xFF  # flip a bit inside the final frame's payload
        path.write_bytes(bytes(data))
        scan = scan_journal(str(path))
        assert len(scan.records) == 2  # final frame dropped as torn

    def test_bad_payload_crc_mid_file_is_corruption(self, tmp_path):
        path = self._write_frames(tmp_path)
        data = bytearray(path.read_bytes())
        # Damage the first frame's payload: find its extent from the header.
        offset = len(FILE_MAGIC)
        _, length, _, _ = struct.unpack_from("<IIII", data, offset)
        data[offset + HEADER_SIZE + 2] ^= 0xFF
        path.write_bytes(bytes(data))
        with pytest.raises(JournalCorruptionError, match="CRC"):
            scan_journal(str(path))

    def test_bad_header_crc_is_corruption(self, tmp_path):
        path = self._write_frames(tmp_path)
        data = bytearray(path.read_bytes())
        data[len(FILE_MAGIC) + 4] ^= 0xFF  # length field of frame 1
        path.write_bytes(bytes(data))
        with pytest.raises(JournalCorruptionError, match="header"):
            scan_journal(str(path))


class TestFsyncPolicy:
    def _one_rename(self, engine):
        item = engine.execute("($doc//item)[1]").items[0].nid
        return [RenameRequest(node=item, name="zzz")]

    def test_always_fsyncs_every_commit(self, tmp_path):
        engine = make_store_with_fragment()
        journal = journal_at(
            tmp_path, fsync=FSYNC_ALWAYS, base_next_id=engine.store._next_id
        )
        commit_one(journal, engine.store, self._one_rename(engine))
        assert journal.fsyncs == 1

    def test_batch_fsyncs_every_n_commits(self, tmp_path):
        engine = make_store_with_fragment(
            "<inventory>" + "<item/>" * 6 + "</inventory>"
        )
        journal = journal_at(
            tmp_path,
            fsync=FSYNC_BATCH,
            fsync_batch=3,
            base_next_id=engine.store._next_id,
        )
        items = [
            item.nid
            for item in engine.execute("$doc//item").items
        ]
        for index, item in enumerate(items):
            commit_one(
                journal,
                engine.store,
                [RenameRequest(node=item, name=f"n{index}")],
            )
        assert journal.fsyncs == 2  # commits 3 and 6
        journal.close()  # close syncs the partial batch
        assert journal.fsyncs == 3

    def test_never_leaves_fsync_to_close(self, tmp_path):
        engine = make_store_with_fragment()
        journal = journal_at(
            tmp_path, fsync=FSYNC_NEVER, base_next_id=engine.store._next_id
        )
        commit_one(journal, engine.store, self._one_rename(engine))
        assert journal.fsyncs == 0

    def test_invalid_mode_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="fsync"):
            journal_at(tmp_path, fsync="sometimes")


class TestRotation:
    def test_rotate_switches_files_and_keeps_sequence(self, tmp_path):
        engine = make_store_with_fragment(
            "<inventory><item id='a'/><item id='b'/></inventory>"
        )
        store = engine.store
        journal = journal_at(
            tmp_path, base_next_id=store._next_id, compact_max_records=1
        )
        a, b = (
            item.nid
            for item in engine.execute("$doc//item").items
        )
        commit_one(journal, store, [RenameRequest(node=a, name="first")])
        assert journal.needs_compaction
        journal.rotate(str(tmp_path / "j2.wal"), base_next_id=store._next_id)
        assert not journal.needs_compaction
        commit_one(journal, store, [RenameRequest(node=b, name="second")])
        journal.close()
        [second] = scan_journal(str(tmp_path / "j2.wal")).records
        assert second["seq"] == 2  # numbering continues across files


class TestMaterializeRows:
    def test_skips_rows_already_present(self, tmp_path):
        engine = make_store_with_fragment()
        store = engine.store
        journal = journal_at(tmp_path, base_next_id=0)  # capture everything
        root = engine.execute("$doc/inventory").items[0].nid
        payload = engine.parse_fragment("<n/>")
        entry = journal.build_entry(
            store,
            [
                InsertRequest(
                    nodes=(payload.nid,),
                    position="last",
                    target=root,
                )
            ],
            ApplySemantics.ORDERED,
        )
        journal.close()
        # Every referenced row already exists in this very store.
        assert materialize_rows(store, entry.nodes) == 0


class TestBatchModeFlush:
    """Batch mode may hold acknowledged-but-unflushed frames; every exit
    path from a journal file (close, rotate) must flush them first."""

    def batch_journal(self, tmp_path):
        # A batch far larger than the commit count: no mid-run fsync.
        return journal_at(tmp_path, fsync=FSYNC_BATCH, fsync_batch=1000)

    def test_close_flushes_pending_batch_commits(self, tmp_path):
        engine = make_store_with_fragment()
        journal = self.batch_journal(tmp_path)
        node = engine.execute("$doc/inventory/*").items[0].nid
        for _ in range(3):
            commit_one(
                journal,
                engine.store,
                [RenameRequest(node=node, name="renamed")],
            )
        assert journal._commits_since_fsync == 3
        before = journal.fsyncs
        journal.close()
        assert journal.fsyncs == before + 1
        assert journal._commits_since_fsync == 0

    def test_rotate_flushes_the_old_file_before_closing_it(self, tmp_path):
        # Until the caller publishes the new manifest, a crash recovers
        # from the OLD pair — so rotate must make the old tail durable.
        engine = make_store_with_fragment()
        journal = self.batch_journal(tmp_path)
        node = engine.execute("$doc/inventory/item").items[0].nid
        for _ in range(2):
            commit_one(
                journal, engine.store, [RenameRequest(node=node, name="x")]
            )
        assert journal._commits_since_fsync == 2
        before = journal.fsyncs
        journal.rotate(
            str(tmp_path / "j2.wal"), base_next_id=engine.store._next_id
        )
        assert journal.fsyncs == before + 1  # the old handle was fsynced
        assert journal._commits_since_fsync == 0
        # The rotated-away file's frames are all intact on disk.
        assert len(scan_journal(str(tmp_path / "j.wal")).records) == 2

    def test_rotate_with_nothing_pending_skips_the_extra_fsync(
        self, tmp_path
    ):
        journal = journal_at(tmp_path, fsync=FSYNC_ALWAYS)
        before = journal.fsyncs
        journal.rotate(
            str(tmp_path / "j2.wal"), base_next_id=0
        )
        assert journal.fsyncs == before  # always-mode left no backlog
