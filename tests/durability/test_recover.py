"""Crash recovery: checkpoint + journal replay, torn tails, corruption.

The contract under test (module docstring of
:mod:`repro.durability.recover`): recovery rebuilds a store equal to a
*prefix* of the committed snaps, truncates torn tails in place, verifies
sequence continuity and the id watermark, and refuses — with a typed
:class:`JournalCorruptionError` — to guess around interior damage.
"""

from __future__ import annotations

import json
import os
import struct
from zlib import crc32

import pytest

from repro.durability import DurableEngine, recover
from repro.durability.journal import FILE_MAGIC, FRAME_MAGIC, HEADER_SIZE
from repro.durability.manifest import read_manifest
from repro.errors import DurabilityError, JournalCorruptionError

DOC = (
    "<inventory>"
    "<item id='a'><name>widget</name></item>"
    "<item id='b'><name>sprocket</name></item>"
    "</inventory>"
)


def make_durable(tmp_path, **kwargs):
    path = str(tmp_path / "d")
    engine = DurableEngine(path, **kwargs)
    engine.load_document("doc", DOC)
    return path, engine


def journal_file(path):
    manifest = read_manifest(path)
    return os.path.join(path, manifest["journal"])


class TestBasicRecovery:
    def test_empty_journal_recovers_checkpoint_exactly(self, tmp_path):
        path, engine = make_durable(tmp_path)
        before = engine.execute("$doc").serialize()
        engine.close()
        result = recover(path)
        assert result.engine.execute("$doc").serialize() == before
        assert result.report.records_replayed == 0

    def test_replay_reproduces_every_update_kind(self, tmp_path):
        path, engine = make_durable(tmp_path)
        engine.execute(
            'snap { insert { <item id="c"><name>gizmo</name></item> } '
            'into { $doc/inventory } }'
        )
        engine.execute(
            'snap { rename { $doc/inventory/item[@id="b"]/name } '
            'to { "label" } }'
        )
        engine.execute(
            'snap { replace value of { $doc/inventory/item[@id="a"]/name } '
            'with { "widget-2" } }'
        )
        engine.execute(
            'snap { delete { $doc/inventory/item[@id="b"]/label } }'
        )
        before = engine.execute("$doc").serialize()
        engine.close()

        result = recover(path)
        assert result.engine.execute("$doc").serialize() == before
        assert result.report.records_replayed == 4
        result.engine.store.check_invariants()

    def test_recovered_engine_continues_the_sequence(self, tmp_path):
        path, engine = make_durable(tmp_path)
        engine.execute(
            'snap { insert { <extra/> } into { $doc/inventory } }'
        )
        engine.close()
        reopened = DurableEngine(path)
        assert reopened.recovered
        reopened.execute(
            'snap { insert { <extra2/> } into { $doc/inventory } }'
        )
        before = reopened.execute("$doc").serialize()
        reopened.close()
        result = recover(path)
        assert result.engine.execute("$doc").serialize() == before

    def test_globals_and_documents_survive(self, tmp_path):
        path, engine = make_durable(tmp_path)
        engine.bind("answer", 42)
        engine.close()
        result = recover(path)
        assert (
            result.engine.execute("$answer").first_value() == 42
        )
        assert result.engine.execute("count($doc)").first_value() == 1


class TestTornTails:
    def test_torn_tail_is_truncated_in_place(self, tmp_path):
        path, engine = make_durable(tmp_path)
        engine.execute('snap { insert { <keep/> } into { $doc/inventory } }')
        engine.close()
        wal = journal_file(path)
        intact = os.path.getsize(wal)
        with open(wal, "ab") as handle:
            handle.write(struct.pack("<II", FRAME_MAGIC, 10_000))
        result = recover(path)
        assert result.report.truncated_bytes == 8
        assert os.path.getsize(wal) == intact  # truncated on disk
        assert result.report.records_replayed == 1
        assert (
            result.engine.execute("count($doc//keep)").first_value() == 1
        )

    def test_reopen_after_torn_tail_appends_cleanly(self, tmp_path):
        path, engine = make_durable(tmp_path)
        engine.execute('snap { insert { <keep/> } into { $doc/inventory } }')
        engine.close()
        with open(journal_file(path), "ab") as handle:
            handle.write(b"\x52")  # one torn byte
        reopened = DurableEngine(path)
        reopened.execute(
            'snap { insert { <more/> } into { $doc/inventory } }'
        )
        reopened.close()
        result = recover(path)
        assert result.report.records_replayed == 2
        assert result.report.truncated_bytes == 0


class TestCorruption:
    def _append_frame(self, wal, payload: bytes):
        header = struct.pack("<III", FRAME_MAGIC, len(payload), crc32(payload))
        with open(wal, "ab") as handle:
            handle.write(header + struct.pack("<I", crc32(header)) + payload)

    def test_mid_file_bit_flip_refuses_to_recover(self, tmp_path):
        path, engine = make_durable(tmp_path)
        engine.execute('snap { insert { <a/> } into { $doc/inventory } }')
        engine.execute('snap { insert { <b/> } into { $doc/inventory } }')
        engine.close()
        wal = journal_file(path)
        data = bytearray(open(wal, "rb").read())
        # Flip a payload byte of the *first* frame (interior damage).
        data[len(FILE_MAGIC) + HEADER_SIZE + 3] ^= 0x01
        open(wal, "wb").write(bytes(data))
        with pytest.raises(JournalCorruptionError):
            recover(path)

    def test_sequence_gap_is_corruption(self, tmp_path):
        path, engine = make_durable(tmp_path)
        engine.execute('snap { insert { <a/> } into { $doc/inventory } }')
        engine.close()
        wal = journal_file(path)
        # Append a well-formed frame whose seq skips ahead.
        record = {"seq": 99, "pre": 1, "post": 1, "sem": "ordered",
                  "ops": [], "nodes": []}
        self._append_frame(wal, json.dumps(record).encode())
        with pytest.raises(JournalCorruptionError, match="sequence gap"):
            recover(path)

    def test_watermark_divergence_is_corruption(self, tmp_path):
        path, engine = make_durable(tmp_path)
        engine.close()
        wal = journal_file(path)
        # A frame claiming the store allocator must land on an id it
        # cannot reach (no ops, post != pre).
        record = {"seq": 1, "pre": 5, "post": 9_999, "sem": "ordered",
                  "ops": [], "nodes": []}
        self._append_frame(wal, json.dumps(record).encode())
        with pytest.raises(JournalCorruptionError, match="diverged"):
            recover(path)

    def test_replaying_impossible_op_is_corruption(self, tmp_path):
        path, engine = make_durable(tmp_path)
        engine.close()
        wal = journal_file(path)
        record = {"seq": 1, "pre": 5, "post": 5, "sem": "ordered",
                  "ops": [{"op": "delete", "node": 88_888}], "nodes": []}
        self._append_frame(wal, json.dumps(record).encode())
        with pytest.raises(JournalCorruptionError, match="replay"):
            recover(path)

    def test_missing_manifest_is_a_durability_error(self, tmp_path):
        with pytest.raises((DurabilityError, OSError)):
            recover(str(tmp_path / "nothing-here"))

    def test_malformed_manifest_is_a_durability_error(self, tmp_path):
        directory = tmp_path / "d"
        directory.mkdir()
        (directory / "MANIFEST.json").write_text('{"format": "wrong"}')
        with pytest.raises(DurabilityError):
            recover(str(directory))


class TestLargeJournal:
    def test_ten_thousand_snap_journal_recovers(self, tmp_path):
        # The acceptance bar: a journal of 10k snaps replays to a store
        # that passes its structural invariants.  Generated with
        # fsync="never" and atomic_snaps off — this is a recovery-scale
        # test, not an fsync benchmark.
        path = str(tmp_path / "big")
        engine = DurableEngine(path, fsync="never", atomic_snaps=False)
        engine.load_document("doc", "<log/>")
        prepared = engine.prepare(
            'snap { insert { <e n="{$n}"/> } into { $doc/log } }'
        )
        for n in range(10_000):
            prepared.execute(bindings={"n": n})
        engine.close()

        result = recover(path)
        assert result.report.records_replayed == 10_000
        assert (
            result.engine.execute("count($doc/log/e)").first_value()
            == 10_000
        )
        result.engine.store.check_invariants()
