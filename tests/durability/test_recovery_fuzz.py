"""Seeded fuzz: random journal damage must never yield a silent wrong store.

Each case takes a known-good durable directory, applies deterministic
random damage to the journal (bit flips, truncations, garbage appends),
and asserts the only three legal outcomes of recovery:

1. full recovery (damage hit a part the scan never trusts, e.g. already
   past a truncation point);
2. prefix recovery (damage at the tail → truncated, earlier records
   replayed) — verified against the per-record expected store counts;
3. a typed :class:`JournalCorruptionError` refusal.

What must **never** happen: recovery "succeeding" with a store that
matches no prefix of the committed snaps, or a non-durability exception
escaping.
"""

from __future__ import annotations

import os
import random
import shutil

import pytest

from repro.durability import DurableEngine, recover
from repro.durability.journal import FILE_MAGIC
from repro.durability.manifest import read_manifest
from repro.errors import DurabilityError

SNAPS = 12
SEEDS = range(20)


@pytest.fixture(scope="module")
def pristine(tmp_path_factory):
    """A durable directory with SNAPS committed snaps (built once)."""
    path = str(tmp_path_factory.mktemp("fuzz") / "d")
    engine = DurableEngine(path, fsync="never")
    engine.load_document("doc", "<log/>")
    for n in range(SNAPS):
        engine.execute(
            f'snap {{ insert {{ <e n="{n}"/> }} into {{ $doc/log }} }}'
        )
    engine.close()
    return path


def damaged_copy(pristine: str, destination: str, rng: random.Random) -> str:
    shutil.copytree(pristine, destination)
    wal = os.path.join(destination, read_manifest(destination)["journal"])
    data = bytearray(open(wal, "rb").read())
    body_start = len(FILE_MAGIC)
    mode = rng.choice(["flip", "truncate", "garbage", "multi-flip"])
    if mode == "flip":
        index = rng.randrange(body_start, len(data))
        data[index] ^= 1 << rng.randrange(8)
    elif mode == "truncate":
        data = data[: rng.randrange(body_start, len(data))]
    elif mode == "garbage":
        data += bytes(rng.randrange(256) for _ in range(rng.randrange(1, 64)))
    else:
        for _ in range(rng.randrange(2, 6)):
            index = rng.randrange(body_start, len(data))
            data[index] ^= 1 << rng.randrange(8)
    open(wal, "wb").write(bytes(data))
    return wal


@pytest.mark.parametrize("seed", SEEDS)
def test_damaged_journal_recovers_a_prefix_or_refuses(
    pristine, tmp_path, seed
):
    rng = random.Random(seed)
    destination = str(tmp_path / f"case-{seed}")
    damaged_copy(pristine, destination, rng)
    try:
        result = recover(destination)
    except DurabilityError:
        return  # legal outcome 3: typed refusal, never a silent wrong store
    # Legal outcomes 1 and 2: the recovered store must be an exact
    # *prefix* of the committed snaps — entries 0..k-1 for some k.
    report = result.report
    count = result.engine.execute("count($doc/log/e)").first_value()
    assert 0 <= count <= SNAPS
    assert count == report.records_replayed
    values = [
        int(v)
        for v in result.engine.execute(
            "for $e in $doc/log/e return data($e/@n)"
        ).strings()
    ]
    assert values == list(range(count)), "recovered store is not a prefix"
    result.engine.store.check_invariants()


def test_fuzz_exercises_both_refusals_and_recoveries(
    pristine, tmp_path_factory
):
    """Meta-check: across the seed set, both outcome families occur —
    otherwise the fuzz isn't probing the boundary it claims to."""
    refused = recovered = 0
    for seed in SEEDS:
        rng = random.Random(seed)
        destination = str(
            tmp_path_factory.mktemp("meta") / f"case-{seed}"
        )
        damaged_copy(pristine, destination, rng)
        try:
            recover(destination)
        except DurabilityError:
            refused += 1
        else:
            recovered += 1
    assert refused > 0
    assert recovered > 0
