"""Multiprocess end-to-end: replication, restart, fenced failover.

Each test runs a real fleet — a primary :class:`DurableEngine` plus
replica worker subprocesses over the framed channel — and asserts the
tentpole guarantees: catch-up to the primary's watermark, byte
agreement with single-process recovery, supervised restart after a
SIGKILL, and fenced failover (promotion under a bumped epoch, writes
resuming on the promoted node, the deposed primary typed-refused).
"""

from __future__ import annotations

import time

import pytest

from repro.cluster.replica import store_fingerprint
from repro.cluster.supervisor import ClusterConfig, ClusterSupervisor
from repro.durability import DurableEngine, recover
from repro.errors import StaleEpochError

pytestmark = pytest.mark.slow

MODULE = (
    "declare updating function touch($n) "
    "{ snap { insert { <e/> } into { $doc/log } } };"
)


def fleet_config(replicas: int = 2) -> ClusterConfig:
    return ClusterConfig(
        replicas=replicas,
        ship_interval_s=0.02,
        probe_interval_s=0.05,
    )


def wait_until(predicate, timeout_s: float = 30.0) -> bool:
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.05)
    return False


def append(engine, n: int) -> None:
    engine.execute(
        f'snap {{ insert {{ <e n="{n}"/> }} into {{ $doc/log }} }}'
    )


def caught_up(supervisor: ClusterSupervisor) -> bool:
    target = supervisor.last_committed_seq()
    live = [h for h in supervisor.handles if h.alive and not h.promoted]
    return (
        target is not None
        and bool(live)
        and all(h.acked_seq >= target for h in live)
    )


def converged(supervisor: ClusterSupervisor, timeout_s: float = 30.0) -> bool:
    """Catch-up that is *stable*: the committed watermark is observed
    through the shipper's asynchronous tail cursor, so one true
    ``caught_up`` reading can still precede the shipper reaching the
    journal's real end.  With writes quiesced, holding for several
    consecutive polls pins the true end."""
    deadline = time.monotonic() + timeout_s
    stable = 0
    while time.monotonic() < deadline:
        if caught_up(supervisor):
            stable += 1
            if stable >= 5:
                return True
        else:
            stable = 0
        time.sleep(0.05)
    return False


def recovery_fingerprint(path: str) -> str:
    return store_fingerprint(recover(path, readonly=True).engine)


class TestReplication:
    def test_replicas_catch_up_and_byte_agree(self, tmp_path):
        path = str(tmp_path / "d")
        engine = DurableEngine(path)
        engine.load_document("doc", "<log/>")
        with ClusterSupervisor(
            path, primary=engine, config=fleet_config()
        ) as supervisor:
            for n in range(8):
                append(engine, n)
            assert converged(supervisor)
            fingerprints = {
                h.name: supervisor.fingerprint_of(h)
                for h in supervisor.handles
                if h.alive
            }
            assert len(fingerprints) == 2
            reference = recovery_fingerprint(path)
            assert all(fp == reference for fp in fingerprints.values())
            # Routed reads serve the replicated data.
            result = supervisor.query_replica(
                supervisor.handles[0], "count($doc/log/e)"
            )
            assert result.first_value() == "8"
            assert result.backend == "replica-0"
        engine.close()

    def test_killed_replica_is_restarted_and_catches_up(self, tmp_path):
        path = str(tmp_path / "d")
        engine = DurableEngine(path)
        engine.load_document("doc", "<log/>")
        with ClusterSupervisor(
            path, primary=engine, config=fleet_config()
        ) as supervisor:
            append(engine, 0)
            assert wait_until(lambda: caught_up(supervisor))
            supervisor.kill_replica(0)
            for n in range(1, 5):
                append(engine, n)
            handle = supervisor.handles[0]
            assert wait_until(lambda: handle.alive and handle.restarts >= 1)
            assert wait_until(lambda: caught_up(supervisor))
            assert (
                supervisor.fingerprint_of(handle)
                == recovery_fingerprint(path)
            )
        engine.close()


class TestFailover:
    def test_fenced_failover_end_to_end(self, tmp_path):
        path = str(tmp_path / "d")
        engine = DurableEngine(path)
        engine.load_document("doc", "<log/>")
        with ClusterSupervisor(
            path, primary=engine, config=fleet_config()
        ) as supervisor:
            for n in range(4):
                append(engine, n)
            assert wait_until(lambda: caught_up(supervisor))

            supervisor.kill_primary()
            assert not supervisor.primary_alive
            assert wait_until(
                lambda: supervisor.promoted_handle is not None
            )
            promoted = supervisor.promoted_handle
            assert supervisor.epoch >= 1

            # Writes resume against the promoted node (via the
            # transient failover gap, so retry until it serves).
            def write_succeeds() -> bool:
                try:
                    supervisor.execute_write(
                        'snap { insert { <e n="post"/> } '
                        "into { $doc/log } }"
                    )
                except Exception:
                    return False
                return True

            assert wait_until(write_succeeds, timeout_s=15.0)

            # The deposed primary's next append is typed-refused.
            with pytest.raises(StaleEpochError):
                append(engine, 99)
            # ... and the refused write never reached its memory either.
            assert (
                engine.engine.execute(
                    "count($doc/log/e[@n='99'])"
                ).first_value()
                == 0
            )

            # Every follower converges on the promoted store, and the
            # whole fleet byte-agrees with single-process recovery.
            assert converged(supervisor)
            fingerprints = [
                supervisor.fingerprint_of(h)
                for h in supervisor.handles
                if h.alive
            ]
            assert promoted is not None
        supervisor_epoch = supervisor.epoch
        reference = recovery_fingerprint(path)
        assert all(fp == reference for fp in fingerprints)
        assert supervisor_epoch >= 1
        try:
            engine.close()
        except StaleEpochError:
            pass  # a deposed primary's final flush may be refused
