"""ReplicaApplier: replication correctness reduces to recovery.

A replica that applied the shipped records through ``replay_record``
must fingerprint identically to a fresh single-process recovery at the
same watermark — including after being killed mid-catch-up and
restarted (the crash-during-catch-up satellite), and across commit
groups, duplicate re-ships, gaps and stale epochs.
"""

from __future__ import annotations

import pytest

from repro.cluster.replica import ReplicaApplier, store_fingerprint
from repro.durability import DurableEngine, FaultInjector, recover
from repro.durability.faults import CRASH_MID_REPLAY, InjectedCrash
from repro.durability.journal import JournalFollower
from repro.errors import (
    JournalCorruptionError,
    StaleEpochError,
    UpdateError,
)


def fresh(tmp_path) -> tuple[str, DurableEngine]:
    path = str(tmp_path / "d")
    engine = DurableEngine(path)
    engine.load_document("doc", "<log/>")
    return path, engine


def append(engine: DurableEngine, n: int) -> None:
    engine.execute(
        f'snap {{ insert {{ <e n="{n}"/> }} into {{ $doc/log }} }}'
    )


def recovery_fingerprint(path: str) -> str:
    return store_fingerprint(recover(path, readonly=True).engine)


class TestApply:
    def test_applied_records_match_fresh_recovery(self, tmp_path):
        path, engine = fresh(tmp_path)
        replica = ReplicaApplier(path)
        follower = JournalFollower(path, after_seq=replica.applied_seq)
        for n in range(5):
            append(engine, n)
        watermark = replica.apply_records(follower.poll())
        assert watermark == 5
        assert replica.applied_seq == 5
        assert replica.fingerprint() == recovery_fingerprint(path)

    def test_duplicate_reship_is_idempotent(self, tmp_path):
        path, engine = fresh(tmp_path)
        replica = ReplicaApplier(path)
        follower = JournalFollower(path, after_seq=replica.applied_seq)
        append(engine, 0)
        append(engine, 1)
        records = follower.poll()
        replica.apply_records(records)
        replica.apply_records(records)  # a reconnect re-ships the batch
        assert replica.applied_seq == 2
        assert replica.fingerprint() == recovery_fingerprint(path)

    def test_sequence_gap_is_permanently_fatal(self, tmp_path):
        path, engine = fresh(tmp_path)
        replica = ReplicaApplier(path)
        append(engine, 0)
        with pytest.raises(JournalCorruptionError):
            replica.apply_records([{"seq": 5, "ep": 0}])

    def test_stale_epoch_frame_is_refused(self, tmp_path):
        path, engine = fresh(tmp_path)
        replica = ReplicaApplier(path)
        replica.epoch = 2  # this replica witnessed a promotion
        with pytest.raises(StaleEpochError) as info:
            replica.apply_records([{"seq": 1, "ep": 1}])
        assert info.value.fence_epoch == 2
        assert replica.applied_seq == 0  # nothing was applied

    def test_newer_epoch_raises_the_replica_floor(self, tmp_path):
        path, engine = fresh(tmp_path)
        replica = ReplicaApplier(path)
        follower = JournalFollower(path, after_seq=0)
        append(engine, 0)
        (record,) = follower.poll()
        record = dict(record, ep=3)
        replica.apply_records([record])
        assert replica.epoch == 3
        with pytest.raises(StaleEpochError):
            replica.apply_records([{"seq": 2, "ep": 1}])


class TestGroupAtomicity:
    def make_group(self, engine, path, replica):
        """Real commit-group records from a transactional session."""
        follower = JournalFollower(path, after_seq=replica.applied_seq)
        with engine.session() as session:
            with session.transaction() as txn:
                txn.execute(
                    'snap { insert { <e n="a"/> } into { $doc/log } }'
                )
                txn.execute(
                    'snap { insert { <e n="b"/> } into { $doc/log } }'
                )
        return follower.poll()

    def test_members_stage_until_the_end_marker(self, tmp_path):
        path, engine = fresh(tmp_path)
        replica = ReplicaApplier(path)
        records = self.make_group(engine, path, replica)
        assert [r.get("group") for r in records[:1]] == ["begin"]
        assert records[-1].get("group") == "end"
        before = replica.applied_seq
        replica.apply_records(records[:-1])  # end withheld
        assert replica.applied_seq == before  # watermark unmoved
        replica.apply_records(records[-1:])
        assert replica.applied_seq == records[-1]["seq"]
        assert replica.fingerprint() == recovery_fingerprint(path)

    def test_reset_pending_drops_a_half_received_group(self, tmp_path):
        path, engine = fresh(tmp_path)
        replica = ReplicaApplier(path)
        records = self.make_group(engine, path, replica)
        replica.apply_records(records[:-1])
        replica.reset_pending()  # connection reset mid-group
        replica.apply_records(records)  # the supervisor re-ships whole
        assert replica.applied_seq == records[-1]["seq"]
        assert replica.fingerprint() == recovery_fingerprint(path)


class TestCrashDuringCatchUp:
    def test_restarted_replica_converges_to_fresh_recovery(self, tmp_path):
        path, engine = fresh(tmp_path)
        faults = FaultInjector()
        faults.arm(CRASH_MID_REPLAY, after=3)
        dying = ReplicaApplier(path, faults=faults)
        follower = JournalFollower(path, after_seq=dying.applied_seq)
        for n in range(6):
            append(engine, n)
        records = follower.poll()
        with pytest.raises(InjectedCrash):
            dying.apply_records(records)
        # The process is gone; a restarted replica recovers from disk
        # and re-applies — its store must equal fresh recovery exactly.
        restarted = ReplicaApplier(path)
        resumed = JournalFollower(path, after_seq=restarted.applied_seq)
        restarted.apply_records(resumed.poll())
        assert restarted.applied_seq == 6
        assert restarted.fingerprint() == recovery_fingerprint(path)


class TestServing:
    def test_reads_serve_and_writes_are_refused_unpromoted(self, tmp_path):
        path, engine = fresh(tmp_path)
        append(engine, 0)
        replica = ReplicaApplier(path)
        assert (
            replica.execute("count($doc/log/e)").first_value() == 1
        )
        with pytest.raises(UpdateError):
            replica.execute(
                'snap { insert { <e/> } into { $doc/log } }'
            )

    def test_promote_fences_then_serves_writes(self, tmp_path):
        path, engine = fresh(tmp_path)
        append(engine, 0)
        engine.journal.fence = None  # pre-cluster primary
        replica = ReplicaApplier(path)
        watermark = replica.promote(1)
        assert watermark == 1
        assert replica.promoted
        replica.execute(
            'snap { insert { <e n="post"/> } into { $doc/log } }'
        )
        assert (
            replica.execute("count($doc/log/e)").first_value() == 2
        )
        # A second promotion attempt for the same epoch loses.
        with pytest.raises(StaleEpochError):
            ReplicaApplier(path).promote(1)
        replica.close()
