"""Fencing epochs: monotone grants and the per-append journal fence.

The split-brain defence in isolation: the EPOCH file only moves
forward, exactly one promotion can win an epoch, and a journal owned
under a superseded epoch refuses its next append with a typed
:class:`~repro.errors.StaleEpochError` — with the in-memory store
rolled back, so the deposed engine never runs ahead of disk.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.cluster.fence import (
    EPOCH_NAME,
    advance_epoch,
    check_fence,
    make_fence,
    read_epoch,
)
from repro.durability import DurableEngine
from repro.errors import DurabilityError, StaleEpochError


class TestEpochFile:
    def test_unfenced_directory_reads_epoch_zero(self, tmp_path):
        assert read_epoch(str(tmp_path)) == 0

    def test_advance_publishes_durably(self, tmp_path):
        assert advance_epoch(str(tmp_path), 1) == 1
        assert read_epoch(str(tmp_path)) == 1
        assert advance_epoch(str(tmp_path), 5) == 5
        assert read_epoch(str(tmp_path)) == 5

    def test_advance_is_strictly_monotone(self, tmp_path):
        advance_epoch(str(tmp_path), 2)
        for losing in (2, 1, 0):
            with pytest.raises(StaleEpochError) as info:
                advance_epoch(str(tmp_path), losing)
            assert info.value.fence_epoch == 2
        assert read_epoch(str(tmp_path)) == 2  # the file never moved

    def test_malformed_epoch_file_is_typed(self, tmp_path):
        with open(
            os.path.join(str(tmp_path), EPOCH_NAME), "w"
        ) as handle:
            json.dump({"epoch": "six"}, handle)
        with pytest.raises(DurabilityError):
            read_epoch(str(tmp_path))

    def test_check_fence_refuses_only_superseded_writers(self, tmp_path):
        check_fence(str(tmp_path), 0)  # no epoch granted: everyone writes
        advance_epoch(str(tmp_path), 3)
        check_fence(str(tmp_path), 3)  # the current owner passes
        with pytest.raises(StaleEpochError):
            check_fence(str(tmp_path), 2)


class TestJournalFence:
    def test_deposed_primary_append_is_refused_and_rolled_back(
        self, tmp_path
    ):
        path = str(tmp_path / "d")
        engine = DurableEngine(path)
        engine.load_document("doc", "<log/>")
        engine.execute(
            'snap { insert { <e n="0"/> } into { $doc/log } }'
        )
        engine.journal.fence = make_fence(path, 0)
        advance_epoch(path, 1)  # a promotion happened elsewhere
        with pytest.raises(StaleEpochError):
            engine.execute(
                'snap { insert { <e n="1"/> } into { $doc/log } }'
            )
        # The refused snap must not survive in memory: the deposed
        # engine's view still equals what the journal holds.
        assert engine.execute("count($doc/log/e)").first_value() == 1

    def test_fenced_refusal_is_never_masked_as_durability(self, tmp_path):
        path = str(tmp_path / "d")
        engine = DurableEngine(path)
        engine.load_document("doc", "<log/>")
        engine.journal.fence = make_fence(path, 0)
        advance_epoch(path, 7)
        with pytest.raises(StaleEpochError) as info:
            engine.execute(
                'snap { insert { <e/> } into { $doc/log } }'
            )
        assert info.value.code == "REPR0009"
        assert not isinstance(info.value, DurabilityError)
