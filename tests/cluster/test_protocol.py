"""The replication wire protocol: framing, CRCs, typed-error transit.

The channel reuses the WAL's frame format (magic + length + payload CRC
+ header CRC) over a socket; these tests pin the roundtrip, the refusal
of garbled or hostile frames, and :func:`raise_remote` rebuilding the
exact typed error class (with its detail fields) on the supervisor
side.
"""

from __future__ import annotations

import socket
import struct
import threading

import pytest

from repro.cluster.protocol import (
    MAX_MESSAGE_BYTES,
    ChannelClosed,
    FrameChannel,
    encode_message,
    error_payload,
    raise_remote,
    socketpair_channel,
)
from repro.errors import (
    DurabilityError,
    QueryTimeoutError,
    ReplicaLagError,
    StaleEpochError,
    XQueryError,
)


def channel_pair() -> tuple[FrameChannel, FrameChannel]:
    left, right = socket.socketpair()
    return FrameChannel(left), FrameChannel(right)


class TestRoundtrip:
    def test_message_survives_the_wire(self):
        a, b = channel_pair()
        a.send({"t": "frames", "records": [{"seq": 1, "ep": 0}]})
        message = b.recv(timeout=5.0)
        assert message == {"t": "frames", "records": [{"seq": 1, "ep": 0}]}
        a.close()
        b.close()

    def test_many_messages_preserve_order_and_boundaries(self):
        a, b = channel_pair()
        for index in range(50):
            a.send({"t": "ack", "applied_seq": index})
        for index in range(50):
            assert b.recv(timeout=5.0)["applied_seq"] == index
        a.close()
        b.close()

    def test_request_is_send_plus_reply(self):
        a, b = channel_pair()

        def responder():
            message = b.recv(timeout=5.0)
            b.send({"t": "ack", "echo": message["t"]})

        thread = threading.Thread(target=responder)
        thread.start()
        reply = a.request({"t": "health"}, timeout=5.0)
        thread.join()
        assert reply == {"t": "ack", "echo": "health"}
        a.close()
        b.close()

    def test_socketpair_channel_hands_out_a_raw_peer(self):
        channel, peer = socketpair_channel()
        worker_side = FrameChannel(peer)
        channel.send({"t": "init"})
        assert worker_side.recv(timeout=5.0) == {"t": "init"}
        channel.close()
        worker_side.close()


class TestGarbledFrames:
    def test_eof_raises_channel_closed(self):
        a, b = channel_pair()
        a.close()
        with pytest.raises(ChannelClosed):
            b.recv(timeout=5.0)

    def test_corrupt_header_crc_is_refused(self):
        a, b = channel_pair()
        frame = bytearray(encode_message({"t": "ack"}))
        frame[2] ^= 0xFF  # damage the magic inside the CRC'd header
        a._sock.sendall(bytes(frame))
        with pytest.raises(ChannelClosed):
            b.recv(timeout=5.0)
        assert b.closed

    def test_corrupt_payload_crc_is_refused(self):
        a, b = channel_pair()
        frame = bytearray(encode_message({"t": "ack", "applied_seq": 7}))
        frame[-1] ^= 0xFF
        a._sock.sendall(bytes(frame))
        with pytest.raises(ChannelClosed):
            b.recv(timeout=5.0)

    def test_hostile_length_never_allocates(self):
        from zlib import crc32

        from repro.durability.journal import FRAME_MAGIC

        a, b = channel_pair()
        head = struct.pack(
            "<III", FRAME_MAGIC, MAX_MESSAGE_BYTES + 1, 0
        )
        a._sock.sendall(head + struct.pack("<I", crc32(head)))
        with pytest.raises(ChannelClosed):
            b.recv(timeout=5.0)

    def test_non_object_payload_is_refused(self):
        import json
        from zlib import crc32

        from repro.durability.journal import FRAME_MAGIC

        a, b = channel_pair()
        payload = json.dumps([1, 2, 3]).encode()
        head = struct.pack(
            "<III", FRAME_MAGIC, len(payload), crc32(payload)
        )
        a._sock.sendall(head + struct.pack("<I", crc32(head)) + payload)
        with pytest.raises(ChannelClosed):
            b.recv(timeout=5.0)

    def test_send_after_close_is_typed(self):
        a, _ = channel_pair()
        a.close()
        with pytest.raises(ChannelClosed):
            a.send({"t": "ack"})


class TestTypedErrorsAcrossTheBoundary:
    def test_stale_epoch_rebuilds_with_detail_fields(self):
        original = StaleEpochError(
            "deposed", stale_epoch=1, fence_epoch=3
        )
        with pytest.raises(StaleEpochError) as info:
            raise_remote(error_payload(original))
        assert info.value.code == "REPR0009"
        assert info.value.stale_epoch == 1
        assert info.value.fence_epoch == 3

    def test_replica_lag_keeps_its_retry_hint(self):
        original = ReplicaLagError(
            "behind", lag_seq=12, max_lag_seq=4, retry_after_ms=20.0
        )
        with pytest.raises(ReplicaLagError) as info:
            raise_remote(error_payload(original))
        assert info.value.retry_after_ms == 20.0
        assert info.value.lag_seq == 12
        assert info.value.max_lag_seq == 4

    @pytest.mark.parametrize(
        "original",
        [
            DurabilityError("disk gone"),
            QueryTimeoutError("too slow"),
        ],
    )
    def test_registered_classes_come_back_as_themselves(self, original):
        with pytest.raises(type(original)):
            raise_remote(error_payload(original))

    def test_unregistered_code_degrades_to_base_xquery_error(self):
        with pytest.raises(XQueryError) as info:
            raise_remote({"code": "REPR9999", "message": "weird"})
        assert type(info.value) is XQueryError
        assert info.value.code == "REPR9999"
