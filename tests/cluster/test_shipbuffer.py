"""ShipBuffer: one journal tail-follow fanned out to many watermarks."""

from __future__ import annotations

import pytest

from repro.cluster.shipper import ShipBuffer
from repro.durability import DurableEngine


def fresh(tmp_path) -> tuple[str, DurableEngine]:
    path = str(tmp_path / "d")
    engine = DurableEngine(path)
    engine.load_document("doc", "<log/>")
    return path, engine


def append(engine: DurableEngine, n: int) -> None:
    engine.execute(
        f'snap {{ insert {{ <e n="{n}"/> }} into {{ $doc/log }} }}'
    )


class TestWindow:
    def test_records_after_slices_per_replica_watermark(self, tmp_path):
        path, engine = fresh(tmp_path)
        buffer = ShipBuffer(path)
        for n in range(4):
            append(engine, n)
        buffer.poll()
        assert [r["seq"] for r in buffer.records_after(0)] == [1, 2, 3, 4]
        assert [r["seq"] for r in buffer.records_after(2)] == [3, 4]
        assert buffer.records_after(4) == []
        assert buffer.records_after(9) == []  # ahead of the tail: nothing

    def test_trim_keeps_the_slowest_replica_served(self, tmp_path):
        path, engine = fresh(tmp_path)
        buffer = ShipBuffer(path)
        for n in range(4):
            append(engine, n)
        buffer.poll()
        buffer.trim(2)  # slowest live replica acked 2
        assert [r["seq"] for r in buffer.records_after(2)] == [3, 4]
        # A replica behind the trimmed window cannot be frame-served.
        assert buffer.records_after(0) is None

    def test_capacity_eviction_forces_resync_for_laggards(self, tmp_path):
        path, engine = fresh(tmp_path)
        buffer = ShipBuffer(path, capacity=2)
        for n in range(5):
            append(engine, n)
        buffer.poll()
        assert len(buffer) == 2
        assert buffer.records_after(0) is None  # fell out of the window
        assert [r["seq"] for r in buffer.records_after(3)] == [4, 5]

    def test_resync_restarts_the_follower(self, tmp_path):
        path, engine = fresh(tmp_path)
        buffer = ShipBuffer(path)
        for n in range(3):
            append(engine, n)
        buffer.poll()
        buffer.resync(after_seq=2)
        assert len(buffer) == 0
        buffer.poll()
        assert [r["seq"] for r in buffer.records_after(2)] == [3]

    def test_capacity_must_be_positive(self, tmp_path):
        path, _ = fresh(tmp_path)
        with pytest.raises(ValueError):
            ShipBuffer(path, capacity=0)


class TestPartitionResync:
    def test_compaction_during_partition_forces_full_catch_up(
        self, tmp_path
    ):
        """Satellite: a replica partitioned past the window resyncs.

        The replica acks 3, then its link partitions: the buffer keeps
        following the journal while the primary writes on and compacts.
        The buffer's next poll must demand a resync (the undelivered
        tail was folded into the checkpoint), frame-granular shipping
        must refuse to resume for the partitioned replica, and the
        supervisor's answer — a restart into from-disk recovery — must
        reach the primary's watermark and byte-agree with
        single-process recovery.
        """
        from repro.cluster.replica import ReplicaApplier, store_fingerprint
        from repro.durability import recover
        from repro.durability.journal import FollowerResyncRequired
        from repro.durability.manifest import read_manifest

        path, engine = fresh(tmp_path)
        buffer = ShipBuffer(path, capacity=4)
        for n in range(3):
            append(engine, n)
        buffer.poll()
        assert [r["seq"] for r in buffer.records_after(3)] == []
        # Partition: the replica stops acking at 3 while the primary
        # keeps writing, then compacts the journal away.
        for n in range(3, 9):
            append(engine, n)
        engine.checkpoint()
        with pytest.raises(FollowerResyncRequired):
            buffer.poll()
        manifest = read_manifest(path)
        buffer.resync(manifest["seq"])
        # Frame-granular shipping cannot serve the partitioned
        # replica: its next record predates the new generation.
        assert buffer.records_after(3) is None
        # Full catch-up (what the supervisor's restart does): a fresh
        # from-disk recovery reaches the primary's watermark...
        applier = ReplicaApplier(path)
        assert applier.applied_seq == engine.journal.next_seq - 1
        assert buffer.records_after(applier.applied_seq) == []
        # ...and converges byte-for-byte with single-process recovery.
        assert applier.fingerprint() == store_fingerprint(
            recover(path, readonly=True).engine
        )
        # Post-resync shipping serves the caught-up replica normally.
        append(engine, 9)
        buffer.poll()
        records = buffer.records_after(applier.applied_seq)
        assert [r["seq"] for r in records] == [10]
