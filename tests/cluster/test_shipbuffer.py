"""ShipBuffer: one journal tail-follow fanned out to many watermarks."""

from __future__ import annotations

import pytest

from repro.cluster.shipper import ShipBuffer
from repro.durability import DurableEngine


def fresh(tmp_path) -> tuple[str, DurableEngine]:
    path = str(tmp_path / "d")
    engine = DurableEngine(path)
    engine.load_document("doc", "<log/>")
    return path, engine


def append(engine: DurableEngine, n: int) -> None:
    engine.execute(
        f'snap {{ insert {{ <e n="{n}"/> }} into {{ $doc/log }} }}'
    )


class TestWindow:
    def test_records_after_slices_per_replica_watermark(self, tmp_path):
        path, engine = fresh(tmp_path)
        buffer = ShipBuffer(path)
        for n in range(4):
            append(engine, n)
        buffer.poll()
        assert [r["seq"] for r in buffer.records_after(0)] == [1, 2, 3, 4]
        assert [r["seq"] for r in buffer.records_after(2)] == [3, 4]
        assert buffer.records_after(4) == []
        assert buffer.records_after(9) == []  # ahead of the tail: nothing

    def test_trim_keeps_the_slowest_replica_served(self, tmp_path):
        path, engine = fresh(tmp_path)
        buffer = ShipBuffer(path)
        for n in range(4):
            append(engine, n)
        buffer.poll()
        buffer.trim(2)  # slowest live replica acked 2
        assert [r["seq"] for r in buffer.records_after(2)] == [3, 4]
        # A replica behind the trimmed window cannot be frame-served.
        assert buffer.records_after(0) is None

    def test_capacity_eviction_forces_resync_for_laggards(self, tmp_path):
        path, engine = fresh(tmp_path)
        buffer = ShipBuffer(path, capacity=2)
        for n in range(5):
            append(engine, n)
        buffer.poll()
        assert len(buffer) == 2
        assert buffer.records_after(0) is None  # fell out of the window
        assert [r["seq"] for r in buffer.records_after(3)] == [4, 5]

    def test_resync_restarts_the_follower(self, tmp_path):
        path, engine = fresh(tmp_path)
        buffer = ShipBuffer(path)
        for n in range(3):
            append(engine, n)
        buffer.poll()
        buffer.resync(after_seq=2)
        assert len(buffer) == 0
        buffer.poll()
        assert [r["seq"] for r in buffer.records_after(2)] == [3]

    def test_capacity_must_be_positive(self, tmp_path):
        path, _ = fresh(tmp_path)
        with pytest.raises(ValueError):
            ShipBuffer(path, capacity=0)
