"""``repro health DIR`` over a replicated directory.

The supervisor leaves ``cluster-health.json`` next to the journal; the
CLI must fold it in — each member under its own name, worst status
winning, per-replica lag surfaced in a top-level ``replication``
section — and must never fail the probe over a missing or torn file.
"""

from __future__ import annotations

import json
import os

from repro.cli import health_main
from repro.cluster.supervisor import HEALTH_FILE, _HEALTH_FORMAT
from repro.durability import DurableEngine


def durable_dir(tmp_path) -> str:
    path = str(tmp_path / "d")
    engine = DurableEngine(path)
    engine.load_document("doc", "<log/>")
    engine.execute('snap { insert { <e/> } into { $doc/log } }')
    engine.close()
    return path


def write_fleet_file(path: str, *, status: str = "healthy") -> None:
    fleet = {
        "status": status,
        "ok": status != "unhealthy",
        "generated_at": 0.0,
        "sections": {
            "replica-0": {
                "status": status,
                "sections": {
                    "replication": {
                        "applied_seq": 41,
                        "lag_seq": 1,
                        "promoted": False,
                        "stalled": False,
                        "restarts": 0,
                    }
                },
            },
            "replica-1": {
                "status": "healthy",
                "sections": {
                    "replication": {
                        "applied_seq": 42,
                        "lag_seq": 0,
                        "promoted": False,
                        "stalled": False,
                        "restarts": 0,
                    }
                },
            },
            "cluster": {
                "epoch": 0,
                "primary_alive": True,
                "promoted": None,
                "last_committed_seq": 42,
                "replicas": 2,
            },
        },
    }
    with open(os.path.join(path, HEALTH_FILE), "w") as handle:
        json.dump({"format": _HEALTH_FORMAT, "report": fleet}, handle)


class TestClusterMerge:
    def test_per_replica_lag_shows_in_json(self, tmp_path, capsys):
        path = durable_dir(tmp_path)
        write_fleet_file(path)
        assert health_main([path, "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert set(payload["sections"]) >= {
            "local",
            "replica-0",
            "replica-1",
            "cluster",
            "replication",
        }
        replication = payload["sections"]["replication"]
        assert replication["lag_by_replica"] == {
            "replica-0": 1,
            "replica-1": 0,
        }
        assert replication["max_lag_seq"] == 1

    def test_worst_member_status_wins(self, tmp_path, capsys):
        path = durable_dir(tmp_path)
        write_fleet_file(path, status="unhealthy")
        assert health_main([path, "--json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["status"] == "unhealthy"
        # The local engine's own sections survive, under "local".
        assert "durability" in payload["sections"]["local"]["sections"]

    def test_missing_file_means_single_process_report(self, tmp_path, capsys):
        path = durable_dir(tmp_path)
        assert health_main([path, "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert "replication" not in payload["sections"]
        assert "durability" in payload["sections"]

    def test_torn_fleet_file_never_fails_the_probe(self, tmp_path, capsys):
        path = durable_dir(tmp_path)
        with open(os.path.join(path, HEALTH_FILE), "w") as handle:
            handle.write('{"format": "repro.cluster.health/v1", "rep')
        assert health_main([path, "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert "durability" in payload["sections"]

    def test_foreign_format_is_ignored(self, tmp_path, capsys):
        path = durable_dir(tmp_path)
        with open(os.path.join(path, HEALTH_FILE), "w") as handle:
            json.dump({"format": "someone-else/v9", "report": {}}, handle)
        assert health_main([path, "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert "local" not in payload["sections"]
