"""Supervisor satellites, unit-level: atomic health file, jittered
restart backoff.  No subprocesses — these test the two supervisor
mechanisms directly on a bare instance.
"""

from __future__ import annotations

import json
import os
import random
import threading

from repro.cluster.supervisor import (
    HEALTH_FILE,
    ClusterConfig,
    ClusterSupervisor,
    ReplicaHandle,
)
from repro.resilience.health import HealthReport
from repro.resilience.retry import RetryPolicy


def bare_supervisor(tmp_path, **config_kwargs) -> ClusterSupervisor:
    """A supervisor shell with no fleet: directory + restart machinery
    only, no worker subprocesses spawned."""
    supervisor = ClusterSupervisor.__new__(ClusterSupervisor)
    supervisor.directory = str(tmp_path)
    supervisor.config = ClusterConfig(**config_kwargs)
    supervisor.tracer = None
    supervisor._rng = random.Random(7)
    supervisor._clock = lambda: supervisor.now  # test-controlled time
    supervisor.now = 0.0
    supervisor._restart_policy = RetryPolicy(
        base_delay_ms=supervisor.config.restart_backoff_base_ms,
        max_delay_ms=supervisor.config.restart_backoff_max_ms,
        budget_ms=None,
    )
    return supervisor


class TestAtomicHealthFile:
    def test_reader_never_sees_a_torn_file(self, tmp_path, monkeypatch):
        supervisor = bare_supervisor(tmp_path)
        observed: list[dict] = []
        real_replace = os.replace

        def checked_replace(src: str, dst: str) -> None:
            # At replace time the temp file must already be complete,
            # parseable JSON — the reader can never observe a prefix.
            with open(src, "r", encoding="utf-8") as handle:
                observed.append(json.load(handle))
            real_replace(src, dst)

        monkeypatch.setattr(os, "replace", checked_replace)
        supervisor._write_health_file(HealthReport())
        assert len(observed) == 1
        assert observed[0]["report"]["status"] == "healthy"
        # The published file parses and the temp file is gone.
        path = os.path.join(str(tmp_path), HEALTH_FILE)
        with open(path, "r", encoding="utf-8") as handle:
            assert json.load(handle) == observed[0]
        assert not os.path.exists(path + ".tmp")

    def test_rewrite_replaces_whole_content(self, tmp_path):
        supervisor = bare_supervisor(tmp_path)
        supervisor._write_health_file(HealthReport())
        long_report = HealthReport()
        long_report.sections["padding"] = {"x": "y" * 256}
        supervisor._write_health_file(long_report)
        supervisor._write_health_file(HealthReport())  # shorter again
        path = os.path.join(str(tmp_path), HEALTH_FILE)
        with open(path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)  # a truncating write would tear
        assert "padding" not in payload["report"]["sections"]


class TestRestartBackoff:
    def make(self, tmp_path, **config_kwargs):
        supervisor = bare_supervisor(tmp_path, **config_kwargs)
        spawns: list[float] = []
        supervisor._retire = lambda handle: None
        supervisor._spawn = lambda handle: spawns.append(supervisor.now)
        handle = ReplicaHandle(0)
        handle.lock = threading.RLock()
        return supervisor, handle, spawns

    def test_restart_inside_the_backoff_window_is_a_noop(self, tmp_path):
        supervisor, handle, spawns = self.make(
            tmp_path, restart_backoff_base_ms=100.0
        )
        supervisor._restart(handle)
        assert spawns == [0.0]
        assert handle.restarts == 1
        # Immediately retried (a crash loop): paced, not respawned.
        supervisor._restart(handle)
        supervisor._restart(handle)
        assert spawns == [0.0]
        assert handle.restarts == 1
        # Past the jittered deadline the respawn goes through.
        supervisor.now = handle.next_restart_at + 0.001
        supervisor._restart(handle)
        assert len(spawns) == 2
        assert handle.restarts == 2

    def test_backoff_is_full_jitter_exponential(self, tmp_path):
        supervisor, handle, spawns = self.make(
            tmp_path,
            restart_backoff_base_ms=100.0,
            restart_backoff_max_ms=400.0,
            max_restarts=64,
        )
        delays = []
        for _ in range(8):
            supervisor.now = handle.next_restart_at + 0.001
            supervisor._restart(handle)
            delays.append(handle.next_restart_at - supervisor.now)
        # Full jitter: every delay is uniform in [0, cap(attempt)] with
        # cap doubling from base_ms up to max_ms.
        for attempt, delay in enumerate(delays, start=1):
            cap_s = min(0.4, 0.1 * (2 ** (attempt - 1)))
            assert 0.0 <= delay <= cap_s
        # Jitter actually jitters: the draws are not all equal.
        assert len({round(d, 6) for d in delays}) > 1

    def test_injected_rng_makes_the_schedule_deterministic(self, tmp_path):
        def schedule(seed: int) -> list[float]:
            supervisor, handle, _ = self.make(tmp_path)
            supervisor._rng = random.Random(seed)
            deadlines = []
            for _ in range(5):
                supervisor.now = handle.next_restart_at + 0.001
                supervisor._restart(handle)
                deadlines.append(handle.next_restart_at)
            return deadlines

        assert schedule(3) == schedule(3)
        assert schedule(3) != schedule(4)

    def test_restart_budget_is_respected(self, tmp_path):
        supervisor, handle, spawns = self.make(tmp_path, max_restarts=2)
        for _ in range(5):
            supervisor.now = handle.next_restart_at + 0.001
            supervisor._restart(handle)
        assert len(spawns) == 2
        assert handle.restarts == 2
