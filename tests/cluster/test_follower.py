"""Incremental journal tail-follow: the shipper's half of replication.

Satellite coverage for :class:`~repro.durability.journal.JournalFollower`
and :func:`~repro.durability.journal.scan_journal`'s ``from_offset``
resume: a follower must resume at a byte offset (never rescanning the
whole log), hold back torn tails and unterminated groups, survive a
checkpoint rotation when caught up, and demand a resync — never skip —
when compaction folded undelivered records away.
"""

from __future__ import annotations

import os

import pytest

from repro.cluster.protocol import encode_message
from repro.durability import DurableEngine
from repro.durability.journal import (
    FollowerResyncRequired,
    JournalFollower,
    scan_journal,
)
from repro.durability.manifest import read_manifest
from repro.errors import JournalCorruptionError


def fresh(tmp_path) -> tuple[str, DurableEngine]:
    path = str(tmp_path / "d")
    engine = DurableEngine(path)
    engine.load_document("doc", "<log/>")
    return path, engine


def append(engine: DurableEngine, n: int) -> None:
    engine.execute(
        f'snap {{ insert {{ <e n="{n}"/> }} into {{ $doc/log }} }}'
    )


def journal_path(path: str) -> str:
    return os.path.join(path, read_manifest(path)["journal"])


class TestScanFromOffset:
    def test_resume_skips_already_decoded_frames(self, tmp_path):
        path, engine = fresh(tmp_path)
        append(engine, 1)
        first = scan_journal(journal_path(path))
        append(engine, 2)
        resumed = scan_journal(
            journal_path(path), from_offset=first.good_offset
        )
        assert [r["seq"] for r in resumed.records] == [
            first.records[-1]["seq"] + 1
        ]
        assert resumed.offsets[0] == first.good_offset

    def test_offset_outside_the_file_is_typed(self, tmp_path):
        path, engine = fresh(tmp_path)
        append(engine, 1)
        with pytest.raises(JournalCorruptionError):
            scan_journal(journal_path(path), from_offset=3)
        with pytest.raises(JournalCorruptionError):
            scan_journal(journal_path(path), from_offset=1 << 30)

    def test_torn_tail_at_resume_offset_is_reported_not_decoded(
        self, tmp_path
    ):
        path, engine = fresh(tmp_path)
        append(engine, 1)
        scan = scan_journal(journal_path(path))
        frame = encode_message({"seq": 99, "ep": 0})
        with open(journal_path(path), "ab") as handle:
            handle.write(frame[: len(frame) // 2])
        resumed = scan_journal(
            journal_path(path), from_offset=scan.good_offset
        )
        assert resumed.records == []
        assert resumed.good_offset == scan.good_offset
        assert resumed.torn_bytes == len(frame) // 2


class TestFollower:
    def test_poll_is_incremental(self, tmp_path):
        path, engine = fresh(tmp_path)
        follower = JournalFollower(path)
        append(engine, 1)
        append(engine, 2)
        first = follower.poll()
        assert [r["seq"] for r in first] == [1, 2]
        assert follower.poll() == []  # nothing new, no rescan
        append(engine, 3)
        assert [r["seq"] for r in follower.poll()] == [3]

    def test_resume_from_watermark_skips_delivered_records(self, tmp_path):
        path, engine = fresh(tmp_path)
        append(engine, 1)
        append(engine, 2)
        late = JournalFollower(path, after_seq=1)
        assert [r["seq"] for r in late.poll()] == [2]

    def test_torn_tail_is_held_back_then_delivered_whole(self, tmp_path):
        path, engine = fresh(tmp_path)
        follower = JournalFollower(path)
        append(engine, 1)
        follower.poll()
        frame = encode_message({"seq": 2, "ep": 0})
        with open(journal_path(path), "ab") as handle:
            handle.write(frame[: len(frame) // 2])
        assert follower.poll() == []  # partial frame: not yet durable
        offset_before = follower.offset
        with open(journal_path(path), "ab") as handle:
            handle.write(frame[len(frame) // 2 :])
        delivered = follower.poll()
        assert [r["seq"] for r in delivered] == [2]
        assert follower.offset > offset_before

    def test_unterminated_group_is_held_back_whole(self, tmp_path):
        path, engine = fresh(tmp_path)
        follower = JournalFollower(path)
        append(engine, 1)
        follower.poll()
        with open(journal_path(path), "ab") as handle:
            handle.write(
                encode_message({"seq": 2, "ep": 0, "group": "begin"})
            )
            handle.write(encode_message({"seq": 3, "ep": 0}))
        assert follower.poll() == []  # begin without end: held back
        with open(journal_path(path), "ab") as handle:
            handle.write(
                encode_message({"seq": 4, "ep": 0, "group": "end"})
            )
        assert [r["seq"] for r in follower.poll()] == [2, 3, 4]

    def test_sequence_gap_is_permanently_fatal(self, tmp_path):
        path, engine = fresh(tmp_path)
        follower = JournalFollower(path)
        append(engine, 1)
        follower.poll()
        with open(journal_path(path), "ab") as handle:
            handle.write(encode_message({"seq": 7, "ep": 0}))
        with pytest.raises(JournalCorruptionError):
            follower.poll()

    def test_resume_across_rotation_when_caught_up(self, tmp_path):
        path, engine = fresh(tmp_path)
        follower = JournalFollower(path)
        append(engine, 1)
        append(engine, 2)
        follower.poll()
        engine.checkpoint()  # rotates the journal generation
        append(engine, 3)
        delivered = follower.poll()
        assert [r["seq"] for r in delivered] == [3]
        assert follower.generation == read_manifest(path)["generation"]

    def test_compacted_past_the_follower_demands_resync(self, tmp_path):
        path, engine = fresh(tmp_path)
        follower = JournalFollower(path)
        follower.poll()
        append(engine, 1)  # never delivered to the follower
        engine.checkpoint()  # folds seq 1 into the checkpoint
        with pytest.raises(FollowerResyncRequired):
            follower.poll()
        # FollowerResyncRequired is corruption-classified: retry
        # policies must never spin on it.
        with pytest.raises(JournalCorruptionError):
            follower.poll()


class TestRotationOnFrameBoundary:
    def test_rotation_lands_exactly_on_the_held_back_tail(self, tmp_path):
        """Satellite: the torn-tail holdback edge across a rotation.

        The follower is caught up to a frame boundary with a torn
        half-frame beyond it (held back, never delivered).  The
        journal's owner then recovers — truncating the torn tail to
        *exactly* the follower's boundary — and checkpoints, rotating
        the generation at that precise offset.  The follower must
        switch generations without a resync (nothing it missed was
        folded away), deliver nothing twice, and resume cleanly in the
        new journal.
        """
        from repro.durability import DurableEngine

        path, engine = fresh(tmp_path)
        follower = JournalFollower(path)
        append(engine, 1)
        append(engine, 2)
        assert [r["seq"] for r in follower.poll()] == [1, 2]
        boundary = follower.offset
        assert boundary == os.path.getsize(journal_path(path))
        # A crash mid-append leaves a torn half-frame past the boundary.
        frame = encode_message({"seq": 3, "ep": 0})
        engine.close()
        with open(journal_path(path), "ab") as handle:
            handle.write(frame[: len(frame) // 2])
        assert follower.poll() == []  # held back, offset unmoved
        assert follower.offset == boundary
        # The owner recovers (truncates the torn tail back to the
        # follower's exact frame boundary) and rotates.
        reopened = DurableEngine(path)
        reopened.checkpoint()
        # manifest seq == follower watermark: the rotation landed
        # exactly on the boundary — switch generations, no resync.
        manifest = read_manifest(path)
        assert manifest["seq"] == follower.watermark == 2
        assert follower.poll() == []
        assert follower.generation == manifest["generation"]
        # The resume offset tracks the *new* file now.
        assert follower.offset == os.path.getsize(journal_path(path))
        append(reopened, 3)
        delivered = follower.poll()
        assert [r["seq"] for r in delivered] == [3]
        assert follower.watermark == 3
