"""The fleet chaos gate: a short real run plus verdict/classify pins.

The short run is the CI quality gate for the tentpole: a live fleet
under concurrent load with a replica kill *and* a primary kill must end
with only typed outcomes, a completed fenced failover, convergence and
byte agreement with single-process recovery.
"""

from __future__ import annotations

import pytest

from repro.cluster.chaos import (
    REPLICA_LAG,
    STALE_EPOCH,
    SUCCESS,
    UNEXPECTED,
    ClusterChaosHarness,
    ClusterChaosReport,
    ClusterChaosSchedule,
)
from repro.errors import (
    CircuitOpenError,
    DurabilityError,
    ReplicaLagError,
    StaleEpochError,
)


class TestClassify:
    def test_replication_errors_have_their_own_outcome_classes(self):
        classify = ClusterChaosHarness.classify
        assert classify(None) == SUCCESS
        assert classify(ReplicaLagError("behind")) == REPLICA_LAG
        assert classify(StaleEpochError("deposed")) == STALE_EPOCH
        assert classify(RuntimeError("boom")) == UNEXPECTED

    def test_replication_errors_are_not_misfiled(self):
        # Ordering matters: the fleet-specific refusals must be
        # recognized before the broader durability/circuit buckets.
        classify = ClusterChaosHarness.classify
        assert classify(StaleEpochError("x")) != "durability"
        assert classify(CircuitOpenError("x")) == "circuit-open"
        assert classify(DurabilityError("x")) == "durability"


class TestVerdict:
    def base_report(self) -> ClusterChaosReport:
        return ClusterChaosReport(
            outcomes={SUCCESS: 100},
            read_successes=60,
            write_successes=40,
            replicas_converged=True,
            byte_agreement_ok=True,
        )

    def test_quiet_run_holds(self):
        assert self.base_report().invariant_holds

    def test_untyped_error_violates(self):
        report = self.base_report()
        report.unexpected.append("RuntimeError('boom')")
        assert not report.invariant_holds

    def test_divergence_violates(self):
        report = self.base_report()
        report.replicas_converged = False
        assert not report.invariant_holds
        report = self.base_report()
        report.byte_agreement_ok = False
        assert not report.invariant_holds

    def test_primary_kill_demands_fenced_failover(self):
        report = self.base_report()
        report.primary_killed = True
        report.failover_performed = True
        report.post_failover_write_successes = 1
        report.fenced_refusal_ok = True
        assert report.invariant_holds
        for breakage in (
            {"failover_performed": False},
            {"post_failover_write_successes": 0},
            {"fenced_refusal_ok": False},
        ):
            broken = self.base_report()
            broken.primary_killed = True
            broken.failover_performed = True
            broken.post_failover_write_successes = 1
            broken.fenced_refusal_ok = True
            for key, value in breakage.items():
                setattr(broken, key, value)
            assert not broken.invariant_holds, breakage

    def test_report_serializes(self):
        payload = self.base_report().to_dict()
        assert payload["schema"] == "repro.cluster.chaos-report/v1"
        assert payload["invariant_holds"] is True
        assert "fenced_refusal_ok" in payload
        assert "final_watermarks" in payload


@pytest.mark.slow
class TestShortRun:
    def test_kill_replica_and_primary_invariant_holds(self, tmp_path):
        schedule = ClusterChaosSchedule(
            duration_s=4.0,
            kill_replica_at_s=0.6,
            kill_primary_at_s=2.0,
        )
        harness = ClusterChaosHarness(
            path=str(tmp_path / "d"),
            schedule=schedule,
            replicas=2,
            readers=2,
            writers=2,
        )
        report = harness.run()
        assert report.invariant_holds, report.render()
        assert report.primary_killed
        assert report.failover_performed
        assert report.fenced_refusal_ok
        assert report.outcomes.get(UNEXPECTED, 0) == 0
        assert report.byte_agreement_ok
