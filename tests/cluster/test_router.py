"""QueryRouter: staleness-bounded routing over stub backends.

Pins the routing policy without any processes: freshest qualifying
replica first, primary last as the fallback, transient backend
failures skipped, fencing never routed around, and a typed
:class:`~repro.errors.ReplicaLagError` (with its retry hint) when
nothing qualifies.  Also pins the :class:`~repro.engine.
ExecutionOptions` ``max_lag_seq`` contract the router consumes.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.cluster.router import QueryRouter, RoutedResult
from repro.engine import ExecutionOptions
from repro.errors import ReplicaLagError, StaleEpochError


class StubBackend:
    def __init__(
        self,
        name: str,
        lag: int | None = 0,
        ready: bool = True,
        error: BaseException | None = None,
    ):
        self.name = name
        self._lag = lag
        self._ready = ready
        self._error = error
        self.calls = 0

    def ready(self) -> bool:
        return self._ready

    def lag_seq(self) -> int | None:
        return self._lag

    def execute_read(self, query, bindings=None, *, timeout_ms=None):
        self.calls += 1
        if self._error is not None:
            raise self._error
        return RoutedResult(strings=[self.name], backend=self.name)


def served_by(router: QueryRouter, **kwargs) -> str:
    return router.execute_read("q", **kwargs).backend


class TestRoutingPolicy:
    def test_freshest_qualifying_replica_wins(self):
        fresh = StubBackend("replica-fresh", lag=1)
        stale = StubBackend("replica-stale", lag=9)
        router = QueryRouter(replicas=[stale, fresh])
        assert served_by(router, max_lag_seq=10) == "replica-fresh"

    def test_bound_excludes_laggards(self):
        near = StubBackend("replica-near", lag=3)
        far = StubBackend("replica-far", lag=50)
        router = QueryRouter(replicas=[near, far])
        assert served_by(router, max_lag_seq=5) == "replica-near"
        assert far.calls == 0

    def test_primary_is_the_last_resort(self):
        primary = StubBackend("primary", lag=0)
        replica = StubBackend("replica-0", lag=2)
        router = QueryRouter(primary=primary, replicas=[replica])
        assert served_by(router, max_lag_seq=10) == "replica-0"
        assert primary.calls == 0

    def test_primary_serves_when_no_replica_qualifies(self):
        primary = StubBackend("primary", lag=0)
        replica = StubBackend("replica-0", lag=99)
        router = QueryRouter(primary=primary, replicas=[replica])
        assert served_by(router, max_lag_seq=5) == "primary"

    def test_zero_bound_demands_fully_caught_up(self):
        caught_up = StubBackend("replica-0", lag=0)
        behind = StubBackend("replica-1", lag=1)
        router = QueryRouter(replicas=[behind, caught_up])
        assert served_by(router, max_lag_seq=0) == "replica-0"

    def test_unknown_lag_never_qualifies_under_a_bound(self):
        unknown = StubBackend("replica-0", lag=None)
        router = QueryRouter(replicas=[unknown])
        with pytest.raises(ReplicaLagError):
            served_by(router, max_lag_seq=100)

    def test_default_bound_applies_when_call_has_none(self):
        near = StubBackend("replica-near", lag=1)
        far = StubBackend("replica-far", lag=50)
        router = QueryRouter(
            replicas=[far, near], default_max_lag_seq=5
        )
        assert served_by(router) == "replica-near"

    def test_options_carry_the_bound(self):
        replica = StubBackend("replica-0", lag=10)
        router = QueryRouter(replicas=[replica])
        options = ExecutionOptions(max_lag_seq=5)
        with pytest.raises(ReplicaLagError):
            router.execute_read("q", options=options)


class TestFailureHandling:
    def test_transient_failure_falls_through_to_the_next(self):
        flaky = StubBackend(
            "replica-flaky", lag=0, error=ReplicaLagError("reset")
        )
        healthy = StubBackend("replica-healthy", lag=1)
        router = QueryRouter(replicas=[flaky, healthy])
        assert served_by(router, max_lag_seq=10) == "replica-healthy"

    def test_fencing_is_never_routed_around(self):
        fenced = StubBackend(
            "replica-fenced",
            lag=0,
            error=StaleEpochError("deposed", stale_epoch=1, fence_epoch=2),
        )
        healthy = StubBackend("replica-healthy", lag=1)
        router = QueryRouter(replicas=[fenced, healthy])
        with pytest.raises(StaleEpochError):
            served_by(router, max_lag_seq=10)
        assert healthy.calls == 0

    def test_nothing_qualifying_is_a_typed_refusal_with_hint(self):
        behind = StubBackend("replica-0", lag=40)
        router = QueryRouter(replicas=[behind], retry_after_ms=25.0)
        with pytest.raises(ReplicaLagError) as info:
            served_by(router, max_lag_seq=5)
        assert info.value.code == "REPR0010"
        assert info.value.max_lag_seq == 5
        assert info.value.lag_seq == 40  # best observed lag, reported
        assert info.value.retry_after_ms == 25.0

    def test_not_ready_backends_are_invisible(self):
        down = StubBackend("replica-down", lag=0, ready=False)
        router = QueryRouter(replicas=[down])
        with pytest.raises(ReplicaLagError):
            served_by(router, max_lag_seq=10)


class TestRoutedResult:
    def test_duck_compatibility_with_query_result(self):
        result = RoutedResult(
            strings=["a", "b"], xml="<r/>", backend="replica-0"
        )
        assert result.strings() == ["a", "b"]
        assert result.serialize() == "<r/>"
        assert result.first_value() == "a"
        assert len(result) == 2
        assert result.backend == "replica-0"

    def test_empty_result(self):
        result = RoutedResult()
        assert result.strings() == []
        assert result.serialize() == ""
        assert result.first_value() is None
        assert len(result) == 0


class TestExecutionOptionsMaxLag:
    def test_default_is_unbounded(self):
        assert ExecutionOptions().max_lag_seq is None

    def test_zero_is_a_legal_bound(self):
        assert ExecutionOptions(max_lag_seq=0).max_lag_seq == 0

    def test_negative_bound_is_rejected(self):
        with pytest.raises(ValueError):
            ExecutionOptions(max_lag_seq=-1)

    def test_options_stay_immutable(self):
        options = ExecutionOptions(max_lag_seq=4)
        with pytest.raises(dataclasses.FrozenInstanceError):
            options.max_lag_seq = 8
