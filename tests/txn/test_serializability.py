"""Property: committed concurrent transactions are serializable.

Random transactions all begin on the same snapshot, run their
statements, then commit in a random order; first-committer-wins
validation aborts some of them.  The claim under test:

* the surviving store state equals executing exactly the *committed*
  transactions, one after another, in commit order, on a fresh engine
  (commit order is the witnessing serial order);
* aborted transactions leave no trace (they are simply absent from the
  serial witness, so equality proves it).

The generated statements are blind writes (constant payloads, rows
addressed by a stable ``@id``), which is precisely the fragment where
write-set validation guarantees full serializability — values never
depend on reads that another transaction could have invalidated.
"""

from hypothesis import given, settings, strategies as st

from repro import Engine
from repro.errors import TransactionConflictError

ROWS = ["r0", "r1", "r2"]


def fresh_engine() -> Engine:
    engine = Engine()
    engine.bind(
        "table",
        engine.parse_fragment(
            "<table>"
            + "".join(f'<row id="{r}" v="0"/>' for r in ROWS)
            + "</table>"
        ),
    )
    return engine


def statement(op) -> str:
    kind, row, payload = op
    target = f'$table/*[@id = "{row}"]'
    if kind == "set":
        return (
            f"snap replace value of {{ {target}/@v }} "
            f'with {{ "{payload}" }}'
        )
    if kind == "rename":
        return f'snap rename {{ {target} }} to {{ "n{payload}" }}'
    return (  # "child"
        f'snap insert {{ <c tag="{payload}"/> }} into {{ {target} }}'
    )


_op = st.tuples(
    st.sampled_from(["set", "rename", "child"]),
    st.sampled_from(ROWS),
    st.integers(min_value=0, max_value=999),
)
_txn = st.lists(_op, min_size=1, max_size=3)
_txns = st.lists(_txn, min_size=2, max_size=3)


@given(txns=_txns, order=st.randoms(use_true_random=False))
@settings(max_examples=60, deadline=None)
def test_committed_transactions_equal_a_serial_order(txns, order):
    engine = fresh_engine()
    sessions = [engine.session() for _ in txns]
    open_txns = []
    for session, ops in zip(sessions, txns):
        txn = session.begin()
        for op in ops:
            txn.execute(statement(op))
        open_txns.append(txn)

    indices = list(range(len(txns)))
    order.shuffle(indices)
    committed = []
    for index in indices:
        try:
            open_txns[index].commit()
        except TransactionConflictError:
            pass
        else:
            committed.append(index)
    for session in sessions:
        session.close()
    engine.store.check_invariants()

    # Serial witness: only the committed transactions, in commit order.
    witness = fresh_engine()
    for index in committed:
        for op in txns[index]:
            witness.execute(statement(op))

    assert (
        engine.execute("$table").serialize()
        == witness.execute("$table").serialize()
    )


@given(txns=_txns)
@settings(max_examples=30, deadline=None)
def test_rolled_back_transactions_leave_no_trace(txns):
    engine = fresh_engine()
    before = engine.execute("$table").serialize()
    for ops in txns:
        with engine.session() as session:
            txn = session.begin()
            for op in ops:
                txn.execute(statement(op))
            txn.rollback()
    engine.store.check_invariants()
    assert engine.execute("$table").serialize() == before
    # Nothing reached the snapshot machinery or indexes either.
    assert engine.execute("count($table/*/c)").first_value() == 0
