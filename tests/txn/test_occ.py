"""Optimistic concurrency control: first-committer-wins validation.

The §3.2 conflict rules, applied *between* transactions: the first
transaction to commit wins; any overlapping transaction that validated
against an older snapshot aborts with ``REPR0008`` and can be retried
on a fresh snapshot (the abort is transient by design — it sits in
``DEFAULT_TRANSIENT`` so a plain :class:`RetryPolicy` reruns it).
"""

import threading

import pytest

from repro import Engine, RetryPolicy
from repro.concurrent.executor import ConcurrentExecutor
from repro.errors import TransactionConflictError

COUNT = "count($table/row)"


@pytest.fixture
def e() -> Engine:
    engine = Engine()
    engine.bind(
        "table",
        engine.parse_fragment(
            "<table><row id='a' v='0'/><row id='b' v='0'/></table>"
        ),
    )
    return engine


def bump(txn, rowid):
    txn.execute(
        f"""snap replace value of {{ $table/row[@id = "{rowid}"]/@v }}
            with {{ string(number($table/row[@id = "{rowid}"]/@v) + 1) }}"""
    )


class TestFirstCommitterWins:
    def test_write_write_conflict_aborts_second(self, e):
        s1, s2 = e.session(), e.session()
        t1, t2 = s1.begin(), s2.begin()
        bump(t1, "a")
        bump(t2, "a")
        t1.commit()
        with pytest.raises(TransactionConflictError):
            t2.commit()
        # First committer's write survives; the loser left no trace.
        assert (
            e.execute('string($table/row[@id = "a"]/@v)').first_value()
            == "1"
        )
        s1.close()
        s2.close()

    def test_disjoint_writes_both_commit(self, e):
        s1, s2 = e.session(), e.session()
        t1, t2 = s1.begin(), s2.begin()
        bump(t1, "a")
        bump(t2, "b")
        t1.commit()
        t2.commit()  # no overlap with t1's Δ: validates clean
        values = e.execute("$table/row/@v").strings()
        assert values == ["1", "1"]
        s1.close()
        s2.close()

    def test_autocommit_conflicts_with_open_txn(self, e):
        session = e.session()
        txn = session.begin()
        bump(txn, "a")
        # A plain engine-level write to the same attribute commits first.
        e.execute(
            'snap replace value of { $table/row[@id = "a"]/@v } '
            'with { "9" }'
        )
        with pytest.raises(TransactionConflictError):
            txn.commit()
        session.close()
        assert (
            e.execute('string($table/row[@id = "a"]/@v)').first_value()
            == "9"
        )

    def test_autocommit_on_other_node_does_not_conflict(self, e):
        session = e.session()
        txn = session.begin()
        bump(txn, "a")
        e.execute(
            'snap replace value of { $table/row[@id = "b"]/@v } '
            'with { "9" }'
        )
        txn.commit()
        session.close()
        values = e.execute("$table/row/@v").strings()
        assert values == ["1", "9"]

    def test_insert_into_conflicts_with_content_replacement(self, e):
        s1, s2 = e.session(), e.session()
        t1, t2 = s1.begin(), s2.begin()
        t1.execute(
            'snap replace value of { $table/row[@id = "a"] } '
            'with { "gone" }'
        )
        t2.execute(
            'snap insert { <mark/> } into { $table/row[@id = "a"] }'
        )
        t1.commit()
        with pytest.raises(TransactionConflictError):
            t2.commit()
        s1.close()
        s2.close()
        e.store.check_invariants()

    def test_delete_of_parent_commutes_with_insert_into_it(self, e):
        # Deleting a subtree removes any child inserted into it whether
        # the insert lands first or not — the final state agrees, so the
        # §3.2 rules (deliberately) let both commit.
        s1, s2 = e.session(), e.session()
        t1, t2 = s1.begin(), s2.begin()
        t1.execute('snap delete { $table/row[@id = "a"] }')
        t2.execute(
            'snap insert { <mark/> } into { $table/row[@id = "a"] }'
        )
        t1.commit()
        t2.commit()
        s1.close()
        s2.close()
        e.store.check_invariants()

    def test_loser_can_retry_on_fresh_snapshot(self, e):
        s1, s2 = e.session(), e.session()
        t1 = s1.begin()
        bump(t1, "a")
        t2 = s2.begin()
        bump(t2, "a")
        t1.commit()
        with pytest.raises(TransactionConflictError):
            t2.commit()
        # Rerun the same logic on a fresh snapshot: sees v=1, bumps to 2.
        t3 = s2.begin()
        bump(t3, "a")
        t3.commit()
        assert (
            e.execute('string($table/row[@id = "a"]/@v)').first_value()
            == "2"
        )
        s1.close()
        s2.close()


class TestRetryIntegration:
    def test_conflict_is_transient_for_retry_policy(self, e):
        from repro.resilience.retry import DEFAULT_TRANSIENT

        assert TransactionConflictError in DEFAULT_TRANSIENT

    def test_retry_policy_reruns_aborted_transaction(self, e):
        attempts = []

        def transfer():
            with e.session() as session:
                with session.transaction() as txn:
                    bump(txn, "a")
                    if not attempts:
                        # Sneak a conflicting autocommit in under the
                        # open transaction — first attempt must abort.
                        e.execute(
                            "snap replace value of "
                            '{ $table/row[@id = "a"]/@v } with { "5" }'
                        )
                    attempts.append(1)

        policy = RetryPolicy(max_attempts=3, base_delay_ms=1)
        policy.call(transfer)
        assert len(attempts) == 2
        # Second attempt saw the committed 5 and bumped it.
        assert (
            e.execute('string($table/row[@id = "a"]/@v)').first_value()
            == "6"
        )


class TestStress:
    @pytest.mark.slow
    def test_n_writers_occ_counter(self, e):
        """N threads × M increments on one attribute, retried on abort.

        Every increment must land exactly once: the final value equals
        the number of committed transactions, and abort/retry never
        double-applies.
        """
        executor = ConcurrentExecutor(e, workers=4)
        threads, per_thread = 4, 10
        conflicts = []
        policy = RetryPolicy(max_attempts=50, base_delay_ms=1)

        def writer():
            for _ in range(per_thread):
                def once():
                    with executor.session() as session:
                        with session.transaction() as txn:
                            bump(txn, "a")

                try:
                    policy.call(once)
                except TransactionConflictError:  # pragma: no cover
                    conflicts.append(1)

        workers = [
            threading.Thread(target=writer) for _ in range(threads)
        ]
        try:
            for t in workers:
                t.start()
            for t in workers:
                t.join()
        finally:
            executor.shutdown()
        assert not conflicts
        assert (
            e.execute('number($table/row[@id = "a"]/@v)').first_value()
            == threads * per_thread
        )
        e.store.check_invariants()
