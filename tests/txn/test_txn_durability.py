"""Transaction durability: one commit, one atomic journal frame group.

A durable transaction journals its buffered statements as a *group* —
a ``begin`` marker, one member frame per statement, an ``end`` marker,
one fsync.  Recovery replays groups all-or-nothing: a crash mid-group
truncates the whole group out of the journal; a crash after the fsync
replays the whole group.  Interior marker damage (an ``end`` with no
``begin``) is corruption, not a torn write, and recovery refuses.
"""

import json
import os
import struct
from zlib import crc32

import pytest

from repro.durability import (
    CRASH_AFTER_JOURNAL,
    CRASH_BEFORE_FSYNC,
    EIO_ON_WRITE,
    DurableEngine,
    FaultInjector,
    InjectedCrash,
    recover,
)
from repro.durability.journal import FRAME_MAGIC, scan_journal
from repro.durability.manifest import read_manifest
from repro.errors import DurabilityError, JournalCorruptionError


def fresh(tmp_path, **kwargs):
    path = str(tmp_path / "d")
    engine = DurableEngine(path, **kwargs)
    engine.load_document("doc", "<log/>")
    return path, engine


def journal_file(path):
    return os.path.join(path, read_manifest(path)["journal"])


def entries(engine):
    return engine.execute("count($doc/log/e)").first_value()


def insert(n):
    return f'snap insert {{ <e n="{n}"/> }} into {{ $doc/log }}'


def run_txn(engine, *queries):
    with engine.session() as session:
        with session.transaction() as txn:
            for query in queries:
                txn.execute(query)


def markers(path):
    """(group, count) per frame; None for member/autocommit frames."""
    out = []
    for record in scan_journal(journal_file(path)).records:
        if "group" in record:
            out.append((record["group"], record["count"]))
        else:
            out.append(None)
    return out


class TestGroupFraming:
    def test_commit_is_one_begin_members_end_group(self, tmp_path):
        path, engine = fresh(tmp_path)
        run_txn(engine, insert(1), insert(2))
        engine.close()
        assert markers(path) == [("begin", 2), None, None, ("end", 2)]

    def test_group_frames_consume_contiguous_seqs(self, tmp_path):
        path, engine = fresh(tmp_path)
        engine.execute(insert(0))  # autocommit frame, seq 1
        run_txn(engine, insert(1), insert(2))
        engine.close()
        seqs = [r["seq"] for r in scan_journal(journal_file(path)).records]
        assert seqs == [1, 2, 3, 4, 5]

    def test_empty_transaction_journals_nothing(self, tmp_path):
        path, engine = fresh(tmp_path)
        with engine.session() as session:
            session.begin().commit()
        engine.close()
        assert markers(path) == []

    def test_recovery_replays_the_group(self, tmp_path):
        path, engine = fresh(tmp_path)
        run_txn(engine, insert(1), insert(2), insert(3))
        engine.close()
        result = recover(path)
        assert entries(result.engine) == 3
        assert result.report.groups_replayed == 1
        assert result.report.records_replayed == 5  # 2 markers + 3 members
        result.engine.store.check_invariants()

    def test_reopen_after_group_appends_cleanly(self, tmp_path):
        path, engine = fresh(tmp_path)
        run_txn(engine, insert(1))
        engine.close()
        reopened = DurableEngine(path)
        run_txn(reopened, insert(2), insert(3))
        reopened.close()
        result = recover(path)
        assert entries(result.engine) == 3
        assert result.report.groups_replayed == 2


class TestCrashMatrix:
    def test_crash_before_fsync_loses_the_whole_group(self, tmp_path):
        faults = FaultInjector()
        path, engine = fresh(tmp_path, faults=faults)
        engine.execute(insert(1))
        engine.execute(insert(2))
        faults.arm(CRASH_BEFORE_FSYNC)
        with pytest.raises(InjectedCrash):
            run_txn(engine, insert(3), insert(4))
        result = recover(path)
        # The unacknowledged group vanished whole — no half-applied txn.
        assert entries(result.engine) == 2
        assert result.report.groups_replayed == 0
        assert result.report.truncated_bytes > 0
        result.engine.store.check_invariants()

    def test_crash_after_journal_recovers_the_whole_group(self, tmp_path):
        faults = FaultInjector()
        path, engine = fresh(tmp_path, faults=faults)
        engine.execute(insert(1))
        faults.arm(CRASH_AFTER_JOURNAL)
        with pytest.raises(InjectedCrash):
            run_txn(engine, insert(2), insert(3))
        result = recover(path)
        # Durable but unacknowledged: the group is all there, so all of
        # it replays — never a prefix of it.
        assert entries(result.engine) == 3
        assert result.report.groups_replayed == 1
        result.engine.store.check_invariants()

    def test_eio_on_journal_write_rolls_back_and_engine_survives(
        self, tmp_path
    ):
        # Unlike a crash point (simulated process death), an I/O error
        # is survivable: the commit raises a typed error, the in-memory
        # store is restored, and the engine keeps working.
        faults = FaultInjector()
        path, engine = fresh(tmp_path, faults=faults)
        faults.arm(EIO_ON_WRITE)
        with pytest.raises(DurabilityError):
            run_txn(engine, insert(1))
        assert entries(engine) == 0
        engine.store.check_invariants()
        engine.execute(insert(7))  # still usable
        engine.close()
        result = recover(path)
        assert entries(result.engine) == 1


class TestInteriorDamage:
    def _append_frame(self, wal, payload: bytes):
        header = struct.pack("<III", FRAME_MAGIC, len(payload), crc32(payload))
        with open(wal, "ab") as handle:
            handle.write(header + struct.pack("<I", crc32(header)) + payload)

    def test_end_without_begin_is_corruption(self, tmp_path):
        path, engine = fresh(tmp_path)
        run_txn(engine, insert(1))
        engine.close()
        wal = journal_file(path)
        orphan_end = {"seq": 4, "group": "end", "txn": 7, "count": 1}
        self._append_frame(wal, json.dumps(orphan_end).encode())
        with pytest.raises(JournalCorruptionError, match="without begin"):
            recover(path)

    def test_member_count_mismatch_is_corruption(self, tmp_path):
        path, engine = fresh(tmp_path)
        run_txn(engine, insert(1))
        engine.close()
        wal = journal_file(path)
        data = open(wal, "rb").read()
        # A second, hand-built group claiming two members but holding one.
        frames = [
            {"seq": 4, "group": "begin", "txn": 9, "count": 2},
            {"seq": 5, "pre": 4, "post": 4, "sem": "ordered",
             "ops": [], "nodes": []},
            {"seq": 6, "group": "end", "txn": 9, "count": 2},
        ]
        for frame in frames:
            self._append_frame(wal, json.dumps(frame).encode())
        with pytest.raises(JournalCorruptionError):
            recover(path)
        open(wal, "wb").write(data)  # restore for tmp_path hygiene

    def test_trailing_unterminated_group_is_truncated(self, tmp_path):
        path, engine = fresh(tmp_path)
        run_txn(engine, insert(1))
        engine.close()
        wal = journal_file(path)
        # A trailing begin with no end — exactly what a crash between
        # the group's write and its completion leaves behind.
        dangling = {"seq": 4, "group": "begin", "txn": 9, "count": 1}
        self._append_frame(wal, json.dumps(dangling).encode())
        result = recover(path)
        assert entries(result.engine) == 1
        assert result.report.groups_replayed == 1  # the intact one
        assert result.report.truncated_bytes > 0
        # The file was cut back: a second recovery sees a clean journal.
        again = recover(path)
        assert again.report.truncated_bytes == 0
        assert entries(again.engine) == 1


class TestDurableSemantics:
    def test_recovered_groups_respect_statement_semantics(self, tmp_path):
        path, engine = fresh(tmp_path)
        run_txn(
            engine,
            insert(1),
            'snap conflict-detection { insert { <e n="2"/> } '
            "into { $doc/log } }",
        )
        before = engine.execute("$doc").serialize()
        engine.close()
        result = recover(path)
        assert result.engine.execute("$doc").serialize() == before

    def test_compaction_folds_committed_groups(self, tmp_path):
        path, engine = fresh(tmp_path, compact_max_records=4)
        run_txn(engine, insert(1), insert(2))  # 4 frames -> compacts
        run_txn(engine, insert(3))
        engine.close()
        result = recover(path)
        assert entries(result.engine) == 3
        result.engine.store.check_invariants()
