"""The Session/Transaction surface: lifecycle, isolation, the three hosts.

Covers the unified ``session(...)`` entry point on :class:`Engine`,
:class:`DurableEngine` and :class:`ConcurrentExecutor`, snapshot
isolation (read-your-writes inside, invisibility outside), rollback
leaving no trace, and the lifecycle errors (double begin, commit
without begin, use after close).
"""

import pytest

from repro import Engine, Session, Transaction
from repro.concurrent.executor import ConcurrentExecutor
from repro.durability import DurableEngine
from repro.errors import (
    DynamicError,
    TransactionConflictError,
    XQueryError,
)

INSERT = "snap insert { <row id='%s'/> } into { $table }"
COUNT = "count($table/row)"


@pytest.fixture
def e() -> Engine:
    engine = Engine()
    engine.bind("table", engine.parse_fragment("<table><row id='0'/></table>"))
    return engine


class TestIsolation:
    def test_read_your_writes_inside_txn(self, e):
        with e.session() as session:
            txn = session.begin()
            txn.execute(INSERT % 1)
            assert txn.execute(COUNT).first_value() == 2
            # The live store has not seen the write yet.
            assert e.execute(COUNT).first_value() == 1
            txn.commit()
        assert e.execute(COUNT).first_value() == 2

    def test_snapshot_does_not_see_later_autocommits(self, e):
        session = e.session()
        txn = session.begin()
        e.execute(INSERT % "outside")
        # The txn pinned its snapshot before the autocommit landed.
        assert txn.execute(COUNT).first_value() == 1
        txn.rollback()
        session.close()

    def test_rollback_leaves_no_trace(self, e):
        before = e.execute("$table").serialize()
        with e.session() as session:
            txn = session.begin()
            txn.execute(INSERT % 1)
            txn.execute('snap rename { $table/row[1] } to { "tuple" }')
            txn.rollback()
        assert e.execute("$table").serialize() == before
        e.store.check_invariants()

    def test_uncommitted_txn_rolls_back_on_session_close(self, e):
        session = e.session()
        txn = session.begin()
        txn.execute(INSERT % 1)
        session.close()
        assert e.execute(COUNT).first_value() == 1
        assert session.closed

    def test_multi_statement_commit_is_all_or_nothing(self, e):
        with e.session() as session:
            with session.transaction() as txn:
                txn.execute(INSERT % 1)
                txn.execute(INSERT % 2)
                txn.execute('snap delete { $table/row[@id = "0"] }')
        ids = e.execute("$table/row/@id").strings()
        assert ids == ["1", "2"]


class TestLifecycle:
    def test_empty_commit_is_a_no_op(self, e):
        with e.session() as session:
            txn = session.begin()
            txn.commit()
        assert e.execute(COUNT).first_value() == 1

    def test_double_begin_is_an_error(self, e):
        with e.session() as session:
            session.begin()
            with pytest.raises(XQueryError, match="already active"):
                session.begin()
            session.rollback()

    def test_commit_without_begin_is_an_error(self, e):
        with e.session() as session:
            with pytest.raises(XQueryError, match="[Nn]o transaction"):
                session.commit()

    def test_execute_after_commit_is_an_error(self, e):
        with e.session() as session:
            txn = session.begin()
            txn.commit()
            with pytest.raises(XQueryError, match="no longer active"):
                txn.execute(COUNT)

    def test_session_after_close_is_an_error(self, e):
        session = e.session()
        session.close()
        with pytest.raises(XQueryError, match="closed"):
            session.begin()

    def test_auto_begin_on_session_execute(self, e):
        with e.session() as session:
            session.execute(INSERT % 1)
            assert session.transaction_active
            session.commit()
        assert e.execute(COUNT).first_value() == 2

    def test_explicit_rollback_inside_cm_skips_commit(self, e):
        with e.session() as session:
            with session.transaction() as txn:
                txn.execute(INSERT % 1)
                txn.rollback()
        assert e.execute(COUNT).first_value() == 1

    def test_exception_inside_cm_rolls_back_and_propagates(self, e):
        session = e.session()
        with pytest.raises(RuntimeError):
            with session.transaction() as txn:
                txn.execute(INSERT % 1)
                raise RuntimeError("abort")
        session.close()
        assert e.execute(COUNT).first_value() == 1

    def test_unbound_external_variable_is_a_dynamic_error(self, e):
        with e.session() as session:
            txn = session.begin()
            with pytest.raises(DynamicError, match="is not bound"):
                txn.execute(
                    "declare variable $missing external; $missing"
                )
            txn.rollback()

    def test_bindings_reach_the_transaction(self, e):
        with e.session() as session:
            with session.transaction() as txn:
                result = txn.execute("$n * 2", bindings={"n": 21})
                assert result.first_value() == 42

    def test_repr_mentions_state(self, e):
        session = e.session()
        assert "Session" in repr(session)
        session.close()

    def test_types_are_the_public_ones(self, e):
        session = e.session()
        assert isinstance(session, Session)
        assert isinstance(session.begin(), Transaction)
        session.rollback()
        session.close()


class TestConflictErrorShape:
    def test_code_is_repr0008(self, e):
        s1, s2 = e.session(), e.session()
        t1, t2 = s1.begin(), s2.begin()
        t1.execute('snap rename { $table/row } to { "a" }')
        t2.execute('snap rename { $table/row } to { "b" }')
        t1.commit()
        with pytest.raises(TransactionConflictError) as info:
            t2.commit()
        assert info.value.code == "REPR0008"
        assert "[REPR0008]" in str(info.value)
        assert info.value.conflicts_with_seq is not None
        s1.close()
        s2.close()


class TestHosts:
    def test_durable_engine_session(self, tmp_path):
        engine = DurableEngine(str(tmp_path / "d"))
        engine.load_document("doc", "<log/>")
        with engine.session() as session:
            with session.transaction() as txn:
                txn.execute("snap insert { <e/> } into { $doc/log }")
        assert engine.execute("count($doc/log/e)").first_value() == 1
        engine.close()

    def test_concurrent_executor_session(self, e):
        executor = ConcurrentExecutor(e, workers=2)
        try:
            with executor.session() as session:
                with session.transaction() as txn:
                    txn.execute(INSERT % 1)
            # The executor invalidated its read snapshot on commit.
            assert executor.execute(COUNT).first_value() == 2
        finally:
            executor.shutdown()

    def test_on_commit_hook_fires_after_commit(self, e):
        seen = []
        with e.session(on_commit=lambda: seen.append(True)) as session:
            with session.transaction() as txn:
                txn.execute(INSERT % 1)
        assert seen == [True]

    def test_on_commit_hook_skipped_on_rollback(self, e):
        seen = []
        with e.session(on_commit=lambda: seen.append(True)) as session:
            txn = session.begin()
            txn.execute(INSERT % 1)
            txn.rollback()
        assert seen == []

    def test_txn_counters_reach_the_tracer(self, e):
        from repro import Tracer

        tracer = Tracer()
        with e.session(tracer=tracer) as session:
            with session.transaction() as txn:
                txn.execute(INSERT % 1)
        counters = tracer.counters
        assert counters["txn.begin"] == 1
        assert counters["txn.commits"] == 1
        assert counters["txn.statements"] == 1
