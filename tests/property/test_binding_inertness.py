"""Property: the parameter-binding boundary is inert (CWE-652).

Whatever text an attacker supplies as a *bound value*, it stays a value:
a prepared ``string($v)`` round-trips it byte-for-byte, a prepared
search probe still returns a plain count, and the store version never
moves.  This is the injection-resistance claim the hostile fuzz
campaign (repro.loadgen.hostile) spot-checks with a seeded corpus;
here hypothesis searches the input space adversarially.
"""

from hypothesis import given, settings, strategies as st

from repro import Engine

_DOC = (
    "<site><items>"
    + "".join(f'<item id="item{i}"><name>n{i}</name></item>' for i in range(4))
    + "</items></site>"
)

# Module-scope engine: prepare once, execute per example (fast path).
_ENGINE = Engine()
_ENGINE.load_document("doc", _DOC)
_ECHO = _ENGINE.prepare("string($v)")
_PROBE = _ENGINE.prepare("count($doc//item[@id = $v])")

# Text strategy biased toward the characters that break quoting and
# query syntax, on top of full-unicode text.
_HOSTILE_ALPHABET = st.sampled_from(
    list("'\"{}<>/[]()$&;:=,!*|@ \t\n") + ["item0", "$doc", "delete",
                                           "snap", "//", "]]>", "<!--"]
)
_TEXT = st.one_of(
    st.text(max_size=200),
    st.lists(_HOSTILE_ALPHABET, max_size=40).map("".join),
)


class TestBindingInertness:
    @given(_TEXT)
    @settings(max_examples=300, deadline=None)
    def test_string_round_trip_is_identity(self, payload):
        version_before = _ENGINE.store._version
        out = _ECHO.execute(bindings={"v": payload}).first_value()
        assert out == payload
        assert _ENGINE.store._version == version_before

    @given(_TEXT)
    @settings(max_examples=300, deadline=None)
    def test_search_probe_stays_a_count(self, payload):
        version_before = _ENGINE.store._version
        count = _PROBE.execute(bindings={"v": payload}).first_value()
        assert isinstance(count, int)
        assert 0 <= count <= 4
        assert _ENGINE.store._version == version_before

    @given(st.sampled_from([
        "person0'] | $log | $auction//item['x",
        "'] , delete { $doc//item } , $doc//item['",
        "} , snap delete { $doc//item } , {",
        "item0\" or @id != \"",
        "'; declare variable $pwn := 1; '",
    ]), st.text(max_size=20))
    @settings(max_examples=100, deadline=None)
    def test_injection_templates_stay_inert(self, template, suffix):
        payload = template + suffix
        out = _ECHO.execute(bindings={"v": payload}).first_value()
        assert out == payload
        count = _PROBE.execute(bindings={"v": payload}).first_value()
        assert count == 0
