"""Property: preparing a query is semantically invisible.

Executing a :class:`~repro.prepared.PreparedQuery` twice must be
indistinguishable — values, serialized store state after *each* call, and
raised errors — from two genuinely cold ``Engine.execute`` calls (cache
cleared before each) on an identically-loaded engine.  This covers
updating queries (the store evolves between the two calls, so the second
execution sees the first one's effects either way), parameter bindings,
and all three snap application semantics.
"""

import random

from hypothesis import given, settings, strategies as st

from repro import Engine
from repro.errors import XQueryError


def make_doc(seed: int) -> str:
    rng = random.Random(seed)
    rows = []
    for i in range(rng.randint(1, 10)):
        rows.append(
            f'<row id="{i}" k="{rng.randint(0, 3)}"><v>{rng.randint(0, 99)}</v></row>'
        )
    return "<t>" + "".join(rows) + "</t>"


# (query, needs $x) — reads, updates, snaps, and parameterized lookups.
QUERIES = [
    ("for $r in $doc//row order by number($r/v) return string($r/@id)", False),
    ("sum($doc//row/v), count($doc//row[@k = 1])", False),
    (
        "for $r in $doc//row where $r/@k = 1 "
        "return insert { <hit id='{$r/@id}'/> } into { $sink }",
        False,
    ),
    (
        "snap { for $r in $doc//row return insert { <n/> } into { $sink } },"
        "count($sink/n)",
        False,
    ),
    ("for $r in $doc//row return snap rename { $r } to { 'item' }", False),
    ("$doc//row[@id = $x]/v/data(.)", True),
    (
        "insert { <got x='{$x}' n='{count($doc//row[@k = $x])}'/> } "
        "into { $sink }",
        True,
    ),
]

SEMANTICS = ["ordered", "nondeterministic", "conflict-detection"]


def _load(engine: Engine, seed: int) -> None:
    engine.load_document("doc", make_doc(seed))
    engine.bind("sink", engine.parse_fragment("<sink/>"))


def _snapshot(engine: Engine, result) -> tuple[str, str, str]:
    return (
        result.serialize(),
        engine.execute("$doc").serialize(),
        engine.execute("$sink").serialize(),
    )


def run_prepared(seed: int, query: str, semantics: str, param) -> list:
    engine = Engine(default_semantics=semantics)
    _load(engine, seed)
    out = []
    prepared = engine.prepare(query)
    for _ in range(2):
        try:
            bindings = {"x": param} if param is not None else None
            out.append(_snapshot(engine, prepared.execute(bindings=bindings)))
        except XQueryError as error:
            out.append(("error", type(error).__name__, str(error)))
    return out


def run_cold(seed: int, query: str, semantics: str, param) -> list:
    engine = Engine(default_semantics=semantics)
    _load(engine, seed)
    if param is not None:
        engine.bind("x", param)
    out = []
    for _ in range(2):
        engine.prepared_cache.clear()
        try:
            out.append(_snapshot(engine, engine.execute(query)))
        except XQueryError as error:
            out.append(("error", type(error).__name__, str(error)))
    return out


class TestPreparedEquivalence:
    @given(
        st.integers(0, 10_000),
        st.integers(0, len(QUERIES) - 1),
        st.integers(0, len(SEMANTICS) - 1),
        st.integers(0, 9),
    )
    @settings(max_examples=80, deadline=None)
    def test_prepared_matches_cold_execution(self, seed, qidx, sidx, xval):
        query, needs_param = QUERIES[qidx]
        param = str(xval) if needs_param else None
        semantics = SEMANTICS[sidx]
        prepared = run_prepared(seed, query, semantics, param)
        cold = run_cold(seed, query, semantics, param)
        assert prepared == cold
