"""Property-based parser round-trip: for random surface ASTs,
``parse(unparse(ast)) == ast`` (AST equality ignores source lines)."""

from hypothesis import given, settings, strategies as st

from repro.lang import ast
from repro.lang.parser import parse
from repro.lang.pretty import unparse

_NAMES = st.sampled_from(["a", "b", "item", "person", "ns:x", "x-y"])
_VARS = st.sampled_from(["x", "y", "doc", "local:v"])
_AXES = st.sampled_from(
    ["child", "descendant", "attribute", "self", "parent",
     "following-sibling", "preceding-sibling", "ancestor"]
)
_SAFE_TEXT = st.text(
    alphabet="abc XYZ019!?.&<'\"",
    min_size=0,
    max_size=8,
)

_leaf = st.one_of(
    st.integers(min_value=0, max_value=10**6).map(lambda v: ast.IntegerLit(value=v)),
    st.floats(
        min_value=0.001, max_value=1e6, allow_nan=False, allow_infinity=False
    ).map(lambda v: ast.DecimalLit(value=v)),
    _SAFE_TEXT.map(lambda v: ast.StringLit(value=v)),
    _VARS.map(lambda v: ast.VarRef(name=v)),
    st.just(ast.ContextItem()),
    st.just(ast.EmptySequence()),
)


def _extend(children):
    arith = st.builds(
        lambda op, l, r: ast.Arith(op=op, left=l, right=r),
        st.sampled_from(["+", "-", "*", "div", "idiv", "mod"]),
        children,
        children,
    )
    comparison = st.builds(
        lambda style_op, l, r: ast.Comparison(
            style=style_op[0], op=style_op[1], left=l, right=r
        ),
        st.sampled_from(
            [("general", "eq"), ("general", "lt"), ("value", "eq"),
             ("value", "ge"), ("node", "is")]
        ),
        children,
        children,
    )
    boolop = st.builds(
        lambda op, l, r: ast.BoolOp(op=op, left=l, right=r),
        st.sampled_from(["and", "or"]),
        children,
        children,
    )
    ifexpr = st.builds(
        lambda c, t, o: ast.IfExpr(cond=c, then=t, orelse=o),
        children, children, children,
    )
    sequence = st.lists(children, min_size=2, max_size=3).map(
        lambda items: ast.SequenceExpr(items=items)
    )
    flwor = st.builds(
        lambda var, src, ret: ast.FLWORExpr(
            clauses=[ast.ForClause(var, src)], ret=ret
        ),
        _VARS, children, children,
    )
    letexpr = st.builds(
        lambda var, src, ret: ast.FLWORExpr(
            clauses=[ast.LetClause(var, src)], ret=ret
        ),
        _VARS, children, children,
    )
    quantified = st.builds(
        lambda kind, var, src, sat: ast.QuantifiedExpr(
            kind=kind, bindings=[(var, src)], satisfies=sat
        ),
        st.sampled_from(["some", "every"]), _VARS, children, children,
    )
    path = st.builds(
        lambda base, axis, name: ast.PathExpr(
            base=base,
            step=ast.AxisStep(axis=axis, test=ast.NodeTest(kind="name", name=name)),
        ),
        _VARS.map(lambda v: ast.VarRef(name=v)),
        _AXES,
        _NAMES,
    )
    call = st.builds(
        lambda name, args: ast.FunctionCall(name=name, args=args),
        st.sampled_from(["count", "string", "concat", "local:f"]),
        st.lists(children, min_size=1, max_size=2),
    )
    element = st.builds(
        lambda name, attr_val, content: ast.DirectElement(
            name=name,
            attributes=[
                ast.DirectAttribute(
                    "k", ast.AttributeContent(parts=[attr_val])
                )
            ],
            content=[content] if content is not None else [],
        ),
        _NAMES,
        # parts=[''] and parts=[] denote the same attribute value; the
        # parser canonicalizes to [], so never generate the '' form.
        st.one_of(_SAFE_TEXT.filter(lambda t: t != ""), children),
        st.one_of(st.none(), _SAFE_TEXT.filter(lambda t: t.strip() != ""), children),
    )
    insert = st.builds(
        lambda src, pos, tgt, snap: ast.InsertExpr(
            source=src, position=pos, target=tgt, snap=snap
        ),
        children,
        st.sampled_from(["into", "first", "last", "before", "after"]),
        children,
        st.booleans(),
    )
    delete = st.builds(
        lambda tgt, snap: ast.DeleteExpr(target=tgt, snap=snap),
        children, st.booleans(),
    )
    replace = st.builds(
        lambda tgt, src, snap: ast.ReplaceExpr(target=tgt, source=src, snap=snap),
        children, children, st.booleans(),
    )
    rename = st.builds(
        lambda tgt, name, snap: ast.RenameExpr(target=tgt, name=name, snap=snap),
        children, children, st.booleans(),
    )
    copy = children.map(lambda src: ast.CopyExpr(source=src))
    snap = st.builds(
        lambda mode, body: ast.SnapExpr(mode=mode, body=body),
        st.sampled_from([None, "ordered", "nondeterministic", "conflict-detection"]),
        children,
    )
    instance_of = st.builds(
        lambda operand, kind, occ: ast.InstanceOf(
            operand=operand, type_=ast.SequenceType(kind=kind, occurrence=occ)
        ),
        children,
        st.sampled_from(["xs:integer", "xs:string", "node", "element", "item"]),
        st.sampled_from(["", "?", "*", "+"]),
    )
    cast = st.builds(
        lambda operand, name, opt, castable: ast.CastExpr(
            operand=operand, type_name=name, optional=opt, castable=castable
        ),
        children,
        st.sampled_from(["xs:integer", "xs:double", "xs:string", "xs:boolean"]),
        st.booleans(),
        st.booleans(),
    )
    return st.one_of(
        arith, comparison, boolop, ifexpr, sequence, flwor, letexpr,
        quantified, path, call, element, insert, delete, replace, rename,
        copy, snap, instance_of, cast,
    )


_EXPR = st.recursive(_leaf, _extend, max_leaves=12)


class TestParserRoundTrip:
    @given(_EXPR)
    @settings(max_examples=300, deadline=None)
    def test_parse_unparse_roundtrip(self, expr):
        text = unparse(expr)
        reparsed = parse(text)
        assert reparsed == expr, text

    @given(_EXPR)
    @settings(max_examples=100, deadline=None)
    def test_unparse_is_stable(self, expr):
        once = unparse(expr)
        twice = unparse(parse(once))
        assert once == twice
