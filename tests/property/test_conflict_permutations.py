"""Property-based test of the conflict-detection guarantee (Section 3.2):

    "conflict-free, meaning that the ordered application of every
     permutation of Δ would produce the same result"

We generate random update lists over a random tree; whenever the checker
declares Δ conflict-free, applying any permutation must yield an identical
store.  (The converse need not hold: the rules are sufficient, not
necessary, so a rejected Δ may still happen to commute.)
"""

import itertools
import random

from hypothesis import given, settings, strategies as st

from repro.errors import UpdateApplicationError
from repro.semantics.conflicts import is_conflict_free
from repro.semantics.update import (
    ApplySemantics,
    DeleteRequest,
    InsertRequest,
    RenameRequest,
    apply_update_list,
)
from repro.xdm.store import Store


def build_tree(fanout: int) -> tuple[Store, list[int]]:
    """root with `fanout` children, each with one grandchild."""
    store = Store()
    root = store.create_element("root")
    nodes = [root]
    for i in range(fanout):
        child = store.create_element(f"c{i}")
        store.append_child(root, child)
        grand = store.create_element(f"g{i}")
        store.append_child(child, grand)
        nodes.extend([child, grand])
    return store, nodes


_REQUEST = st.tuples(
    st.sampled_from(["rename", "delete", "ins_first", "ins_last", "ins_before", "ins_after"]),
    st.integers(min_value=0, max_value=999),
    st.integers(min_value=0, max_value=999),
)


def make_delta(store: Store, nodes: list[int], script) -> list:
    delta = []
    for kind, i, j in script:
        target = nodes[i % len(nodes)]
        if kind == "rename":
            delta.append(RenameRequest(target, f"n{j}"))
        elif kind == "delete":
            delta.append(DeleteRequest(target))
        else:
            fresh = store.create_element(f"new{len(delta)}_{j}")
            position = kind[4:]
            if position in ("before", "after") and store.parent(target) is None:
                continue  # would fail the creation-time check anyway
            delta.append(InsertRequest((fresh,), position, target))
    return delta


def snapshot(store: Store, root: int) -> tuple:
    """A structural fingerprint of the tree under *root*."""

    def walk(nid: int):
        return (
            store.name(nid),
            tuple(sorted(store.name(a) or "" for a in store.attributes(nid))),
            tuple(walk(c) for c in store.children(nid)),
        )

    return walk(root)


class TestConflictFreedomProperty:
    @given(st.lists(_REQUEST, min_size=1, max_size=5), st.integers(2, 4))
    @settings(max_examples=120, deadline=None)
    def test_verified_deltas_commute(self, script, fanout):
        reference = None
        base_store, base_nodes = build_tree(fanout)
        base_delta = make_delta(base_store, base_nodes, script)
        if not is_conflict_free(base_delta):
            return
        permutations = list(itertools.permutations(range(len(base_delta))))
        if len(permutations) > 24:
            permutations = random.Random(0).sample(permutations, 24)
        for perm in permutations:
            store, nodes = build_tree(fanout)
            delta = make_delta(store, nodes, script)
            try:
                apply_update_list(
                    store,
                    delta,
                    ApplySemantics.NONDETERMINISTIC,
                    permutation=list(perm),
                )
            except UpdateApplicationError:
                # A conflict-free Δ must apply under every permutation.
                raise AssertionError(
                    f"verified conflict-free delta failed under {perm}"
                )
            shape = snapshot(store, nodes[0])
            if reference is None:
                reference = shape
            assert shape == reference, f"permutation {perm} diverged"

    @given(st.lists(_REQUEST, min_size=1, max_size=6), st.integers(2, 4))
    @settings(max_examples=80, deadline=None)
    def test_checker_is_deterministic(self, script, fanout):
        store, nodes = build_tree(fanout)
        delta = make_delta(store, nodes, script)
        assert is_conflict_free(delta) == is_conflict_free(list(delta))

    @given(st.lists(_REQUEST, min_size=1, max_size=6), st.integers(2, 3))
    @settings(max_examples=80, deadline=None)
    def test_ordered_application_always_defined_on_fresh_targets(
        self, script, fanout
    ):
        # Ordered semantics on a Δ whose requests were built against the
        # current store must not corrupt invariants even when it fails.
        store, nodes = build_tree(fanout)
        delta = make_delta(store, nodes, script)
        try:
            apply_update_list(store, delta, ApplySemantics.ORDERED)
        except UpdateApplicationError:
            pass
        store.check_invariants()
