"""Property: the engine is deterministic — the same query over the same
data, on fresh engines, produces byte-identical results and stores (the
XQuery! design point: evaluation order is *fully specified*)."""

import random

from hypothesis import given, settings, strategies as st

from repro import Engine
from repro.xmlio import serialize


def make_doc(seed: int) -> str:
    rng = random.Random(seed)
    rows = []
    for i in range(rng.randint(1, 12)):
        rows.append(
            f'<row id="{i}" k="{rng.randint(0, 3)}"><v>{rng.randint(0, 99)}</v></row>'
        )
    return "<t>" + "".join(rows) + "</t>"


QUERIES = [
    "for $r in $doc//row order by number($r/v) descending "
    "return string($r/@id)",
    "sum($doc//row/v) , avg($doc//row/v)",
    "for $r in $doc//row where $r/@k = 1 "
    "return insert { <hit id='{$r/@id}'/> } into { $sink }",
    "snap { for $r in $doc//row return insert { <n/> } into { $sink } },"
    "count($sink/n)",
    "for $a in $doc//row, $b in $doc//row where $a/@k = $b/@k "
    "and $a/@id != $b/@id return concat($a/@id, $b/@id)",
    "for $r in $doc//row return snap rename { $r } to { 'item' }",
]


def run_once(seed: int, query: str, optimize: bool) -> tuple[str, str, str]:
    engine = Engine()
    engine.load_document("doc", make_doc(seed))
    engine.bind("sink", engine.parse_fragment("<sink/>"))
    result = engine.execute(query, optimize=optimize)
    return (
        result.serialize(),
        engine.execute("$doc").serialize(),
        engine.execute("$sink").serialize(),
    )


class TestDeterminism:
    @given(st.integers(0, 10_000), st.integers(0, len(QUERIES) - 1))
    @settings(max_examples=60, deadline=None)
    def test_interpreter_is_deterministic(self, seed, qidx):
        first = run_once(seed, QUERIES[qidx], optimize=False)
        second = run_once(seed, QUERIES[qidx], optimize=False)
        assert first == second

    @given(st.integers(0, 10_000), st.integers(0, len(QUERIES) - 1))
    @settings(max_examples=60, deadline=None)
    def test_optimizer_matches_interpreter(self, seed, qidx):
        interpreted = run_once(seed, QUERIES[qidx], optimize=False)
        optimized = run_once(seed, QUERIES[qidx], optimize=True)
        assert interpreted == optimized
