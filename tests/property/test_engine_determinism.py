"""Property: the engine is deterministic — the same query over the same
data, on fresh engines, produces byte-identical results and stores (the
XQuery! design point: evaluation order is *fully specified*) — and,
under the concurrent executor, readers are isolated: every read
observes a committed snap boundary, never a state in between."""

import random
import threading

from hypothesis import given, settings, strategies as st

from repro import ConcurrentExecutor, Engine
from repro.xmlio import serialize


def make_doc(seed: int) -> str:
    rng = random.Random(seed)
    rows = []
    for i in range(rng.randint(1, 12)):
        rows.append(
            f'<row id="{i}" k="{rng.randint(0, 3)}"><v>{rng.randint(0, 99)}</v></row>'
        )
    return "<t>" + "".join(rows) + "</t>"


QUERIES = [
    "for $r in $doc//row order by number($r/v) descending "
    "return string($r/@id)",
    "sum($doc//row/v) , avg($doc//row/v)",
    "for $r in $doc//row where $r/@k = 1 "
    "return insert { <hit id='{$r/@id}'/> } into { $sink }",
    "snap { for $r in $doc//row return insert { <n/> } into { $sink } },"
    "count($sink/n)",
    "for $a in $doc//row, $b in $doc//row where $a/@k = $b/@k "
    "and $a/@id != $b/@id return concat($a/@id, $b/@id)",
    "for $r in $doc//row return snap rename { $r } to { 'item' }",
]


def run_once(seed: int, query: str, optimize: bool) -> tuple[str, str, str]:
    engine = Engine()
    engine.load_document("doc", make_doc(seed))
    engine.bind("sink", engine.parse_fragment("<sink/>"))
    result = engine.execute(query, optimize=optimize)
    return (
        result.serialize(),
        engine.execute("$doc").serialize(),
        engine.execute("$sink").serialize(),
    )


class TestDeterminism:
    @given(st.integers(0, 10_000), st.integers(0, len(QUERIES) - 1))
    @settings(max_examples=60, deadline=None)
    def test_interpreter_is_deterministic(self, seed, qidx):
        first = run_once(seed, QUERIES[qidx], optimize=False)
        second = run_once(seed, QUERIES[qidx], optimize=False)
        assert first == second

    @given(st.integers(0, 10_000), st.integers(0, len(QUERIES) - 1))
    @settings(max_examples=60, deadline=None)
    def test_optimizer_matches_interpreter(self, seed, qidx):
        interpreted = run_once(seed, QUERIES[qidx], optimize=False)
        optimized = run_once(seed, QUERIES[qidx], optimize=True)
        assert interpreted == optimized


class TestConcurrentIsolation:
    """Property: under the concurrent executor, a reader racing a
    writer sees only pre-snap or post-snap states.

    Each write atomically appends one ``<i/>`` AND bumps a counter in
    the same implicit snap, so ``count($doc/t/i)`` and ``data($doc/c)``
    agree in every committed state; a reader observing them disagree
    has seen a torn, mid-snap store."""

    @given(
        writes=st.integers(1, 8),
        readers=st.integers(1, 3),
        workers=st.integers(2, 4),
    )
    @settings(max_examples=12, deadline=None)
    def test_readers_see_only_committed_snap_states(
        self, writes, readers, workers
    ):
        engine = Engine()
        engine.load_document("doc", "<r><t/><c>0</c></r>")
        write = (
            "insert { <i/> } into { $doc/r/t }, "
            "replace value of { $doc/r/c } with { data($doc/r/c) + 1 }"
        )
        read = "concat(count($doc/r/t/i), ':', data($doc/r/c))"
        torn = []
        stop = threading.Event()
        with ConcurrentExecutor(
            engine, workers=workers, queue_size=256
        ) as executor:

            def read_loop():
                while not stop.is_set():
                    value = executor.execute(read).first_value()
                    left, _, right = value.partition(":")
                    if left != right:
                        torn.append(value)

            threads = [
                threading.Thread(target=read_loop) for _ in range(readers)
            ]
            for thread in threads:
                thread.start()
            for _ in range(writes):
                executor.execute(write)
            stop.set()
            for thread in threads:
                thread.join()
            assert torn == []
            final = executor.execute(read).first_value()
            assert final == f"{writes}:{writes}"
