"""Property-based tests of the arithmetic semantics."""

from decimal import Decimal

from hypothesis import assume, given, settings, strategies as st

from repro.errors import ArithmeticError_
from repro.semantics.arithmetic import arithmetic
from repro.xdm.compare import atomic_equal, compare_atomic
from repro.xdm.values import XS_DECIMAL, XS_DOUBLE, XS_INTEGER, AtomicValue

_ints = st.integers(min_value=-10**9, max_value=10**9).map(AtomicValue.integer)
_decimals = st.decimals(
    min_value=Decimal("-1e9"),
    max_value=Decimal("1e9"),
    allow_nan=False,
    allow_infinity=False,
    places=4,
).map(AtomicValue.decimal)
_doubles = st.floats(
    min_value=-1e9, max_value=1e9, allow_nan=False, allow_infinity=False
).map(AtomicValue.double)
_numbers = st.one_of(_ints, _decimals, _doubles)
_exact = st.one_of(_ints, _decimals)


class TestAlgebraicLaws:
    @given(_numbers, _numbers)
    @settings(max_examples=200, deadline=None)
    def test_addition_commutes(self, a, b):
        assert atomic_equal(arithmetic("+", a, b), arithmetic("+", b, a))

    @given(_numbers, _numbers)
    @settings(max_examples=200, deadline=None)
    def test_multiplication_commutes(self, a, b):
        assert atomic_equal(arithmetic("*", a, b), arithmetic("*", b, a))

    @given(_exact, _exact, _exact)
    @settings(max_examples=200, deadline=None)
    def test_exact_addition_associates(self, a, b, c):
        left = arithmetic("+", arithmetic("+", a, b), c)
        right = arithmetic("+", a, arithmetic("+", b, c))
        assert atomic_equal(left, right)

    @given(_numbers)
    @settings(max_examples=100, deadline=None)
    def test_additive_identity(self, a):
        assert atomic_equal(arithmetic("+", a, AtomicValue.integer(0)), a)

    @given(_numbers)
    @settings(max_examples=100, deadline=None)
    def test_subtraction_self_is_zero(self, a):
        result = arithmetic("-", a, a)
        assert atomic_equal(result, AtomicValue.integer(0))


class TestTypePromotion:
    @given(_ints, _ints)
    @settings(max_examples=100, deadline=None)
    def test_integer_closure(self, a, b):
        for op in ("+", "-", "*"):
            assert arithmetic(op, a, b).type == XS_INTEGER

    @given(_ints, _ints)
    @settings(max_examples=100, deadline=None)
    def test_integer_div_is_decimal(self, a, b):
        assume(b.value != 0)
        assert arithmetic("div", a, b).type == XS_DECIMAL

    @given(_decimals, _ints)
    @settings(max_examples=100, deadline=None)
    def test_decimal_absorbs_integer(self, a, b):
        assert arithmetic("+", a, b).type == XS_DECIMAL

    @given(_doubles, _exact)
    @settings(max_examples=100, deadline=None)
    def test_double_absorbs_everything(self, a, b):
        assert arithmetic("+", a, b).type == XS_DOUBLE


class TestDivisionLaws:
    @given(_exact, _exact)
    @settings(max_examples=200, deadline=None)
    def test_idiv_mod_identity(self, a, b):
        """a eq b*(a idiv b) + (a mod b) — the defining idiv/mod relation."""
        assume(b.value != 0)
        q = arithmetic("idiv", a, b)
        r = arithmetic("mod", a, b)
        recombined = arithmetic("+", arithmetic("*", b, q), r)
        assert atomic_equal(recombined, a)

    @given(_exact, _exact)
    @settings(max_examples=200, deadline=None)
    def test_mod_sign_follows_dividend(self, a, b):
        assume(b.value != 0 and a.value != 0)
        r = arithmetic("mod", a, b)
        if r.value != 0:
            assert (r.value > 0) == (a.value > 0)

    @given(_exact)
    @settings(max_examples=50, deadline=None)
    def test_exact_division_by_zero_raises(self, a):
        import pytest

        for op in ("div", "idiv", "mod"):
            with pytest.raises(ArithmeticError_):
                arithmetic(op, a, AtomicValue.integer(0))


class TestComparisonConsistency:
    @given(_numbers, _numbers)
    @settings(max_examples=200, deadline=None)
    def test_trichotomy(self, a, b):
        c = compare_atomic(a, b)
        assert c in (-1, 0, 1)
        assert compare_atomic(b, a) == -c

    @given(_numbers, _numbers)
    @settings(max_examples=200, deadline=None)
    def test_subtraction_agrees_with_comparison(self, a, b):
        difference = arithmetic("-", a, b)
        c = compare_atomic(a, b)
        if c == 0:
            assert atomic_equal(difference, AtomicValue.integer(0))
        elif c > 0:
            assert float(difference.value) >= 0
        else:
            assert float(difference.value) <= 0
