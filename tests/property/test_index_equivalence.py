"""Property: indexed execution is observationally equivalent to
unindexed execution — for randomized XMark-style queries, across random
update sequences, and for snapshot readers taken mid-update-stream.

The fast paths only ever *narrow* work (probe supersets are re-verified
against exact semantics), so any divergence is a bug in maintenance,
probe verification, or snapshot consistency."""

import random

from hypothesis import given, settings, strategies as st

from repro.engine import Engine, ExecutionOptions
from repro.semantics.context import DynamicContext
from repro.semantics.evaluator import Evaluator
from repro.xdm.nodes import Node
from repro.xmark.generator import XMarkConfig, generate_auction_xml

_NO_INDEX = ExecutionOptions(use_indexes=False)

WORDS = ["fine", "word", "widget", "rare", "zebra", ""]


def fresh_engine(seed: int) -> Engine:
    engine = Engine()
    config = XMarkConfig(
        persons=12, items=10, open_auctions=6, closed_auctions=8, seed=seed
    )
    doc = engine.load_document("auction", generate_auction_xml(config))
    engine.bind("doc", [doc])
    return engine


def query_pool(rng: random.Random) -> list[str]:
    pid = f"person{rng.randrange(15)}"
    word = rng.choice(WORDS)
    return [
        f'$doc//person[@id = "{pid}"]',
        f'$doc//item[contains(string(.), "{word}")]',
        '$doc//closed_auction[price = "draw"]',
        f'$doc//person[name = "{word}"]',
        '$doc//bidder[personref = "x"]',
    ]


def updates_pool(rng: random.Random) -> list[str]:
    n = rng.randrange(20)
    return [
        f"snap {{ replace value of {{ ($doc//person)[{1 + n % 5}]/@id }} "
        f'with {{ "person{n}" }} }}',
        "snap { replace value of { ($doc//item)[1]/name } "
        f'with {{ "{rng.choice(WORDS[:-1])} #{n}" }} }}',
        "snap { delete { ($doc//closed_auction)[1] } }",
        'snap { insert { <person id="personX"><name>Draw Card</name>'
        "</person> } into { $doc//people } }",
        f"snap {{ rename {{ ($doc//item)[{1 + n % 3}]/@id }} "
        'to { "id" } }',
    ]


def run_both(engine: Engine, query: str):
    fast = engine.execute(query)
    slow = engine.execute(query, options=_NO_INDEX)
    return (
        [n.nid for n in fast.items],
        [n.nid for n in slow.items],
    )


@settings(max_examples=25, deadline=None)
@given(st.integers(0, 10_000))
def test_reads_indexed_equals_unindexed(seed):
    rng = random.Random(seed)
    engine = fresh_engine(seed)
    for query in query_pool(rng):
        fast, slow = run_both(engine, query)
        assert fast == slow, query


@settings(max_examples=20, deadline=None)
@given(st.integers(0, 10_000), st.data())
def test_update_streams_keep_equivalence(seed, data):
    rng = random.Random(seed)
    engine = fresh_engine(seed)
    # Force the index to build before the update stream starts, so the
    # incremental maintenance path (not rebuild-on-probe) is exercised.
    engine.store.token_probe("fine")
    for _ in range(data.draw(st.integers(1, 4), label="rounds")):
        update = data.draw(
            st.sampled_from(updates_pool(rng)), label="update"
        )
        engine.execute(update)
        for query in query_pool(rng):
            fast, slow = run_both(engine, query)
            assert fast == slow, (update, query)
    engine.store.check_invariants()


@settings(max_examples=15, deadline=None)
@given(st.integers(0, 10_000))
def test_snapshot_reads_mid_update_stream(seed):
    """A snapshot taken between updates must answer indexed probes from
    its own epoch: equal to unindexed evaluation against the snapshot,
    regardless of how far the live store has moved on."""
    rng = random.Random(seed)
    engine = fresh_engine(seed)
    store = engine.store
    engine.store.token_probe("fine")  # live index built and maintained
    queries = query_pool(rng)
    prepared = [engine.prepare(q) for q in queries]
    doc_nid = engine.evaluator.globals["doc"][0].nid

    engine.execute(rng.choice(updates_pool(rng)))
    snap = store.begin_snapshot()
    # The stream keeps mutating after the snapshot...
    for update in rng.sample(updates_pool(rng), 2):
        engine.execute(update)

    # ...while the snapshot reader answers from its epoch, with and
    # without index probes.
    for query, pq in zip(queries, prepared):
        results = []
        for use_indexes in (True, False):
            ev = Evaluator(snap, engine.functions)
            ev.use_indexes = use_indexes
            ev.globals = {"doc": [Node(snap, doc_nid)]}
            value, _ = ev.evaluate(
                pq._module.body, DynamicContext(dict(ev.globals))
            )
            results.append([n.nid for n in value])
        assert results[0] == results[1], query
    store.release_snapshot(snap)
    store.check_invariants()
