"""Property-based XML round-trip: serialize(parse(x)) is a fixpoint and
preserves the data model (deep-equal)."""

from hypothesis import given, settings, strategies as st

from repro.xdm.compare import deep_equal
from repro.xdm.nodes import Node
from repro.xdm.store import Store
from repro.xmlio import parse_fragment, serialize

_NAMES = st.sampled_from(["a", "b", "item", "ns:elem", "x-y", "_u"])
_TEXTS = st.text(
    alphabet=st.characters(
        codec="utf-8",
        exclude_characters="\r",  # parsers may normalize CR
        min_codepoint=9,
        max_codepoint=0x2FF,
    ),
    max_size=12,
)


@st.composite
def xml_tree(draw, depth=0):
    """Build a random element in a fresh store."""
    store = draw(st.just(Store())) if depth == 0 else None

    def build(store: Store, level: int) -> int:
        element = store.create_element(draw(_NAMES))
        for index in range(draw(st.integers(0, 2))):
            name = f"at{index}"
            store.set_attribute(
                element, store.create_attribute(name, draw(_TEXTS))
            )
        for _ in range(draw(st.integers(0, 3 if level < 2 else 0))):
            choice = draw(st.integers(0, 3))
            if choice == 0:
                text = draw(_TEXTS)
                if text:
                    store.append_child(element, store.create_text(text))
            elif choice == 1:
                store.append_child(element, build(store, level + 1))
            elif choice == 2:
                comment = draw(_TEXTS.filter(lambda t: "--" not in t and not t.endswith("-")))
                store.append_child(element, store.create_comment(comment))
            else:
                data = draw(_TEXTS.filter(lambda t: "?>" not in t))
                store.append_child(
                    element,
                    store.create_processing_instruction("pi", data.strip()),
                )
        return element

    return Node(store, build(store, 0))


class TestRoundTrip:
    @given(xml_tree())
    @settings(max_examples=200, deadline=None)
    def test_serialize_parse_is_deep_equal(self, node):
        text = serialize(node)
        reparsed = parse_fragment(text)
        assert deep_equal([node], [reparsed]), text

    @given(xml_tree())
    @settings(max_examples=200, deadline=None)
    def test_serialization_is_fixpoint(self, node):
        once = serialize(node)
        twice = serialize(parse_fragment(once))
        assert once == twice

    @given(xml_tree())
    @settings(max_examples=100, deadline=None)
    def test_string_value_preserved(self, node):
        reparsed = parse_fragment(serialize(node))
        assert reparsed.string_value == node.string_value
