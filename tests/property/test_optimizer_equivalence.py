"""Property-based optimizer equivalence: for randomized data and a family
of join-shaped queries (with and without collecting updates), the optimized
plan must produce the same values and the same side effects as the
interpreted nested loop."""

import random

from hypothesis import given, settings, strategies as st

from repro import Engine
from repro.algebra.plan import plan_operators


def make_db(seed: int, left: int, right: int, keyspace: int) -> str:
    rng = random.Random(seed)
    rows = ["<db><l>"]
    for i in range(left):
        rows.append(f'<a id="{i}" k="k{rng.randrange(keyspace)}"/>')
    rows.append("</l><r>")
    for i in range(right):
        rows.append(f'<b id="{i}" k="k{rng.randrange(keyspace)}"/>')
    rows.append("</r></db>")
    return "".join(rows)


def fresh(xml: str) -> Engine:
    engine = Engine()
    engine.load_document("db", xml)
    engine.bind("sink", engine.parse_fragment("<sink/>"))
    return engine


PURE_JOIN = """
    for $a in $db//a
    for $b in $db//b
    where $a/@k = $b/@k
    return concat($a/@id, "-", $b/@id)
"""

EFFECT_JOIN = """
    for $a in $db//a
    for $b in $db//b
    where $a/@k = $b/@k
    return insert { <m a="{$a/@id}" b="{$b/@id}"/> } into { $sink }
"""

GROUP_QUERY = """
    for $a in $db//a
    let $g := for $b in $db//b
              where $a/@k = $b/@k
              return (insert { <m a="{$a/@id}" b="{$b/@id}"/> }
                      into { $sink }, $b)
    return <row a="{$a/@id}">{ count($g) }</row>
"""

_PARAMS = st.tuples(
    st.integers(0, 10_000),      # seed
    st.integers(0, 12),          # left size
    st.integers(0, 12),          # right size
    st.integers(1, 5),           # key space
)


class TestOptimizerEquivalence:
    @given(_PARAMS)
    @settings(max_examples=40, deadline=None)
    def test_pure_join_values(self, params):
        xml = make_db(*params)
        naive = fresh(xml).execute(PURE_JOIN, optimize=False).values()
        optimized = fresh(xml).execute(PURE_JOIN, optimize=True).values()
        assert naive == optimized

    @given(_PARAMS)
    @settings(max_examples=40, deadline=None)
    def test_effectful_join_side_effects(self, params):
        xml = make_db(*params)
        e1, e2 = fresh(xml), fresh(xml)
        e1.execute(EFFECT_JOIN, optimize=False)
        e2.execute(EFFECT_JOIN, optimize=True)
        assert (
            e1.execute("$sink").serialize() == e2.execute("$sink").serialize()
        )

    @given(_PARAMS)
    @settings(max_examples=40, deadline=None)
    def test_groupby_values_and_effects(self, params):
        xml = make_db(*params)
        e1, e2 = fresh(xml), fresh(xml)
        v1 = e1.execute(GROUP_QUERY, optimize=False).serialize()
        v2 = e2.execute(GROUP_QUERY, optimize=True).serialize()
        assert v1 == v2
        assert (
            e1.execute("$sink").serialize() == e2.execute("$sink").serialize()
        )

    def test_rewrites_actually_fire(self):
        # Sanity: the property above would hold trivially if nothing were
        # rewritten; assert the plans differ from the naive pipeline.
        xml = make_db(7, 5, 5, 3)
        assert "HashJoin" in plan_operators(fresh(xml).compile(PURE_JOIN))
        assert "GroupBy" in plan_operators(fresh(xml).compile(GROUP_QUERY))
