"""Property-based tests: store invariants under random operation sequences
and document order as a total order."""

from hypothesis import given, settings, strategies as st

from repro.errors import UpdateApplicationError
from repro.xdm.store import NodeKind, Store

# An operation script: each entry picks an action and two node indices
# (interpreted modulo the current node count).
_OPS = st.lists(
    st.tuples(
        st.sampled_from(
            ["element", "text", "attach", "detach", "rename", "attr", "copy"]
        ),
        st.integers(min_value=0, max_value=10_000),
        st.integers(min_value=0, max_value=10_000),
    ),
    max_size=60,
)


def _run_script(script) -> Store:
    store = Store()
    nodes = [store.create_element("root")]
    for action, i, j in script:
        a = nodes[i % len(nodes)]
        b = nodes[j % len(nodes)]
        try:
            if action == "element":
                nodes.append(store.create_element(f"e{len(nodes)}"))
            elif action == "text":
                nodes.append(store.create_text(f"t{len(nodes)}"))
            elif action == "attach":
                store.append_child(a, b)
            elif action == "detach":
                store.detach(a)
            elif action == "rename":
                if store.kind(a) is NodeKind.ELEMENT:
                    store.rename(a, f"r{i}")
            elif action == "attr":
                attr = store.create_attribute(f"a{len(nodes)}", str(i))
                if store.kind(a) is NodeKind.ELEMENT:
                    store.set_attribute(a, attr)
                nodes.append(attr)
            elif action == "copy":
                nodes.append(store.deep_copy(a))
        except UpdateApplicationError:
            # Precondition violations are expected for random scripts; the
            # property is that *failed* operations leave the store intact.
            pass
    return store


class TestStoreInvariants:
    @given(_OPS)
    @settings(max_examples=150, deadline=None)
    def test_invariants_hold_after_any_script(self, script):
        store = _run_script(script)
        store.check_invariants()

    @given(_OPS)
    @settings(max_examples=60, deadline=None)
    def test_document_order_is_total_and_consistent(self, script):
        store = _run_script(script)
        ids = list(store.node_ids())
        order = store.sort_document_order(ids)
        # Total: every node appears exactly once.
        assert sorted(order) == sorted(set(ids))
        # Consistent with pairwise comparison.
        for first, second in zip(order, order[1:]):
            assert store.compare_order(first, second) == -1
            assert store.compare_order(second, first) == 1

    @given(_OPS)
    @settings(max_examples=60, deadline=None)
    def test_ancestors_precede_descendants(self, script):
        store = _run_script(script)
        for nid in store.node_ids():
            for anc in store.ancestors(nid):
                assert store.compare_order(anc, nid) == -1

    @given(_OPS)
    @settings(max_examples=60, deadline=None)
    def test_deep_copy_preserves_structure_and_is_fresh(self, script):
        store = _run_script(script)
        roots = [n for n in store.node_ids() if store.parent(n) is None]
        for root in roots[:3]:
            copy = store.deep_copy(root)
            assert copy not in set(store.descendants(root, include_self=True))
            assert store.string_value(copy) == store.string_value(root)
            assert store.size(copy) == store.size(root)
        store.check_invariants()

    @given(_OPS)
    @settings(max_examples=60, deadline=None)
    def test_gc_never_reclaims_reachable(self, script):
        store = _run_script(script)
        roots = [n for n in store.node_ids() if store.parent(n) is None]
        keep = roots[: max(1, len(roots) // 2)]
        expected_live = set()
        for root in keep:
            expected_live.update(store.descendants(root, include_self=True))
            for nid in list(expected_live):
                expected_live.update(store.attributes(nid))
        store.gc(keep)
        for nid in expected_live:
            assert nid in store
        store.check_invariants()
