"""Unit tests for the unparser."""

import pytest

from repro.lang.parser import parse, parse_module
from repro.lang.pretty import unparse, unparse_module


def roundtrip(text: str) -> str:
    return unparse(parse(text))


class TestUnparse:
    @pytest.mark.parametrize(
        "query",
        [
            "1 + 2 * 3",
            '$auction//person[@id = "p0"]/name',
            "for $x at $i in (1 to 5) where $x > 2 order by $x descending return $i",
            "some $x in $s satisfies $x eq 3",
            "if ($c) then <a/> else ()",
            'snap ordered { insert { <a x="{1}"/> } as first into { $t } }',
            "snap { replace { $d/text() } with { $d + 1 }, $d }",
            'rename { $x } to { "n" }',
            "copy { $x }",
            "element counter { 0 }",
            "<a>text {1} more</a>",
            "(1, 2)[. > 1]",
            "delete { $log/logentry }",
            "$a union $b intersect $c",
            "-$x",
            "$a << $b",
            "processing-instruction tgt { 'data' }",
        ],
    )
    def test_reparse_equals(self, query):
        expr = parse(query)
        assert parse(unparse(expr)) == expr

    def test_string_escapes(self):
        expr = parse("'say \"hi\"'")
        assert parse(unparse(expr)) == expr

    def test_attribute_brace_escapes(self):
        expr = parse('<a k="{{x}}"/>')
        assert parse(unparse(expr)) == expr


class TestUnparseModule:
    def test_module_roundtrip(self):
        text = (
            "declare variable $v as xs:integer := 10;"
            "declare function f($a as xs:integer, $b) as item()* { $a + $b };"
            "f($v, 1)"
        )
        module = parse_module(text)
        rendered = unparse_module(module)
        assert parse_module(rendered) == module

    def test_external_variable(self):
        module = parse_module("declare variable $x external; $x")
        assert "external" in unparse_module(module)
        assert parse_module(unparse_module(module)) == module

    def test_module_without_body(self):
        module = parse_module("declare function f() { 1 };")
        assert parse_module(unparse_module(module)) == module
