"""Unit tests for normalization to the core language (Section 3.3).

Includes E12: the implicit-copy insertion rule for insert/replace.
"""

from repro.lang import core_ast as core
from repro.lang.normalize import normalize, normalize_module
from repro.lang.parser import parse, parse_module
from repro.xdm.values import XS_INTEGER, XS_STRING


def norm(text: str) -> core.CoreExpr:
    return normalize(parse(text))


class TestCopyInsertionRule:
    """E12 — the paper's only non-trivial normalization rule:
    [insert {E1} into {E2}] == insert {copy{[E1]}} as last into {[E2]}."""

    def test_insert_source_wrapped_in_copy(self):
        e = norm("insert { $a } into { $b }")
        assert isinstance(e, core.CInsert)
        assert isinstance(e.source, core.CCopy)
        assert isinstance(e.source.source, core.CVar)

    def test_into_canonicalized_to_last(self):
        assert norm("insert { $a } into { $b }").position == "last"
        assert norm("insert { $a } as last into { $b }").position == "last"
        assert norm("insert { $a } as first into { $b }").position == "first"
        assert norm("insert { $a } before { $b }").position == "before"
        assert norm("insert { $a } after { $b }").position == "after"

    def test_replace_source_wrapped_in_copy(self):
        e = norm("replace { $a } with { $b }")
        assert isinstance(e, core.CReplace)
        assert isinstance(e.source, core.CCopy)
        assert isinstance(e.target, core.CVar)  # target NOT copied

    def test_delete_and_rename_not_copied(self):
        d = norm("delete { $a }")
        assert isinstance(d.target, core.CVar)
        r = norm('rename { $a } to { "n" }')
        assert isinstance(r.target, core.CVar)

    def test_explicit_copy_not_doubled(self):
        e = norm("insert { copy { $a } } into { $b }")
        # normalization adds its own copy around the (explicit) copy;
        # harmless but must preserve the user's copy inside.
        assert isinstance(e.source, core.CCopy)
        assert isinstance(e.source.source, core.CCopy)


class TestSnapSugar:
    def test_snap_insert_expands(self):
        e = norm("snap insert { $a } into { $b }")
        assert isinstance(e, core.CSnap) and e.mode is None
        assert isinstance(e.body, core.CInsert)

    def test_snap_delete_replace_rename_expand(self):
        assert isinstance(norm("snap delete { $a }").body, core.CDelete)
        assert isinstance(norm("snap replace {$a} with {$b}").body, core.CReplace)
        assert isinstance(norm('snap rename {$a} to {"n"}').body, core.CRename)

    def test_snap_modes_preserved(self):
        assert norm("snap ordered { 1 }").mode == "ordered"
        assert norm("snap nondeterministic { 1 }").mode == "nondeterministic"
        assert norm("snap conflict-detection { 1 }").mode == "conflict-detection"


class TestFLWORLowering:
    def test_for_where_becomes_if(self):
        e = norm("for $x in $s where $x > 1 return $x")
        assert isinstance(e, core.CFor)
        assert isinstance(e.body, core.CIf)
        assert isinstance(e.body.orelse, core.CEmpty)

    def test_clause_nesting_order(self):
        e = norm("for $a in $s let $b := $a for $c in $b return $c")
        assert isinstance(e, core.CFor) and e.var == "a"
        assert isinstance(e.body, core.CLet) and e.body.var == "b"
        assert isinstance(e.body.body, core.CFor) and e.body.body.var == "c"

    def test_order_by_kept_whole(self):
        e = norm("for $x in $s order by $x return $x")
        assert isinstance(e, core.COrderedFLWOR)
        assert len(e.specs) == 1

    def test_position_var_preserved(self):
        e = norm("for $x at $i in $s return $i")
        assert e.position_var == "i"


class TestConstructorLowering:
    def test_direct_element_to_computed(self):
        e = norm('<a x="1">text{$v}<b/></a>')
        assert isinstance(e, core.CElem) and e.name == "a"
        attr, text, var, child = e.content
        assert isinstance(attr, core.CAttr) and attr.parts == ["1"]
        assert isinstance(text, core.CText)
        assert isinstance(var, core.CVar)
        assert isinstance(child, core.CElem) and child.name == "b"

    def test_avt_parts(self):
        e = norm('<a x="p{$v}s"/>')
        [attr] = e.content
        assert attr.parts[0] == "p"
        assert isinstance(attr.parts[1], core.CVar)
        assert attr.parts[2] == "s"

    def test_literals_typed(self):
        assert norm("42").value.type == XS_INTEGER
        assert norm('"x"').value.type == XS_STRING


class TestModuleNormalization:
    def test_declarations_and_body(self):
        m = normalize_module(
            parse_module(
                "declare variable $v := 1;"
                "declare function f($x) { $x };"
                "f($v)"
            )
        )
        var, fun = m.declarations
        assert isinstance(var, core.CVarDecl) and var.name == "v"
        assert isinstance(fun, core.CFunction) and fun.params == ["x"]
        assert isinstance(m.body, core.CCall)

    def test_external_variable(self):
        m = normalize_module(parse_module("declare variable $x external; 1"))
        assert m.declarations[0].expr is None


class TestChildExprsTraversal:
    def test_child_exprs_covers_every_node(self):
        # A query touching most constructs; walking it must terminate and
        # reach all leaves.
        e = norm(
            """
            for $x in (1 to 10)[. mod 2 eq 0]
            let $y := <a b="{$x}">{ $x + 1 }</a>
            return snap { insert { $y } into { $t },
                          if ($x > 5) then delete { $t/a } else (),
                          some $q in $t/* satisfies $q is $y }
            """
        )
        seen = 0
        stack = [e]
        while stack:
            node = stack.pop()
            seen += 1
            stack.extend(core.child_exprs(node))
        assert seen > 20
