"""Tests for core-to-core simplification (the // collapse rewrite)."""

import pytest

from repro import Engine
from repro.lang import core_ast as core
from repro.lang.normalize import normalize
from repro.lang.parser import parse
from repro.lang.simplify import simplify, transform


def simplified(text: str) -> core.CoreExpr:
    return simplify(normalize(parse(text)))


class TestDescendantCollapse:
    def test_collapses_predicate_free_step(self):
        expr = simplified("$doc//person")
        assert isinstance(expr, core.CPath)
        assert isinstance(expr.step, core.CAxisStep)
        assert expr.step.axis == "descendant"
        assert expr.step.test.name == "person"
        # The intermediate descendant-or-self::node() is gone.
        assert isinstance(expr.base, core.CVar)

    def test_predicate_blocks_collapse(self):
        # //para[1] means "first para child of each descendant"; the
        # rewrite must NOT change it.
        expr = simplified("$doc//para[1]")
        assert isinstance(expr.step, core.CAxisStep)
        assert expr.step.axis == "child"
        inner = expr.base
        assert isinstance(inner.step, core.CAxisStep)
        assert inner.step.axis == "descendant-or-self"

    def test_kind_test_collapses_too(self):
        # descendant-or-self::node()/child::text() == descendant::text()
        # (valid for any predicate-free child step).
        expr = simplified("$doc//text()")
        assert expr.step.axis == "descendant"
        assert expr.step.test.kind == "text"

    def test_nested_collapse(self):
        expr = simplified("$doc//a//b")
        # both // collapse
        assert expr.step.axis == "descendant"
        assert expr.base.step.axis == "descendant"

    def test_collapse_inside_flwor(self):
        expr = simplified("for $p in $doc//person return $p")
        assert isinstance(expr, core.CFor)
        assert expr.source.step.axis == "descendant"


class TestPredicatedCollapse:
    """Position-insensitive predicates ride along with the collapse."""

    def _collapsed(self, text: str) -> bool:
        expr = simplified(text)
        return (
            isinstance(expr.step, core.CAxisStep)
            and expr.step.axis == "descendant"
        )

    def test_comparison_predicate_collapses(self):
        expr = simplified("$doc//item[@id = $x]")
        assert expr.step.axis == "descendant"
        assert len(expr.step.predicates) == 1
        assert isinstance(expr.step.predicates[0], core.CComparison)

    def test_boolean_connective_collapses(self):
        assert self._collapsed('$doc//item[@a = "1" and @b = "2"]')

    def test_quantified_predicate_collapses(self):
        assert self._collapsed('$doc//item[some $b in bid satisfies $b > 5]')

    def test_fn_boolean_builtin_collapses(self):
        assert self._collapsed("$doc//item[fn:exists(@id)]")

    def test_numeric_literal_blocked(self):
        assert not self._collapsed("$doc//para[1]")

    def test_position_call_blocked(self):
        # position() is boolean-shaped via the comparison, but reads the
        # focus position — meaning differs between the two step forms.
        assert not self._collapsed("$doc//para[position() = 2]")

    def test_last_call_blocked_even_nested(self):
        assert not self._collapsed("$doc//para[@n = last()]")

    def test_unprefixed_call_blocked(self):
        # An unprefixed name could resolve to a user function returning a
        # number, flipping the predicate into positional mode.
        assert not self._collapsed("$doc//para[exists(@id)]")

    def test_predicated_collapse_preserves_results(self):
        engine = Engine()
        engine.load_document(
            "doc",
            '<r><s><para n="1"/><para n="2"/></s><s><para n="2"/></s></r>',
        )
        # Same nodes with and without the rewrite (and the name index).
        fast = engine.execute('$doc//para[@n = "2"]').serialize()
        engine.evaluator.use_name_index = False
        slow = engine.execute('$doc//para[@n = "2"]').serialize()
        assert fast == slow == '<para n="2"/><para n="2"/>'


class TestSemanticsPreserved:
    @pytest.fixture
    def e(self) -> Engine:
        engine = Engine()
        engine.load_document(
            "doc",
            '<r><s><para n="1"/><para n="2"/></s><s><para n="3"/></s></r>',
        )
        return engine

    def test_descendant_results_identical(self, e):
        assert e.execute("count($doc//para)").first_value() == 3

    def test_positional_semantics_unchanged(self, e):
        # //para[1]: first para of each s (2 results), NOT 1.
        assert e.execute("count($doc//para[1])").first_value() == 2

    def test_index_and_walk_agree(self, e):
        with_index = e.execute("$doc//para/@n").strings()
        e.evaluator.use_name_index = False
        without_index = e.execute("$doc//para/@n").strings()
        assert with_index == without_index == ["1", "2", "3"]

    def test_index_respects_detached_subtrees(self, e):
        e.execute(
            "declare variable $s := exactly-one(($doc//s)[1]);"
            "snap delete { $s }"
        )
        assert e.execute("$doc//para/@n").strings() == ["3"]
        # The detached subtree is still queryable through its own root.
        assert e.execute("count($s//para)").first_value() == 2

    def test_index_sees_renames(self, e):
        e.execute('snap rename { ($doc//para)[1] } to { "intro" }')
        assert e.execute("count($doc//para)").first_value() == 2
        assert e.execute("count($doc//intro)").first_value() == 1

    def test_index_sees_constructed_elements(self, e):
        e.execute("snap insert { <para n='9'/> } into { ($doc//s)[2] }")
        assert e.execute("count($doc//para)").first_value() == 4


class TestTransform:
    def test_identity_returns_same_object(self):
        expr = normalize(parse("for $x in (1,2) return $x + 1"))
        assert transform(expr, lambda e: e) is expr

    def test_rewrite_literals(self):
        expr = normalize(parse("1 + 2"))

        def bump(e):
            if isinstance(e, core.CLiteral) and e.value.value == 1:
                from repro.xdm.values import AtomicValue

                return core.CLiteral(value=AtomicValue.integer(10))
            return e

        rewritten = transform(expr, bump)
        assert rewritten.left.value.value == 10
        assert rewritten.right.value.value == 2
        assert expr.left.value.value == 1  # original untouched

    def test_transform_traverses_ordered_flwor(self):
        expr = normalize(parse("for $x in $s order by $x return $x"))
        seen = []
        transform(expr, lambda e: (seen.append(type(e).__name__), e)[1])
        assert "CVar" in seen and "COrderedFLWOR" in seen
