"""Tests for the static checker and the Section 5 updating-flag inference."""

import pytest

from repro import Engine
from repro.errors import UndefinedFunctionError, UndefinedVariableError
from repro.lang.normalize import normalize_module
from repro.lang.parser import parse_module
from repro.lang.static_check import check_module, updating_flags
from repro.semantics.functions import default_registry


def check(text: str, globals_=frozenset()):
    module = normalize_module(parse_module(text))
    registry = default_registry()
    for decl in module.declarations:
        if hasattr(decl, "params"):
            registry.register_user(decl)
    check_module(module, registry, set(globals_))


class TestVariableScoping:
    def test_bound_variables_ok(self):
        check("for $x in (1,2) let $y := $x return $x + $y")

    def test_undefined_variable(self):
        with pytest.raises(UndefinedVariableError):
            check("$nope")

    def test_globals_accepted(self):
        check("$doc", globals_={"doc"})

    def test_declared_variables_visible_later(self):
        check("declare variable $v := 1; $v + 1")

    def test_declaration_order_enforced(self):
        with pytest.raises(UndefinedVariableError):
            check("declare variable $a := $b; declare variable $b := 1; $a")

    def test_function_params_in_scope(self):
        check("declare function f($x) { $x * 2 }; f(1)")

    def test_function_body_cannot_see_locals(self):
        with pytest.raises(UndefinedVariableError):
            check("declare function f() { $hidden }; let $hidden := 1 return f()")

    def test_positional_var_in_scope(self):
        check("for $x at $i in (1,2) return $i")

    def test_quantifier_scoping(self):
        check("some $q in (1,2) satisfies $q = 1")
        with pytest.raises(UndefinedVariableError):
            check("(some $q in (1,2) satisfies $q = 1) and $q = 1")

    def test_order_by_scope(self):
        check("for $x in (1,2) order by $x return $x")

    def test_path_predicate_scope(self):
        check("$doc//a[@id = $key]", globals_={"doc", "key"})
        with pytest.raises(UndefinedVariableError):
            check("$doc//a[@id = $key]", globals_={"doc"})

    def test_update_operands_checked(self):
        with pytest.raises(UndefinedVariableError):
            check("insert { <a/> } into { $missing }")

    def test_snap_body_checked(self):
        with pytest.raises(UndefinedVariableError):
            check("snap { $missing }")


class TestFunctionResolution:
    def test_builtin_ok(self):
        check("count((1, 2))")

    def test_unknown_function(self):
        with pytest.raises(UndefinedFunctionError):
            check("nope(1)")

    def test_wrong_arity(self):
        with pytest.raises(UndefinedFunctionError):
            check("declare function f($x) { $x }; f(1, 2)")

    def test_forward_reference_allowed(self):
        check(
            "declare function a() { b() };"
            "declare function b() { 1 };"
            "a()"
        )

    def test_recursion_allowed(self):
        check("declare function r($n) { if ($n) then r($n - 1) else 0 }; r(3)")


class TestEngineIntegration:
    def test_static_engine_rejects_typo_before_updates(self):
        engine = Engine(static_checks=True)
        engine.bind("x", engine.parse_fragment("<x/>"))
        with pytest.raises(UndefinedVariableError):
            engine.execute("insert { <a/> } into { $x }, $typo")
        # Crucially: the insert did NOT happen (check precedes evaluation).
        assert engine.execute("count($x/a)").first_value() == 0

    def test_default_engine_is_lazy(self):
        engine = Engine()
        engine.bind("x", engine.parse_fragment("<x/>"))
        with pytest.raises(UndefinedVariableError):
            engine.execute("$typo")

    def test_static_engine_accepts_valid(self):
        engine = Engine(static_checks=True)
        engine.bind("x", 2)
        assert engine.execute("$x * 21").first_value() == 42

    def test_load_module_checked(self):
        engine = Engine(static_checks=True)
        with pytest.raises(UndefinedVariableError):
            engine.load_module("declare function f() { $missing };")


class TestUpdatingFlags:
    """Section 5: the 'updating flag' with monadic propagation."""

    def registry(self, text: str):
        registry = default_registry()
        module = normalize_module(parse_module(text))
        for decl in module.declarations:
            if hasattr(decl, "params"):
                registry.register_user(decl)
        return registry

    def test_flags(self):
        registry = self.registry(
            """
            declare function pure($x) { $x + 1 };
            declare function logit($v) { insert { <l/> } into { $log } };
            declare function wrapper($v) { logit($v) };
            declare function bump() { snap { delete { $d } } };
            """
        )
        flags = {f.name: f for f in updating_flags(registry)}
        assert not flags["pure"].updating and not flags["pure"].snapping
        assert flags["logit"].updating and not flags["logit"].snapping
        assert flags["wrapper"].updating  # monadic propagation
        assert flags["bump"].snapping and not flags["bump"].updating

    def test_arity_recorded(self):
        registry = self.registry("declare function f($a, $b) { $a };")
        [flag] = updating_flags(registry)
        assert (flag.name, flag.arity) == ("f", 2)
