"""E1 — Fig. 1 grammar conformance.

Every production of the paper's XQuery! grammar (Appendix A) must parse to
the expected surface AST shape, including the snap-prefixed abbreviations
("snap insert{}into{} abbreviates snap{insert{}into{}}").
"""

import pytest

from repro.lang import ast
from repro.lang.parser import parse


class TestDeleteExpr:
    def test_delete(self):
        e = parse("delete { $x }")
        assert isinstance(e, ast.DeleteExpr) and not e.snap

    def test_snap_delete(self):
        e = parse("snap delete { $x }")
        assert isinstance(e, ast.DeleteExpr) and e.snap


class TestInsertExpr:
    def test_insert_into(self):
        e = parse("insert { <a/> } into { $x }")
        assert isinstance(e, ast.InsertExpr)
        assert e.position == "into" and not e.snap

    def test_insert_as_first_into(self):
        e = parse("insert { <a/> } as first into { $x }")
        assert e.position == "first"

    def test_insert_as_last_into(self):
        e = parse("insert { <a/> } as last into { $x }")
        assert e.position == "last"

    def test_insert_before(self):
        e = parse("insert { <a/> } before { $x }")
        assert e.position == "before"

    def test_insert_after(self):
        e = parse("insert { <a/> } after { $x }")
        assert e.position == "after"

    def test_snap_insert(self):
        e = parse("snap insert { <a/> } into { $x }")
        assert isinstance(e, ast.InsertExpr) and e.snap


class TestReplaceExpr:
    def test_replace(self):
        e = parse("replace { $x } with { <a/> }")
        assert isinstance(e, ast.ReplaceExpr) and not e.snap

    def test_snap_replace(self):
        e = parse("snap replace { $x } with { <a/> }")
        assert e.snap


class TestRenameExpr:
    def test_rename(self):
        e = parse('rename { $x } to { "newname" }')
        assert isinstance(e, ast.RenameExpr) and not e.snap

    def test_snap_rename(self):
        e = parse('snap rename { $x } to { "n" }')
        assert e.snap

    def test_rename_computed_name(self):
        e = parse("rename { $x } to { concat('a', 'b') }")
        assert isinstance(e.name, ast.FunctionCall)


class TestCopyExpr:
    def test_copy(self):
        e = parse("copy { $x }")
        assert isinstance(e, ast.CopyExpr)

    def test_copy_composes(self):
        e = parse("count(copy { $x/item })")
        assert isinstance(e, ast.FunctionCall)
        assert isinstance(e.args[0], ast.CopyExpr)


class TestSnapExpr:
    def test_plain_snap(self):
        e = parse("snap { $x }")
        assert isinstance(e, ast.SnapExpr) and e.mode is None

    def test_snap_ordered(self):
        e = parse("snap ordered { $x }")
        assert e.mode == "ordered"

    def test_snap_nondeterministic(self):
        e = parse("snap nondeterministic { $x }")
        assert e.mode == "nondeterministic"

    def test_snap_conflict_detection(self):
        e = parse("snap conflict-detection { $x }")
        assert e.mode == "conflict-detection"

    def test_nested_snap(self):
        e = parse("snap { snap { $x } }")
        assert isinstance(e.body, ast.SnapExpr)

    def test_snap_of_sequence(self):
        e = parse("snap { insert {<a/>} into {$x}, $x }")
        assert isinstance(e.body, ast.SequenceExpr)


class TestKeywordsRemainUsableAsNames:
    """XQuery has no reserved words: the new keywords must still parse as
    element names in paths (compositionality of the grammar extension)."""

    @pytest.mark.parametrize(
        "word", ["snap", "insert", "delete", "replace", "rename", "copy"]
    )
    def test_keyword_as_path_step(self, word):
        e = parse(f"$doc/{word}")
        assert isinstance(e, ast.PathExpr)
        assert isinstance(e.step, ast.AxisStep)
        assert e.step.test.name == word

    def test_snap_child_standalone(self):
        # 'snap' not followed by '{' or an update keyword is a name test.
        e = parse("snap[1]")
        assert isinstance(e, ast.AxisStep)
        assert e.test.name == "snap"

    def test_delete_function_like_element(self):
        # 'delete' followed by parens is a function call, not an update.
        e = parse("delete($x)")
        assert isinstance(e, ast.FunctionCall)


class TestUpdateComposability:
    """Updates are ExprSingle: they compose anywhere expressions do."""

    def test_update_in_sequence(self):
        e = parse("(insert {<a/>} into {$x}, $x)")
        assert isinstance(e, ast.SequenceExpr)
        assert isinstance(e.items[0], ast.InsertExpr)

    def test_update_in_function_args(self):
        e = parse("count((delete { $x }, $y))")
        assert isinstance(e, ast.FunctionCall)

    def test_update_in_flwor_return(self):
        e = parse("for $i in $s return insert { $i } into { $t }")
        assert isinstance(e, ast.FLWORExpr)
        assert isinstance(e.ret, ast.InsertExpr)

    def test_update_in_if_branch(self):
        e = parse("if ($c) then delete { $x } else ()")
        assert isinstance(e.then, ast.DeleteExpr)

    def test_update_in_let_body(self):
        e = parse("let $v := $x return replace { $v } with { <n/> }")
        assert isinstance(e, ast.FLWORExpr)
        assert isinstance(e.ret, ast.ReplaceExpr)

    def test_snap_in_where_clause(self):
        e = parse(
            "for $i in $s where snap { exists($i) } return $i"
        )
        assert isinstance(e.where, ast.SnapExpr)
