"""Unit tests for the general XQuery parser (beyond the Fig. 1 grammar)."""

import pytest

from repro.errors import ParseError
from repro.lang import ast
from repro.lang.parser import parse, parse_module


class TestLiteralsAndPrimaries:
    def test_integer(self):
        assert isinstance(parse("42"), ast.IntegerLit)

    def test_decimal_and_double(self):
        assert isinstance(parse("3.14"), ast.DecimalLit)
        assert isinstance(parse("1e3"), ast.DoubleLit)

    def test_string(self):
        e = parse('"hi"')
        assert isinstance(e, ast.StringLit) and e.value == "hi"

    def test_variable(self):
        e = parse("$auction")
        assert isinstance(e, ast.VarRef) and e.name == "auction"

    def test_empty_sequence(self):
        assert isinstance(parse("()"), ast.EmptySequence)

    def test_context_item(self):
        assert isinstance(parse("."), ast.ContextItem)

    def test_parenthesized(self):
        assert isinstance(parse("(1 + 2) * 3"), ast.Arith)


class TestPrecedence:
    def test_mul_binds_tighter_than_add(self):
        e = parse("1 + 2 * 3")
        assert e.op == "+" and e.right.op == "*"

    def test_comparison_over_arithmetic(self):
        e = parse("1 + 2 = 3")
        assert isinstance(e, ast.Comparison)

    def test_and_over_or(self):
        e = parse("$a or $b and $c")
        assert e.op == "or" and e.right.op == "and"

    def test_unary_minus(self):
        e = parse("-$x + 1")
        assert e.op == "+" and isinstance(e.left, ast.Unary)

    def test_range_expr(self):
        e = parse("1 to 10")
        assert isinstance(e, ast.RangeExpr)

    def test_union(self):
        e = parse("$a | $b union $c")
        assert isinstance(e, ast.SetExpr)

    def test_intersect_except(self):
        assert parse("$a intersect $b").op == "intersect"
        assert parse("$a except $b").op == "except"

    def test_value_comparisons(self):
        for op in ("eq", "ne", "lt", "le", "gt", "ge"):
            e = parse(f"$a {op} $b")
            assert e.style == "value" and e.op == op

    def test_node_comparisons(self):
        assert parse("$a is $b").op == "is"
        assert parse("$a << $b").op == "precedes"
        assert parse("$a >> $b").op == "follows"

    def test_idiv_mod(self):
        assert parse("7 idiv 2").op == "idiv"
        assert parse("7 mod 2").op == "mod"


class TestPaths:
    def test_relative_path(self):
        e = parse("$a/b/c")
        assert isinstance(e, ast.PathExpr)
        assert e.step.test.name == "c"

    def test_descendant_abbreviation(self):
        e = parse("$a//person")
        # $a / descendant-or-self::node() / child::person
        assert e.step.test.name == "person"
        inner = e.base
        assert inner.step.axis == "descendant-or-self"

    def test_attribute_abbreviation(self):
        e = parse("$a/@id")
        assert e.step.axis == "attribute"
        assert e.step.test.name == "id"

    def test_parent_abbreviation(self):
        e = parse("$a/..")
        assert e.step.axis == "parent"

    def test_explicit_axes(self):
        for axis in (
            "child", "descendant", "self", "parent", "ancestor",
            "following-sibling", "preceding-sibling", "descendant-or-self",
            "ancestor-or-self", "following", "preceding",
        ):
            e = parse(f"$a/{axis}::node()")
            assert e.step.axis == axis

    def test_wildcard(self):
        e = parse("$a/*")
        assert e.step.test.name == "*"

    def test_kind_tests(self):
        assert parse("$a/text()").step.test.kind == "text"
        assert parse("$a/node()").step.test.kind == "node"
        assert parse("$a/comment()").step.test.kind == "comment"
        assert parse("$a/element(b)").step.test == ast.NodeTest("element", "b")

    def test_rooted_path(self):
        e = parse("/site/people")
        assert isinstance(e, ast.PathExpr)
        base = e.base.base
        assert isinstance(base, ast.RootExpr)

    def test_leading_descendant(self):
        e = parse("//person")
        assert e.step.test.name == "person"

    def test_predicates_on_step(self):
        e = parse("$a/b[1][@x = 2]")
        assert len(e.step.predicates) == 2

    def test_predicate_on_primary(self):
        e = parse("(1,2,3)[2]")
        assert isinstance(e, ast.FilterExpr)

    def test_path_from_function_call(self):
        e = parse("root($x)/a")
        assert isinstance(e.base, ast.FunctionCall)


class TestFLWOR:
    def test_multiple_clauses(self):
        e = parse(
            "for $a in $x, $b in $y let $c := $z where $a return $c"
        )
        assert isinstance(e, ast.FLWORExpr)
        assert [type(c).__name__ for c in e.clauses] == [
            "ForClause", "ForClause", "LetClause",
        ]
        assert e.where is not None

    def test_positional_variable(self):
        e = parse("for $i at $p in $s return $p")
        assert e.clauses[0].position_var == "p"

    def test_order_by(self):
        e = parse("for $i in $s order by $i/name descending, $i/@id return $i")
        assert len(e.order_by) == 2
        assert e.order_by[0].descending is True
        assert e.order_by[1].descending is False

    def test_stable_order_by_empty_handling(self):
        e = parse(
            "for $i in $s stable order by $i empty least return $i"
        )
        assert e.stable is True
        assert e.order_by[0].empty_least is True

    def test_quantified(self):
        e = parse("some $x in $s, $y in $t satisfies $x eq $y")
        assert isinstance(e, ast.QuantifiedExpr)
        assert e.kind == "some" and len(e.bindings) == 2
        assert parse("every $x in $s satisfies $x").kind == "every"


class TestConstructors:
    def test_direct_empty(self):
        e = parse("<a/>")
        assert isinstance(e, ast.DirectElement) and e.name == "a"

    def test_direct_attributes_literal(self):
        e = parse('<a x="1" y=\'2\'/>')
        assert [a.name for a in e.attributes] == ["x", "y"]
        assert e.attributes[0].content.parts == ["1"]

    def test_attribute_value_template(self):
        e = parse('<a x="pre{$v}post"/>')
        parts = e.attributes[0].content.parts
        assert parts[0] == "pre" and isinstance(parts[1], ast.VarRef)
        assert parts[2] == "post"

    def test_attribute_brace_escape(self):
        e = parse('<a x="{{literal}}"/>')
        assert e.attributes[0].content.parts == ["{literal}"]

    def test_content_text_and_enclosed(self):
        e = parse("<a>hello {$x} bye</a>")
        assert e.content[0] == "hello "
        assert isinstance(e.content[1], ast.VarRef)

    def test_nested_elements(self):
        e = parse("<a><b>{1}</b><c/></a>")
        assert isinstance(e.content[0], ast.DirectElement)
        assert e.content[1].name == "c"

    def test_boundary_whitespace_stripped(self):
        e = parse("<a>\n  <b/>\n</a>")
        assert all(not isinstance(c, str) for c in e.content)

    def test_entities_in_content(self):
        e = parse("<a>&amp;&#65;</a>")
        assert e.content == ["&A"]

    def test_computed_element_literal_name(self):
        e = parse("element counter { 0 }")
        assert isinstance(e, ast.CompElement) and e.name == "counter"

    def test_computed_element_name_expr(self):
        e = parse("element { concat('a','b') } { () }")
        assert isinstance(e.name, ast.FunctionCall)

    def test_computed_attribute_text_comment(self):
        assert isinstance(parse('attribute id { "1" }'), ast.CompAttribute)
        assert isinstance(parse('text { "x" }'), ast.CompText)
        assert isinstance(parse('comment { "c" }'), ast.CompComment)
        assert isinstance(parse('document { <a/> }'), ast.CompDocument)

    def test_element_still_a_name_in_paths(self):
        e = parse("$x/element")
        assert e.step.test.name == "element"

    def test_mismatched_end_tag(self):
        with pytest.raises(ParseError):
            parse("<a></b>")


class TestIfExpr:
    def test_if_then_else(self):
        e = parse("if ($c) then 1 else 2")
        assert isinstance(e, ast.IfExpr)

    def test_if_requires_else(self):
        with pytest.raises(ParseError):
            parse("if ($c) then 1")


class TestModules:
    def test_variable_declaration(self):
        m = parse_module("declare variable $x := 42; $x")
        assert isinstance(m.declarations[0], ast.VarDecl)
        assert m.body is not None

    def test_external_variable(self):
        m = parse_module("declare variable $x external; $x")
        assert m.declarations[0].expr is None

    def test_function_declaration_with_types(self):
        m = parse_module(
            "declare function f($a as xs:integer, $b) as item()* { $a + $b };"
        )
        [f] = m.declarations
        assert f.name == "f"
        assert f.params[0].type_ == "xs:integer"
        assert f.return_type == "item()*"
        assert m.body is None

    def test_xquery_version_skipped(self):
        m = parse_module('xquery version "1.0"; 1')
        assert m.body is not None

    def test_unknown_declare_skipped(self):
        m = parse_module("declare boundary-space preserve; 1")
        assert m.body is not None

    def test_library_module_decl_skipped(self):
        m = parse_module(
            'module namespace ws = "http://example.com/ws";'
            "declare function ws:f() { 1 };"
        )
        assert m.declarations[0].name == "ws:f"


class TestErrors:
    @pytest.mark.parametrize(
        "bad",
        [
            "1 +",
            "for $x return $x",      # missing 'in'
            "insert { $a } { $b }",  # missing location keyword
            "snap { }",              # empty snap body
            "let $x = 1 return $x",  # '=' instead of ':='
            "(1, )",
        ],
    )
    def test_rejected(self, bad):
        with pytest.raises(ParseError):
            parse(bad)

    def test_bare_dollar_is_a_static_error(self):
        from repro.errors import StaticError

        with pytest.raises(StaticError):
            parse("$")

    def test_trailing_garbage(self):
        with pytest.raises(ParseError):
            parse("1 1")
