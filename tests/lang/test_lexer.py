"""Unit tests for the XQuery! tokenizer."""

import pytest

from repro.errors import LexerError
from repro.lang.lexer import Lexer
from repro.lang.tokens import TokenKind


def toks(text: str):
    lexer = Lexer(text)
    out = []
    while True:
        token = lexer.next()
        if token.kind is TokenKind.EOF:
            return out
        out.append(token)


def kinds(text: str):
    return [t.kind for t in toks(text)]


def values(text: str):
    return [t.value for t in toks(text)]


class TestNames:
    def test_simple_name(self):
        [t] = toks("abc")
        assert t.kind is TokenKind.NAME and t.value == "abc"

    def test_qualified_name_merged(self):
        [t] = toks("fn:count")
        assert t.value == "fn:count"

    def test_axis_not_merged(self):
        assert values("child::a") == ["child", "::", "a"]

    def test_hyphenated_name(self):
        [t] = toks("conflict-detection")
        assert t.value == "conflict-detection"

    def test_trailing_hyphen_not_consumed(self):
        assert values("a -b") == ["a", "-", "b"]
        assert values("a-b") == ["a-b"]

    def test_name_then_dotdot(self):
        assert values("a/..") == ["a", "/", ".."]

    def test_dot_inside_name(self):
        assert values("a.b") == ["a.b"]


class TestVariables:
    def test_variable(self):
        [t] = toks("$x")
        assert t.kind is TokenKind.VARNAME and t.value == "x"

    def test_prefixed_variable(self):
        [t] = toks("$local:item")
        assert t.value == "local:item"

    def test_dollar_alone_rejected(self):
        with pytest.raises(LexerError):
            toks("$ x")


class TestNumbers:
    def test_integer(self):
        [t] = toks("42")
        assert t.kind is TokenKind.INTEGER

    def test_decimal(self):
        [t] = toks("3.14")
        assert t.kind is TokenKind.DECIMAL

    def test_leading_dot_decimal(self):
        [t] = toks(".5")
        assert t.kind is TokenKind.DECIMAL and t.value == ".5"

    def test_double(self):
        [t] = toks("1.5e3")
        assert t.kind is TokenKind.DOUBLE

    def test_double_negative_exponent(self):
        [t] = toks("2E-7")
        assert t.kind is TokenKind.DOUBLE

    def test_integer_then_range(self):
        assert values("1 to 2") == ["1", "to", "2"]

    def test_number_then_dotdot(self):
        # '1..' lexes as decimal '1.' then '.'? No: '..' wins lookahead.
        assert values("(1)..") == ["(", "1", ")", ".."]


class TestStrings:
    def test_double_quoted(self):
        [t] = toks('"hello"')
        assert t.kind is TokenKind.STRING and t.value == "hello"

    def test_single_quoted(self):
        [t] = toks("'hi'")
        assert t.value == "hi"

    def test_doubled_quote_escape(self):
        [t] = toks('"say ""hi"""')
        assert t.value == 'say "hi"'

    def test_entity_in_string(self):
        [t] = toks('"&amp;&#65;"')
        assert t.value == "&A"

    def test_unterminated(self):
        with pytest.raises(LexerError):
            toks('"abc')


class TestComments:
    def test_simple_comment_skipped(self):
        assert values("1 (: note :) 2") == ["1", "2"]

    def test_nested_comment(self):
        assert values("1 (: a (: b :) c :) 2") == ["1", "2"]

    def test_paper_style_comment(self):
        assert values("(::: Logging code :::) $x") == ["x"]

    def test_unterminated_comment(self):
        with pytest.raises(LexerError):
            toks("1 (: oops")


class TestOperators:
    def test_two_char_tokens(self):
        assert kinds("!= <= >= << >> := ::") == [
            TokenKind.NE,
            TokenKind.LE,
            TokenKind.GE,
            TokenKind.LTLT,
            TokenKind.GTGT,
            TokenKind.ASSIGN,
            TokenKind.COLONCOLON,
        ]

    def test_slashes(self):
        assert kinds("/ //") == [TokenKind.SLASH, TokenKind.SLASHSLASH]

    def test_unexpected_char(self):
        with pytest.raises(LexerError):
            toks("#")

    def test_location_tracking(self):
        lexer = Lexer("a\n  b")
        lexer.next()
        token = lexer.next()
        assert (token.line, token.column) == (2, 3)


class TestPushbackAndSeek:
    def test_peek_does_not_consume(self):
        lexer = Lexer("a b")
        assert lexer.peek().value == "a"
        assert lexer.next().value == "a"

    def test_seek_resets(self):
        lexer = Lexer("a b c")
        lexer.next()
        pos = lexer.char_position()
        lexer.next()
        lexer.seek(pos)
        assert lexer.next().value == "b"
