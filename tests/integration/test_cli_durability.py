"""CLI durability: the ``--journal`` option and ``repro recover``."""

import os
import struct

import pytest

from repro.cli import main
from repro.durability.journal import FRAME_MAGIC
from repro.durability.manifest import read_manifest


@pytest.fixture
def data_file(tmp_path):
    path = tmp_path / "data.xml"
    path.write_text('<inv><item id="1"/><item id="2"/></inv>')
    return str(path)


@pytest.fixture
def journal_dir(tmp_path):
    return str(tmp_path / "durable")


def run_cli(capsys, argv):
    code = main(argv)
    captured = capsys.readouterr()
    return code, captured.out, captured.err


class TestJournalOption:
    def test_updates_survive_across_invocations(
        self, capsys, data_file, journal_dir
    ):
        code, _, _ = run_cli(
            capsys,
            [
                "-q",
                "snap insert { <item id='3'/> } into { $doc/inv }",
                "--doc",
                f"doc={data_file}",
                "--journal",
                journal_dir,
            ],
        )
        assert code == 0
        # A second process: no --doc needed, the directory recovers.
        code, out, _ = run_cli(
            capsys,
            ["-q", "count($doc//item)", "--journal", journal_dir],
        )
        assert code == 0
        assert out.strip() == "3"

    def test_state_only_invocation_initializes_directory(
        self, capsys, data_file, journal_dir
    ):
        code, _, _ = run_cli(
            capsys,
            ["--doc", f"doc={data_file}", "--journal", journal_dir],
        )
        assert code == 0
        assert os.path.exists(os.path.join(journal_dir, "MANIFEST.json"))

    def test_journal_and_load_are_mutually_exclusive(
        self, capsys, tmp_path, journal_dir
    ):
        dump = tmp_path / "dump.json"
        dump.write_text("{}")
        with pytest.raises(SystemExit, match="mutually exclusive"):
            main(
                ["-q", "1", "--load", str(dump), "--journal", journal_dir]
            )


class TestRecoverSubcommand:
    def _initialize(self, capsys, data_file, journal_dir):
        run_cli(
            capsys,
            [
                "-q",
                "snap insert { <item id='3'/> } into { $doc/inv }",
                "--doc",
                f"doc={data_file}",
                "--journal",
                journal_dir,
            ],
        )

    def test_prints_report(self, capsys, data_file, journal_dir):
        self._initialize(capsys, data_file, journal_dir)
        code, out, _ = run_cli(capsys, ["recover", journal_dir])
        assert code == 0
        assert "recovered" in out
        assert "replayed 1 record(s)" in out

    def test_reports_truncated_tail(self, capsys, data_file, journal_dir):
        self._initialize(capsys, data_file, journal_dir)
        manifest = read_manifest(journal_dir)
        with open(
            os.path.join(journal_dir, manifest["journal"]), "ab"
        ) as handle:
            handle.write(struct.pack("<I", FRAME_MAGIC))  # torn header
        code, out, _ = run_cli(capsys, ["recover", journal_dir])
        assert code == 0
        assert "torn tail of 4 byte(s)" in out

    def test_corruption_exits_one(self, capsys, data_file, journal_dir):
        from repro.durability.journal import FILE_MAGIC, HEADER_SIZE

        self._initialize(capsys, data_file, journal_dir)
        # A second invocation appends a second record, so damage to the
        # first frame is unambiguously *mid-file* corruption (a torn
        # tail could only explain damage to the last frame).
        run_cli(
            capsys,
            [
                "-q",
                "snap insert { <item id='4'/> } into { $doc/inv }",
                "--journal",
                journal_dir,
            ],
        )
        manifest = read_manifest(journal_dir)
        wal = os.path.join(journal_dir, manifest["journal"])
        data = bytearray(open(wal, "rb").read())
        data[len(FILE_MAGIC) + HEADER_SIZE + 3] ^= 0xFF
        open(wal, "wb").write(bytes(data))
        code, _, err = run_cli(capsys, ["recover", journal_dir])
        assert code == 1
        assert "error:" in err

    def test_missing_directory_fails_with_error(self, capsys, tmp_path):
        code, _, err = run_cli(
            capsys, ["recover", str(tmp_path / "nope")]
        )
        assert code != 0
        assert "error:" in err
