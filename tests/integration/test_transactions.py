"""Engine-level transactions: the deprecated shim and the Session API.

The legacy ``Engine.transaction()`` context manager (checkpoint at
entry, restore on exception, writes land immediately) survives as a
deprecation shim — every historical behavior still holds, plus a
``DeprecationWarning``.  New code goes through ``engine.session()``;
the deep transactional coverage lives in ``tests/txn/``.
"""

import pytest

from repro import Engine
from repro.errors import DynamicError


@pytest.fixture
def e() -> Engine:
    engine = Engine()
    engine.bind("table", engine.parse_fragment("<table><row id='0'/></table>"))
    return engine


def legacy_txn(engine):
    with pytest.warns(DeprecationWarning, match="session"):
        return engine.transaction()


class TestDeprecation:
    def test_legacy_transaction_warns(self, e):
        with pytest.warns(DeprecationWarning, match="Engine.session"):
            with e.transaction():
                pass

    def test_session_api_does_not_warn(self, e):
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            with e.session() as session:
                with session.transaction() as txn:
                    txn.execute(
                        "snap insert { <row id='1'/> } into { $table }"
                    )
        assert e.execute("count($table/row)").first_value() == 2


class TestLegacyCommit:
    def test_successful_transaction_persists(self, e):
        with legacy_txn(e):
            e.execute("snap insert { <row id='1'/> } into { $table }")
            e.execute("snap insert { <row id='2'/> } into { $table }")
        assert e.execute("count($table/row)").first_value() == 3

    def test_nested_reads_see_writes(self, e):
        with legacy_txn(e):
            e.execute("snap insert { <row id='1'/> } into { $table }")
            count = e.execute("count($table/row)").first_value()
            assert count == 2


class TestLegacyRollback:
    def test_exception_rolls_back_store(self, e):
        with pytest.raises(DynamicError):
            with legacy_txn(e):
                e.execute("snap insert { <row id='1'/> } into { $table }")
                e.execute("error('boom')")
        assert e.execute("count($table/row)").first_value() == 1

    def test_rollback_restores_globals(self, e):
        with pytest.raises(RuntimeError):
            with legacy_txn(e):
                e.execute("declare variable $temp := 99; $temp")
                e.bind("table", None)  # clobber a binding
                raise RuntimeError("abort")
        # Both the declared variable and the clobbered binding roll back.
        assert "temp" not in e.evaluator.globals
        assert e.execute("count($table/row)").first_value() == 1

    def test_rollback_restores_renames_and_deletes(self, e):
        with pytest.raises(RuntimeError):
            with legacy_txn(e):
                e.execute('snap rename { $table/row } to { "tuple" }')
                e.execute("snap delete { $table/tuple }")
                raise RuntimeError("abort")
        assert e.execute("count($table/row)").first_value() == 1
        e.store.check_invariants()

    def test_python_exception_propagates(self, e):
        with pytest.raises(ZeroDivisionError):
            with legacy_txn(e):
                1 / 0

    def test_sequential_transactions_independent(self, e):
        with pytest.raises(RuntimeError):
            with legacy_txn(e):
                e.execute("snap insert { <row id='x'/> } into { $table }")
                raise RuntimeError
        with legacy_txn(e):
            e.execute("snap insert { <row id='y'/> } into { $table }")
        rows = e.execute("$table/row/@id").strings()
        assert rows == ["0", "y"]

    def test_queries_after_rollback_work(self, e):
        with pytest.raises(RuntimeError):
            with legacy_txn(e):
                e.execute("snap delete { $table/row }")
                raise RuntimeError
        # The restored handles still resolve.
        assert e.execute("string($table/row/@id)").first_value() == "0"
