"""Large-scale smoke test: an XMark document at a non-toy scale, end to
end through parsing, indexing, querying, optimization and updates."""

import pytest

from repro import Engine
from repro.xmark import XMarkConfig, generate_auction_xml


@pytest.fixture(scope="module")
def big() -> Engine:
    engine = Engine()
    engine.load_document(
        "auction",
        generate_auction_xml(
            XMarkConfig(
                persons=1200, items=800, open_auctions=400, closed_auctions=900
            )
        ),
    )
    engine.bind("purchasers", engine.parse_fragment("<purchasers/>"))
    return engine


class TestScaleSmoke:
    def test_store_size(self, big):
        assert len(big.store) > 20_000

    def test_indexed_scans(self, big):
        assert big.execute("count($auction//person)").first_value() == 1200
        assert big.execute("count($auction//closed_auction)").first_value() == 900

    def test_optimized_q8_at_scale(self, big):
        out = big.execute(
            """
            for $p in $auction//person
            let $a := for $t in $auction//closed_auction
                      where $t/buyer/@person = $p/@id
                      return $t
            return count($a)
            """,
            optimize=True,
        )
        assert len(out) == 1200
        assert sum(out.values()) == 900

    def test_bulk_update_at_scale(self, big):
        big.execute(
            "snap { for $p in $auction//person "
            'return insert { <seen/> } into { $p } }'
        )
        assert big.execute("count($auction//seen)").first_value() == 1200

    def test_aggregation_at_scale(self, big):
        total = big.execute("sum($auction//closed_auction/price)")
        assert float(total.first_value()) > 0

    def test_order_by_at_scale(self, big):
        out = big.execute(
            "for $p in subsequence($auction//person, 1, 300) "
            "order by string($p/name) return string($p/name)",
            optimize=True,
        )
        values = out.values()
        assert values == sorted(values) and len(values) == 300
