"""Integration tests for the command-line interface."""

import pytest

from repro.cli import main


@pytest.fixture
def data_file(tmp_path):
    path = tmp_path / "data.xml"
    path.write_text('<inv><item id="1"/><item id="2"/></inv>')
    return str(path)


def run_cli(capsys, argv):
    code = main(argv)
    captured = capsys.readouterr()
    return code, captured.out, captured.err


class TestInlineQueries:
    def test_count(self, capsys, data_file):
        code, out, _ = run_cli(
            capsys, ["-q", "count($doc//item)", "--doc", f"doc={data_file}"]
        )
        assert code == 0
        assert out.strip() == "2"

    def test_xml_output(self, capsys, data_file):
        code, out, _ = run_cli(
            capsys, ["-q", "($doc//item)[1]", "--doc", f"doc={data_file}"]
        )
        assert code == 0
        assert out.strip() == '<item id="1"/>'

    def test_var_binding(self, capsys):
        code, out, _ = run_cli(
            capsys, ["-q", "concat($greet, '!')", "--var", "greet=hi"]
        )
        assert code == 0 and out.strip() == "hi!"

    def test_fragment_binding_and_update(self, capsys):
        code, out, _ = run_cli(
            capsys,
            [
                "-q",
                "snap insert { <n/> } into { $x }, count($x/n)",
                "--fragment",
                "x=<x/>",
            ],
        )
        assert code == 0 and out.strip() == "1"

    def test_semantics_flag(self, capsys):
        code, _, err = run_cli(
            capsys,
            [
                "-q",
                'rename {$x/a} to {"p"}, rename {$x/a} to {"q"}',
                "--fragment",
                "x=<x><a/></x>",
                "--semantics",
                "conflict-detection",
            ],
        )
        assert code == 1
        assert "XUDY0024" in err


class TestQueryFiles:
    def test_file_query(self, capsys, tmp_path, data_file):
        query = tmp_path / "q.xq"
        query.write_text(
            "declare function twice($n) { $n * 2 };\n"
            "twice(count($doc//item))\n"
        )
        code, out, _ = run_cli(
            capsys, [str(query), "--doc", f"doc={data_file}"]
        )
        assert code == 0 and out.strip() == "4"

    def test_missing_file(self, capsys):
        code, _, err = run_cli(capsys, ["/nonexistent.xq"])
        assert code == 2 and "error" in err

    def test_missing_document(self, capsys):
        code, _, err = run_cli(
            capsys, ["-q", "1", "--doc", "doc=/nonexistent.xml"]
        )
        assert code == 2 and "error" in err


class TestPlanAndOptimize:
    def test_plan_output(self, capsys, data_file):
        code, out, _ = run_cli(
            capsys,
            [
                "-q",
                "for $i in $doc//item return $i",
                "--doc",
                f"doc={data_file}",
                "--plan",
            ],
        )
        assert code == 0
        assert "Snap[ordered]" in out
        assert "MapConcat[i]" in out

    def test_optimize_flag_runs(self, capsys, data_file):
        code, out, _ = run_cli(
            capsys,
            [
                "-q",
                "for $i in $doc//item return string($i/@id)",
                "--doc",
                f"doc={data_file}",
                "--optimize",
            ],
        )
        assert code == 0 and out.strip() == "1 2"


class TestRepl:
    def run_repl(self, capsys, monkeypatch, lines):
        inputs = iter(lines)

        def fake_input(prompt=""):
            try:
                return next(inputs)
            except StopIteration:
                raise EOFError

        monkeypatch.setattr("builtins.input", fake_input)
        code = main(["--repl", "--fragment", "x=<x><a/></x>"])
        captured = capsys.readouterr()
        return code, captured.out, captured.err

    def test_query_and_quit(self, capsys, monkeypatch):
        code, out, _ = self.run_repl(
            capsys, monkeypatch, ["count($x/a)", "", ":quit"]
        )
        assert code == 0
        assert "1" in out

    def test_multiline_query(self, capsys, monkeypatch):
        code, out, _ = self.run_repl(
            capsys, monkeypatch, ["for $i in 1 to 3", "return $i * 2", "", ":q"]
        )
        assert code == 0
        assert "2 4 6" in out

    def test_error_recovers(self, capsys, monkeypatch):
        code, out, err = self.run_repl(
            capsys, monkeypatch, ["$nope", "", "1 + 1", "", ":q"]
        )
        assert code == 0
        assert "error" in err
        assert "2" in out

    def test_plan_toggle(self, capsys, monkeypatch):
        code, out, _ = self.run_repl(
            capsys, monkeypatch,
            [":plan on", "for $i in $x/a return $i", "", ":q"],
        )
        assert code == 0
        assert "Snap[ordered]" in out

    def test_eof_exits(self, capsys, monkeypatch):
        code, _, _ = self.run_repl(capsys, monkeypatch, [])
        assert code == 0

    def test_state_persists_between_queries(self, capsys, monkeypatch):
        code, out, _ = self.run_repl(
            capsys, monkeypatch,
            ["snap insert { <b/> } into { $x }", "", "count($x/b)", "", ":q"],
        )
        assert code == 0
        assert "1" in out


class TestPersistenceFlags:
    def test_save_and_load_roundtrip(self, capsys, tmp_path, data_file):
        db = str(tmp_path / "state.json")
        code, _, _ = run_cli(
            capsys,
            [
                "-q",
                "snap insert { <item id='3'/> } into { $doc/inv }",
                "--doc",
                f"doc={data_file}",
                "--save",
                db,
            ],
        )
        assert code == 0
        code, out, _ = run_cli(
            capsys, ["-q", "count($doc//item)", "--load", db]
        )
        assert code == 0 and out.strip() == "3"

    def test_state_only_invocation(self, capsys, tmp_path, data_file):
        db = str(tmp_path / "state.json")
        code, _, _ = run_cli(
            capsys, ["--doc", f"doc={data_file}", "--save", db]
        )
        assert code == 0
        code, out, _ = run_cli(capsys, ["-q", "count($doc//item)", "--load", db])
        assert code == 0 and out.strip() == "2"

    def test_failed_query_does_not_save(self, capsys, tmp_path, data_file):
        db = str(tmp_path / "state.json")
        code, _, _ = run_cli(
            capsys,
            ["-q", "$typo", "--doc", f"doc={data_file}", "--save", db],
        )
        assert code == 1
        import os

        assert not os.path.exists(db)


class TestErrorsAndUsage:
    def test_no_query_is_usage_error(self, capsys):
        code, _, err = run_cli(capsys, [])
        assert code == 2 and "provide a query" in err

    def test_query_error_exit_code(self, capsys):
        code, _, err = run_cli(capsys, ["-q", "1 +"])
        assert code == 1 and "XPST0003" in err

    def test_bad_binding_format(self, capsys):
        with pytest.raises(SystemExit):
            main(["-q", "1", "--var", "malformed"])

    def test_trace_goes_to_stderr(self, capsys):
        code, out, err = run_cli(capsys, ["-q", "trace(7, 'dbg')"])
        assert code == 0
        assert out.strip() == "7"
        assert "dbg" in err
