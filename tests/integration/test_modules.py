"""Tests for the library-module system (import module namespace)."""

import pytest

from repro import Engine
from repro.errors import DynamicError

MATH = """
module namespace math = "urn:math";
declare variable $math:pi := 3.14159;
declare function math:square($x) { $x * $x };
declare function math:cube($x) { $x * math:square($x) };
"""

LOGLIB = """
module namespace lg = "urn:log";
declare function lg:log($msg) {
  insert { <entry>{ $msg }</entry> } into { $journal }
};
"""


@pytest.fixture
def e() -> Engine:
    engine = Engine()
    engine.register_module("urn:math", MATH)
    engine.register_module("urn:log", LOGLIB)
    engine.bind("journal", engine.parse_fragment("<journal/>"))
    return engine


class TestImports:
    def test_functions_under_import_prefix(self, e):
        out = e.execute(
            'import module namespace m = "urn:math"; m:square(5)'
        )
        assert out.first_value() == 25

    def test_library_internal_calls(self, e):
        out = e.execute('import module namespace m = "urn:math"; m:cube(3)')
        assert out.first_value() == 27

    def test_library_variables(self, e):
        out = e.execute('import module namespace m = "urn:math"; $m:pi')
        assert float(out.first_value()) == pytest.approx(3.14159)

    def test_same_prefix_as_library(self, e):
        out = e.execute(
            'import module namespace math = "urn:math"; math:square(2)'
        )
        assert out.first_value() == 4

    def test_at_location_hint_accepted(self, e):
        out = e.execute(
            'import module namespace m = "urn:math" at "math.xq"; m:square(2)'
        )
        assert out.first_value() == 4

    def test_unknown_uri_raises(self, e):
        with pytest.raises(DynamicError):
            e.execute('import module namespace x = "urn:nope"; 1')

    def test_import_in_load_module(self, e):
        e.load_module(
            'import module namespace m = "urn:math";'
            "declare function area($r) { $m:pi * m:square($r) };"
        )
        assert float(e.execute("area(1)").first_value()) == pytest.approx(3.14159)

    def test_updating_library_function(self, e):
        e.execute('import module namespace l = "urn:log"; l:log("hello")')
        assert e.execute("string($journal/entry)").first_value() == "hello"

    def test_library_loaded_once(self, e):
        e.execute('import module namespace m = "urn:math"; $m:pi')
        e.execute('import module namespace m2 = "urn:math"; $m2:pi')
        # Only one copy of the library state exists.
        assert len(e._loaded_modules) == 1

    def test_transitive_imports(self, e):
        e.register_module(
            "urn:geom",
            """
            module namespace geom = "urn:geom";
            import module namespace m = "urn:math";
            declare function geom:circle-area($r) { $m:pi * m:square($r) };
            """,
        )
        out = e.execute(
            'import module namespace g = "urn:geom"; g:circle-area(2)'
        )
        assert float(out.first_value()) == pytest.approx(4 * 3.14159)

    def test_circular_import_detected(self, e):
        e.register_module(
            "urn:a",
            'module namespace a = "urn:a";'
            'import module namespace b = "urn:b";'
            "declare function a:f() { 1 };",
        )
        e.register_module(
            "urn:b",
            'module namespace b = "urn:b";'
            'import module namespace a = "urn:a";'
            "declare function b:f() { 1 };",
        )
        with pytest.raises(DynamicError):
            e.execute('import module namespace a = "urn:a"; a:f()')
