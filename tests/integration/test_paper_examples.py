"""Integration: every literal code example from the paper, end to end."""

import pytest

from repro import Engine
from repro.xmark import XMarkConfig, generate_auction_xml


@pytest.fixture(scope="module")
def xml() -> str:
    return generate_auction_xml(
        XMarkConfig(persons=12, items=8, closed_auctions=15)
    )


@pytest.fixture
def e(xml) -> Engine:
    engine = Engine()
    engine.load_document("auction", xml)
    engine.bind("purchasers", engine.parse_fragment("<purchasers/>"))
    engine.bind("log", engine.parse_fragment("<log/>"))
    engine.bind("archive", engine.parse_fragment("<archive/>"))
    engine.bind("maxlog", 100)
    return engine


class TestSection21SnapshotJoin:
    """The Section 2.1 join query inserting buyers per match."""

    QUERY = """
        for $p in $auction//person
        for $t in $auction//closed_auction
        where $t/buyer/@person = $p/@id
        return insert { <buyer person="{$t/buyer/@person}"
                               itemid="{$t/itemref/@item}" /> }
               into { $purchasers }
    """

    def test_inserts_one_buyer_per_closed_auction(self, e):
        e.execute(self.QUERY)
        buyers = e.execute("count($purchasers/buyer)").first_value()
        closed = e.execute("count($auction//closed_auction)").first_value()
        assert buyers == closed

    def test_buyer_attributes_populated(self, e):
        e.execute(self.QUERY)
        assert e.execute(
            "every $b in $purchasers/buyer satisfies "
            "(exists($b/@person) and exists($b/@itemid))"
        ).first_value() is True


class TestSection22GetItem:
    """get_item with and without logging (paper Section 2.2)."""

    def test_plain_get_item(self, e):
        e.load_module(
            """
            declare function get_item($itemid, $userid) {
              let $item := $auction//item[@id = $itemid]
              return $item
            };
            """
        )
        out = e.execute('get_item("item3", "person1")')
        assert 'id="item3"' in out.serialize()

    def test_logging_get_item(self, e):
        e.load_module(
            """
            declare function get_item($itemid, $userid) {
              let $item := $auction//item[@id = $itemid]
              return (
                let $name := $auction//person[@id = $userid]/name return
                insert { <logentry user="{$name}" itemid="{$itemid}"/> }
                into { $log },
                $item
              )
            };
            """
        )
        out = e.execute('get_item("item3", "person1")')
        assert 'id="item3"' in out.serialize()
        assert e.execute("count($log/logentry)").first_value() == 1
        entry = e.execute("$log/logentry").serialize()
        assert 'itemid="item3"' in entry


class TestSection23LogRollover:
    """The snap + maxlog variant (paper Section 2.3)."""

    MODULE = """
        declare function archivelog($log, $archive) {
          snap insert { <batch>{ $log/logentry }</batch> } into { $archive }
        };
        declare function get_item($itemid, $userid) {
          let $item := $auction//item[@id = $itemid]
          return (
            (let $name := $auction//person[@id = $userid]/name
             return
               (snap insert { <logentry user="{$name}"
                              itemid="{$itemid}"/> }
                     into { $log },
                if (count($log/logentry) >= $maxlog)
                then (archivelog($log, $archive),
                      snap delete { $log/logentry })
                else ())),
            $item
          )
        };
    """

    def test_rollover_happens_exactly_at_threshold(self, e):
        e.bind("maxlog", 2)
        e.load_module(self.MODULE)
        e.execute('get_item("item0", "person0")')
        assert e.execute("count($log/logentry)").first_value() == 1
        e.execute('get_item("item1", "person1")')
        # Second call hits maxlog: archived and cleared.
        assert e.execute("count($log/logentry)").first_value() == 0
        assert e.execute("count($archive/batch/logentry)").first_value() == 2


class TestSection25NextId:
    """The counter and its use in log entries (paper Section 2.5)."""

    def test_counter_module(self, e):
        e.load_module(
            """
            declare variable $d := element counter { 0 };
            declare function nextid() as xs:integer {
              snap { replace { $d/text() } with { $d + 1 },
                     $d }
            };
            """
        )
        values = [e.execute("data(nextid())").strings()[0] for _ in range(3)]
        assert values == ["1", "2", "3"]

    def test_logging_with_ids(self, e):
        e.load_module(
            """
            declare variable $d := element counter { 0 };
            declare function nextid() as xs:integer {
              snap { replace { $d/text() } with { $d + 1 },
                     $d }
            };
            """
        )
        e.execute(
            """
            let $name := $auction//person[@id = "person0"]/name
            return
              snap insert { <logentry id="{nextid()}"
                             user="{$name}"
                             itemid="item0"/> }
                   into { $log }
            """
        )
        assert e.execute("string($log/logentry/@id)").first_value() == "1"


class TestSection34SnapOrdering:
    """The <b/><a/><c/> example (paper Section 3.4)."""

    def test_bac_order(self, e):
        e.bind("x", e.parse_fragment("<x/>"))
        e.execute(
            """snap ordered { insert {<a/>} into {$x},
                              snap { insert {<b/>} into {$x} },
                              insert {<c/>} into {$x} }"""
        )
        assert e.execute("$x").serialize() == "<x><b/><a/><c/></x>"


class TestSection43OptimizedQuery:
    """The Q8 variant, interpreted vs optimized (paper Section 4.3)."""

    QUERY = """
        for $p in $auction//person
        let $a :=
          for $t in $auction//closed_auction
          where $t/buyer/@person = $p/@id
          return (insert { <buyer person="{$t/buyer/@person}"
                                  itemid="{$t/itemref/@item}" /> }
                  into { $purchasers }, $t)
        return <item person="{ $p/name }">{ count($a) }</item>
    """

    def test_row_per_person(self, e):
        out = e.execute(self.QUERY, optimize=True)
        persons = e.execute("count($auction//person)").first_value()
        assert len(out) == persons

    def test_counts_sum_to_closed_auctions(self, e):
        out = e.execute(self.QUERY, optimize=True)
        total = sum(int(item.string_value) for item in out.items)
        closed = e.execute("count($auction//closed_auction)").first_value()
        assert total == closed
