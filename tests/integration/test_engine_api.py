"""Integration tests for the public Engine API."""

import pytest

from repro import Engine, QueryResult, to_sequence
from repro.errors import DynamicError, XQueryError
from repro.xdm.values import AtomicValue


class TestBinding:
    def test_bind_python_values(self):
        e = Engine()
        e.bind("i", 42)
        e.bind("f", 2.5)
        e.bind("s", "text")
        e.bind("b", True)
        e.bind("seq", [1, 2, 3])
        e.bind("none", None)
        assert e.execute("$i + 1").first_value() == 43
        assert e.execute("$f * 2").first_value() == 5.0
        assert e.execute("string-length($s)").first_value() == 4
        assert e.execute("$b").first_value() is True
        assert e.execute("count($seq)").first_value() == 3
        assert e.execute("empty($none)").first_value() is True

    def test_bind_nested_lists_flatten(self):
        assert len(to_sequence([1, [2, 3], []])) == 3

    def test_bind_atomic_value(self):
        e = Engine()
        e.bind("v", AtomicValue.decimal(1.5))
        assert e.execute("$v").first_value() == 1.5

    def test_unsupported_type_rejected(self):
        with pytest.raises(XQueryError):
            to_sequence(object())

    def test_variable_accessor(self):
        e = Engine()
        e.bind("x", 1)
        assert e.variable("x")[0].value == 1


class TestDocuments:
    def test_load_document_binds(self):
        e = Engine()
        doc = e.load_document("d", "<a><b/></a>")
        assert e.execute("count($d//b)").first_value() == 1
        assert doc.children[0].name == "a"

    def test_multiple_documents_one_store(self):
        e = Engine()
        e.load_document("d1", "<a/>")
        e.load_document("d2", "<b/>")
        assert e.execute("count($d1 | $d2)").first_value() == 2

    def test_parse_fragment_parentless(self):
        e = Engine()
        frag = e.parse_fragment("<free/>")
        assert frag.parent is None


class TestQueryResult:
    def test_iteration_and_len(self):
        result = Engine().execute("1 to 3")
        assert len(result) == 3
        assert [av.value for av in result] == [1, 2, 3]
        assert result[0].value == 1

    def test_strings_and_values(self):
        result = Engine().execute("(1, 'a', 2.5)")
        assert result.strings() == ["1", "a", "2.5"]
        assert result.values() == [1, "a", 2.5]

    def test_first_value_empty(self):
        assert Engine().execute("()").first_value() is None

    def test_repr(self):
        assert "QueryResult" in repr(Engine().execute("1"))

    def test_serialize_indent(self):
        e = Engine()
        out = e.execute("<a><b/></a>").serialize(indent=True)
        assert "\n" in out


class TestModules:
    def test_module_with_body_returns_result(self):
        e = Engine()
        result = e.load_module("declare variable $v := 6; $v * 7")
        assert isinstance(result, QueryResult)
        assert result.first_value() == 42

    def test_module_without_body_returns_none(self):
        e = Engine()
        assert e.load_module("declare function f() { 1 };") is None

    def test_variable_initializers_may_update(self):
        e = Engine()
        e.bind("log", e.parse_fragment("<log/>"))
        e.load_module(
            "declare variable $setup := "
            "(insert { <ready/> } into { $log }, 1);"
        )
        # The module variable's implicit snap applied the insert.
        assert e.execute("count($log/ready)").first_value() == 1

    def test_external_variable_must_be_bound(self):
        e = Engine()
        with pytest.raises(DynamicError):
            e.load_module("declare variable $missing external; $missing")

    def test_external_variable_bound(self):
        e = Engine()
        e.bind("present", 5)
        result = e.load_module(
            "declare variable $present external; $present"
        )
        assert result.first_value() == 5

    def test_functions_callable_across_executes(self):
        e = Engine()
        e.load_module("declare function sq($x) { $x * $x };")
        assert e.execute("sq(9)").first_value() == 81

    def test_prolog_in_execute(self):
        e = Engine()
        out = e.execute("declare variable $k := 4; $k * $k")
        assert out.first_value() == 16


class TestGC:
    def test_gc_reclaims_construction_garbage(self):
        e = Engine()
        e.load_document("d", "<a/>")
        e.execute("for $i in 1 to 50 return <junk n='{ $i }'/>")
        before = len(e.store)
        reclaimed = e.gc()
        assert reclaimed > 0
        assert len(e.store) < before
        # The bound document survives.
        assert e.execute("count($d)").first_value() == 1

    def test_gc_keeps_detached_bound_nodes(self):
        e = Engine()
        e.load_document("d", "<a><b/></a>")
        e.execute(
            "declare variable $b := exactly-one($d/a/b); snap delete { $b }"
        )
        # $b was bound via execute's prolog... bind it explicitly instead:
        b = e.execute("($d/a, $d)").items  # dummy to ensure store access
        e.bind("kept", e.parse_fragment("<kept/>"))
        e.gc()
        assert e.execute("count($kept)").first_value() == 1


class TestTraceSink:
    def test_custom_sink(self):
        seen = []
        e = Engine(trace_sink=seen.append)
        e.execute("trace(1, 'lbl')")
        assert seen == ["lbl: 1"]
