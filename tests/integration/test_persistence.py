"""Tests for engine-state persistence (save/load round trips)."""

import pytest

from repro import Engine
from repro.errors import XQueryError
from repro.persist import load_engine, save_engine


@pytest.fixture
def db_path(tmp_path):
    return str(tmp_path / "auction.db.json")


def build_engine() -> Engine:
    engine = Engine()
    engine.load_document("doc", "<shop><item id='1'>tea</item></shop>")
    engine.bind("log", engine.parse_fragment("<log/>"))
    engine.bind("threshold", 5)
    engine.bind("label", "prod")
    engine.register_module(
        "urn:lib",
        'module namespace lib = "urn:lib";'
        "declare function lib:tag() { 'v1' };",
    )
    return engine


class TestRoundTrip:
    def test_documents_survive(self, db_path):
        save_engine(build_engine(), db_path)
        engine = load_engine(db_path)
        assert engine.execute("string($doc//item)").first_value() == "tea"
        assert engine.execute("doc-available('doc')").first_value() is True

    def test_atomic_bindings_survive(self, db_path):
        save_engine(build_engine(), db_path)
        engine = load_engine(db_path)
        assert engine.execute("$threshold + 1").first_value() == 6
        assert engine.execute("$label").first_value() == "prod"

    def test_updates_before_save_survive(self, db_path):
        original = build_engine()
        original.execute("snap insert { <item id='2'>jam</item> } into { $doc/shop }")
        save_engine(original, db_path)
        engine = load_engine(db_path)
        assert engine.execute("count($doc//item)").first_value() == 2

    def test_detached_subtrees_survive(self, db_path):
        original = build_engine()
        original.execute(
            "declare variable $orphan := exactly-one($doc//item);"
            "snap delete { $orphan }"
        )
        save_engine(original, db_path)
        engine = load_engine(db_path)
        # $orphan is still bound, still detached, still queryable.
        assert engine.execute("string($orphan)").first_value() == "tea"
        assert engine.execute("empty($orphan/..)").first_value() is True
        assert engine.execute("count($doc//item)").first_value() == 0

    def test_registered_modules_survive(self, db_path):
        save_engine(build_engine(), db_path)
        engine = load_engine(db_path)
        out = engine.execute('import module namespace l = "urn:lib"; l:tag()')
        assert out.first_value() == "v1"

    def test_updates_after_load_work(self, db_path):
        save_engine(build_engine(), db_path)
        engine = load_engine(db_path)
        engine.execute("snap insert { <entry/> } into { $log }")
        assert engine.execute("count($log/entry)").first_value() == 1
        engine.store.check_invariants()

    def test_node_ids_do_not_collide_after_load(self, db_path):
        save_engine(build_engine(), db_path)
        engine = load_engine(db_path)
        before = set(engine.store.node_ids())
        engine.execute("<fresh/>")
        new = set(engine.store.node_ids()) - before
        assert new and all(nid not in before for nid in new)

    def test_settings_survive(self, db_path):
        original = Engine(
            default_semantics="conflict-detection", atomic_snaps=True
        )
        save_engine(original, db_path)
        engine = load_engine(db_path)
        assert engine.default_semantics.value == "conflict-detection"
        assert engine.evaluator.atomic_snaps is True

    def test_counter_state_survives(self, db_path):
        original = build_engine()
        original.load_module(
            "declare variable $d := element counter { 0 };"
            "declare function nextid() {"
            " snap { replace { $d/text() } with { $d + 1 }, $d } };"
        )
        original.execute("nextid()")
        original.execute("nextid()")
        save_engine(original, db_path)
        engine = load_engine(db_path)
        # The counter element is persisted with its state; the function
        # must be re-declared (functions are code, not data).
        engine.load_module(
            "declare function nextid() {"
            " snap { replace { $d/text() } with { $d + 1 }, $d } };"
        )
        assert engine.execute("data(nextid())").strings() == ["3"]


class TestValueValidation:
    """Typed validation of persisted atomic values (no silent coercion)."""

    def _corrupt(self, db_path, tmp_path, name, entry):
        import json

        with open(db_path, encoding="utf-8") as handle:
            payload = json.load(handle)
        payload["globals"][name] = [entry]
        target = tmp_path / "corrupt.json"
        target.write_text(json.dumps(payload))
        return str(target)

    def test_booleans_round_trip_as_booleans(self, db_path):
        original = Engine()
        original.bind("yes", True)
        original.bind("no", False)
        save_engine(original, db_path)
        engine = load_engine(db_path)
        assert engine.execute("$yes").first_value() is True
        assert engine.execute("$no").first_value() is False
        assert engine.execute("not($no)").first_value() is True

    def test_truthy_string_does_not_become_true(self, db_path, tmp_path):
        original = Engine()
        original.bind("flag", True)
        save_engine(original, db_path)
        # A corrupt dump stores the *string* "true" under a boolean tag;
        # loading must refuse, not round it into a boolean.
        path = self._corrupt(db_path, tmp_path, "flag", ["boolean", "true"])
        with pytest.raises(XQueryError, match="boolean"):
            load_engine(path)

    @pytest.mark.parametrize(
        "entry",
        [
            ["integer", "7"],  # string where an int belongs
            ["integer", True],  # bool is not an integer
            ["double", "fast"],  # non-numeric double
            ["decimal", 1.5],  # decimals persist as strings
            ["decimal", "not-a-number"],
            ["string", 7],
            ["node", True],  # bool is not a node id
            ["node", "12"],
            ["wat", 1],  # unknown tag
            ["integer"],  # wrong arity
            "integer",  # wrong shape
        ],
    )
    def test_malformed_entries_fail_loudly(self, db_path, tmp_path, entry):
        original = Engine()
        original.bind("value", 1)
        save_engine(original, db_path)
        path = self._corrupt(db_path, tmp_path, "value", entry)
        with pytest.raises(XQueryError):
            load_engine(path)


class TestConcurrentSave:
    def test_save_engine_is_consistent_under_concurrent_writes(
        self, tmp_path
    ):
        """save_engine takes the store's write lock, so a dump taken while
        a ConcurrentExecutor is mid-burst is a consistent point-in-time
        snapshot — it always loads and passes the store invariants."""
        from repro.concurrent.executor import ConcurrentExecutor

        engine = Engine()
        engine.load_document("doc", "<log/>")
        executor = ConcurrentExecutor(engine, workers=4, queue_size=128)
        try:
            futures = [
                executor.submit(
                    'snap { insert { <e n="{$n}"/> } into { $doc/log } }',
                    bindings={"n": n},
                )
                for n in range(60)
            ]
            snapshots = []
            for index in range(6):
                path = str(tmp_path / f"snap-{index}.json")
                save_engine(engine, path)
                snapshots.append(path)
            for future in futures:
                future.result(timeout=30)
        finally:
            executor.shutdown()
        counts = []
        for path in snapshots:
            loaded = load_engine(path)  # load_engine checks invariants
            counts.append(
                loaded.execute("count($doc/log/e)").first_value()
            )
        assert all(0 <= count <= 60 for count in counts)
        final = str(tmp_path / "final.json")
        save_engine(engine, final)
        assert load_engine(final).execute(
            "count($doc/log/e)"
        ).first_value() == 60


class TestFormatValidation:
    def test_rejects_wrong_format(self, tmp_path):
        path = tmp_path / "bogus.json"
        path.write_text('{"format": "something-else", "version": 1}')
        with pytest.raises(XQueryError):
            load_engine(str(path))

    def test_rejects_wrong_version(self, tmp_path):
        path = tmp_path / "future.json"
        path.write_text(
            '{"format": "repro-xquerybang-db", "version": 999}'
        )
        with pytest.raises(XQueryError):
            load_engine(str(path))

    def test_atomic_write(self, db_path, tmp_path):
        save_engine(build_engine(), db_path)
        import os

        assert not os.path.exists(db_path + ".tmp")
