"""A complete mini-application written in XQuery!: an order-processing
system exercising most language features together — typeswitch, counters,
snap-visible state machines, transactions, conflict-detection, and the
optimizer — as a downstream user of the library would."""

import pytest

from repro import Engine
from repro.errors import ConflictError, DynamicError

SHOP_MODULE = """
declare variable $seq := element seq { 0 };

declare function next-order-id() as xs:integer {
  snap { replace { $seq/text() } with { $seq + 1 }, $seq }
};

declare function stock-of($sku) {
  number(exactly-one($inventory/item[@sku = $sku])/@stock)
};

declare function place-order($sku, $qty) {
  if (stock-of($sku) >= $qty)
  then (
    snap {
      replace { exactly-one($inventory/item[@sku = $sku])/@stock }
              with { attribute stock { stock-of($sku) - $qty } },
      insert { <order id="{next-order-id()}" sku="{$sku}" qty="{$qty}"
                      status="placed"/> }
             into { $orders }
    },
    exactly-one($orders/order[last()])
  )
  else (
    snap insert { <rejected sku="{$sku}" qty="{$qty}"/> } into { $audit },
    ()
  )
};

declare function ship-order($id) {
  let $order := exactly-one($orders/order[@id = $id])
  return typeswitch ($order/@status)
    case $s as attribute() return
      if ($s = "placed")
      then snap replace { $s } with { attribute status { "shipped" } }
      else error(concat("order ", $id, " is not placeable: ", $s))
    default return error("no status")
};

declare function revenue($prices) {
  sum(for $o in $orders/order[@status = "shipped"]
      return number($prices/price[@sku = $o/@sku]/@amount) * number($o/@qty))
};
"""


@pytest.fixture
def shop() -> Engine:
    engine = Engine()
    engine.bind(
        "inventory",
        engine.parse_fragment(
            '<inventory><item sku="apple" stock="10"/>'
            '<item sku="pear" stock="2"/></inventory>'
        ),
    )
    engine.bind("orders", engine.parse_fragment("<orders/>"))
    engine.bind("audit", engine.parse_fragment("<audit/>"))
    engine.bind(
        "prices",
        engine.parse_fragment(
            '<prices><price sku="apple" amount="2"/>'
            '<price sku="pear" amount="5"/></prices>'
        ),
    )
    engine.load_module(SHOP_MODULE)
    return engine


class TestOrderFlow:
    def test_place_order_decrements_stock(self, shop):
        order = shop.execute('place-order("apple", 3)')
        assert 'status="placed"' in order.serialize()
        assert shop.execute('stock-of("apple")').first_value() == 7.0

    def test_order_ids_sequential(self, shop):
        shop.execute('place-order("apple", 1)')
        shop.execute('place-order("pear", 1)')
        ids = shop.execute("$orders/order/@id").strings()
        assert ids == ["1", "2"]

    def test_insufficient_stock_rejected(self, shop):
        result = shop.execute('place-order("pear", 99)')
        assert len(result) == 0
        assert shop.execute("count($audit/rejected)").first_value() == 1
        assert shop.execute('stock-of("pear")').first_value() == 2.0

    def test_ship_and_revenue(self, shop):
        shop.execute('place-order("apple", 3)')
        shop.execute('place-order("pear", 2)')
        shop.execute("ship-order(1)")
        shop.execute("ship-order(2)")
        # 3 apples * 2 + 2 pears * 5 = 16
        assert shop.execute("revenue($prices)").first_value() == 16.0

    def test_double_ship_errors(self, shop):
        shop.execute('place-order("apple", 1)')
        shop.execute("ship-order(1)")
        with pytest.raises(DynamicError):
            shop.execute("ship-order(1)")

    def test_transactional_batch(self, shop):
        # Legacy shim: still works, now with a DeprecationWarning.
        with pytest.raises(DynamicError):
            with pytest.warns(DeprecationWarning, match="session"):
                with shop.transaction():
                    shop.execute('place-order("apple", 5)')
                    shop.execute('place-order("pear", 99)')
                    # Reject the whole batch if anything was rejected:
                    shop.execute(
                        'if (exists($audit/rejected)) then error("batch") '
                        "else ()"
                    )
        # Everything rolled back, including the first (valid) order.
        assert shop.execute("count($orders/order)").first_value() == 0
        assert shop.execute('stock-of("apple")').first_value() == 10.0

    def test_transactional_batch_session_api(self, shop):
        # The same batch through the Session API: the rejected batch
        # rolls back without ever touching the live store.
        session = shop.session()
        with pytest.raises(DynamicError):
            with session.transaction() as txn:
                txn.execute('place-order("apple", 5)')
                txn.execute('place-order("pear", 99)')
                txn.execute(
                    'if (exists($audit/rejected)) then error("batch") '
                    "else ()"
                )
        session.close()
        assert shop.execute("count($orders/order)").first_value() == 0
        assert shop.execute('stock-of("apple")').first_value() == 10.0

    def test_conflict_detection_on_independent_updates(self, shop):
        shop.execute('place-order("apple", 1)')
        shop.execute('place-order("pear", 1)')
        # Marking two different orders under conflict-detection is fine...
        shop.execute(
            """snap conflict-detection {
                 rename { $orders/order[@id = "1"] } to { "archived" },
                 rename { $orders/order[@id = "2"] } to { "archived" } }"""
        )
        assert shop.execute("count($orders/archived)").first_value() == 2
        # ...marking the same one twice is rejected.
        with pytest.raises(ConflictError):
            shop.execute(
                """snap conflict-detection {
                     rename { ($orders/archived)[1] } to { "a" },
                     rename { ($orders/archived)[1] } to { "b" } }"""
            )

    def test_report_query_optimizes(self, shop):
        for sku, qty in (("apple", 2), ("apple", 1), ("pear", 1)):
            shop.execute(f'place-order("{sku}", {qty})')
        report_query = """
            for $i in $inventory/item
            let $sold := for $o in $orders/order
                         where $o/@sku = $i/@sku
                         return $o
            return <line sku="{$i/@sku}" orders="{count($sold)}"/>
        """
        naive = shop.execute(report_query, optimize=False).serialize()
        optimized = shop.execute(report_query, optimize=True).serialize()
        assert naive == optimized
        assert 'orders="2"' in naive
        from repro.algebra.plan import plan_operators

        assert "GroupBy" in plan_operators(shop.compile(report_query))
