"""The prepared-query subsystem: cache behaviour and parameter binding.

Covers the edges the unit of work is judged on: LRU eviction, cache
keying, invalidation on module/function changes, transparent routing of
``Engine.execute`` through the cache, per-call prolog semantics, and the
injection-safety of binding parameters as data.
"""

import pytest

from repro import Engine, PreparedQuery
from repro.errors import DynamicError

DOC = (
    '<inventory><item id="a" price="10"/><item id="b" price="20"/>'
    '<item id="c" price="30"/></inventory>'
)


def make_engine(**kwargs) -> Engine:
    engine = Engine(**kwargs)
    engine.load_document("doc", DOC)
    return engine


class TestCacheRouting:
    def test_execute_routes_through_cache(self):
        engine = make_engine()
        assert engine.execute("count($doc//item)").first_value() == 3
        assert engine.prepared_cache.stats.misses == 1
        assert engine.execute("count($doc//item)").first_value() == 3
        assert engine.prepared_cache.stats.hits == 1
        assert engine.prepared_cache.stats.misses == 1

    def test_prepare_returns_same_object_on_hit(self):
        engine = make_engine()
        first = engine.prepare("1 + 1")
        second = engine.prepare("1 + 1")
        assert first is second
        assert isinstance(first, PreparedQuery)

    def test_optimize_flag_is_part_of_the_key(self):
        engine = make_engine()
        plain = engine.prepare("count($doc//item)")
        optimized = engine.prepare("count($doc//item)", optimize=True)
        assert plain is not optimized
        assert len(engine.prepared_cache) == 2
        assert plain.execute().first_value() == 3
        assert optimized.execute().first_value() == 3

    def test_lru_eviction_drops_least_recent(self):
        engine = make_engine(prepared_cache_size=2)
        engine.prepare("1")
        engine.prepare("2")
        engine.prepare("1")  # refresh: "2" is now least recent
        engine.prepare("3")  # evicts "2"
        kept = {key[0] for key in engine.prepared_cache.keys()}
        assert kept == {"1", "3"}
        assert engine.prepared_cache.stats.evictions == 1

    def test_evicted_query_still_executes(self):
        engine = make_engine(prepared_cache_size=1)
        first = engine.prepare("count($doc//item)")
        engine.prepare("1 + 1")  # evicts the first entry
        assert first.execute().first_value() == 3
        # Re-preparing is a miss that produces a fresh object.
        assert engine.prepare("count($doc//item)") is not first


class TestInvalidation:
    def test_load_module_clears_cache(self):
        engine = make_engine()
        engine.prepare("count($doc//item)")
        assert len(engine.prepared_cache) == 1
        engine.load_module("declare function one() { 1 }; ()")
        assert len(engine.prepared_cache) == 0
        assert engine.prepared_cache.stats.invalidations >= 1

    def test_register_module_clears_cache(self):
        engine = make_engine()
        engine.prepare("1")
        engine.register_module("http://example.org/m", "module m; ()")
        assert len(engine.prepared_cache) == 0

    def test_function_redefinition_invalidates_entry(self):
        engine = make_engine()
        assert engine.execute(
            "declare function f() { 1 }; f()"
        ).first_value() == 1
        # A different program redefines f(): its cached sibling predates
        # the registry change and must be re-prepared, not reused.
        assert engine.execute(
            "declare function f() { 2 }; f()"
        ).first_value() == 2
        assert engine.execute(
            "declare function f() { 1 }; f()"
        ).first_value() == 1

    def test_same_program_repeats_without_invalidation(self):
        engine = make_engine()
        text = "declare function g() { 41 }; g() + 1"
        assert engine.execute(text).first_value() == 42
        assert engine.execute(text).first_value() == 42
        assert engine.prepared_cache.stats.hits == 1


class TestParameterBinding:
    def test_bindings_are_scoped_to_the_call(self):
        engine = make_engine()
        prepared = engine.prepare('$doc//item[@id = $which]/@price/data(.)')
        assert prepared.execute(bindings={"which": "b"}).first_value() == "20"
        # The binding does not leak into engine globals.
        with pytest.raises(DynamicError, match=r"\$which is not bound"):
            engine.variable("which")

    def test_bindings_shadow_and_restore_globals(self):
        engine = make_engine()
        engine.bind("which", "a")
        prepared = engine.prepare('$doc//item[@id = $which]/@price/data(.)')
        assert prepared.execute(bindings={"which": "c"}).first_value() == "30"
        (restored,) = engine.variable("which")
        assert restored.value == "a"

    def test_unbound_external_variable_raises(self):
        engine = make_engine()
        prepared = engine.prepare(
            "declare variable $limit external; count($doc//item) < $limit"
        )
        assert prepared.external_variables == ("limit",)
        with pytest.raises(DynamicError, match=r"\$limit"):
            prepared.execute()
        assert prepared.execute(bindings={"limit": 5}).first_value() is True

    def test_var_decl_initializers_rerun_per_call(self):
        engine = make_engine()
        engine.bind("sink", engine.parse_fragment("<sink/>"))
        prepared = engine.prepare(
            "declare variable $n := count($sink/t);"
            "insert { <t/> } into { $sink }, $n"
        )
        assert prepared.execute().first_value() == 0
        # The initializer is dynamic prolog: it must see the first call's
        # insert on the second run, exactly like a fresh execute.
        assert prepared.execute().first_value() == 1

    def test_binding_is_data_not_syntax(self):
        """The injection probe: a value full of XQuery syntax stays inert."""
        engine = make_engine()
        engine.bind("sink", engine.parse_fragment("<sink/>"))
        hostile = '"] , delete { $doc//item } , $doc//item["'
        prepared = engine.prepare('$doc//item[@id = $which]')
        assert prepared.execute(bindings={"which": hostile}).items == []
        # Nothing was deleted; the document is intact.
        assert engine.execute("count($doc//item)").first_value() == 3

    def test_functions_see_call_bindings(self):
        engine = make_engine()
        engine.load_module(
            "declare function lookup() { $doc//item[@id = $which] }; ()"
        )
        prepared = engine.prepare("lookup()/@price/data(.)")
        assert prepared.execute(bindings={"which": "a"}).first_value() == "10"
        assert prepared.execute(bindings={"which": "c"}).first_value() == "30"
