"""Unit tests for the XML parser."""

import pytest

from repro.errors import XMLParseError
from repro.xdm.store import NodeKind
from repro.xmlio import parse_document, parse_fragment, serialize


class TestBasicParsing:
    def test_document_node(self):
        doc = parse_document("<a/>")
        assert doc.kind is NodeKind.DOCUMENT
        assert doc.children[0].name == "a"

    def test_xml_declaration_skipped(self):
        doc = parse_document('<?xml version="1.0" encoding="UTF-8"?><a/>')
        assert doc.children[0].name == "a"

    def test_nested_elements(self):
        doc = parse_document("<a><b><c/></b></a>")
        a = doc.children[0]
        assert a.children[0].children[0].name == "c"

    def test_attributes_single_and_double_quotes(self):
        root = parse_fragment("""<a x="1" y='2'/>""")
        assert root.attribute("x").string_value == "1"
        assert root.attribute("y").string_value == "2"

    def test_text_content(self):
        root = parse_fragment("<a>hello world</a>")
        assert root.string_value == "hello world"

    def test_mixed_content(self):
        root = parse_fragment("<a>pre<b>mid</b>post</a>")
        kinds = [c.kind for c in root.children]
        assert kinds == [NodeKind.TEXT, NodeKind.ELEMENT, NodeKind.TEXT]
        assert root.string_value == "premidpost"

    def test_self_closing(self):
        root = parse_fragment("<a><b/><c/></a>")
        assert [c.name for c in root.children] == ["b", "c"]

    def test_prefixed_names_pass_through(self):
        root = parse_fragment('<ns:a ns:x="1"/>')
        assert root.name == "ns:a"
        assert root.attribute("ns:x").string_value == "1"


class TestEntitiesAndSpecials:
    def test_predefined_entities(self):
        root = parse_fragment("<a>&lt;&gt;&amp;&apos;&quot;</a>")
        assert root.string_value == "<>&'\""

    def test_character_references(self):
        root = parse_fragment("<a>&#65;&#x42;</a>")
        assert root.string_value == "AB"

    def test_entities_in_attributes(self):
        root = parse_fragment('<a x="&amp;&#33;"/>')
        assert root.attribute("x").string_value == "&!"

    def test_unknown_entity_rejected(self):
        with pytest.raises(XMLParseError):
            parse_fragment("<a>&nope;</a>")

    def test_cdata(self):
        root = parse_fragment("<a><![CDATA[<not> & parsed]]></a>")
        assert root.string_value == "<not> & parsed"

    def test_comment(self):
        root = parse_fragment("<a><!-- a comment --></a>")
        [comment] = root.children
        assert comment.kind is NodeKind.COMMENT
        assert comment.string_value == " a comment "

    def test_processing_instruction(self):
        root = parse_fragment("<a><?target some data?></a>")
        [pi] = root.children
        assert pi.kind is NodeKind.PROCESSING_INSTRUCTION
        assert pi.name == "target"
        assert pi.string_value == "some data"


class TestErrors:
    @pytest.mark.parametrize(
        "text",
        [
            "<a>",                      # unterminated
            "<a></b>",                  # mismatched end tag
            "<a x=1/>",                 # unquoted attribute
            '<a x="1" x="2"/>',         # duplicate attribute
            "<a/><b/>",                 # two roots (fragment)
            "",                         # nothing
            "just text",                # no element
        ],
    )
    def test_rejected(self, text):
        with pytest.raises(XMLParseError):
            parse_fragment(text)

    def test_dtd_rejected(self):
        with pytest.raises(XMLParseError):
            parse_document("<!DOCTYPE a><a/>")

    def test_content_after_root(self):
        with pytest.raises(XMLParseError):
            parse_document("<a/>trailing")

    def test_error_carries_location(self):
        try:
            parse_document("<a>\n  <b></c>\n</a>")
        except XMLParseError as error:
            assert error.line == 2
        else:
            pytest.fail("expected XMLParseError")


class TestRoundTrip:
    @pytest.mark.parametrize(
        "text",
        [
            "<a/>",
            '<a x="1"/>',
            "<a>text</a>",
            "<a><b>x</b><c/>tail</a>",
            "<a>&lt;escaped&gt; &amp; fine</a>",
            '<a x="&quot;quoted&quot;"/>',
            "<a><!--note--><?pi data?></a>",
        ],
    )
    def test_parse_serialize_parse(self, text):
        once = serialize(parse_fragment(text))
        twice = serialize(parse_fragment(once))
        assert once == twice

    def test_document_roundtrip_preserves_structure(self):
        text = '<?xml version="1.0"?><r><a i="1">x</a><b/></r>'
        doc = parse_document(text)
        again = parse_document(serialize(doc))
        from repro.xdm.compare import deep_equal

        assert deep_equal([doc.children[0]], [again.children[0]])

    def test_misc_around_root(self):
        doc = parse_document("<!--before--><a/><!--after-->")
        kinds = [c.kind for c in doc.children]
        assert kinds == [NodeKind.COMMENT, NodeKind.ELEMENT, NodeKind.COMMENT]
