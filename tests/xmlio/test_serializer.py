"""Unit tests for the XML serializer."""

import pytest

from repro.errors import SerializationError
from repro.xdm.store import Store
from repro.xdm.nodes import Node
from repro.xdm.values import AtomicValue
from repro.xmlio import parse_fragment, serialize, serialize_sequence


class TestSerialize:
    def test_empty_element_self_closes(self):
        assert serialize(parse_fragment("<a></a>")) == "<a/>"

    def test_attribute_escaping(self):
        store = Store()
        e = store.create_element("a")
        store.set_attribute(e, store.create_attribute("x", 'say "hi" & <go>'))
        assert (
            serialize(Node(store, e))
            == '<a x="say &quot;hi&quot; &amp; &lt;go&gt;"/>'
        )

    def test_text_escaping(self):
        store = Store()
        e = store.create_element("a")
        store.append_child(e, store.create_text("1 < 2 & 3 > 2"))
        assert serialize(Node(store, e)) == "<a>1 &lt; 2 &amp; 3 &gt; 2</a>"

    def test_comment_and_pi(self):
        assert serialize(parse_fragment("<a><!--c--><?p d?></a>")) == (
            "<a><!--c--><?p d?></a>"
        )

    def test_free_attribute_rejected(self):
        store = Store()
        attr = store.create_attribute("x", "1")
        with pytest.raises(SerializationError):
            serialize(Node(store, attr))

    def test_indent_elements_only(self):
        out = serialize(parse_fragment("<a><b/><c/></a>"), indent=True)
        assert out == "<a>\n  <b/>\n  <c/>\n</a>"

    def test_indent_preserves_mixed_content(self):
        out = serialize(parse_fragment("<a>x<b/>y</a>"), indent=True)
        assert out == "<a>x<b/>y</a>"


class TestSerializeSequence:
    def test_atomics_space_separated(self):
        seq = [AtomicValue.integer(1), AtomicValue.integer(2)]
        assert serialize_sequence(seq) == "1 2"

    def test_node_then_atomic_no_space(self):
        node = parse_fragment("<a/>")
        seq = [node, AtomicValue.integer(1)]
        assert serialize_sequence(seq) == "<a/>1"

    def test_atomic_escaping(self):
        assert serialize_sequence([AtomicValue.string("a<b&c")]) == "a&lt;b&amp;c"

    def test_empty(self):
        assert serialize_sequence([]) == ""
