"""The value-index manager: lazy build, O(|op|) maintenance, probe
supersets, and the stale-index regression the ``_touch`` hook guards
against."""

import pytest

from repro.engine import Engine
from repro.errors import StoreError
from repro.index.manager import IndexManager, token_matcher, tokenize
from repro.xdm import NodeKind, Store


def build_doc(store):
    """<doc><a k="1">hello world</a><b k="2">goodbye</b></doc>"""
    root = store.create_element("doc")
    a = store.create_element("a")
    store.set_attribute(a, store.create_attribute("k", "1"))
    ta = store.create_text("hello world")
    store.append_child(a, ta)
    b = store.create_element("b")
    store.set_attribute(b, store.create_attribute("k", "2"))
    tb = store.create_text("goodbye")
    store.append_child(b, tb)
    store.append_child(root, a)
    store.append_child(root, b)
    return root, a, b, ta, tb


class TestTokenMatcher:
    def test_single_token_needle_matches_containing_token(self):
        matcher = token_matcher("ell")
        assert matcher("hello")
        assert not matcher("world")

    def test_empty_and_leading_whitespace_needles_unanchorable(self):
        assert token_matcher("") is None
        assert token_matcher(" x") is None
        assert token_matcher("\tx") is None

    def test_multi_token_needle_matches_first_token_suffix(self):
        # needle "lo wor" inside "hello world": the holding token of the
        # occurrence start is "hello", which ends with "lo".
        matcher = token_matcher("lo wor")
        assert matcher("hello")
        assert not matcher("world" + "x")

    def test_overlap_catches_tokens_shorter_than_first_word(self):
        # Token "ab" is shorter than first needle word "abc" but overlaps
        # its prefix — the occurrence can start inside "ab" and continue
        # in an adjacent text node.
        matcher = token_matcher("abc")
        assert matcher("ab")
        assert matcher("a")
        assert not matcher("c")

    def test_tokenize_is_whitespace_split(self):
        assert tokenize("  a\tb \n c ") == ["a", "b", "c"]


class TestLazyBuildAndMaintenance:
    def test_nothing_built_until_first_probe(self):
        store = Store()
        build_doc(store)
        assert not store.indexes.built
        store.attr_eq_probe("k", "1")
        assert store.indexes.built
        assert store.indexes.rebuilds == 1

    def test_attr_probe_finds_attribute_nodes(self):
        store = Store()
        root, a, b, _, _ = build_doc(store)
        (aid,) = store.attr_eq_probe("k", "1")
        assert store.kind(aid) is NodeKind.ATTRIBUTE
        assert store.parent(aid) == a

    def test_token_probe_is_a_verified_superset(self):
        store = Store()
        root, a, b, ta, tb = build_doc(store)
        tids = store.token_probe("hello")
        assert ta in tids
        assert tb not in tids

    def test_token_probe_spanning_text_boundary(self):
        # <p><x>ab</x><y>cd</y></p>: string value "abcd" contains "bc",
        # but no single text node does — the overlap predicate must keep
        # the first text node as a candidate.
        store = Store()
        p = store.create_element("p")
        x = store.create_element("x")
        tx = store.create_text("ab")
        store.append_child(x, tx)
        y = store.create_element("y")
        ty = store.create_text("cd")
        store.append_child(y, ty)
        store.append_child(p, x)
        store.append_child(p, y)
        tids = store.token_probe("bc")
        assert tx in tids

    def test_set_value_moves_postings(self):
        store = Store()
        root, a, b, ta, tb = build_doc(store)
        store.token_probe("hello")  # build
        store.set_value(ta, "changed entirely")
        assert ta not in store.token_probe("hello")
        assert ta in store.token_probe("changed")
        store.indexes.verify()

    def test_attribute_set_value_and_rename_maintained(self):
        store = Store()
        root, a, b, _, _ = build_doc(store)
        (aid,) = store.attr_eq_probe("k", "1")
        store.set_value(aid, "9")
        assert store.attr_eq_probe("k", "1") == ()
        assert store.attr_eq_probe("k", "9") == (aid,)
        store.rename(aid, "kk")
        assert store.attr_eq_probe("k", "9") == ()
        assert store.attr_eq_probe("kk", "9") == (aid,)
        store.indexes.verify()

    def test_gc_frees_postings(self):
        store = Store()
        root, a, b, ta, tb = build_doc(store)
        store.token_probe("hello")  # build
        store.detach(a)
        store.gc([root])
        assert ta not in store.token_probe("hello")
        store.indexes.verify()

    def test_maintenance_is_counted(self):
        store = Store()
        root, a, b, ta, _ = build_doc(store)
        store.token_probe("hello")
        before = store.indexes.maintained
        store.set_value(ta, "x")
        assert store.indexes.maintained > before

    def test_verify_detects_corruption(self):
        store = Store()
        build_doc(store)
        store.token_probe("hello")
        store.indexes.token_index["bogus"] = {999}
        with pytest.raises(StoreError):
            store.indexes.verify()


class TestStaleIndexRegression:
    """Satellite: an in-place rename/replace through the update language
    must never leave stale postings behind, and a full store reload
    (which bypasses per-op hooks via ``_touch()``) must invalidate."""

    DOC = (
        "<inventory>"
        "<item id='a'><name>widget</name></item>"
        "<item id='b'><name>sprocket</name></item>"
        "</inventory>"
    )

    def fresh(self):
        engine = Engine()
        engine.load_document("doc", self.DOC)
        return engine

    def test_replace_value_via_update_language(self):
        engine = self.fresh()
        store = engine.store
        # Build, then mutate through a snap.
        assert len(store.token_probe("widget")) == 1
        engine.execute(
            "snap { replace value of { $doc//item[@id='a']/name } "
            "with { 'gadget' } }"
        )
        assert len(store.token_probe("gadget")) == 1
        # Replacing an element's value detaches the old text node; once
        # it is reclaimed its posting must go with it.
        engine.gc()
        assert store.token_probe("widget") == ()
        store.indexes.verify()

    def test_rename_via_update_language(self):
        engine = self.fresh()
        store = engine.store
        (aid,) = store.attr_eq_probe("id", "a")
        engine.execute(
            "snap { rename { $doc//item[@id='a']/@id } to { 'ident' } }"
        )
        assert store.attr_eq_probe("id", "a") == ()
        assert store.attr_eq_probe("ident", "a") == (aid,)
        store.indexes.verify()

    def test_touch_invalidates_whole_index(self):
        engine = self.fresh()
        store = engine.store
        store.token_probe("widget")
        assert store.indexes.built
        store._touch()  # restore/reload path: no per-op hooks fired
        assert not store.indexes.built
        # The next probe rebuilds from the current records.
        assert len(store.token_probe("widget")) == 1
        assert store.indexes.rebuilds == 2

    def test_check_invariants_covers_indexes(self):
        engine = self.fresh()
        engine.store.token_probe("widget")
        engine.store.check_invariants()


class TestCounters:
    def test_probe_and_hit_counters(self):
        store = Store()
        build_doc(store)
        store.attr_eq_probe("k", "1")
        store.token_probe("hello")
        counters = store.indexes.counters()
        assert counters["probes"] == 2
        assert counters["hits"] >= 2
        assert counters["rebuilds"] == 1
        assert counters["rebuild_ms"] >= 0

    def test_index_counters_flow_into_query_stats(self):
        engine = Engine()
        engine.load_document(
            "doc", "<doc><p id='x'>alpha</p><p id='y'>beta</p></doc>"
        )
        result = engine.execute(
            "$doc//p[@id = 'x']", collect_stats=True
        )
        assert result.stats.counters.get("index.probes", 0) >= 1
        assert "index.rebuilds" in result.stats.counters


class TestSnapshotProbes:
    def test_snapshot_reader_never_builds(self):
        store = Store()
        build_doc(store)
        snap = store.begin_snapshot()
        assert snap.attr_eq_probe("k", "1") is None
        assert snap.token_probe("hello") is None
        assert not store.indexes.built
        store.release_snapshot(snap)

    def test_snapshot_sees_pre_mutation_postings(self):
        store = Store()
        root, a, b, ta, _ = build_doc(store)
        store.token_probe("hello")  # build on the live store
        snap = store.begin_snapshot()
        store.set_value(ta, "changed")
        # Live index moved on; the snapshot probe recovers the pre-image.
        assert ta not in store.token_probe("hello")
        assert ta in snap.token_probe("hello")
        assert ta not in snap.token_probe("changed")
        store.release_snapshot(snap)

    def test_snapshot_attr_probe_filters_post_ceiling_nodes(self):
        store = Store()
        root, a, b, _, _ = build_doc(store)
        store.attr_eq_probe("k", "1")
        snap = store.begin_snapshot()
        c = store.create_element("c")
        store.set_attribute(c, store.create_attribute("k", "1"))
        store.append_child(root, c)
        live = store.attr_eq_probe("k", "1")
        assert len(live) == 2
        assert len(snap.attr_eq_probe("k", "1")) == 1
        store.release_snapshot(snap)
