"""The statistics module and the cost-based optimizer pass: access-path
substitution, hash-join build sides, join-order choice, and the explain
surface that discloses every decision."""

from repro.engine import Engine, ExecutionOptions
from repro.index import (
    MIN_TABLE_NODES,
    Statistics,
    hash_join_cost,
    index_scan_cost,
    seq_scan_cost,
)
from repro.xmark.generator import XMarkConfig, generate_auction_xml


def big_engine():
    """An engine whose store clears MIN_TABLE_NODES (3x XMark ~ 25k)."""
    engine = Engine()
    doc = engine.load_document(
        "auction", generate_auction_xml(XMarkConfig.scale(3))
    )
    engine.bind("doc", [doc])
    assert len(engine.store._records) >= MIN_TABLE_NODES
    return engine


def small_engine():
    engine = Engine()
    doc = engine.load_document(
        "db",
        "<db><l><a k='1'/><a k='2'/></l><r><b k='1'/><b k='2'/></r></db>",
    )
    engine.bind("db", [doc])
    return engine


class TestCostFunctions:
    def test_index_beats_scan_when_selective(self):
        assert index_scan_cost(10) < seq_scan_cost(10_000)

    def test_scan_beats_index_when_unselective(self):
        assert seq_scan_cost(100) < index_scan_cost(100)

    def test_hash_join_prefers_small_build(self):
        assert hash_join_cost(10, 1000) < hash_join_cost(1000, 10)


class TestStatistics:
    def test_from_store_counts_elements_exactly(self):
        engine = small_engine()
        stats = Statistics.from_store(engine.store)
        assert stats.element_count("a") == 2
        assert stats.element_count("b") == 2
        assert stats.element_count("nope") == 0
        assert stats.total_nodes() == len(engine.store._records)

    def test_from_xmark_matches_generated_counts(self):
        config = XMarkConfig()
        engine = Engine()
        doc = engine.load_document("a", generate_auction_xml(config))
        engine.bind("doc", [doc])
        stats = Statistics.from_xmark(config)
        live = Statistics.from_store(engine.store)
        for name in ("person", "item", "closed_auction", "name"):
            assert stats.element_count(name) == live.element_count(name)


JOIN_QUERY = """
for $p in $doc//person
for $t in $doc//closed_auction
where $t/buyer/@person = $p/@id
return string($p/@id)
"""

Q8_QUERY = """
for $p in $doc//person
let $a := for $t in $doc//closed_auction
          where $t/buyer/@person = $p/@id
          return $t
return <row id="{$p/@id}">{count($a)}</row>
"""


class TestCostPass:
    def test_index_scan_substituted_on_large_store(self):
        engine = big_engine()
        report = engine.explain(Q8_QUERY)
        assert report.operators_after.count("IndexScan") == 2
        assert "MapConcat" not in report.operators_after
        chosen = {d.decision: d.chosen for d in report.costs}
        assert chosen.get("access-path") == "index-scan"

    def test_small_store_keeps_plan_shape(self):
        engine = small_engine()
        report = engine.explain(
            "for $a in $db//a for $b in $db//b "
            "where $a/@k = $b/@k return string($a/@k)"
        )
        assert "IndexScan" not in report.operators_after
        assert report.costs == []

    def test_decisions_carry_rejected_alternatives(self):
        engine = big_engine()
        report = engine.explain(Q8_QUERY)
        access = [d for d in report.costs if d.decision == "access-path"]
        assert access
        for decision in access:
            plans = {alt["plan"] for alt in decision.alternatives}
            assert plans == {"index-scan", "seq-scan"}
            assert decision.reason

    def test_explain_render_and_dict_include_costs(self):
        engine = big_engine()
        report = engine.explain(Q8_QUERY)
        assert "cost decisions:" in report.render()
        assert report.to_dict()["costs"]

    def test_hash_join_builds_on_estimated_smaller_side(self):
        engine = big_engine()
        report = engine.explain(JOIN_QUERY)
        assert "HashJoin" in report.operators_after
        sides = [
            d for d in report.costs if d.decision == "hash-build-side"
        ]
        assert len(sides) == 1
        # 765 persons vs 291 closed auctions: right (inner) is smaller.
        assert sides[0].chosen == "build-right"

    def test_hash_join_build_side_flips_when_inner_is_larger(self):
        engine = big_engine()
        flipped = """
        for $t in $doc//closed_auction
        for $p in $doc//person
        where $t/buyer/@person = $p/@id
        return string($p/@id)
        """
        report = engine.explain(flipped)
        sides = [
            d for d in report.costs if d.decision == "hash-build-side"
        ]
        assert len(sides) == 1
        assert sides[0].chosen == "build-left"

    def test_flipped_build_side_same_results(self):
        engine = big_engine()
        flipped = """
        for $t in $doc//closed_auction
        for $p in $doc//person
        where $t/buyer/@person = $p/@id
        return concat($t/price, ":", $p/@id)
        """
        fast = engine.execute(flipped, optimize=True)
        slow = engine.execute(flipped)
        assert [str(v) for v in fast.items] == [str(v) for v in slow.items]


class TestUseIndexesOption:
    def test_option_disables_index_scan_execution(self):
        engine = big_engine()
        query = '$doc//person[@id = "person3"]'
        on = engine.execute(query, collect_stats=True)
        off = engine.execute(
            query,
            collect_stats=True,
            options=ExecutionOptions(use_indexes=False, collect_stats=True),
        )
        assert [n.nid for n in on.items] == [n.nid for n in off.items]
        assert on.stats.counters.get("index.probes", 0) >= 1
        assert off.stats.counters.get("index.probes", 0) == 0

    def test_option_restored_after_call(self):
        engine = big_engine()
        engine.execute("1", options=ExecutionOptions(use_indexes=False))
        assert engine.evaluator.use_indexes

    def test_compiled_plan_falls_back_without_indexes(self):
        engine = big_engine()
        fast = engine.execute(Q8_QUERY, optimize=True, collect_stats=True)
        slow = engine.execute(
            Q8_QUERY,
            optimize=True,
            options=ExecutionOptions(
                optimize=True, use_indexes=False, collect_stats=True
            ),
        )
        assert [n.string_value for n in fast.items] == [
            n.string_value for n in slow.items
        ]
        assert fast.stats.counters.get("exec.index_scan", 0) >= 1
        assert slow.stats.counters.get("exec.index_scan", 0) == 0
