"""Tests for dynamic typing: instance of, castable as, cast as."""

import pytest

from repro import Engine
from repro.errors import TypeError_


@pytest.fixture
def e() -> Engine:
    engine = Engine()
    engine.load_document("doc", "<r><a>1</a><b x='y'/></r>")
    return engine


class TestInstanceOf:
    @pytest.mark.parametrize(
        ("query", "expected"),
        [
            ("1 instance of xs:integer", True),
            ("1 instance of xs:decimal", True),   # derivation
            ("1 instance of xs:double", False),
            ("1.5 instance of xs:decimal", True),
            ("1e0 instance of xs:double", True),
            ("'x' instance of xs:string", True),
            ("true() instance of xs:boolean", True),
            ("1 instance of xs:anyAtomicType", True),
            ("1 instance of item()", True),
            ("(1, 2) instance of xs:integer", False),
            ("(1, 2) instance of xs:integer*", True),
            ("(1, 2) instance of xs:integer+", True),
            ("() instance of xs:integer?", True),
            ("() instance of xs:integer+", False),
            ("() instance of empty-sequence()", True),
            ("1 instance of empty-sequence()", False),
        ],
    )
    def test_atomic(self, e, query, expected):
        assert e.execute(query).first_value() is expected

    @pytest.mark.parametrize(
        ("query", "expected"),
        [
            ("$doc instance of document-node()", True),
            ("$doc/r instance of element()", True),
            ("$doc/r instance of element(r)", True),
            ("$doc/r instance of element(other)", False),
            ("$doc/r/b/@x instance of attribute()", True),
            ("$doc/r/a/text() instance of text()", True),
            ("$doc/r instance of node()", True),
            ("$doc/r instance of xs:string", False),
            ("$doc/r/* instance of element()*", True),
            ("1 instance of node()", False),
        ],
    )
    def test_nodes(self, e, query, expected):
        assert e.execute(query).first_value() is expected


class TestCastAs:
    def test_string_to_integer(self, e):
        assert e.execute("'42' cast as xs:integer").first_value() == 42

    def test_double_truncation(self, e):
        assert e.execute("2.9 cast as xs:integer").first_value() == 2

    def test_to_string(self, e):
        assert e.execute("12 cast as xs:string").first_value() == "12"

    def test_boolean_lexical(self, e):
        assert e.execute("'1' cast as xs:boolean").first_value() is True
        assert e.execute("'false' cast as xs:boolean").first_value() is False

    def test_node_atomizes_first(self, e):
        assert e.execute("$doc/r/a cast as xs:integer").first_value() == 1

    def test_inf_lexical(self, e):
        import math

        assert e.execute("'INF' cast as xs:double").first_value() == math.inf

    def test_invalid_cast_raises(self, e):
        with pytest.raises(TypeError_):
            e.execute("'abc' cast as xs:integer")

    def test_empty_requires_question_mark(self, e):
        with pytest.raises(TypeError_):
            e.execute("() cast as xs:integer")
        assert e.execute("() cast as xs:integer?").values() == []

    def test_unknown_type(self, e):
        with pytest.raises(TypeError_):
            e.execute("'x' cast as xs:nonsense")


class TestCastableAs:
    def test_castable_true_false(self, e):
        assert e.execute("'42' castable as xs:integer").first_value() is True
        assert e.execute("'x' castable as xs:integer").first_value() is False

    def test_empty_with_question(self, e):
        assert e.execute("() castable as xs:integer?").first_value() is True
        assert e.execute("() castable as xs:integer").first_value() is False

    def test_guarding_pattern(self, e):
        out = e.execute(
            "for $v in ('1', 'x', '3') "
            "return if ($v castable as xs:integer) "
            "then $v cast as xs:integer else ()"
        )
        assert out.values() == [1, 3]


class TestTreatAs:
    def test_identity_on_match(self, e):
        assert e.execute("5 treat as xs:integer").first_value() == 5
        assert e.execute("(1, 2) treat as xs:integer*").values() == [1, 2]
        assert e.execute("() treat as empty-sequence()").values() == []

    def test_error_on_mismatch(self, e):
        with pytest.raises(TypeError_):
            e.execute("'x' treat as xs:integer")
        with pytest.raises(TypeError_):
            e.execute("(1, 2) treat as xs:integer")

    def test_node_treat(self, e):
        assert len(e.execute("$doc/r treat as element(r)")) == 1
        with pytest.raises(TypeError_):
            e.execute("$doc/r treat as attribute()")

    def test_treat_does_not_cast(self, e):
        # Unlike cast, treat never converts: an untyped node value is not
        # an xs:integer even if it looks like one.
        with pytest.raises(TypeError_):
            e.execute("$doc/r/a treat as xs:integer")

    def test_roundtrip(self):
        from repro.lang.parser import parse
        from repro.lang.pretty import unparse

        expr = parse("$x treat as element(a)+")
        assert parse(unparse(expr)) == expr


class TestIntegration:
    def test_roundtrip(self):
        from repro.lang.parser import parse
        from repro.lang.pretty import unparse

        for text in (
            "$x instance of element(person)*",
            "$x cast as xs:integer?",
            "$x castable as xs:double",
            "1 instance of empty-sequence()",
        ):
            expr = parse(text)
            assert parse(unparse(expr)) == expr

    def test_purity(self):
        from repro.algebra.properties import effect_properties
        from repro.lang.normalize import normalize
        from repro.lang.parser import parse
        from repro.semantics.functions import default_registry

        pure = normalize(parse("$x instance of xs:integer"))
        assert effect_properties(pure, default_registry()).pure
        impure = normalize(parse("(delete { $x }) instance of empty-sequence()"))
        assert effect_properties(impure, default_registry()).may_update

    def test_instance_of_with_updates_collects(self):
        engine = Engine()
        engine.bind("x", engine.parse_fragment("<x/>"))
        result = engine.execute(
            "(insert { <a/> } into { $x }) instance of empty-sequence()"
        )
        assert result.first_value() is True
        assert engine.execute("count($x/a)").first_value() == 1
