"""Unit tests for arithmetic semantics."""

import math

import pytest

from repro import Engine
from repro.errors import ArithmeticError_, TypeError_
from repro.semantics.arithmetic import arithmetic
from repro.xdm.values import XS_DECIMAL, XS_DOUBLE, XS_INTEGER, AtomicValue, UntypedAtomic


@pytest.fixture
def e() -> Engine:
    return Engine()


class TestIntegerArithmetic:
    def test_basic_ops(self, e):
        assert e.execute("2 + 3").first_value() == 5
        assert e.execute("2 - 3").first_value() == -1
        assert e.execute("2 * 3").first_value() == 6

    def test_integer_div_is_decimal(self, e):
        r = e.execute("7 div 2")
        assert r.items[0].type == XS_DECIMAL
        assert r.first_value() == 3.5

    def test_idiv_truncates_toward_zero(self, e):
        assert e.execute("7 idiv 2").first_value() == 3
        assert e.execute("-7 idiv 2").first_value() == -3
        assert e.execute("7 idiv -2").first_value() == -3

    def test_mod_sign_of_dividend(self, e):
        assert e.execute("7 mod 3").first_value() == 1
        assert e.execute("-7 mod 3").first_value() == -1
        assert e.execute("7 mod -3").first_value() == 1

    def test_division_by_zero(self, e):
        with pytest.raises(ArithmeticError_):
            e.execute("1 div 0")
        with pytest.raises(ArithmeticError_):
            e.execute("1 idiv 0")
        with pytest.raises(ArithmeticError_):
            e.execute("1 mod 0")


class TestPromotion:
    def test_integer_plus_decimal(self, e):
        r = e.execute("1 + 0.5")
        assert r.items[0].type == XS_DECIMAL and r.first_value() == 1.5

    def test_integer_plus_double(self, e):
        r = e.execute("1 + 1e0")
        assert r.items[0].type == XS_DOUBLE

    def test_result_stays_integer(self, e):
        assert e.execute("2 * 3").items[0].type == XS_INTEGER

    def test_idiv_always_integer(self):
        result = arithmetic("idiv", AtomicValue.decimal(7.5), AtomicValue.integer(2))
        assert result.type == XS_INTEGER and result.value == 3


class TestUntypedAndEmpty:
    def test_untyped_casts_to_number(self, e):
        e.bind("n", e.parse_fragment("<n>41</n>"))
        assert e.execute("$n + 1").first_value() == 42

    def test_untyped_decimal_string(self):
        result = arithmetic("+", UntypedAtomic("1.5"), AtomicValue.integer(1))
        assert result.value == 2.5

    def test_empty_operand_yields_empty(self, e):
        assert e.execute("() + 1").values() == []
        assert e.execute("1 + ()").values() == []

    def test_non_numeric_rejected(self, e):
        with pytest.raises(TypeError_):
            e.execute("'a' + 1")


class TestDoubleEdgeCases:
    def test_double_div_zero_is_inf(self, e):
        assert e.execute("1e0 div 0").first_value() == math.inf
        assert e.execute("-1e0 div 0").first_value() == -math.inf

    def test_zero_over_zero_nan(self, e):
        assert math.isnan(e.execute("0e0 div 0").first_value())

    def test_double_mod_zero_nan(self, e):
        assert math.isnan(e.execute("1e0 mod 0").first_value())


class TestUnary:
    def test_negation(self, e):
        assert e.execute("-(3)").first_value() == -3
        assert e.execute("--3").first_value() == 3
        assert e.execute("+3").first_value() == 3

    def test_unary_on_untyped(self, e):
        e.bind("n", e.parse_fragment("<n>5</n>"))
        assert e.execute("-$n").first_value() == -5

    def test_unary_empty(self, e):
        assert e.execute("-()").values() == []


class TestRangeExpr:
    def test_basic(self, e):
        assert e.execute("1 to 4").values() == [1, 2, 3, 4]

    def test_singleton(self, e):
        assert e.execute("3 to 3").values() == [3]

    def test_empty_when_descending(self, e):
        assert e.execute("3 to 1").values() == []

    def test_empty_operand(self, e):
        assert e.execute("() to 3").values() == []

    def test_non_integer_rejected(self, e):
        with pytest.raises(TypeError_):
            e.execute("1.5 to 3")
