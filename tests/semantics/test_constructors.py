"""Unit tests for node constructors (direct and computed)."""

import pytest

from repro import Engine
from repro.errors import TypeError_


@pytest.fixture
def e() -> Engine:
    return Engine()


class TestDirectElements:
    def test_empty(self, e):
        assert e.execute("<a/>").serialize() == "<a/>"

    def test_attributes(self, e):
        assert e.execute('<a x="1" y="2"/>').serialize() == '<a x="1" y="2"/>'

    def test_text_content(self, e):
        assert e.execute("<a>hi</a>").serialize() == "<a>hi</a>"

    def test_enclosed_expression(self, e):
        assert e.execute("<a>{ 1 + 1 }</a>").serialize() == "<a>2</a>"

    def test_avt(self, e):
        out = e.execute('let $v := 7 return <a x="v={$v}!"/>')
        assert out.serialize() == '<a x="v=7!"/>'

    def test_avt_sequence_space_joined(self, e):
        out = e.execute('<a x="{ (1, 2, 3) }"/>')
        assert out.serialize() == '<a x="1 2 3"/>'

    def test_nested(self, e):
        out = e.execute("<a><b>{ 'x' }</b><c/></a>")
        assert out.serialize() == "<a><b>x</b><c/></a>"

    def test_mixed_content_whitespace(self, e):
        out = e.execute("<a>keep {1} this</a>")
        assert out.serialize() == "<a>keep 1 this</a>"

    def test_constructed_nodes_are_new(self, e):
        assert e.execute("<a/> is <a/>").first_value() is False

    def test_construction_copies_content(self, e):
        e.bind("src", e.parse_fragment("<src><kid/></src>"))
        e.execute("<wrap>{ $src/kid }</wrap>")
        # The original kid keeps its parent.
        assert e.execute("exists($src/kid)").first_value() is True

    def test_document_node_content_unwrapped(self, e):
        e.load_document("d", "<inner>t</inner>")
        out = e.execute("<wrap>{ $d }</wrap>")
        assert out.serialize() == "<wrap><inner>t</inner></wrap>"


class TestComputedConstructors:
    def test_element_with_static_name(self, e):
        assert e.execute("element item { 'v' }").serialize() == "<item>v</item>"

    def test_element_with_dynamic_name(self, e):
        out = e.execute("element { concat('it', 'em') } { () }")
        assert out.serialize() == "<item/>"

    def test_element_empty_content(self, e):
        assert e.execute("element a { }").serialize() == "<a/>"

    def test_attribute_constructor(self, e):
        out = e.execute("<holder>{ attribute class { 'big' } }</holder>")
        assert out.serialize() == '<holder class="big"/>'

    def test_attribute_after_content_rejected(self, e):
        with pytest.raises(TypeError_):
            e.execute("<a>{ 'text', attribute x { 1 } }</a>")

    def test_text_constructor(self, e):
        out = e.execute("<a>{ text { 'hi' } }</a>")
        assert out.serialize() == "<a>hi</a>"

    def test_text_of_empty_is_no_node(self, e):
        assert e.execute("count(text { () })").first_value() == 0

    def test_comment_constructor(self, e):
        assert e.execute("comment { 'c' }").serialize() == "<!--c-->"

    def test_document_constructor(self, e):
        out = e.execute("document { <a/> }")
        from repro.xdm.store import NodeKind

        assert out.items[0].kind is NodeKind.DOCUMENT

    def test_empty_name_rejected(self, e):
        with pytest.raises(TypeError_):
            e.execute("element { '' } { () }")

    def test_dynamic_attribute_name(self, e):
        out = e.execute(
            "<h>{ attribute { concat('a', 'b') } { 1 } }</h>"
        )
        assert out.serialize() == '<h ab="1"/>'


class TestConstructionWithUpdates:
    def test_enclosed_update_collects(self, e):
        e.bind("log", e.parse_fragment("<log/>"))
        # Constructor content may request updates (first-class updates).
        out = e.execute(
            "<r>{ insert { <entry/> } into { $log }, 'done' }</r>"
        )
        assert out.serialize() == "<r>done</r>"
        assert e.execute("count($log/entry)").first_value() == 1

    def test_copied_content_not_affected_by_later_update(self, e):
        e.bind("src", e.parse_fragment("<src>old</src>"))
        out = e.execute(
            """let $snapshot := <keep>{ $src/text() }</keep>
               return (snap replace { $src/text() } with { "new" },
                       string($snapshot))"""
        )
        assert out.first_value() == "old"
