"""Tests for typeswitch and the ';' sequencing operator."""

import pytest

from repro import Engine
from repro.errors import ParseError


@pytest.fixture
def e() -> Engine:
    engine = Engine()
    engine.load_document("doc", "<r><a>1</a></r>")
    engine.bind("trace", engine.parse_fragment("<trace/>"))
    return engine


class TestTypeswitch:
    def test_first_matching_case_wins(self, e):
        out = e.execute(
            """typeswitch (42)
               case xs:string return 'string'
               case xs:integer return 'integer'
               case xs:decimal return 'decimal'
               default return 'other'"""
        )
        assert out.first_value() == "integer"

    def test_default_branch(self, e):
        out = e.execute(
            """typeswitch (<a/>)
               case xs:integer return 'int'
               default return 'fallthrough'"""
        )
        assert out.first_value() == "fallthrough"

    def test_case_variable_binding(self, e):
        out = e.execute(
            """typeswitch ($doc/r/a)
               case $el as element() return concat('elem:', string($el))
               default return 'no'"""
        )
        assert out.first_value() == "elem:1"

    def test_default_variable_binding(self, e):
        out = e.execute(
            """typeswitch ('x')
               case xs:integer return 0
               default $v return concat($v, '!')"""
        )
        assert out.first_value() == "x!"

    def test_occurrence_in_cases(self, e):
        out = e.execute(
            """typeswitch ((1, 2, 3))
               case xs:integer return 'one'
               case xs:integer+ return 'many'
               default return 'other'"""
        )
        assert out.first_value() == "many"

    def test_untaken_branches_have_no_effects(self, e):
        e.execute(
            """typeswitch (1)
               case xs:string return snap insert { <bad/> } into { $trace }
               case xs:integer return snap insert { <good/> } into { $trace }
               default return snap insert { <worse/> } into { $trace }"""
        )
        names = [n.name for n in e.execute("$trace/*").items]
        assert names == ["good"]

    def test_operand_evaluated_once(self, e):
        out = e.execute(
            """typeswitch ((snap insert { <once/> } into { $trace }, 5))
               case xs:integer return 'i'
               default return 'd'"""
        )
        assert out.first_value() == "i"
        assert e.execute("count($trace/once)").first_value() == 1

    def test_requires_case(self, e):
        with pytest.raises(ParseError):
            e.execute("typeswitch (1) default return 2")

    def test_typeswitch_still_a_path_name(self, e):
        # Without the '(' lookahead it must remain usable as an element name.
        assert e.execute("count($doc/typeswitch)").first_value() == 0


class TestSequencingOperator:
    """Footnote 5 / Section 2.4: e1 ; e2 forces e1 before e2."""

    def test_values_concatenate(self, e):
        assert e.execute("(1; 2, 3; 4)").values() == [1, 2, 3, 4]

    def test_order_of_effects(self, e):
        e.execute(
            """(snap insert { <first/> } into { $trace };
                snap insert { <second/> } into { $trace })"""
        )
        names = [n.name for n in e.execute("$trace/*").items]
        assert names == ["first", "second"]

    def test_effects_visible_across_semicolon(self, e):
        out = e.execute(
            "(snap insert { <n/> } into { $trace }; count($trace/n))"
        )
        assert out.values() == [1]

    def test_top_level_semicolon(self, e):
        assert e.execute("1; 2").values() == [1, 2]

    def test_in_function_body(self, e):
        e.load_module(
            """declare function two_steps() {
                 snap insert { <s1/> } into { $trace };
                 count($trace/s1)
               };"""
        )
        assert e.execute("two_steps()").values() == [1]

    def test_roundtrip(self):
        from repro.lang.parser import parse
        from repro.lang.pretty import unparse

        expr = parse("(1; 2, 3; 4)")
        assert parse(unparse(expr)) == expr

    def test_sequenced_blocks_pipeline_rewrites(self, e):
        # A ';' inside a FLWOR source is not a decomposable pipeline; the
        # optimizer must fall back (and still be correct).
        e.bind("s", [1, 2])
        out = e.execute(
            "for $x in (1; 2) return $x * 10", optimize=True
        )
        assert out.values() == [10, 20]

    def test_typeswitch_roundtrip(self):
        from repro.lang.parser import parse
        from repro.lang.pretty import unparse

        text = (
            "typeswitch ($x) case $v as element()* return $v "
            "case xs:integer return 1 default $d return $d"
        )
        expr = parse(text)
        assert parse(unparse(expr)) == expr
