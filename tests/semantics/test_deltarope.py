"""Tests for the update-list rope (§4.1's specialized tree structure)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.semantics.deltarope import EMPTY, Delta
from repro.semantics.update import RenameRequest


def reqs(n: int):
    return [RenameRequest(i, f"n{i}") for i in range(n)]


class TestBasics:
    def test_empty(self):
        assert len(EMPTY) == 0
        assert not EMPTY
        assert list(EMPTY) == []

    def test_leaf(self):
        [r] = reqs(1)
        d = Delta.leaf(r)
        assert len(d) == 1 and list(d) == [r]

    def test_concatenation_order(self):
        a, b, c = reqs(3)
        d = Delta.leaf(a) + Delta.leaf(b) + Delta.leaf(c)
        assert list(d) == [a, b, c]

    def test_empty_identity(self):
        [r] = reqs(1)
        d = Delta.leaf(r)
        assert (EMPTY + d) is d
        assert (d + EMPTY) is d

    def test_from_iterable(self):
        rs = reqs(5)
        assert list(Delta.from_iterable(rs)) == rs

    def test_len_is_total(self):
        d = Delta.from_iterable(reqs(4)) + Delta.from_iterable(reqs(3))
        assert len(d) == 7

    def test_equality_with_lists(self):
        rs = reqs(3)
        assert Delta.from_iterable(rs) == rs
        assert Delta.from_iterable(rs) == Delta.from_iterable(rs)
        assert Delta.from_iterable(rs) != rs[:2]

    def test_repr(self):
        assert "Delta" in repr(Delta.from_iterable(reqs(2)))
        assert "requests" in repr(Delta.from_iterable(reqs(10)))

    def test_immutability_of_parts(self):
        left = Delta.from_iterable(reqs(2))
        combined = left + Delta.from_iterable(reqs(2))
        assert len(left) == 2 and len(combined) == 4

    def test_deep_nesting_iterates_without_recursion_error(self):
        d = EMPTY
        for r in reqs(50_000):
            d = d + Delta.leaf(r)
        assert len(d) == 50_000
        assert sum(1 for _ in d) == 50_000


class TestProperties:
    @given(st.lists(st.integers(0, 5), min_size=0, max_size=30))
    @settings(max_examples=100, deadline=None)
    def test_associativity(self, sizes):
        """Any bracketing of concatenations flattens identically."""
        import random

        chunks = [Delta.from_iterable(reqs(n)) for n in sizes]
        expected = [r for n in sizes for r in reqs(n)]
        # left fold
        left = EMPTY
        for chunk in chunks:
            left = left + chunk
        # right fold
        right = EMPTY
        for chunk in reversed(chunks):
            right = chunk + right
        assert list(left) == expected
        assert list(right) == expected

    @given(st.integers(0, 200), st.integers(0, 200))
    @settings(max_examples=50, deadline=None)
    def test_length_homomorphism(self, n, m):
        assert len(Delta.from_iterable(reqs(n)) + Delta.from_iterable(reqs(m))) == n + m
