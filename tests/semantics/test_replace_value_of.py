"""Tests for the 'replace value of' extension (XQUF-style)."""

import pytest

from repro import Engine
from repro.errors import ConflictError, TypeError_


@pytest.fixture
def e() -> Engine:
    engine = Engine()
    engine.load_document("doc", "<r><a x='1'>old</a><b><kid/></b></r>")
    return engine


class TestReplaceValueOf:
    def test_text_content_of_element(self, e):
        e.execute('replace value of { $doc//a } with { "new" }')
        assert e.execute("string($doc//a)").first_value() == "new"
        # The element itself survives (unlike plain replace).
        assert e.execute("count($doc//a)").first_value() == 1

    def test_attribute_value(self, e):
        e.execute('replace value of { $doc//a/@x } with { 42 }')
        assert e.execute("string($doc//a/@x)").first_value() == "42"

    def test_text_node_value(self, e):
        e.execute('replace value of { $doc//a/text() } with { "swapped" }')
        assert e.execute("string($doc//a)").first_value() == "swapped"

    def test_element_children_replaced_by_text(self, e):
        e.execute('replace value of { $doc//b } with { "flat" }')
        assert e.execute("count($doc//kid)").first_value() == 0
        assert e.execute("string($doc//b)").first_value() == "flat"

    def test_empty_source_clears(self, e):
        e.execute("replace value of { $doc//a } with { () }")
        assert e.execute("string($doc//a)").first_value() == ""
        assert e.execute("count($doc//a/node())").first_value() == 0

    def test_sequence_source_space_joined(self, e):
        e.execute("replace value of { $doc//a } with { (1, 2, 3) }")
        assert e.execute("string($doc//a)").first_value() == "1 2 3"

    def test_snap_prefix_sugar(self, e):
        e.execute('snap replace value of { $doc//a } with { "now" }')
        assert e.execute("string($doc//a)").first_value() == "now"

    def test_pending_until_snap(self, e):
        out = e.execute(
            '(replace value of { $doc//a } with { "later" }, string($doc//a))'
        )
        assert out.first_value() == "old"
        assert e.execute("string($doc//a)").first_value() == "later"

    def test_target_must_be_single_node(self, e):
        with pytest.raises(TypeError_):
            e.execute('replace value of { $doc//r/* } with { "x" }')

    def test_counter_pattern_simplified(self, e):
        """The §2.5 counter written with replace value of — no text-node
        target needed, works even when the counter is empty."""
        e.load_module(
            """
            declare variable $d := element counter { 0 };
            declare function nextid() {
              snap { replace value of { $d } with { $d + 1 }, $d }
            };
            """
        )
        assert [e.execute("data(nextid())").strings()[0] for _ in range(3)] == [
            "1", "2", "3",
        ]

    def test_conflict_two_value_replacements(self, e):
        with pytest.raises(ConflictError):
            e.execute(
                """snap conflict-detection {
                     replace value of { $doc//a } with { "one" },
                     replace value of { $doc//a } with { "two" } }"""
            )

    def test_conflict_with_insert_into(self, e):
        with pytest.raises(ConflictError):
            e.execute(
                """snap conflict-detection {
                     replace value of { $doc//b } with { "t" },
                     insert { <x/> } into { $doc//b } }"""
            )

    def test_no_conflict_on_distinct_nodes(self, e):
        e.execute(
            """snap conflict-detection {
                 replace value of { $doc//a } with { "p" },
                 replace value of { $doc//b } with { "q" } }"""
        )
        assert e.execute("string($doc//a)").first_value() == "p"

    def test_purity_analysis_sees_it(self, e):
        from repro.algebra.properties import effect_properties
        from repro.lang.normalize import normalize
        from repro.lang.parser import parse

        props = effect_properties(
            normalize(parse('replace value of { $x } with { "v" }'))
        )
        assert props.may_update and not props.may_snap

    def test_roundtrip(self):
        from repro.lang.parser import parse
        from repro.lang.pretty import unparse

        expr = parse('replace value of { $x } with { "v" }')
        assert parse(unparse(expr)) == expr
        snapped = parse('snap replace value of { $x } with { 1 }')
        assert parse(unparse(snapped)) == snapped
