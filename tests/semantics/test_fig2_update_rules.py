"""E2 — semantics of the update operations (paper Fig. 2).

Each test realizes one judgment: the value returned, the update list
produced (observed through its effects at snap time), and the evaluation
order of the premises.
"""

import pytest

from repro import Engine
from repro.errors import TypeError_, UpdateTargetError


@pytest.fixture
def e() -> Engine:
    engine = Engine()
    engine.bind("x", engine.parse_fragment("<x><old/><mid/><new/></x>"))
    return engine


class TestCopyRule:
    """copy{Expr}: deepcopy at the data-model level; fresh node ids."""

    def test_copy_returns_new_node(self, e):
        same = e.execute("copy { $x } is $x").first_value()
        assert same is False

    def test_copy_is_deep(self, e):
        assert e.execute("count(copy { $x }/*)").first_value() == 3

    def test_copy_produces_no_updates(self, e):
        e.execute("copy { $x }")
        assert e.execute("count($x/*)").first_value() == 3

    def test_copy_of_atomics_passes_through(self, e):
        assert e.execute("copy { 1 + 1 }").first_value() == 2

    def test_copy_result_is_parentless(self, e):
        assert e.execute("empty(copy { $x/old }/..)").first_value() is True


class TestSnapRule:
    """snap{Expr}: value passes through, Δ applied, empty Δ returned."""

    def test_value_passes_through(self, e):
        r = e.execute("snap { insert {<n/>} into {$x}, 42 }")
        assert r.first_value() == 42

    def test_delta_applied_at_scope_close(self, e):
        counts = e.execute(
            "(count($x/*), snap { insert {<n/>} into {$x} }, count($x/*))"
        ).values()
        assert counts == [3, 4]

    def test_outer_snap_sees_empty_delta_from_inner(self, e):
        # The inner snap consumed its delta: applying the outer adds nothing.
        e.execute("snap { snap { insert {<n/>} into {$x} } }")
        assert e.execute("count($x/*)").first_value() == 4


class TestRenameRule:
    """rename{E1}to{E2}: Δ3 = (Δ1, Δ2, rename(node, name)); returns ()."""

    def test_returns_empty_sequence(self, e):
        assert len(e.execute('rename { $x/old } to { "fresh" }')) == 0

    def test_applied_at_snap(self, e):
        e.execute('rename { $x/old } to { "fresh" }')
        assert e.execute("exists($x/fresh)").first_value() is True

    def test_name_may_be_computed(self, e):
        e.execute("rename { $x/old } to { concat('a', 'b') }")
        assert e.execute("exists($x/ab)").first_value() is True

    def test_rename_attribute(self, e):
        e.bind("y", e.parse_fragment('<y id="1"/>'))
        e.execute('rename { $y/@id } to { "key" }')
        assert e.execute("string($y/@key)").first_value() == "1"

    def test_target_must_be_single_node(self, e):
        with pytest.raises(TypeError_):
            e.execute('rename { $x/* } to { "n" }')


class TestReplaceRule:
    """replace{E1}with{E2}: Δ = (Δ1, Δ2, insert(copy, parent, node),
    delete(node)); the replacement lands where the target was."""

    def test_returns_empty(self, e):
        assert len(e.execute("replace { $x/mid } with { <sub/> }")) == 0

    def test_replacement_in_place(self, e):
        e.execute("replace { $x/mid } with { <sub/> }")
        assert [c for c in e.execute("$x/*").strings()] == ["", "", ""]
        assert e.execute("$x").serialize() == "<x><old/><sub/><new/></x>"

    def test_target_detached_but_alive(self, e):
        e.execute(
            "declare variable $victim := exactly-one($x/mid);"
            "replace { $victim } with { <sub/> }"
        )
        assert e.execute("empty($victim/..)").first_value() is True
        assert e.execute("name($victim)").first_value() == "mid"

    def test_replace_with_sequence(self, e):
        e.execute("replace { $x/mid } with { (<p/>, <q/>) }")
        assert e.execute("$x").serialize() == "<x><old/><p/><q/><new/></x>"

    def test_replace_with_atomic_becomes_text(self, e):
        e.execute("replace { $x/mid } with { 1 + 1 }")
        assert e.execute("string($x)").first_value() == "2"

    def test_replace_source_is_copied(self, e):
        e.bind("donor", e.parse_fragment("<donor/>"))
        e.execute("replace { $x/mid } with { $donor }")
        # The donor itself must still be parentless (a copy was inserted).
        assert e.execute("empty($donor/..)").first_value() is True

    def test_replace_target_needs_parent(self, e):
        with pytest.raises(UpdateTargetError):
            e.execute("replace { $x } with { <y/> }")

    def test_replace_attribute(self, e):
        e.bind("y", e.parse_fragment('<y id="1"/>'))
        e.execute('replace { $y/@id } with { attribute id { "2" } }')
        assert e.execute("string($y/@id)").first_value() == "2"


class TestDeleteRule:
    """delete{Expr}: Δ2 = (Δ1, delete node); detach semantics."""

    def test_returns_empty(self, e):
        assert len(e.execute("delete { $x/old }")) == 0

    def test_detaches_at_snap(self, e):
        e.execute("delete { $x/old }")
        assert e.execute("count($x/*)").first_value() == 2

    def test_sequence_target_deletes_all(self, e):
        e.execute("delete { $x/* }")
        assert e.execute("count($x/*)").first_value() == 0

    def test_empty_target_is_noop(self, e):
        e.execute("delete { $x/nothing }")
        assert e.execute("count($x/*)").first_value() == 3

    def test_non_node_target_rejected(self, e):
        with pytest.raises(TypeError_):
            e.execute("delete { 42 }")


class TestInsertRule:
    """insert{E1} Location {E2} with the InsertLocation judgments."""

    def test_into_appends(self, e):
        e.execute("insert { <z/> } into { $x }")
        assert e.execute("name($x/*[last()])").first_value() == "z"

    def test_as_first(self, e):
        e.execute("insert { <z/> } as first into { $x }")
        assert e.execute("name($x/*[1])").first_value() == "z"

    def test_as_last(self, e):
        e.execute("insert { <z/> } as last into { $x }")
        assert e.execute("name($x/*[last()])").first_value() == "z"

    def test_before(self, e):
        e.execute("insert { <z/> } before { $x/mid }")
        assert e.execute("$x").serialize() == "<x><old/><z/><mid/><new/></x>"

    def test_after(self, e):
        e.execute("insert { <z/> } after { $x/mid }")
        assert e.execute("$x").serialize() == "<x><old/><mid/><z/><new/></x>"

    def test_sequence_order_preserved(self, e):
        e.execute("insert { (<p/>, <q/>, <r/>) } after { $x/old }")
        assert (
            e.execute("$x").serialize()
            == "<x><old/><p/><q/><r/><mid/><new/></x>"
        )

    def test_inserted_nodes_are_copies(self, e):
        e.bind("donor", e.parse_fragment("<donor/>"))
        e.execute("insert { $donor } into { $x }")
        assert e.execute("empty($donor/..)").first_value() is True
        assert e.execute("exists($x/donor)").first_value() is True

    def test_insert_attribute_node(self, e):
        e.execute('insert { attribute lang { "en" } } into { $x }')
        assert e.execute("string($x/@lang)").first_value() == "en"

    def test_atomic_source_becomes_text(self, e):
        e.execute('insert { "hello" } into { $x }')
        assert e.execute("string($x)").first_value() == "hello"

    def test_into_requires_element_target(self, e):
        e.bind("t", e.parse_fragment("<t>txt</t>"))
        with pytest.raises(UpdateTargetError):
            e.execute("insert { <z/> } into { $t/text() }")

    def test_before_requires_parent(self, e):
        with pytest.raises(UpdateTargetError):
            e.execute("insert { <z/> } before { $x }")

    def test_target_must_be_single(self, e):
        with pytest.raises(TypeError_):
            e.execute("insert { <z/> } into { $x/* }")


class TestEvaluationOrderOfPremises:
    """The rules evaluate Expr1 before Expr2 (store threading)."""

    def test_insert_source_before_target(self, e):
        # The source expression snaps an insert that the target expression
        # then observes: x gains <probe/> and the insert lands inside it.
        e.execute(
            """insert { <payload/> }
               into { (snap insert { <probe/> } into { $x },
                       exactly-one($x/probe)) }"""
        )
        assert e.execute("exists($x/probe/payload)").first_value() is True

    def test_delta_order_is_sequence_order(self, e):
        e.bind("sink", e.parse_fragment("<sink/>"))
        e.execute(
            """insert { <one/> } into { $sink },
               insert { <two/> } into { $sink },
               insert { <three/> } into { $sink }"""
        )
        assert (
            e.execute("$sink").serialize()
            == "<sink><one/><two/><three/></sink>"
        )
