"""Unit tests for FLWOR (incl. order by) and quantified expressions."""

import pytest

from repro import Engine


@pytest.fixture
def e() -> Engine:
    engine = Engine()
    engine.load_document(
        "doc",
        '<r><p name="carol" age="30"/><p name="alice" age="25"/>'
        '<p name="bob" age="25"/></r>',
    )
    return engine


class TestOrderBy:
    def test_ascending_default(self, e):
        names = e.execute(
            "for $p in $doc//p order by $p/@name return string($p/@name)"
        ).values()
        assert names == ["alice", "bob", "carol"]

    def test_descending(self, e):
        names = e.execute(
            "for $p in $doc//p order by $p/@name descending return string($p/@name)"
        ).values()
        assert names == ["carol", "bob", "alice"]

    def test_numeric_keys(self, e):
        ages = e.execute(
            "for $p in $doc//p order by number($p/@age) return string($p/@name)"
        ).values()
        assert ages == ["alice", "bob", "carol"]

    def test_multiple_keys(self, e):
        names = e.execute(
            "for $p in $doc//p order by number($p/@age), $p/@name descending "
            "return string($p/@name)"
        ).values()
        assert names == ["bob", "alice", "carol"]

    def test_stability(self, e):
        # Equal keys keep binding order (Python sorts are stable).
        names = e.execute(
            "for $p in $doc//p order by $p/@age return string($p/@name)"
        ).values()
        assert names == ["alice", "bob", "carol"]

    def test_empty_least_default(self, e):
        out = e.execute(
            "for $x in (<a k='2'/>, <a/>, <a k='1'/>) "
            "order by $x/@k return string($x/@k)"
        ).values()
        assert out == ["", "1", "2"]

    def test_empty_greatest(self, e):
        out = e.execute(
            "for $x in (<a k='2'/>, <a/>, <a k='1'/>) "
            "order by $x/@k empty greatest return string($x/@k)"
        ).values()
        assert out == ["1", "2", ""]

    def test_empty_least_descending(self, e):
        out = e.execute(
            "for $x in (<a k='2'/>, <a/>, <a k='1'/>) "
            "order by $x/@k descending empty least return string($x/@k)"
        ).values()
        assert out == ["2", "1", ""]

    def test_order_by_with_where(self, e):
        names = e.execute(
            "for $p in $doc//p where $p/@age = 25 "
            "order by $p/@name descending return string($p/@name)"
        ).values()
        assert names == ["bob", "alice"]

    def test_order_by_with_let(self, e):
        out = e.execute(
            "for $p in $doc//p let $k := string($p/@name) "
            "order by $k return $k"
        ).values()
        assert out == ["alice", "bob", "carol"]

    def test_order_by_effect_order(self, e):
        # Return-clause effects fire in SORTED order.
        e.bind("sink", e.parse_fragment("<sink/>"))
        e.execute(
            "for $p in $doc//p order by $p/@name "
            'return insert { <n v="{$p/@name}"/> } into { $sink }'
        )
        assert e.execute("$sink/n/@v").strings() == ["alice", "bob", "carol"]


class TestPositionalFor:
    def test_at_variable(self, e):
        pairs = e.execute(
            "for $x at $i in ('a', 'b', 'c') return concat($i, $x)"
        ).values()
        assert pairs == ["1a", "2b", "3c"]

    def test_at_with_ordered_flwor(self, e):
        out = e.execute(
            "for $x at $i in ('c', 'a', 'b') order by $x return $i"
        ).values()
        assert out == [2, 3, 1]


class TestQuantified:
    def test_some_true(self, e):
        assert e.execute(
            "some $x in (1, 2, 3) satisfies $x > 2"
        ).first_value() is True

    def test_some_false(self, e):
        assert e.execute(
            "some $x in (1, 2, 3) satisfies $x > 5"
        ).first_value() is False

    def test_every(self, e):
        assert e.execute(
            "every $x in (1, 2, 3) satisfies $x > 0"
        ).first_value() is True
        assert e.execute(
            "every $x in (1, 2, 3) satisfies $x > 1"
        ).first_value() is False

    def test_empty_domain(self, e):
        assert e.execute("some $x in () satisfies true()").first_value() is False
        assert e.execute("every $x in () satisfies false()").first_value() is True

    def test_multiple_bindings(self, e):
        assert e.execute(
            "some $x in (1, 2), $y in (3, 4) satisfies $x + $y = 6"
        ).first_value() is True

    def test_short_circuit_effects(self, e):
        # 'some' stops at the first witness: only two probes fire.
        e.bind("sink", e.parse_fragment("<sink/>"))
        e.execute(
            "some $x in (1, 2, 3) satisfies "
            "(snap insert { <probe/> } into { $sink }, $x = 2)"
        )
        assert e.execute("count($sink/probe)").first_value() == 2


class TestNestedFLWOR:
    def test_dependent_inner_loop(self, e):
        out = e.execute(
            "for $x in (1, 2) for $y in (1 to $x) return concat($x, '.', $y)"
        ).values()
        assert out == ["1.1", "2.1", "2.2"]

    def test_let_rebinding_shadowing(self, e):
        out = e.execute(
            "let $v := 1 return (let $v := $v + 1 return $v, $v)"
        ).values()
        assert out == [2, 1]

    def test_where_with_multiple_fors(self, e):
        out = e.execute(
            "for $x in (1, 2, 3), $y in (1, 2, 3) "
            "where $x + $y = 4 return concat($x, $y)"
        ).values()
        assert out == ["13", "22", "31"]
