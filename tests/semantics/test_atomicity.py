"""Tests for the atomic-snap extension (failure containment).

The paper's Section 5 sketches using snap to control "the extent of
failure propagation"; `Engine(atomic_snaps=True)` realizes it: a Δ that
fails a precondition mid-application rolls the whole snap back.
"""

import pytest

from repro import Engine
from repro.errors import UpdateApplicationError
from repro.semantics.update import (
    ApplySemantics,
    DeleteRequest,
    InsertRequest,
    apply_update_list,
)
from repro.xdm.store import Store


def failing_delta(store: Store, root: int, child: int):
    """Two requests: a good rename-equivalent insert, then an insert whose
    anchor will have been detached (precondition failure)."""
    good = store.create_element("good")
    bad = store.create_element("bad")
    return [
        InsertRequest((good,), "last", root),
        DeleteRequest(child),
        InsertRequest((bad,), "after", child),  # child now parentless
    ]


class TestCheckpointRestore:
    def test_roundtrip(self):
        store = Store()
        root = store.create_element("root")
        child = store.create_element("child")
        store.append_child(root, child)
        checkpoint = store.checkpoint()
        store.detach(child)
        store.rename(root, "changed")
        extra = store.create_element("extra")
        store.append_child(root, extra)
        store.restore(checkpoint)
        assert store.name(root) == "root"
        assert store.children(root) == (child,)
        assert extra not in store
        store.check_invariants()

    def test_restore_resets_allocation(self):
        store = Store()
        root = store.create_element("root")
        checkpoint = store.checkpoint()
        store.create_element("junk")
        store.restore(checkpoint)
        fresh = store.create_element("fresh")
        assert fresh not in (root,)
        store.check_invariants()


class TestAtomicApply:
    def setup_method(self):
        self.store = Store()
        self.root = self.store.create_element("root")
        self.child = self.store.create_element("child")
        self.store.append_child(self.root, self.child)

    def test_non_atomic_leaves_partial_state(self):
        delta = failing_delta(self.store, self.root, self.child)
        with pytest.raises(UpdateApplicationError):
            apply_update_list(self.store, delta, ApplySemantics.ORDERED)
        # The first insert and the delete happened before the failure.
        names = [self.store.name(c) for c in self.store.children(self.root)]
        assert names == ["good"]

    def test_atomic_rolls_back(self):
        delta = failing_delta(self.store, self.root, self.child)
        with pytest.raises(UpdateApplicationError):
            apply_update_list(
                self.store, delta, ApplySemantics.ORDERED, atomic=True
            )
        names = [self.store.name(c) for c in self.store.children(self.root)]
        assert names == ["child"]
        self.store.check_invariants()

    def test_atomic_success_applies_normally(self):
        fresh = self.store.create_element("fresh")
        delta = [InsertRequest((fresh,), "last", self.root)]
        apply_update_list(
            self.store, delta, ApplySemantics.ORDERED, atomic=True
        )
        assert fresh in self.store.children(self.root)


class TestEngineAtomicSnaps:
    def make(self, atomic: bool) -> Engine:
        engine = Engine(atomic_snaps=atomic)
        engine.bind("x", engine.parse_fragment("<x><a/><b/></x>"))
        return engine

    FAILING = """
        snap { insert { <ok/> } into { $x },
               delete { $x/a },
               insert { <bad/> } after { $x/a } }
    """

    def test_atomic_engine_rolls_back(self):
        engine = self.make(atomic=True)
        with pytest.raises(UpdateApplicationError):
            engine.execute(self.FAILING)
        assert engine.execute("$x").serialize() == "<x><a/><b/></x>"

    def test_non_atomic_engine_partial(self):
        engine = self.make(atomic=False)
        with pytest.raises(UpdateApplicationError):
            engine.execute(self.FAILING)
        # ok inserted, a deleted, then failure: partial state remains.
        assert engine.execute("$x").serialize() == "<x><b/><ok/></x>"

    def test_atomic_applies_clean_deltas(self):
        engine = self.make(atomic=True)
        engine.execute("insert { <ok/> } into { $x }")
        assert engine.execute("count($x/ok)").first_value() == 1

    def test_atomic_with_optimizer(self):
        engine = Engine(atomic_snaps=True)
        engine.bind("x", engine.parse_fragment("<x><a/></x>"))
        engine.bind("s", [1, 2, 3])
        engine.execute(
            "for $i in $s return insert { <n/> } into { $x }", optimize=True
        )
        assert engine.execute("count($x/n)").first_value() == 3
