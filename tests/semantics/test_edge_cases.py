"""Edge-case coverage for evaluator branches not exercised elsewhere."""

import pytest

from repro import Engine
from repro.errors import (
    DynamicError,
    TypeError_,
    UpdateTargetError,
)


@pytest.fixture
def e() -> Engine:
    engine = Engine()
    engine.load_document("doc", "<r><a x='1'>t</a><b/></r>")
    return engine


class TestContextErrors:
    def test_context_item_undefined(self, e):
        with pytest.raises(DynamicError):
            e.execute(".")

    def test_root_requires_node_context(self, e):
        with pytest.raises(TypeError_):
            e.execute("(1, 2)[/r]")

    def test_axis_step_requires_node_context(self, e):
        with pytest.raises(TypeError_):
            e.execute("(1)[a]")


class TestSetOperationErrors:
    def test_union_rejects_atomics(self, e):
        with pytest.raises(TypeError_):
            e.execute("(1, 2) | $doc//a")

    def test_intersect_rejects_atomics(self, e):
        with pytest.raises(TypeError_):
            e.execute("$doc//a intersect 3")


class TestNodeComparisons:
    def test_empty_operands_give_empty(self, e):
        assert e.execute("() is $doc").values() == []
        assert e.execute("$doc << ()").values() == []

    def test_non_singleton_rejected(self, e):
        with pytest.raises(TypeError_):
            e.execute("$doc//a is $doc/r/*")


class TestConstructorEdges:
    def test_computed_name_must_be_single(self, e):
        with pytest.raises(Exception):
            e.execute("element { ('a', 'b') } { () }")

    def test_attribute_replacing_on_insert(self, e):
        # Inserting an attribute whose name exists replaces it.
        e.execute('snap insert { attribute x { "9" } } into { $doc//a }')
        assert e.execute("string($doc//a/@x)").first_value() == "9"
        assert e.execute("count($doc//a/@x)").first_value() == 1

    def test_mixed_attribute_and_element_insert(self, e):
        e.execute(
            'snap insert { (attribute y { "2" }, <kid/>) } into { $doc//b }'
        )
        assert e.execute("string($doc//b/@y)").first_value() == "2"
        assert e.execute("count($doc//b/kid)").first_value() == 1

    def test_comment_and_pi_constructors_in_content(self, e):
        out = e.execute(
            "<w>{ comment { 'c' }, processing-instruction p { 'd' } }</w>"
        )
        assert out.serialize() == "<w><!--c--><?p d?></w>"

    def test_document_constructor_with_atomics(self, e):
        out = e.execute("string(document { (1, 2) })")
        assert out.first_value() == "1 2"


class TestUpdateEdges:
    def test_replace_with_empty_acts_as_delete(self, e):
        e.execute("replace { $doc//a } with { () }")
        assert e.execute("count($doc//a)").first_value() == 0

    def test_rename_to_node_derived_name(self, e):
        e.bind("namesrc", e.parse_fragment("<n>fresh</n>"))
        e.execute("snap rename { $doc//b } to { $namesrc }")
        assert e.execute("count($doc//fresh)").first_value() == 1

    def test_rename_empty_name_rejected(self, e):
        with pytest.raises(UpdateTargetError):
            e.execute('rename { $doc//b } to { "" }')

    def test_insert_into_document_node(self, e):
        e.bind("d2", e.parse_fragment("<content/>"))
        e.execute("snap insert { <extra/> } into { $doc }")
        # Document now has two children (r and extra).
        assert e.execute("count($doc/*)").first_value() == 2

    def test_self_insert_cycle_prevented_by_copy(self, e):
        # insert copies its source, so inserting an ancestor into its own
        # descendant must NOT cycle — the copy is a distinct tree.
        e.execute("snap insert { $doc/r } into { $doc//b }")
        assert e.execute("count($doc/r/b/r)").first_value() == 1
        e.store.check_invariants()

    def test_update_inside_predicate_collects(self, e):
        e.bind("sink", e.parse_fragment("<sink/>"))
        e.execute(
            "$doc//a[(insert { <p/> } into { $sink }, true())]"
        )
        assert e.execute("count($sink/p)").first_value() == 1


class TestFunctionCallEdges:
    def test_variadic_concat_many_args(self, e):
        out = e.execute("concat('a','b','c','d','e','f','g')")
        assert out.first_value() == "abcdefg"

    def test_user_function_shadows_nothing_builtin(self, e):
        e.load_module("declare function my:count($s) { 42 };")
        assert e.execute("count((1, 2))").first_value() == 2
        assert e.execute("my:count((1, 2))").first_value() == 42

    def test_zero_arg_user_function(self, e):
        e.load_module("declare function answer() { 42 };")
        assert e.execute("answer()").first_value() == 42

    def test_function_with_sequence_param(self, e):
        e.load_module("declare function second($s) { $s[2] };")
        assert e.execute("second((10, 20, 30))").first_value() == 20


class TestSnapEdges:
    def test_snap_of_pure_body_is_noop(self, e):
        assert e.execute("snap { 1 + 1 }").first_value() == 2

    def test_deeply_nested_snaps(self, e):
        e.bind("x", e.parse_fragment("<x/>"))
        query = "snap { " * 10 + "insert { <n/> } into { $x } " + "}" * 10
        e.execute(query)
        assert e.execute("count($x/n)").first_value() == 1

    def test_snap_value_is_body_value(self, e):
        out = e.execute("snap { (1, 2, 3) }")
        assert out.values() == [1, 2, 3]

    def test_update_applied_between_sequenced_items(self, e):
        e.bind("x", e.parse_fragment("<x/>"))
        out = e.execute(
            "(snap insert { <n/> } into { $x }; count($x/n);"
            " snap insert { <n/> } into { $x }; count($x/n))"
        )
        assert out.values() == [1, 2]
