"""The ``step[@name <op> value]`` direct-store predicate fast path.

``Evaluator._attr_compare_filter`` must be observably identical to the
generic per-candidate predicate evaluation — same kept nodes, same
coercion behaviour (untyped attribute content vs strings and numbers),
same treatment of missing attributes.  Each case runs both ways: the
normal engine, and one with the fast path disabled so the generic
``_apply_predicate`` route answers.
"""

import pytest

from repro import Engine

DOC = """<root>
  <item id="a1" n="01"/><item id="a2" n="1"/><item n="2"/>
  <item id="" n="3"/><sub><item id="a1" n="1.0"/></sub>
</root>"""

CASES = [
    # attribute vs string literal / variable, both operand orders
    '$d//item[@id = "a1"]/@n/data(.)',
    "$d//item[@id = $x]/@n/data(.)",
    '$d//item["a1" = @id]/@n/data(.)',
    # other operators
    '$d//item[@id != "a1"]/@n/data(.)',
    "count($d//item[@n > 1])",
    # untyped-vs-number matches numerically ("01" = 1), vs-string exactly
    "$d//item[@n = 1]/@id/data(.)",
    '$d//item[@n = "1"]/@id/data(.)',
    # empty-string value and missing attribute
    '$d//item[@id = ""]/@n/data(.)',
    '$d//item[@missing = "x"]',
    # non-descendant axis benefits too
    '$d/root/item[@id = "a1"]/@n/data(.)',
]


def _run(query: str, disable_fast: bool) -> str:
    engine = Engine()
    engine.load_document("d", DOC)
    engine.bind("x", "a1")
    if disable_fast:
        engine.evaluator._attr_compare_filter = (
            lambda predicate, items, context: None
        )
    return engine.execute(query).serialize()


@pytest.mark.parametrize("query", CASES)
def test_fast_path_matches_generic_path(query):
    assert _run(query, False) == _run(query, True)


def test_fast_path_actually_fires():
    """Guard against the fast path silently never applying: the filtered
    step must not evaluate the predicate through the generic route."""
    engine = Engine()
    engine.load_document("d", DOC)
    calls = []
    original = engine.evaluator._apply_predicate

    def spy(predicate, items, context, delta):
        calls.append(predicate)
        return original(predicate, items, context, delta)

    engine.evaluator._apply_predicate = spy
    assert engine.execute('count($d//item[@id = "a1"])').first_value() == 2
    assert calls == []


def test_fast_path_respects_updates():
    engine = Engine()
    engine.load_document("d", DOC)
    engine.execute(
        "snap insert { <item id='a9' n='9'/> } into { exactly-one($d/root) }"
    )
    assert engine.execute('count($d//item[@id = "a9"])').first_value() == 1
    engine.execute(
        'snap rename { exactly-one($d//item[@id = "a9"]/@id) } to { "idx" }'
    )
    assert engine.execute('count($d//item[@id = "a9"])').first_value() == 0
