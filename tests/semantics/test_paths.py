"""Unit tests for path expressions: axes, node tests, predicates, focus."""

import pytest

from repro import Engine
from repro.errors import TypeError_


@pytest.fixture
def e() -> Engine:
    engine = Engine()
    engine.load_document(
        "doc",
        '<root><section id="s1"><para n="1">first</para>'
        '<para n="2">second</para><note>aside</note></section>'
        '<section id="s2"><para n="3">third</para></section></root>',
    )
    return engine


class TestForwardAxes:
    def test_child(self, e):
        assert e.execute("count($doc/root/section)").first_value() == 2

    def test_descendant(self, e):
        assert e.execute("count($doc/descendant::para)").first_value() == 3

    def test_descendant_or_self(self, e):
        n = e.execute(
            "count($doc/root/descendant-or-self::*)"
        ).first_value()
        assert n == 7  # root + 2 sections + 3 paras + note

    def test_self(self, e):
        assert e.execute("count($doc/root/self::root)").first_value() == 1
        assert e.execute("count($doc/root/self::other)").first_value() == 0

    def test_attribute_axis(self, e):
        assert e.execute("string($doc/root/section[1]/@id)").first_value() == "s1"

    def test_following_sibling(self, e):
        names = e.execute(
            "$doc//para[@n='1']/following-sibling::*/name()"
        ).strings()
        assert names == ["para", "note"]

    def test_following(self, e):
        count = e.execute("count($doc//para[@n='2']/following::para)").first_value()
        assert count == 1  # para n=3


class TestReverseAxes:
    def test_parent(self, e):
        assert e.execute("name($doc//para[@n='3']/..)").first_value() == "section"

    def test_ancestor(self, e):
        names = e.execute("$doc//para[@n='1']/ancestor::*/name()").strings()
        assert names == ["root", "section"]  # document order

    def test_ancestor_or_self(self, e):
        count = e.execute(
            "count($doc//para[@n='1']/ancestor-or-self::*)"
        ).first_value()
        assert count == 3

    def test_preceding_sibling(self, e):
        names = e.execute("$doc//note/preceding-sibling::*/@n").strings()
        assert names == ["1", "2"]  # delivered in document order

    def test_preceding(self, e):
        count = e.execute("count($doc//para[@n='3']/preceding::para)").first_value()
        assert count == 2

    def test_preceding_excludes_ancestors(self, e):
        names = e.execute("$doc//para[@n='3']/preceding::*/name()").strings()
        assert "section" in names and "root" not in names


class TestNodeTests:
    def test_wildcard(self, e):
        assert e.execute("count($doc/root/*)").first_value() == 2

    def test_text_test(self, e):
        # //para[1] selects the first para of EACH section (XPath trap).
        assert e.execute("($doc//para)[1]/text()").strings() == ["first"]
        assert e.execute("count($doc//para[1])").first_value() == 2

    def test_node_test(self, e):
        assert e.execute("count(($doc//section)[1]/node())").first_value() == 3

    def test_element_test_with_name(self, e):
        assert e.execute("count($doc//element(para))").first_value() == 3

    def test_attribute_name_test_on_attribute_axis(self, e):
        assert e.execute("count($doc//@n)").first_value() == 3

    def test_name_test_does_not_match_text(self, e):
        # child::para only selects elements named para.
        assert e.execute("count($doc//para/para)").first_value() == 0


class TestPredicates:
    def test_positional(self, e):
        assert e.execute("string($doc//para[2])").first_value() == "second"

    def test_last(self, e):
        # last() is per-step: the last para of each section.
        assert e.execute("$doc//para[last()]/@n").strings() == ["2", "3"]
        assert e.execute("string(($doc//para)[last()])").first_value() == "third"

    def test_position_function(self, e):
        # Per-section positions: only section 1 has a para beyond the first.
        assert e.execute("$doc//para[position() > 1]/@n").strings() == ["2"]
        globally = e.execute("($doc//para)[position() > 1]/@n").strings()
        assert globally == ["2", "3"]

    def test_boolean_predicate(self, e):
        assert e.execute("count($doc//para[@n = '2'])").first_value() == 1

    def test_stacked_predicates(self, e):
        out = e.execute("(($doc//para)[@n != '2'])[2]/@n").strings()
        assert out == ["3"]

    def test_predicate_sees_outer_variables(self, e):
        out = e.execute("let $k := '2' return $doc//para[@n = $k]/@n").strings()
        assert out == ["2"]

    def test_positional_predicate_per_step_context(self, e):
        # section/para[1]: first para of EACH section.
        assert e.execute("count($doc//section/para[1])").first_value() == 2

    def test_filter_on_sequence(self, e):
        assert e.execute("(10, 20, 30)[2]").first_value() == 20
        assert e.execute("(10, 20, 30)[. > 15]").values() == [20, 30]


class TestReverseAxisPredicates:
    """Positional predicates on reverse axes count in axis order
    (nearest-first), while results are delivered in document order."""

    def test_first_ancestor_is_nearest(self, e):
        name = e.execute("$doc//para[@n='1']/ancestor::*[1]/name()").values()
        assert name == ["section"]

    def test_second_ancestor(self, e):
        name = e.execute("$doc//para[@n='1']/ancestor::*[2]/name()").values()
        assert name == ["root"]

    def test_first_preceding_sibling_is_nearest(self, e):
        out = e.execute("$doc//note/preceding-sibling::*[1]/@n").strings()
        assert out == ["2"]

    def test_preceding_axis_position(self, e):
        out = e.execute("$doc//para[@n='3']/preceding::para[1]/@n").strings()
        assert out == ["2"]  # nearest preceding para

    def test_last_on_reverse_axis(self, e):
        out = e.execute(
            "$doc//note/preceding-sibling::*[last()]/@n"
        ).strings()
        assert out == ["1"]  # farthest sibling is last in axis order

    def test_results_still_document_order(self, e):
        out = e.execute(
            "$doc//para[@n='3']/ancestor-or-self::*/name()"
        ).values()
        assert out == ["root", "section", "para"]


class TestPathSemantics:
    def test_document_order_and_dedup(self, e):
        # Both sections' paras unioned with all paras: no duplicates,
        # document order.
        values = e.execute("($doc//para | $doc//section/para)/@n").strings()
        assert values == ["1", "2", "3"]

    def test_root_expr(self, e):
        assert e.execute("$doc//para[1]/root(.)/root/section[1]/@id").strings() == ["s1"]

    def test_leading_slash(self, e):
        # '/' requires a node context; paths over detached context work via root().
        assert e.execute("count($doc//note)").first_value() == 1

    def test_atomic_step_result_allowed(self, e):
        values = e.execute("$doc//para/string(.)").strings()
        assert values == ["first", "second", "third"]

    def test_mixed_step_result_rejected(self, e):
        with pytest.raises(TypeError_):
            e.execute("$doc//section/(., 1)")

    def test_path_base_must_be_nodes(self, e):
        with pytest.raises(TypeError_):
            e.execute("(1, 2)/a")

    def test_set_operators(self, e):
        assert e.execute(
            "count($doc//para intersect $doc//section[1]/*)"
        ).first_value() == 2
        assert e.execute(
            "count($doc//para except $doc//section[1]/*)"
        ).first_value() == 1
