"""Unit tests for the built-in function library."""

import pytest

from repro import Engine
from repro.errors import (
    CardinalityError,
    DynamicError,
    FunctionError,
    UndefinedFunctionError,
)


@pytest.fixture
def e() -> Engine:
    engine = Engine()
    engine.load_document(
        "doc", '<r><i v="1">alpha</i><i v="2">beta</i><i v="3">gamma</i></r>'
    )
    return engine


class TestCardinalityAndBooleans:
    def test_count_empty_exists(self, e):
        assert e.execute("count($doc//i)").first_value() == 3
        assert e.execute("empty($doc//nope)").first_value() is True
        assert e.execute("exists($doc//i)").first_value() is True

    def test_not_boolean(self, e):
        assert e.execute("not(0)").first_value() is True
        assert e.execute("boolean('x')").first_value() is True

    def test_true_false(self, e):
        assert e.execute("true()").first_value() is True
        assert e.execute("false()").first_value() is False

    def test_exactly_one(self, e):
        assert e.execute("exactly-one(1)").first_value() == 1
        with pytest.raises(CardinalityError):
            e.execute("exactly-one(())")

    def test_zero_or_one_one_or_more(self, e):
        assert e.execute("zero-or-one(())").values() == []
        with pytest.raises(CardinalityError):
            e.execute("zero-or-one((1, 2))")
        with pytest.raises(CardinalityError):
            e.execute("one-or-more(())")


class TestStrings:
    def test_concat_variadic(self, e):
        assert e.execute("concat('a', 'b', 'c', 1)").first_value() == "abc1"

    def test_string_join(self, e):
        assert (
            e.execute("string-join(('a', 'b', 'c'), '-')").first_value()
            == "a-b-c"
        )

    def test_substring(self, e):
        assert e.execute("substring('hello', 2)").first_value() == "ello"
        assert e.execute("substring('hello', 2, 3)").first_value() == "ell"

    def test_contains_starts_ends(self, e):
        assert e.execute("contains('hello', 'ell')").first_value() is True
        assert e.execute("starts-with('hello', 'he')").first_value() is True
        assert e.execute("ends-with('hello', 'lo')").first_value() is True

    def test_case_functions(self, e):
        assert e.execute("upper-case('aBc')").first_value() == "ABC"
        assert e.execute("lower-case('aBc')").first_value() == "abc"

    def test_normalize_space(self, e):
        assert (
            e.execute("normalize-space('  a   b  ')").first_value() == "a b"
        )

    def test_string_length(self, e):
        assert e.execute("string-length('hello')").first_value() == 5

    def test_translate(self, e):
        assert e.execute("translate('abcabc', 'abc', 'AB')").first_value() == "ABAB"

    def test_substring_before_after(self, e):
        assert e.execute("substring-before('a=b', '=')").first_value() == "a"
        assert e.execute("substring-after('a=b', '=')").first_value() == "b"

    def test_tokenize_matches_replace(self, e):
        assert e.execute("tokenize('a,b,c', ',')").strings() == ["a", "b", "c"]
        assert e.execute("matches('abc123', '[0-9]+')").first_value() is True
        assert e.execute("replace('a1b2', '[0-9]', '#')").first_value() == "a#b#"

    def test_bad_regex(self, e):
        with pytest.raises(FunctionError):
            e.execute("matches('x', '[')")

    def test_string_of_node(self, e):
        assert e.execute("string(($doc//i)[1])").first_value() == "alpha"

    def test_string_of_context(self, e):
        assert e.execute("($doc//i)[1]/string()").first_value() == "alpha"


class TestNumerics:
    def test_number(self, e):
        assert e.execute("number('3.5')").first_value() == 3.5

    def test_number_nan(self, e):
        import math

        assert math.isnan(e.execute("number('x')").first_value())

    def test_abs_floor_ceiling_round(self, e):
        assert e.execute("abs(-3)").first_value() == 3
        assert e.execute("floor(2.7)").first_value() == 2.0
        assert e.execute("ceiling(2.1)").first_value() == 3.0
        assert e.execute("round(2.5)").first_value() == 3.0
        assert e.execute("round(-2.5)").first_value() == -2.0  # toward +inf

    def test_sum_over_nodes(self, e):
        assert e.execute("sum($doc//i/@v)").first_value() == 6

    def test_sum_empty_default(self, e):
        assert e.execute("sum(())").first_value() == 0
        assert e.execute("sum((), 99)").first_value() == 99

    def test_avg_min_max(self, e):
        assert e.execute("avg((1, 2, 3))").first_value() == 2.0
        assert e.execute("min((3, 1, 2))").first_value() == 1
        assert e.execute("max($doc//i/@v)").first_value() == 3

    def test_min_max_strings(self, e):
        assert e.execute("max(('a', 'c', 'b'))").first_value() == "c"

    def test_avg_empty(self, e):
        assert e.execute("avg(())").values() == []


class TestSequences:
    def test_distinct_values(self, e):
        assert e.execute("distinct-values((1, 2, 1, 3, 2))").values() == [1, 2, 3]

    def test_distinct_values_coercion(self, e):
        assert len(e.execute("distinct-values((1, 1.0))")) == 1

    def test_reverse(self, e):
        assert e.execute("reverse((1, 2, 3))").values() == [3, 2, 1]

    def test_subsequence(self, e):
        assert e.execute("subsequence((1,2,3,4,5), 2, 3)").values() == [2, 3, 4]
        assert e.execute("subsequence((1,2,3), 2)").values() == [2, 3]

    def test_insert_before_remove(self, e):
        assert e.execute("insert-before((1,3), 2, 2)").values() == [1, 2, 3]
        assert e.execute("remove((1,2,3), 2)").values() == [1, 3]

    def test_index_of(self, e):
        assert e.execute("index-of((10, 20, 10), 10)").values() == [1, 3]
        assert e.execute("index-of((1,2), 9)").values() == []

    def test_deep_equal(self, e):
        assert e.execute(
            "deep-equal(<a x='1'>t</a>, <a x='1'>t</a>)"
        ).first_value() is True


class TestNodeFunctions:
    def test_name_local_name(self, e):
        assert e.execute("name(($doc//i)[1])").first_value() == "i"
        assert e.execute("($doc//i)[1]/name()").first_value() == "i"

    def test_name_of_empty(self, e):
        assert e.execute("name($doc//nope)").first_value() == ""

    def test_local_name_strips_prefix(self, e):
        e.bind("p", e.parse_fragment("<ns:elem/>"))
        assert e.execute("local-name($p)").first_value() == "elem"

    def test_node_name_empty_for_text(self, e):
        assert e.execute("node-name(($doc//i)[1]/text())").values() == []

    def test_root(self, e):
        assert e.execute("root(($doc//i)[1]) is $doc").first_value() is True

    def test_data(self, e):
        assert e.execute("data($doc//i/@v)").strings() == ["1", "2", "3"]


class TestMisc:
    def test_error(self, e):
        with pytest.raises(DynamicError):
            e.execute("error('boom')")

    def test_trace_passthrough(self):
        messages = []
        engine = Engine(trace_sink=messages.append)
        assert engine.execute("trace(42, 'here')").first_value() == 42
        assert messages == ["here: 42"]

    def test_xs_casts(self, e):
        assert e.execute("xs:integer('7')").first_value() == 7
        assert e.execute("xs:double('2.5')").first_value() == 2.5
        assert e.execute("xs:string(12)").first_value() == "12"
        assert e.execute("xs:boolean('true')").first_value() is True

    def test_fn_prefix_accepted(self, e):
        assert e.execute("fn:count((1, 2))").first_value() == 2

    def test_undefined_function(self, e):
        with pytest.raises(UndefinedFunctionError):
            e.execute("no-such-function(1)")

    def test_wrong_arity(self, e):
        with pytest.raises(UndefinedFunctionError):
            e.execute("count(1, 2)")

    def test_position_outside_focus(self, e):
        with pytest.raises(DynamicError):
            e.execute("position()")

    def test_unordered_identity(self, e):
        assert e.execute("unordered((3, 1, 2))").values() == [3, 1, 2]

    def test_head_tail(self, e):
        assert e.execute("head((1, 2, 3))").values() == [1]
        assert e.execute("tail((1, 2, 3))").values() == [2, 3]
        assert e.execute("head(())").values() == []
        assert e.execute("tail((1))").values() == []

    def test_compare(self, e):
        assert e.execute("compare('a', 'b')").first_value() == -1
        assert e.execute("compare('b', 'b')").first_value() == 0
        assert e.execute("compare((), 'b')").values() == []

    def test_codepoints(self, e):
        assert e.execute("string-to-codepoints('Hi')").values() == [72, 105]
        assert e.execute(
            "codepoints-to-string((72, 105))"
        ).first_value() == "Hi"
        with pytest.raises(FunctionError):
            e.execute("codepoints-to-string(-5)")

    def test_doc_catalog(self, e):
        assert e.execute("doc('doc') is $doc").first_value() is True
        assert e.execute("doc-available('doc')").first_value() is True
        assert e.execute("doc-available('missing')").first_value() is False
        with pytest.raises(DynamicError):
            e.execute("doc('missing')")
