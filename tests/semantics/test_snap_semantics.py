"""E6/E7/E8/E13 — snap semantics: the paper's examples and the three
update-application semantics."""

import pytest

from repro import Engine
from repro.errors import ConflictError, UpdateApplicationError
from repro.semantics.conflicts import check_conflict_free, is_conflict_free
from repro.semantics.update import (
    ApplySemantics,
    DeleteRequest,
    InsertRequest,
    RenameRequest,
    apply_update_list,
)
from repro.xdm.store import Store


class TestSnapOrderingExample:
    """E8 — Section 3.4: snap ordered { insert a, snap { insert b },
    insert c } yields <b/><a/><c/> 'in this order'."""

    def test_paper_example(self):
        e = Engine()
        e.bind("x", e.parse_fragment("<x/>"))
        e.execute(
            """snap ordered { insert {<a/>} into {$x},
                              snap { insert {<b/>} into {$x} },
                              insert {<c/>} into {$x} }"""
        )
        assert e.execute("$x").serialize() == "<x><b/><a/><c/></x>"

    def test_inner_snap_only_applies_its_own_scope(self):
        e = Engine()
        e.bind("x", e.parse_fragment("<x/>"))
        # After the inner snap closes, only <b/> is in the store; <a/> is
        # still pending.
        counts = e.execute(
            """snap { insert {<a/>} into {$x},
                      snap { insert {<b/>} into {$x} },
                      count($x/*) }"""
        )
        assert counts.first_value() == 1


class TestNestedSnapCounter:
    """E6 — Section 2.5: nextid() works under any outer snap because snap
    'must not freeze the state when its scope is opened'."""

    COUNTER = """
        declare variable $d := element counter { 0 };
        declare function nextid() as xs:integer {
          snap { replace { $d/text() } with { $d + 1 }, $d }
        };
    """

    def test_sequential_ids(self):
        e = Engine()
        e.load_module(self.COUNTER)
        ids = [e.execute("data(nextid())").strings()[0] for _ in range(4)]
        assert ids == ["1", "2", "3", "4"]

    def test_under_outer_snap(self):
        e = Engine()
        e.load_module(self.COUNTER)
        e.bind("log", e.parse_fragment("<log/>"))
        e.execute(
            """snap { insert { <entry id="{nextid()}"/> } into { $log },
                      insert { <entry id="{nextid()}"/> } into { $log } }"""
        )
        ids = e.execute("$log/entry/@id").strings()
        assert ids == ["1", "2"]

    def test_two_counters_independent(self):
        e = Engine()
        e.load_module(self.COUNTER)
        first = e.execute("data(nextid())").strings()[0]
        e2 = Engine()
        e2.load_module(self.COUNTER)
        second = e2.execute("data(nextid())").strings()[0]
        assert first == second == "1"


class TestDetachSemantics:
    """E13 — Section 3.1: delete detaches; the node remains accessible."""

    def test_detached_still_queryable(self):
        e = Engine()
        e.load_document("doc", "<a><b><c>deep</c></b></a>")
        e.execute(
            "declare variable $b := exactly-one($doc/a/b);"
            "snap delete { $b }"
        )
        assert e.execute("exists($doc/a/b)").first_value() is False
        assert e.execute("string($b/c)").first_value() == "deep"

    def test_detached_can_be_reinserted(self):
        e = Engine()
        e.load_document("doc", "<a><b/></a>")
        e.bind("elsewhere", e.parse_fragment("<elsewhere/>"))
        e.execute(
            "declare variable $b := exactly-one($doc/a/b);"
            "snap delete { $b }, snap insert { $b } into { $elsewhere }"
        )
        # insert copies, so a *copy* of b lands in $elsewhere while b
        # itself stays detached.
        assert e.execute("count($elsewhere/b)").first_value() == 1

    def test_detached_root_of_path_queries(self):
        e = Engine()
        e.load_document("doc", "<a><b x='1'/><b x='2'/></a>")
        e.execute(
            "declare variable $bs := $doc/a/b; snap delete { $bs }"
        )
        assert e.execute("count($bs[@x = '2'])").first_value() == 1


class TestThreeSemanticsAtLanguageLevel:
    """E7 — the snap keyword selects the application semantics."""

    def make(self):
        e = Engine()
        e.bind("x", e.parse_fragment("<x><n/></x>"))
        return e

    def test_ordered_last_write_wins(self):
        e = self.make()
        e.execute(
            """snap ordered { rename {$x/n} to {"one"},
                              rename {$x/n} to {"two"} }"""
        )
        assert e.execute("name($x/*)").first_value() == "two"

    def test_conflict_detection_rejects_double_rename(self):
        e = self.make()
        with pytest.raises(ConflictError):
            e.execute(
                """snap conflict-detection { rename {$x/n} to {"one"},
                                             rename {$x/n} to {"two"} }"""
            )

    def test_conflict_detection_accepts_disjoint_updates(self):
        e = self.make()
        e.execute(
            """snap conflict-detection {
                 rename {$x/n} to {"renamed"},
                 insert {<m/>} before {$x/n} }"""
        )
        assert e.execute("$x").serialize() == "<x><m/><renamed/></x>"

    def test_nondeterministic_accepts_everything(self):
        e = self.make()
        e.execute(
            """snap nondeterministic { rename {$x/n} to {"one"},
                                       rename {$x/n} to {"two"} }"""
        )
        assert e.execute("name($x/*)").first_value() in ("one", "two")

    def test_engine_default_semantics(self):
        e = Engine(default_semantics="conflict-detection")
        e.bind("x", e.parse_fragment("<x><n/></x>"))
        with pytest.raises(ConflictError):
            e.execute('rename {$x/n} to {"a"}, rename {$x/n} to {"b"}')


class TestApplyUpdateListAPI:
    """E7 — the update-list application machinery, used directly."""

    def setup_method(self):
        self.store = Store()
        self.root = self.store.create_element("root")
        self.a = self.store.create_element("a")
        self.b = self.store.create_element("b")
        self.store.append_child(self.root, self.a)
        self.store.append_child(self.root, self.b)

    def test_ordered_application(self):
        n1 = self.store.create_element("n1")
        n2 = self.store.create_element("n2")
        delta = [
            InsertRequest((n1,), "last", self.root),
            InsertRequest((n2,), "last", self.root),
        ]
        apply_update_list(self.store, delta, ApplySemantics.ORDERED)
        assert self.store.children(self.root) == (self.a, self.b, n1, n2)

    def test_ordered_rejects_permutation(self):
        with pytest.raises(UpdateApplicationError):
            apply_update_list(
                self.store, [], ApplySemantics.ORDERED, permutation=[]
            )

    def test_nondeterministic_permutation(self):
        delta = [
            RenameRequest(self.a, "one"),
            RenameRequest(self.b, "two"),
        ]
        apply_update_list(
            self.store, delta, ApplySemantics.NONDETERMINISTIC, permutation=[1, 0]
        )
        assert self.store.name(self.a) == "one"
        assert self.store.name(self.b) == "two"

    def test_invalid_permutation_rejected(self):
        delta = [RenameRequest(self.a, "x")]
        with pytest.raises(UpdateApplicationError):
            apply_update_list(
                self.store, delta, ApplySemantics.NONDETERMINISTIC,
                permutation=[0, 0],
            )

    def test_conflict_detection_passes_then_applies(self):
        delta = [
            RenameRequest(self.a, "one"),
            RenameRequest(self.b, "two"),
        ]
        apply_update_list(self.store, delta, ApplySemantics.CONFLICT_DETECTION)
        assert self.store.name(self.a) == "one"

    def test_from_keyword(self):
        assert ApplySemantics.from_keyword(None) is ApplySemantics.ORDERED
        assert (
            ApplySemantics.from_keyword("conflict-detection")
            is ApplySemantics.CONFLICT_DETECTION
        )


class TestConflictRules:
    """The four conflict rules of repro.semantics.conflicts."""

    def setup_method(self):
        self.store = Store()
        self.p = self.store.create_element("p")
        self.c = self.store.create_element("c")
        self.store.append_child(self.p, self.c)

    def test_double_rename_conflicts(self):
        delta = [RenameRequest(self.c, "a"), RenameRequest(self.c, "b")]
        assert not is_conflict_free(delta)

    def test_renames_of_distinct_nodes_ok(self):
        delta = [RenameRequest(self.p, "a"), RenameRequest(self.c, "b")]
        check_conflict_free(delta)

    def test_same_position_inserts_conflict(self):
        n1 = self.store.create_element("n1")
        n2 = self.store.create_element("n2")
        delta = [
            InsertRequest((n1,), "last", self.p),
            InsertRequest((n2,), "last", self.p),
        ]
        assert not is_conflict_free(delta)

    def test_different_anchor_inserts_ok(self):
        n1 = self.store.create_element("n1")
        n2 = self.store.create_element("n2")
        delta = [
            InsertRequest((n1,), "before", self.c),
            InsertRequest((n2,), "after", self.c),
        ]
        check_conflict_free(delta)

    def test_insert_after_deleted_anchor_conflicts(self):
        n1 = self.store.create_element("n1")
        delta = [
            InsertRequest((n1,), "after", self.c),
            DeleteRequest(self.c),
        ]
        assert not is_conflict_free(delta)

    def test_delete_parent_of_into_target_ok(self):
        # Deleting (detaching) the parent does not invalidate insert-into.
        n1 = self.store.create_element("n1")
        delta = [
            InsertRequest((n1,), "last", self.c),
            DeleteRequest(self.c),
        ]
        check_conflict_free(delta)

    def test_double_delete_ok(self):
        delta = [DeleteRequest(self.c), DeleteRequest(self.c)]
        check_conflict_free(delta)

    def test_rename_plus_delete_ok(self):
        delta = [RenameRequest(self.c, "n"), DeleteRequest(self.c)]
        check_conflict_free(delta)

    def test_same_node_inserted_twice_conflicts(self):
        n1 = self.store.create_element("n1")
        delta = [
            InsertRequest((n1,), "last", self.p),
            InsertRequest((n1,), "before", self.c),
        ]
        assert not is_conflict_free(delta)

    def test_conflict_free_permutations_agree(self):
        """The defining property: every permutation of a verified-free Δ
        produces the same store."""
        import itertools

        def build():
            store = Store()
            root = store.create_element("root")
            kid = store.create_element("kid")
            store.append_child(root, kid)
            n1 = store.create_element("n1")
            n2 = store.create_element("n2")
            delta = [
                RenameRequest(kid, "renamed"),
                InsertRequest((n1,), "before", kid),
                InsertRequest((n2,), "last", root),
            ]
            return store, root, delta

        reference = None
        for perm in itertools.permutations(range(3)):
            store, root, delta = build()
            check_conflict_free(delta)
            apply_update_list(
                store, delta, ApplySemantics.NONDETERMINISTIC,
                permutation=list(perm),
            )
            shape = tuple(
                (store.name(c)) for c in store.children(root)
            )
            if reference is None:
                reference = shape
            assert shape == reference
