"""Tests for exact xs:decimal arithmetic (Decimal-backed)."""

from decimal import Decimal

import pytest

from repro import Engine
from repro.xdm.values import XS_DECIMAL, XS_DOUBLE, XS_INTEGER, AtomicValue


@pytest.fixture
def e() -> Engine:
    return Engine()


class TestExactness:
    def test_classic_float_traps(self, e):
        assert e.execute("0.1 + 0.2").serialize() == "0.3"
        assert e.execute("65.95 * 0.9").serialize() == "59.355"
        assert e.execute("1.1 - 1.0").serialize() == "0.1"

    def test_decimal_literal_type(self, e):
        item = e.execute("3.14").items[0]
        assert item.type == XS_DECIMAL
        assert isinstance(item.value, Decimal)
        assert item.value == Decimal("3.14")

    def test_integer_div_yields_exact_decimal(self, e):
        assert e.execute("7 div 2").serialize() == "3.5"
        assert e.execute("1 div 8").serialize() == "0.125"

    def test_decimal_mod_sign(self, e):
        assert e.execute("-7.5 mod 2").serialize() == "-1.5"
        assert e.execute("7.5 mod -2").serialize() == "1.5"

    def test_decimal_idiv(self, e):
        assert e.execute("7.5 idiv 2").first_value() == 3
        assert e.execute("-7.5 idiv 2").first_value() == -3

    def test_double_still_floats(self, e):
        item = e.execute("1.5e0 + 1").items[0]
        assert item.type == XS_DOUBLE
        assert isinstance(item.value, float)

    def test_decimal_plus_double_is_double(self, e):
        assert e.execute("0.1 + 1e0").items[0].type == XS_DOUBLE

    def test_unary_minus_preserves_decimal(self, e):
        item = e.execute("-(1.5)").items[0]
        assert item.type == XS_DECIMAL and item.value == Decimal("-1.5")

    def test_lexical_canonicalization(self, e):
        assert e.execute("2.50 + 0").serialize() == "2.5"
        assert e.execute("2.0 * 2").serialize() == "4"
        assert e.execute("0.0 + 0").serialize() == "0"


class TestDecimalInterop:
    def test_comparisons_exact(self, e):
        assert e.execute("0.1 + 0.2 = 0.3").first_value() is True
        assert e.execute("0.1 + 0.2 eq 0.3").first_value() is True
        assert e.execute("1.5 < 2").first_value() is True

    def test_cast_to_decimal_exact(self, e):
        assert e.execute("'0.30' cast as xs:decimal").serialize() == "0.3"

    def test_functions_preserve_decimal(self, e):
        assert e.execute("abs(-2.5)").items[0].type == XS_DECIMAL
        assert e.execute("floor(2.5)").serialize() == "2"
        assert e.execute("round(2.5)").serialize() == "3"

    def test_instance_of(self, e):
        assert e.execute("1.5 instance of xs:decimal").first_value() is True
        assert e.execute("1.5 instance of xs:double").first_value() is False

    def test_order_by_decimal_keys(self, e):
        out = e.execute(
            "for $x in (2.5, 0.1, 1.75) order by $x return $x"
        ).serialize()
        assert out == "0.1 1.75 2.5"

    def test_python_decimal_binding(self, e):
        e.bind("d", AtomicValue.decimal(Decimal("10.01")))
        assert e.execute("$d * 2").serialize() == "20.02"

    def test_persistence_roundtrip(self, e, tmp_path):
        from repro.persist import load_engine, save_engine

        e.bind("price", AtomicValue.decimal(Decimal("19.99")))
        path = str(tmp_path / "db.json")
        save_engine(e, path)
        restored = load_engine(path)
        assert restored.execute("$price * 3").serialize() == "59.97"

    def test_attribute_content_rendering(self, e):
        assert e.execute('<p v="{ 0.1 + 0.2 }"/>').serialize() == '<p v="0.3"/>'
