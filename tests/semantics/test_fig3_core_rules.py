"""E3 — semantics of the core XQuery expressions (paper Fig. 3).

Each rule is tested for its value *and* for the evaluation-order /
delta-concatenation behaviour the figure prescribes.  Store-visible probes
(`snap insert`) are used to observe evaluation order.
"""

import pytest

from repro import Engine


@pytest.fixture
def e() -> Engine:
    engine = Engine()
    engine.bind("trace", engine.parse_fragment("<trace/>"))
    return engine


def probe(tag: str, value: str = "()") -> str:
    """An expression with a visible side effect, returning *value*."""
    return f"(snap insert {{ <{tag}/> }} into {{ $trace }}, {value})"


def trace_of(engine: Engine) -> list[str]:
    return [n.name for n in engine.execute("$trace/*").items]


class TestSequenceRule:
    """store0 ⊢ E1 ⇒ v1;Δ1;store1   store1 ⊢ E2 ⇒ v2;Δ2;store2."""

    def test_values_concatenate_in_order(self, e):
        assert e.execute("(1, 2), 3").values() == [1, 2, 3]

    def test_left_evaluated_first(self, e):
        e.execute(f"{probe('first')}, {probe('second')}")
        assert trace_of(e) == ["first", "second"]

    def test_deltas_concatenate_in_order(self, e):
        e.bind("sink", e.parse_fragment("<sink/>"))
        e.execute(
            "insert { <a/> } into { $sink }, insert { <b/> } into { $sink }"
        )
        assert e.execute("$sink").serialize() == "<sink><a/><b/></sink>"

    def test_empty_items_vanish(self, e):
        assert e.execute("(), 1, ()").values() == [1]


class TestForRule:
    """One premise per item, store threaded through iterations."""

    def test_binding_and_concatenation(self, e):
        assert e.execute("for $i in (1, 2, 3) return $i * 10").values() == [
            10, 20, 30,
        ]

    def test_iterations_see_previous_effects(self, e):
        # Each iteration's snap makes its insert visible to the next one.
        counts = e.execute(
            "for $i in 1 to 3 return"
            " (snap insert { <n/> } into { $trace }, count($trace/*))"
        ).values()
        assert counts == [1, 2, 3]

    def test_iteration_order_of_effects(self, e):
        e.execute(f"for $i in 1 to 2 return {probe('it')}")
        assert trace_of(e) == ["it", "it"]

    def test_empty_source_no_iterations(self, e):
        assert e.execute("for $i in () return error()").values() == []

    def test_source_delta_precedes_body_deltas(self, e):
        e.bind("sink", e.parse_fragment("<sink/>"))
        e.execute(
            """for $i in (insert { <src/> } into { $sink }, 1, 2)
               return insert { <body/> } into { $sink }"""
        )
        names = [n.name for n in e.execute("$sink/*").items]
        assert names == ["src", "body", "body"]


class TestFunctionCallRule:
    """Arguments left-to-right, then the body; deltas concatenated."""

    def test_user_function_value(self, e):
        e.load_module("declare function double($x) { $x * 2 };")
        assert e.execute("double(21)").first_value() == 42

    def test_argument_order(self, e):
        e.load_module("declare function pair($a, $b) { ($a, $b) };")
        e.execute(f"pair({probe('arg1', '1')}, {probe('arg2', '2')})")
        assert trace_of(e) == ["arg1", "arg2"]

    def test_args_then_body_effects(self, e):
        e.load_module(
            "declare function noisy($v) {"
            " (snap insert { <body/> } into { $trace }, $v) };"
        )
        e.execute(f"noisy({probe('arg', '5')})")
        assert trace_of(e) == ["arg", "body"]

    def test_function_sees_globals_not_caller_locals(self, e):
        e.load_module("declare function get() { $g };")
        e.bind("g", 7)
        assert e.execute("let $g := 9 return get()").first_value() == 7

    def test_recursion(self, e):
        e.load_module(
            "declare function fact($n) {"
            " if ($n le 1) then 1 else $n * fact($n - 1) };"
        )
        assert e.execute("fact(6)").first_value() == 720

    def test_function_delta_escapes_to_caller_snap(self, e):
        # An update made inside a function without snap is pending in the
        # caller's scope — first-class compositional updates (Section 2.2).
        e.load_module(
            "declare function log_and_get($v) {"
            " (insert { <logged/> } into { $trace }, $v) };"
        )
        value = e.execute("log_and_get(3)").first_value()
        assert value == 3
        assert trace_of(e) == ["logged"]


class TestElementConstructionRule:
    """element{E1}{E2}: name first, then content; NewElement allocates."""

    def test_computed_name(self, e):
        out = e.execute("element { concat('a', 'b') } { 1 }").serialize()
        assert out == "<ab>1</ab>"

    def test_name_evaluated_before_content(self, e):
        name_probe = probe("name", "'n'")
        content_probe = probe("content", "1")
        e.execute(f"element {{ ({name_probe}) }} {{ {content_probe} }}")
        assert trace_of(e) == ["name", "content"]

    def test_content_nodes_copied(self, e):
        e.bind("donor", e.parse_fragment("<donor/>"))
        e.execute("<wrap>{ $donor }</wrap>")
        assert e.execute("empty($donor/..)").first_value() is True

    def test_adjacent_atomics_one_text_node(self, e):
        out = e.execute("<a>{ 1, 2, 'x' }</a>")
        assert out.serialize() == "<a>1 2 x</a>"
        assert e.execute("count(<a>{1,2}</a>/text())").first_value() == 1


class TestLetRule:
    def test_binds_whole_sequence(self, e):
        assert e.execute("let $s := (1,2,3) return count($s)").first_value() == 3

    def test_source_before_body(self, e):
        e.execute(f"let $v := {probe('src', '1')} return {probe('body', '$v')}")
        assert trace_of(e) == ["src", "body"]

    def test_source_evaluated_once(self, e):
        e.execute(
            f"let $v := {probe('once', '1')} return ($v, $v, $v)"
        )
        assert trace_of(e) == ["once"]


class TestIfRule:
    def test_then_branch(self, e):
        assert e.execute("if (1 = 1) then 'y' else 'n'").first_value() == "y"

    def test_else_branch(self, e):
        assert e.execute("if (1 = 2) then 'y' else 'n'").first_value() == "n"

    def test_untaken_branch_not_evaluated(self, e):
        e.execute(f"if (1 = 1) then {probe('then')} else {probe('else')}")
        assert trace_of(e) == ["then"]

    def test_condition_delta_kept(self, e):
        e.execute(
            "if ((insert { <cond/> } into { $trace }, 1)) then 1 else 2"
        )
        assert trace_of(e) == ["cond"]


class TestEqualsRule:
    def test_value_and_order(self, e):
        e.execute(f"{probe('lhs', '1')} = {probe('rhs', '1')}")
        assert trace_of(e) == ["lhs", "rhs"]

    def test_general_equality(self, e):
        assert e.execute("(1, 2) = (2, 9)").first_value() is True
        assert e.execute("(1, 2) = (3, 9)").first_value() is False
