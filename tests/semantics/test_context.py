"""Unit tests for the dynamic context and function registry."""

import pytest

from repro.errors import (
    DynamicError,
    UndefinedFunctionError,
    UndefinedVariableError,
)
from repro.lang.core_ast import CFunction, CLiteral
from repro.semantics.context import DynamicContext, FunctionRegistry
from repro.semantics.functions import default_registry
from repro.xdm.values import AtomicValue


class TestDynamicContext:
    def test_bind_returns_new_context(self):
        base = DynamicContext()
        bound = base.bind("x", [AtomicValue.integer(1)])
        assert bound is not base
        assert "x" not in base.variables
        assert bound.variable("x")[0].value == 1

    def test_bind_many(self):
        ctx = DynamicContext().bind_many(
            {"a": [AtomicValue.integer(1)], "b": [AtomicValue.integer(2)]}
        )
        assert ctx.variable("a")[0].value == 1
        assert ctx.variable("b")[0].value == 2

    def test_undefined_variable(self):
        with pytest.raises(UndefinedVariableError):
            DynamicContext().variable("ghost")

    def test_with_focus(self):
        item = AtomicValue.string("focus")
        ctx = DynamicContext().with_focus(item, 2, 5)
        assert ctx.require_context_item() is item
        assert (ctx.position, ctx.size) == (2, 5)

    def test_focus_preserves_variables(self):
        ctx = DynamicContext().bind("k", [AtomicValue.integer(9)])
        focused = ctx.with_focus(AtomicValue.integer(0), 1, 1)
        assert focused.variable("k")[0].value == 9

    def test_missing_context_item(self):
        with pytest.raises(DynamicError):
            DynamicContext().require_context_item()

    def test_rebinding_shadows(self):
        ctx = DynamicContext().bind("x", [AtomicValue.integer(1)])
        ctx2 = ctx.bind("x", [AtomicValue.integer(2)])
        assert ctx.variable("x")[0].value == 1
        assert ctx2.variable("x")[0].value == 2


def fn(name: str, params=()) -> CFunction:
    return CFunction(
        name=name, params=list(params), body=CLiteral(value=AtomicValue.integer(0))
    )


class TestFunctionRegistry:
    def test_exact_user_resolution(self):
        registry = FunctionRegistry()
        declared = fn("local:f", ["x"])
        registry.register_user(declared)
        assert registry.resolve("local:f", 1) is declared

    def test_arity_distinguishes(self):
        registry = FunctionRegistry()
        one = fn("f", ["a"])
        two = fn("f", ["a", "b"])
        registry.register_user(one)
        registry.register_user(two)
        assert registry.resolve("f", 1) is one
        assert registry.resolve("f", 2) is two

    def test_builtin_beats_suffix_match(self):
        registry = default_registry()
        registry.register_user(fn("my:count", ["s"]))
        resolved = registry.resolve("count", 1)
        assert not isinstance(resolved, CFunction)  # the builtin wins

    def test_suffix_fallback_when_no_builtin(self):
        registry = default_registry()
        declared = fn("local:thing", [])
        registry.register_user(declared)
        assert registry.resolve("thing", 0) is declared

    def test_register_user_as_alias(self):
        registry = FunctionRegistry()
        declared = fn("lib:f", ["x"])
        registry.register_user(declared)
        registry.register_user_as("m:f", declared)
        assert registry.resolve("m:f", 1) is declared

    def test_unknown_raises(self):
        with pytest.raises(UndefinedFunctionError):
            FunctionRegistry().resolve("nope", 0)

    def test_fn_prefix_stripped_for_builtins(self):
        registry = default_registry()
        assert registry.lookup_builtin("fn:count", 1) is not None
        assert registry.lookup_builtin("count", 1) is not None

    def test_user_functions_listing(self):
        registry = FunctionRegistry()
        registry.register_user(fn("a:x", []))
        registry.register_user(fn("b:y", ["p"]))
        names = {f.name for f in registry.user_functions()}
        assert names == {"a:x", "b:y"}
