"""The Section 2 Web service on a durable engine: restartable serving.

The paper's auction service keeps its request log, archive and call
counter in engine state; with ``durable_path`` that state survives
process death — a restarted service continues the id sequence and keeps
every acknowledged log entry.
"""

import pytest

from repro.usecases import AuctionFrontEnd, AuctionService
from repro.xmark import XMarkConfig, generate_auction_xml


@pytest.fixture(scope="module")
def xml() -> str:
    return generate_auction_xml(XMarkConfig(persons=15, items=10))


@pytest.fixture
def durable_path(tmp_path) -> str:
    return str(tmp_path / "service")


def ids(service):
    item = service.engine.execute(
        "data(($auction//item/@id)[1])"
    ).strings()[0]
    user = service.engine.execute(
        "data(($auction//person/@id)[1])"
    ).strings()[0]
    return item, user


class TestDurableService:
    def test_counter_continues_across_restart(self, xml, durable_path):
        service = AuctionService(
            auction_xml=xml, maxlog=3, durable_path=durable_path
        )
        assert [service.next_id() for _ in range(3)] == [1, 2, 3]
        service.close()

        restarted = AuctionService(durable_path=durable_path)
        assert restarted.durable.recovered
        assert restarted.next_id() == 4
        restarted.close()

    def test_log_and_archive_survive_restart(self, xml, durable_path):
        service = AuctionService(
            auction_xml=xml, maxlog=3, durable_path=durable_path
        )
        item, user = ids(service)
        for _ in range(4):  # 3 trigger a rollover, 1 lands in the new log
            service.get_item(item, user)
        log, archived = service.log_entries(), service.archived_entries()
        assert (log, archived) == (1, 3)
        service.close()

        restarted = AuctionService(durable_path=durable_path)
        assert restarted.log_entries() == log
        assert restarted.archived_entries() == archived
        restarted.engine.store.check_invariants()
        # And the restarted service keeps serving.
        restarted.get_item(item, user)
        assert restarted.log_entries() == log + 1
        restarted.close()

    def test_recovery_ignores_constructor_state_arguments(
        self, xml, durable_path
    ):
        service = AuctionService(
            auction_xml=xml, maxlog=3, durable_path=durable_path
        )
        service.next_id()
        service.close()
        # A different maxlog (and no auction_xml) on reopen: the
        # recovered bindings win.
        restarted = AuctionService(maxlog=99, durable_path=durable_path)
        assert (
            restarted.engine.execute("$maxlog").first_value() == 3
        )
        restarted.close()

    def test_double_restart_is_stable(self, xml, durable_path):
        service = AuctionService(
            auction_xml=xml, maxlog=3, durable_path=durable_path
        )
        item, user = ids(service)
        service.get_item(item, user)
        first = service.engine.execute("$log").serialize()
        service.close()
        for _ in range(2):
            restarted = AuctionService(durable_path=durable_path)
            assert restarted.engine.execute("$log").serialize() == first
            restarted.close()

    def test_frontend_serves_a_durable_service(self, xml, durable_path):
        service = AuctionService(
            auction_xml=xml, maxlog=5, durable_path=durable_path
        )
        item, user = ids(service)
        with AuctionFrontEnd(service=service, workers=3) as frontend:
            futures = [
                frontend.submit_get_item(item, user) for _ in range(8)
            ]
            for future in futures:
                future.result(timeout=30)
        total = service.log_entries() + service.archived_entries()
        assert total == 8
        service.close()

        restarted = AuctionService(durable_path=durable_path)
        assert (
            restarted.log_entries() + restarted.archived_entries() == 8
        )
        restarted.close()

    def test_non_durable_service_still_works(self, xml):
        service = AuctionService(auction_xml=xml, maxlog=3)
        assert service.durable is None
        item, user = ids(service)
        service.get_item(item, user)
        assert service.log_entries() == 1
        service.close()  # no-op without a durable backend
