"""E4/E5 — the Section 2 Web-service use case."""

import pytest

from repro.usecases import AuctionService
from repro.xmark import XMarkConfig, generate_auction_xml


@pytest.fixture(scope="module")
def xml() -> str:
    return generate_auction_xml(XMarkConfig(persons=15, items=10))


@pytest.fixture
def service(xml) -> AuctionService:
    return AuctionService(auction_xml=xml, maxlog=3)


class TestGetItem:
    def test_returns_requested_item(self, service):
        result = service.get_item("item2", "person1")
        assert 'id="item2"' in result.serialize()

    def test_unknown_item_returns_empty(self, service):
        result = service.get_item("item999", "person1")
        assert len(result) == 0

    def test_nolog_baseline_matches(self, service):
        logged = service.get_item("item1", "person0").serialize()
        bare = service.get_item_nolog("item1", "person0").serialize()
        assert logged == bare

    def test_nolog_does_not_log(self, service):
        before = service.log_entries()
        service.get_item_nolog("item1", "person0")
        assert service.log_entries() == before


class TestLogging:
    """E4 — Section 2.2: an update inside a function that returns a value."""

    def test_each_call_logs_one_entry(self, service):
        service.get_item("item0", "person0")
        assert service.log_entries() == 1
        service.get_item("item1", "person1")
        assert service.log_entries() == 2

    def test_log_entry_records_user_and_item(self, service):
        service.get_item("item0", "person0")
        log = service.log_xml()
        assert 'itemid="item0"' in log
        assert "user=" in log

    def test_entries_have_sequential_ids(self, service):
        service.get_item("item0", "person0")
        service.get_item("item1", "person1")
        log = service.log_xml()
        assert 'id="1"' in log and 'id="2"' in log


class TestRollover:
    """E5 — Section 2.3: the snap makes the insert visible to the rollover
    check *within the same call*."""

    def test_rollover_at_maxlog(self, service):
        for i in range(3):  # maxlog = 3
            service.get_item(f"item{i}", "person0")
        assert service.archive_batches() == 1
        assert service.archived_entries() == 3
        assert service.log_entries() == 0

    def test_multiple_rollovers(self, service):
        for i in range(8):
            service.get_item(f"item{i % 5}", f"person{i % 3}")
        assert service.archive_batches() == 2
        assert service.archived_entries() == 6
        assert service.log_entries() == 2

    def test_batch_records_size(self, service):
        for i in range(3):
            service.get_item("item0", "person0")
        assert '<batch size="3">' in service.archive_xml()

    def test_counter_continues_across_rollover(self, service):
        for i in range(4):
            service.get_item("item0", "person0")
        # entry 4 is in the fresh log with the continuing id.
        assert 'id="4"' in service.log_xml()


class TestCounter:
    """E6 support — nextid() exposed through the service."""

    def test_next_id_increments(self, service):
        first = service.next_id()
        assert service.next_id() == first + 1

    def test_ids_shared_with_logging(self, service):
        nid = service.next_id()  # consumes one id
        service.get_item("item0", "person0")
        assert f'id="{nid + 1}"' in service.log_xml()


class TestDefaultConstruction:
    def test_default_document_generated(self):
        service = AuctionService(maxlog=100)
        assert service.engine.execute(
            "count($auction//person)"
        ).first_value() > 0
