"""Recursive-descent parser for XQuery! (XQuery 1.0 subset + Fig. 1).

The parser is token-driven except inside direct element constructors, where
it switches to character-level scanning (XML content is not XQuery-lexable)
and back again for enclosed ``{ ... }`` expressions — see
:mod:`repro.lang.lexer` for the hand-off mechanism.

Keyword recognition is contextual throughout: ``insert``, ``snap``, ``for``
etc. are only treated as keywords in positions where the grammar calls for
them *and* the required follow token is present, so they all remain usable
as element names in paths.
"""

from __future__ import annotations

from repro.errors import ParseError
from repro.lang import ast
from repro.lang.lexer import Lexer, decode_string_entities
from repro.lang.tokens import Token, TokenKind

# Node-kind tests allowed where a name test may appear.
_KIND_TESTS = {
    "node",
    "text",
    "comment",
    "processing-instruction",
    "element",
    "attribute",
    "document-node",
}

# Function names that may never be parsed as a function call.
_RESERVED_FUNCTION_NAMES = _KIND_TESTS | {
    "if",
    "typeswitch",
    "item",
    "empty-sequence",
}

_AXES = {
    "child",
    "descendant",
    "attribute",
    "self",
    "descendant-or-self",
    "following-sibling",
    "following",
    "parent",
    "ancestor",
    "preceding-sibling",
    "preceding",
    "ancestor-or-self",
}

_VALUE_COMP = {"eq", "ne", "lt", "le", "gt", "ge"}

_SNAP_MODES = {"ordered", "nondeterministic", "conflict-detection"}

_UPDATE_KEYWORDS = {"insert", "delete", "replace", "rename"}

_COMPUTED_CTORS = {
    "element",
    "attribute",
    "text",
    "comment",
    "document",
    "processing-instruction",
}


def parse(text: str) -> ast.Expr:
    """Parse a query body (an Expr) and require end of input.

    Input nested beyond the interpreter's recursion headroom gets a
    typed :class:`~repro.errors.ParseError` instead of an untyped
    ``RecursionError`` — hostile input must always yield a typed
    refusal (the admission layer's ``max_depth`` bound refuses such
    queries before the parser ever sees them; this is the last line of
    defense for unguarded entry points).
    """
    parser = Parser(text)
    try:
        expr = parser.parse_expr()
        parser.expect(TokenKind.EOF)
    except RecursionError:
        raise ParseError("query nests too deeply to parse; refused") from None
    return expr


def parse_module(text: str) -> ast.Module:
    """Parse a module: prolog declarations plus optional query body.

    Same hostile-input contract as :func:`parse`: over-deep nesting is
    a typed refusal, never a stack overflow.
    """
    parser = Parser(text)
    try:
        module = parser.parse_module()
        parser.expect(TokenKind.EOF)
    except RecursionError:
        raise ParseError("query nests too deeply to parse; refused") from None
    return module


class Parser:
    """One-pass recursive-descent parser over a :class:`Lexer`."""

    def __init__(self, text: str):
        self.lexer = Lexer(text)

    # ------------------------------------------------------------------
    # Token helpers
    # ------------------------------------------------------------------

    def peek(self) -> Token:
        return self.lexer.peek()

    def next(self) -> Token:
        return self.lexer.next()

    def error(self, message: str, token: Token | None = None) -> ParseError:
        token = token or self.peek()
        return ParseError(message, token.line, token.column)

    def expect(self, kind: TokenKind) -> Token:
        token = self.next()
        if token.kind is not kind:
            raise self.error(
                f"expected {kind.value!r}, found {token.value or 'end of input'!r}",
                token,
            )
        return token

    def expect_name(self, word: str) -> Token:
        token = self.next()
        if not token.is_name(word):
            raise self.error(
                f"expected keyword {word!r}, found {token.value or 'end of input'!r}",
                token,
            )
        return token

    def accept(self, kind: TokenKind) -> Token | None:
        token = self.peek()
        if token.kind is kind:
            return self.next()
        return None

    def accept_name(self, *words: str) -> Token | None:
        token = self.peek()
        if token.is_name(*words):
            return self.next()
        return None

    def _peek2(self) -> Token:
        """Look two tokens ahead."""
        first = self.next()
        second = self.peek()
        self.lexer.push_back(first)
        return second

    def _third_is_lbrace(self) -> bool:
        """Look three tokens ahead for a '{' (computed-ctor lookahead)."""
        first = self.next()
        second = self.next()
        third = self.peek()
        self.lexer.push_back(second)
        self.lexer.push_back(first)
        return third.kind is TokenKind.LBRACE

    # ------------------------------------------------------------------
    # Modules and prolog
    # ------------------------------------------------------------------

    def parse_module(self) -> ast.Module:
        module = ast.Module()
        self._parse_module_decl(module)
        while True:
            token = self.peek()
            if not token.is_name("declare", "import"):
                break
            if token.is_name("import"):
                self._parse_import(module)
                continue
            second = self._peek2()
            if second.is_name("variable"):
                module.declarations.append(self._parse_variable_decl())
            elif second.is_name("function"):
                module.declarations.append(self._parse_function_decl())
            else:
                # Setters we accept and ignore (boundary-space, ordering...).
                self._skip_to_semicolon()
        if self.peek().kind is not TokenKind.EOF:
            module.body = self.parse_expr()
        return module

    def _parse_module_decl(self, module: ast.Module) -> None:
        if self.peek().is_name("xquery"):
            self._skip_to_semicolon()  # xquery version "1.0";
        if self.peek().is_name("module"):
            self.next()
            self.expect_name("namespace")
            prefix = self.expect(TokenKind.NAME).value
            self.expect(TokenKind.EQ)
            uri = self.expect(TokenKind.STRING).value
            self.expect(TokenKind.SEMICOLON)
            module.declared_prefix = prefix
            module.declared_uri = uri

    def _parse_import(self, module: ast.Module) -> None:
        """import module namespace p = "uri" (at "loc")?;  (schema imports
        are accepted and ignored)."""
        self.expect_name("import")
        if not self.peek().is_name("module"):
            self._skip_to_semicolon()
            return
        self.next()
        self.expect_name("namespace")
        prefix = self.expect(TokenKind.NAME).value
        self.expect(TokenKind.EQ)
        uri = self.expect(TokenKind.STRING).value
        location = None
        if self.accept_name("at"):
            location = self.expect(TokenKind.STRING).value
        self.expect(TokenKind.SEMICOLON)
        module.imports.append(ast.ModuleImport(prefix, uri, location))

    def _skip_to_semicolon(self) -> None:
        while True:
            token = self.next()
            if token.kind in (TokenKind.SEMICOLON, TokenKind.EOF):
                return

    def _parse_variable_decl(self) -> ast.VarDecl:
        line = self.expect_name("declare").line
        self.expect_name("variable")
        name = self.expect(TokenKind.VARNAME).value
        type_ = None
        if self.accept_name("as"):
            type_ = self._parse_sequence_type()
        if self.accept_name("external"):
            expr: ast.Expr | None = None
        else:
            self.expect(TokenKind.ASSIGN)
            expr = self.parse_expr_single()
        self.expect(TokenKind.SEMICOLON)
        return ast.VarDecl(name=name, expr=expr, type_=type_, line=line)

    def _parse_function_decl(self) -> ast.FunctionDecl:
        line = self.expect_name("declare").line
        self.expect_name("function")
        name = self.expect(TokenKind.NAME).value
        self.expect(TokenKind.LPAREN)
        params: list[ast.Param] = []
        if self.peek().kind is not TokenKind.RPAREN:
            while True:
                pname = self.expect(TokenKind.VARNAME).value
                ptype = None
                if self.accept_name("as"):
                    ptype = self._parse_sequence_type()
                params.append(ast.Param(pname, ptype))
                if not self.accept(TokenKind.COMMA):
                    break
        self.expect(TokenKind.RPAREN)
        return_type = None
        if self.accept_name("as"):
            return_type = self._parse_sequence_type()
        self.expect(TokenKind.LBRACE)
        body = self.parse_expr()
        self.expect(TokenKind.RBRACE)
        self.expect(TokenKind.SEMICOLON)
        return ast.FunctionDecl(
            name=name, params=params, body=body, return_type=return_type, line=line
        )

    def _parse_sequence_type(self) -> str:
        """Parse a SequenceType permissively, returning its text form.

        Types are recorded for documentation but not enforced (the paper
        sets static typing aside)."""
        parts: list[str] = []
        token = self.expect(TokenKind.NAME)
        parts.append(token.value)
        last_end = token.end
        if self.peek().kind is TokenKind.LPAREN:
            self.next()
            inner = self.accept(TokenKind.NAME) or self.accept(TokenKind.STAR)
            parts.append(f"({inner.value})" if inner else "()")
            last_end = self.expect(TokenKind.RPAREN).end
        occ = self.peek()
        if (
            occ.kind in (TokenKind.QUESTION, TokenKind.STAR, TokenKind.PLUS)
            and occ.start == last_end
        ):
            # Occurrence indicators must be directly adjacent, otherwise
            # '*'/'+' are the arithmetic operators.
            self.next()
            parts.append(occ.value)
        return "".join(parts)

    # ------------------------------------------------------------------
    # Expressions
    # ------------------------------------------------------------------

    def parse_expr(self, allow_semicolon: bool = True) -> ast.Expr:
        """Expr ::= SemiExpr where
        SemiExpr ::= CommaExpr (";" CommaExpr)*  (the XQuery! sequencing
        operator of Section 2.4's footnote — an evaluation-order barrier),
        CommaExpr ::= ExprSingle ("," ExprSingle)*."""
        first = self._parse_comma_expr()
        if not allow_semicolon or self.peek().kind is not TokenKind.SEMICOLON:
            return first
        groups = [first]
        while self.accept(TokenKind.SEMICOLON):
            groups.append(self._parse_comma_expr())
        return ast.SequencedExpr(items=groups, line=first.line)

    def _parse_comma_expr(self) -> ast.Expr:
        first = self.parse_expr_single()
        if self.peek().kind is not TokenKind.COMMA:
            return first
        items = [first]
        while self.accept(TokenKind.COMMA):
            items.append(self.parse_expr_single())
        return ast.SequenceExpr(items=items, line=first.line)

    def parse_expr_single(self) -> ast.Expr:
        token = self.peek()
        if token.kind is TokenKind.NAME:
            if token.value in ("for", "let") and self._peek2().kind is TokenKind.VARNAME:
                return self._parse_flwor()
            if token.value in ("some", "every") and self._peek2().kind is TokenKind.VARNAME:
                return self._parse_quantified()
            if token.value == "if" and self._peek2().kind is TokenKind.LPAREN:
                return self._parse_if()
            if token.value == "typeswitch" and self._peek2().kind is TokenKind.LPAREN:
                return self._parse_typeswitch()
            if token.value == "snap":
                snap_expr = self._try_parse_snap()
                if snap_expr is not None:
                    return snap_expr
            if token.value in _UPDATE_KEYWORDS and (
                self._peek2().kind is TokenKind.LBRACE
                or (token.value == "replace" and self._peek2().is_name("value"))
            ):
                return self._parse_update(snap=False)
        return self._parse_or()

    # -- FLWOR ----------------------------------------------------------

    def _parse_flwor(self) -> ast.FLWORExpr:
        line = self.peek().line
        clauses: list[ast.ForClause | ast.LetClause] = []
        while True:
            token = self.peek()
            if token.is_name("for") and self._peek2().kind is TokenKind.VARNAME:
                self.next()
                while True:
                    var = self.expect(TokenKind.VARNAME).value
                    pos_var = None
                    if self.accept_name("at"):
                        pos_var = self.expect(TokenKind.VARNAME).value
                    self.expect_name("in")
                    expr = self.parse_expr_single()
                    clauses.append(ast.ForClause(var, expr, pos_var))
                    if not self.accept(TokenKind.COMMA):
                        break
            elif token.is_name("let") and self._peek2().kind is TokenKind.VARNAME:
                self.next()
                while True:
                    var = self.expect(TokenKind.VARNAME).value
                    self.expect(TokenKind.ASSIGN)
                    expr = self.parse_expr_single()
                    clauses.append(ast.LetClause(var, expr))
                    if not self.accept(TokenKind.COMMA):
                        break
            else:
                break
        where = None
        if self.accept_name("where"):
            where = self.parse_expr_single()
        order_by: list[ast.OrderSpec] = []
        stable = False
        if self.peek().is_name("stable", "order"):
            if self.accept_name("stable"):
                stable = True
            self.expect_name("order")
            self.expect_name("by")
            while True:
                spec_expr = self.parse_expr_single()
                descending = False
                if self.accept_name("descending"):
                    descending = True
                else:
                    self.accept_name("ascending")
                empty_least = None
                if self.accept_name("empty"):
                    if self.accept_name("least"):
                        empty_least = True
                    else:
                        self.expect_name("greatest")
                        empty_least = False
                order_by.append(ast.OrderSpec(spec_expr, descending, empty_least))
                if not self.accept(TokenKind.COMMA):
                    break
        self.expect_name("return")
        ret = self.parse_expr_single()
        return ast.FLWORExpr(
            clauses=clauses,
            where=where,
            order_by=order_by,
            stable=stable,
            ret=ret,
            line=line,
        )

    def _parse_quantified(self) -> ast.QuantifiedExpr:
        token = self.next()
        bindings: list[tuple[str, ast.Expr]] = []
        while True:
            var = self.expect(TokenKind.VARNAME).value
            self.expect_name("in")
            expr = self.parse_expr_single()
            bindings.append((var, expr))
            if not self.accept(TokenKind.COMMA):
                break
        self.expect_name("satisfies")
        satisfies = self.parse_expr_single()
        return ast.QuantifiedExpr(
            kind=token.value, bindings=bindings, satisfies=satisfies, line=token.line
        )

    def _parse_if(self) -> ast.IfExpr:
        token = self.expect_name("if")
        self.expect(TokenKind.LPAREN)
        cond = self.parse_expr()
        self.expect(TokenKind.RPAREN)
        self.expect_name("then")
        then = self.parse_expr_single()
        self.expect_name("else")
        orelse = self.parse_expr_single()
        return ast.IfExpr(cond=cond, then=then, orelse=orelse, line=token.line)

    def _parse_typeswitch(self) -> ast.TypeswitchExpr:
        token = self.expect_name("typeswitch")
        self.expect(TokenKind.LPAREN)
        operand = self.parse_expr()
        self.expect(TokenKind.RPAREN)
        cases: list[ast.CaseClause] = []
        while self.peek().is_name("case"):
            self.next()
            var = None
            if self.peek().kind is TokenKind.VARNAME:
                var = self.next().value
                self.expect_name("as")
            type_ = self._parse_sequence_type_struct()
            self.expect_name("return")
            ret = self.parse_expr_single()
            cases.append(ast.CaseClause(type_=type_, ret=ret, var=var))
        if not cases:
            raise self.error("typeswitch requires at least one case clause")
        self.expect_name("default")
        default_var = None
        if self.peek().kind is TokenKind.VARNAME:
            default_var = self.next().value
        self.expect_name("return")
        default = self.parse_expr_single()
        return ast.TypeswitchExpr(
            operand=operand,
            cases=cases,
            default_var=default_var,
            default=default,
            line=token.line,
        )

    # -- XQuery! update expressions (Fig. 1) -----------------------------

    def _try_parse_snap(self) -> ast.Expr | None:
        """Parse a snap expression, or return None if 'snap' is not being
        used as a keyword here (e.g. it is an element name in a path)."""
        snap_token = self.next()  # the NAME 'snap'
        follow = self.peek()
        if follow.kind is TokenKind.LBRACE:
            self.next()
            body = self.parse_expr()
            self.expect(TokenKind.RBRACE)
            return ast.SnapExpr(mode=None, body=body, line=snap_token.line)
        if follow.kind is TokenKind.NAME and follow.value in _SNAP_MODES:
            mode_token = self.next()
            self.expect(TokenKind.LBRACE)
            body = self.parse_expr()
            self.expect(TokenKind.RBRACE)
            return ast.SnapExpr(
                mode=mode_token.value, body=body, line=snap_token.line
            )
        if follow.kind is TokenKind.NAME and follow.value in _UPDATE_KEYWORDS:
            # 'snap insert {...} ...' sugar: only if an update body follows.
            after = self._peek2()
            if after.kind is TokenKind.LBRACE or (
                follow.value == "replace" and after.is_name("value")
            ):
                return self._parse_update(snap=True, line=snap_token.line)
        # Not a snap keyword use: restore and let the path parser have it.
        self.lexer.push_back(snap_token)
        return None

    def _parse_update(self, snap: bool, line: int | None = None) -> ast.Expr:
        keyword = self.next()
        line = line if line is not None else keyword.line
        if keyword.value == "delete":
            self.expect(TokenKind.LBRACE)
            target = self.parse_expr()
            self.expect(TokenKind.RBRACE)
            return ast.DeleteExpr(target=target, snap=snap, line=line)
        if keyword.value == "insert":
            self.expect(TokenKind.LBRACE)
            source = self.parse_expr()
            self.expect(TokenKind.RBRACE)
            position = self._parse_insert_location()
            self.expect(TokenKind.LBRACE)
            target = self.parse_expr()
            self.expect(TokenKind.RBRACE)
            return ast.InsertExpr(
                source=source, position=position, target=target, snap=snap, line=line
            )
        if keyword.value == "replace":
            value_of = False
            if self.peek().is_name("value"):
                self.next()
                self.expect_name("of")
                value_of = True
            self.expect(TokenKind.LBRACE)
            target = self.parse_expr()
            self.expect(TokenKind.RBRACE)
            self.expect_name("with")
            self.expect(TokenKind.LBRACE)
            source = self.parse_expr()
            self.expect(TokenKind.RBRACE)
            return ast.ReplaceExpr(
                target=target, source=source, snap=snap, value_of=value_of,
                line=line,
            )
        if keyword.value == "rename":
            self.expect(TokenKind.LBRACE)
            target = self.parse_expr()
            self.expect(TokenKind.RBRACE)
            self.expect_name("to")
            self.expect(TokenKind.LBRACE)
            name_expr = self.parse_expr()
            self.expect(TokenKind.RBRACE)
            return ast.RenameExpr(target=target, name=name_expr, snap=snap, line=line)
        raise self.error(f"unknown update keyword {keyword.value!r}", keyword)

    def _parse_insert_location(self) -> str:
        """InsertLocation ::= (as first | as last)? into | before | after"""
        if self.accept_name("as"):
            which = self.next()
            if which.is_name("first"):
                self.expect_name("into")
                return "first"
            if which.is_name("last"):
                self.expect_name("into")
                return "last"
            raise self.error("expected 'first' or 'last' after 'as'", which)
        token = self.next()
        if token.is_name("into"):
            return "into"
        if token.is_name("before"):
            return "before"
        if token.is_name("after"):
            return "after"
        raise self.error(
            "expected 'into', 'before' or 'after' in insert expression", token
        )

    # -- Operator precedence chain ---------------------------------------

    def _parse_or(self) -> ast.Expr:
        left = self._parse_and()
        while self.peek().is_name("or") and self._starts_expr(self._peek2()):
            op = self.next()
            right = self._parse_and()
            left = ast.BoolOp(op="or", left=left, right=right, line=op.line)
        return left

    def _parse_and(self) -> ast.Expr:
        left = self._parse_comparison()
        while self.peek().is_name("and") and self._starts_expr(self._peek2()):
            op = self.next()
            right = self._parse_comparison()
            left = ast.BoolOp(op="and", left=left, right=right, line=op.line)
        return left

    def _starts_expr(self, token: Token) -> bool:
        """Heuristic: can *token* begin an expression?  Used to decide
        whether a NAME like 'and' is an operator or an element name."""
        return token.kind not in (
            TokenKind.EOF,
            TokenKind.RPAREN,
            TokenKind.RBRACE,
            TokenKind.RBRACKET,
            TokenKind.COMMA,
            TokenKind.SEMICOLON,
        )

    _GENERAL_COMP = {
        TokenKind.EQ: "eq",
        TokenKind.NE: "ne",
        TokenKind.LT: "lt",
        TokenKind.LE: "le",
        TokenKind.GT: "gt",
        TokenKind.GE: "ge",
    }

    def _parse_comparison(self) -> ast.Expr:
        left = self._parse_range()
        token = self.peek()
        if token.kind in self._GENERAL_COMP:
            self.next()
            right = self._parse_range()
            return ast.Comparison(
                style="general",
                op=self._GENERAL_COMP[token.kind],
                left=left,
                right=right,
                line=token.line,
            )
        if token.kind is TokenKind.NAME and token.value in _VALUE_COMP:
            if self._starts_expr(self._peek2()):
                self.next()
                right = self._parse_range()
                return ast.Comparison(
                    style="value", op=token.value, left=left, right=right,
                    line=token.line,
                )
        if token.is_name("is") and self._starts_expr(self._peek2()):
            self.next()
            right = self._parse_range()
            return ast.Comparison(
                style="node", op="is", left=left, right=right, line=token.line
            )
        if token.kind in (TokenKind.LTLT, TokenKind.GTGT):
            self.next()
            op = "precedes" if token.kind is TokenKind.LTLT else "follows"
            right = self._parse_range()
            return ast.Comparison(
                style="node", op=op, left=left, right=right, line=token.line
            )
        return left

    def _parse_range(self) -> ast.Expr:
        left = self._parse_additive()
        if self.peek().is_name("to") and self._starts_expr(self._peek2()):
            token = self.next()
            right = self._parse_additive()
            return ast.RangeExpr(lo=left, hi=right, line=token.line)
        return left

    def _parse_additive(self) -> ast.Expr:
        left = self._parse_multiplicative()
        while True:
            token = self.peek()
            if token.kind is TokenKind.PLUS:
                self.next()
                right = self._parse_multiplicative()
                left = ast.Arith(op="+", left=left, right=right, line=token.line)
            elif token.kind is TokenKind.MINUS:
                self.next()
                right = self._parse_multiplicative()
                left = ast.Arith(op="-", left=left, right=right, line=token.line)
            else:
                return left

    def _parse_multiplicative(self) -> ast.Expr:
        left = self._parse_set()
        while True:
            token = self.peek()
            if token.kind is TokenKind.STAR:
                self.next()
                right = self._parse_set()
                left = ast.Arith(op="*", left=left, right=right, line=token.line)
            elif token.is_name("div", "idiv", "mod") and self._starts_expr(self._peek2()):
                self.next()
                right = self._parse_set()
                left = ast.Arith(
                    op=token.value, left=left, right=right, line=token.line
                )
            else:
                return left

    def _parse_set(self) -> ast.Expr:
        left = self._parse_instance_of()
        while True:
            token = self.peek()
            if token.kind is TokenKind.PIPE:
                self.next()
                right = self._parse_instance_of()
                left = ast.SetExpr(op="union", left=left, right=right, line=token.line)
            elif token.is_name("union", "intersect", "except") and self._starts_expr(
                self._peek2()
            ):
                self.next()
                right = self._parse_instance_of()
                left = ast.SetExpr(
                    op="union" if token.value == "union" else token.value,
                    left=left,
                    right=right,
                    line=token.line,
                )
            else:
                return left

    def _parse_instance_of(self) -> ast.Expr:
        left = self._parse_treat()
        token = self.peek()
        if token.is_name("instance") and self._peek2().is_name("of"):
            self.next()
            self.expect_name("of")
            type_ = self._parse_sequence_type_struct()
            return ast.InstanceOf(operand=left, type_=type_, line=token.line)
        return left

    def _parse_treat(self) -> ast.Expr:
        left = self._parse_cast()
        token = self.peek()
        if token.is_name("treat") and self._peek2().is_name("as"):
            self.next()
            self.expect_name("as")
            type_ = self._parse_sequence_type_struct()
            return ast.TreatExpr(operand=left, type_=type_, line=token.line)
        return left

    def _parse_cast(self) -> ast.Expr:
        left = self._parse_unary()
        token = self.peek()
        if token.is_name("castable", "cast") and self._peek2().is_name("as"):
            self.next()
            self.expect_name("as")
            name = self.expect(TokenKind.NAME)
            optional = False
            question = self.peek()
            if question.kind is TokenKind.QUESTION and question.start == name.end:
                self.next()
                optional = True
            return ast.CastExpr(
                operand=left,
                type_name=name.value,
                optional=optional,
                castable=token.value == "castable",
                line=token.line,
            )
        return left

    def _parse_sequence_type_struct(self) -> ast.SequenceType:
        token = self.expect(TokenKind.NAME)
        kind_tests = _KIND_TESTS | {"item", "empty-sequence"}
        if token.value in kind_tests and self.peek().kind is TokenKind.LPAREN:
            self.next()
            name: str | None = None
            inner = self.peek()
            if inner.kind is TokenKind.NAME:
                name = self.next().value
            elif inner.kind is TokenKind.STAR:
                self.next()
                name = "*"
            last = self.expect(TokenKind.RPAREN)
            seq_type = ast.SequenceType(kind=token.value, name=name)
        else:
            last = token
            seq_type = ast.SequenceType(kind=token.value)
        occ = self.peek()
        if (
            occ.kind in (TokenKind.QUESTION, TokenKind.STAR, TokenKind.PLUS)
            and occ.start == last.end
        ):
            self.next()
            seq_type.occurrence = occ.value
        return seq_type

    def _parse_unary(self) -> ast.Expr:
        token = self.peek()
        if token.kind in (TokenKind.MINUS, TokenKind.PLUS):
            self.next()
            operand = self._parse_unary()
            return ast.Unary(op=token.value, operand=operand, line=token.line)
        return self._parse_path()

    # -- Paths ------------------------------------------------------------

    def _parse_path(self) -> ast.Expr:
        token = self.peek()
        if token.kind is TokenKind.SLASH:
            self.next()
            base: ast.Expr = ast.RootExpr(line=token.line)
            if self._step_can_start(self.peek()):
                step = self._parse_step()
                base = ast.PathExpr(base=base, step=step, line=token.line)
                return self._parse_path_tail(base)
            return base
        if token.kind is TokenKind.SLASHSLASH:
            self.next()
            base = ast.RootExpr(line=token.line)
            base = ast.PathExpr(
                base=base,
                step=ast.AxisStep(
                    axis="descendant-or-self",
                    test=ast.NodeTest(kind="node"),
                    line=token.line,
                ),
                line=token.line,
            )
            step = self._parse_step()
            base = ast.PathExpr(base=base, step=step, line=token.line)
            return self._parse_path_tail(base)
        first = self._parse_step()
        return self._parse_path_tail(first)

    def _parse_path_tail(self, base: ast.Expr) -> ast.Expr:
        while True:
            token = self.peek()
            if token.kind is TokenKind.SLASH:
                self.next()
                step = self._parse_step()
                base = ast.PathExpr(base=base, step=step, line=token.line)
            elif token.kind is TokenKind.SLASHSLASH:
                self.next()
                base = ast.PathExpr(
                    base=base,
                    step=ast.AxisStep(
                        axis="descendant-or-self",
                        test=ast.NodeTest(kind="node"),
                        line=token.line,
                    ),
                    line=token.line,
                )
                step = self._parse_step()
                base = ast.PathExpr(base=base, step=step, line=token.line)
            else:
                return base

    def _step_can_start(self, token: Token) -> bool:
        return token.kind in (
            TokenKind.NAME,
            TokenKind.STAR,
            TokenKind.AT,
            TokenKind.DOT,
            TokenKind.DOTDOT,
            TokenKind.VARNAME,
            TokenKind.LPAREN,
            TokenKind.STRING,
            TokenKind.INTEGER,
            TokenKind.DECIMAL,
            TokenKind.DOUBLE,
            TokenKind.LT,
        )

    def _parse_step(self) -> ast.Expr:
        """StepExpr ::= AxisStep | FilterExpr (primary + predicates)."""
        token = self.peek()
        if token.kind is TokenKind.DOTDOT:
            self.next()
            step = ast.AxisStep(
                axis="parent", test=ast.NodeTest(kind="node"), line=token.line
            )
            return self._attach_predicates(step)
        if token.kind is TokenKind.AT:
            self.next()
            test = self._parse_node_test(default_kind_for_axis="attribute")
            step = ast.AxisStep(axis="attribute", test=test, line=token.line)
            return self._attach_predicates(step)
        if token.kind is TokenKind.NAME and token.value in _AXES:
            if self._peek2().kind is TokenKind.COLONCOLON:
                axis_token = self.next()
                self.expect(TokenKind.COLONCOLON)
                test = self._parse_node_test(
                    default_kind_for_axis=axis_token.value
                )
                step = ast.AxisStep(
                    axis=axis_token.value, test=test, line=token.line
                )
                return self._attach_predicates(step)
        if token.kind is TokenKind.STAR:
            self.next()
            step = ast.AxisStep(
                axis="child", test=ast.NodeTest(kind="name", name="*"), line=token.line
            )
            return self._attach_predicates(step)
        if token.kind is TokenKind.NAME:
            follow = self._peek2()
            if follow.kind is TokenKind.LPAREN:
                if token.value in _KIND_TESTS:
                    test = self._parse_node_test()
                    step = ast.AxisStep(axis="child", test=test, line=token.line)
                    return self._attach_predicates(step)
                # else: function call — handled by primary below.
            elif follow.kind is TokenKind.LBRACE and token.value in (
                _COMPUTED_CTORS | {"copy", "ordered", "unordered"}
            ):
                pass  # computed constructor / copy / ordering — primary below.
            elif token.value in ("element", "attribute", "processing-instruction") and (
                follow.kind is TokenKind.NAME and self._third_is_lbrace()
            ):
                pass  # 'element name { ... }' computed constructor.
            else:
                self.next()
                step = ast.AxisStep(
                    axis="child",
                    test=ast.NodeTest(kind="name", name=token.value),
                    line=token.line,
                )
                return self._attach_predicates(step)
        primary = self._parse_primary()
        return self._attach_predicates(primary)

    def _attach_predicates(self, base: ast.Expr) -> ast.Expr:
        predicates: list[ast.Expr] = []
        while self.accept(TokenKind.LBRACKET):
            predicates.append(self.parse_expr())
            self.expect(TokenKind.RBRACKET)
        if not predicates:
            return base
        if isinstance(base, ast.AxisStep) and not base.predicates:
            base.predicates = predicates
            return base
        return ast.FilterExpr(base=base, predicates=predicates, line=base.line)

    def _parse_node_test(self, default_kind_for_axis: str = "child") -> ast.NodeTest:
        token = self.next()
        if token.kind is TokenKind.STAR:
            return ast.NodeTest(kind="name", name="*")
        if token.kind is not TokenKind.NAME:
            raise self.error("expected a node test", token)
        if token.value in _KIND_TESTS and self.peek().kind is TokenKind.LPAREN:
            self.next()
            name: str | None = None
            inner = self.peek()
            if inner.kind is TokenKind.NAME:
                name = self.next().value
            elif inner.kind is TokenKind.STAR:
                self.next()
                name = "*"
            elif inner.kind is TokenKind.STRING:
                name = self.next().value  # processing-instruction("name")
            self.expect(TokenKind.RPAREN)
            return ast.NodeTest(kind=token.value, name=name)
        return ast.NodeTest(kind="name", name=token.value)

    # -- Primary expressions ----------------------------------------------

    def _parse_primary(self) -> ast.Expr:
        token = self.peek()
        if token.kind is TokenKind.INTEGER:
            self.next()
            return ast.IntegerLit(value=int(token.value), line=token.line)
        if token.kind is TokenKind.DECIMAL:
            self.next()
            return ast.DecimalLit(value=float(token.value), line=token.line)
        if token.kind is TokenKind.DOUBLE:
            self.next()
            return ast.DoubleLit(value=float(token.value), line=token.line)
        if token.kind is TokenKind.STRING:
            self.next()
            return ast.StringLit(value=token.value, line=token.line)
        if token.kind is TokenKind.VARNAME:
            self.next()
            return ast.VarRef(name=token.value, line=token.line)
        if token.kind is TokenKind.DOT:
            self.next()
            return ast.ContextItem(line=token.line)
        if token.kind is TokenKind.LPAREN:
            self.next()
            if self.accept(TokenKind.RPAREN):
                return ast.EmptySequence(line=token.line)
            inner = self.parse_expr()
            self.expect(TokenKind.RPAREN)
            return inner
        if token.kind is TokenKind.LT:
            self.next()
            return self._parse_direct_element(token)
        if token.kind is TokenKind.NAME:
            if token.value == "copy" and self._peek2().kind is TokenKind.LBRACE:
                self.next()
                self.expect(TokenKind.LBRACE)
                source = self.parse_expr()
                self.expect(TokenKind.RBRACE)
                return ast.CopyExpr(source=source, line=token.line)
            if token.value in ("ordered", "unordered") and self._peek2().kind is TokenKind.LBRACE:
                self.next()
                self.expect(TokenKind.LBRACE)
                inner = self.parse_expr()
                self.expect(TokenKind.RBRACE)
                return inner  # ordering hints are no-ops for us
            if token.value in _COMPUTED_CTORS:
                ctor = self._try_parse_computed_constructor(token)
                if ctor is not None:
                    return ctor
            follow = self._peek2()
            if (
                follow.kind is TokenKind.LPAREN
                and token.value not in _RESERVED_FUNCTION_NAMES
            ):
                return self._parse_function_call()
        raise self.error(
            f"unexpected token {token.value or 'end of input'!r} "
            "where an expression was expected",
            token,
        )

    def _parse_function_call(self) -> ast.FunctionCall:
        name_token = self.expect(TokenKind.NAME)
        self.expect(TokenKind.LPAREN)
        args: list[ast.Expr] = []
        if self.peek().kind is not TokenKind.RPAREN:
            while True:
                args.append(self.parse_expr_single())
                if not self.accept(TokenKind.COMMA):
                    break
        self.expect(TokenKind.RPAREN)
        return ast.FunctionCall(
            name=name_token.value, args=args, line=name_token.line
        )

    def _try_parse_computed_constructor(self, keyword: Token) -> ast.Expr | None:
        """Computed constructors: element/attribute take an optional literal
        name or a braced name expression; text/comment/document take content
        only.  Returns None when the keyword isn't followed by a
        constructor shape."""
        follow = self._peek2()
        kind = keyword.value
        if kind in ("element", "attribute", "processing-instruction"):
            if follow.kind is TokenKind.NAME:
                # element name { content }  — needs a brace after the name.
                self.next()  # keyword
                name_token = self.next()
                if self.peek().kind is not TokenKind.LBRACE:
                    # Not a constructor after all; undo both tokens.
                    self.lexer.push_back(name_token)
                    self.lexer.push_back(keyword)
                    return None
                content = self._parse_optional_enclosed()
                return self._make_computed(kind, name_token.value, content, keyword)
            if follow.kind is TokenKind.LBRACE:
                self.next()  # keyword
                self.expect(TokenKind.LBRACE)
                name_expr = self.parse_expr()
                self.expect(TokenKind.RBRACE)
                content = self._parse_optional_enclosed()
                return self._make_computed(kind, name_expr, content, keyword)
            return None
        if follow.kind is TokenKind.LBRACE:
            self.next()  # keyword
            content = self._parse_optional_enclosed()
            if kind == "text":
                return ast.CompText(content=content, line=keyword.line)
            if kind == "comment":
                return ast.CompComment(content=content, line=keyword.line)
            return ast.CompDocument(content=content, line=keyword.line)
        return None

    def _parse_optional_enclosed(self) -> ast.Expr | None:
        self.expect(TokenKind.LBRACE)
        if self.accept(TokenKind.RBRACE):
            return None
        content = self.parse_expr()
        self.expect(TokenKind.RBRACE)
        return content

    def _make_computed(
        self,
        kind: str,
        name: str | ast.Expr,
        content: ast.Expr | None,
        keyword: Token,
    ) -> ast.Expr:
        if kind == "element":
            return ast.CompElement(name=name, content=content, line=keyword.line)
        if kind == "attribute":
            return ast.CompAttribute(name=name, content=content, line=keyword.line)
        return ast.CompPI(target=name, content=content, line=keyword.line)

    # ------------------------------------------------------------------
    # Direct element constructors (character-level)
    # ------------------------------------------------------------------

    def _parse_direct_element(self, lt_token: Token) -> ast.DirectElement:
        """Parse ``<name attrs> content </name>`` starting right after the
        consumed '<' token, reading characters from the shared source."""
        text = self.lexer.text
        pos = lt_token.end
        pos, name = self._read_xml_name(text, pos)
        element = ast.DirectElement(name=name, line=lt_token.line)
        # Attributes.
        while True:
            pos = self._skip_xml_space(text, pos)
            if pos >= len(text):
                raise self._char_error("unterminated start tag", pos)
            if text.startswith("/>", pos):
                self.lexer.seek(pos + 2)
                return element
            if text[pos] == ">":
                pos += 1
                break
            pos, attr_name = self._read_xml_name(text, pos)
            pos = self._skip_xml_space(text, pos)
            if pos >= len(text) or text[pos] != "=":
                raise self._char_error("expected '=' in attribute", pos)
            pos = self._skip_xml_space(text, pos + 1)
            if pos >= len(text) or text[pos] not in "'\"":
                raise self._char_error("attribute value must be quoted", pos)
            quote = text[pos]
            pos, content = self._parse_attribute_value(text, pos + 1, quote)
            element.attributes.append(ast.DirectAttribute(attr_name, content))
        # Content until the matching end tag.
        pos = self._parse_element_content(text, pos, element)
        self.lexer.seek(pos)
        return element

    def _char_error(self, message: str, pos: int) -> ParseError:
        line, column = self.lexer.location_at(min(pos, len(self.lexer.text) - 1))
        return ParseError(message, line, column)

    @staticmethod
    def _skip_xml_space(text: str, pos: int) -> int:
        while pos < len(text) and text[pos] in " \t\r\n":
            pos += 1
        return pos

    def _read_xml_name(self, text: str, pos: int) -> tuple[int, str]:
        start = pos
        while pos < len(text) and (
            text[pos].isalnum() or text[pos] in "_-.:"
        ):
            pos += 1
        if pos == start:
            raise self._char_error("expected an XML name", pos)
        return pos, text[start:pos]

    def _parse_attribute_value(
        self, text: str, pos: int, quote: str
    ) -> tuple[int, ast.AttributeContent]:
        """Attribute value template: text with ``{expr}`` holes, ``{{``/``}}``
        escapes, doubled-quote escapes and entity references."""
        content = ast.AttributeContent()
        buf: list[str] = []

        def flush() -> None:
            if buf:
                line, col = self.lexer.location_at(pos)
                content.parts.append(
                    decode_string_entities("".join(buf), line, col)
                )
                buf.clear()

        while True:
            if pos >= len(text):
                raise self._char_error("unterminated attribute value", pos)
            c = text[pos]
            if c == quote:
                if text.startswith(quote * 2, pos):
                    buf.append(quote)
                    pos += 2
                    continue
                flush()
                return pos + 1, content
            if c == "{":
                if text.startswith("{{", pos):
                    buf.append("{")
                    pos += 2
                    continue
                flush()
                self.lexer.seek(pos)
                self.expect(TokenKind.LBRACE)
                expr = self.parse_expr()
                self.expect(TokenKind.RBRACE)
                content.parts.append(expr)
                pos = self.lexer.char_position()
                continue
            if c == "}":
                if text.startswith("}}", pos):
                    buf.append("}")
                    pos += 2
                    continue
                raise self._char_error("unescaped '}' in attribute value", pos)
            buf.append(c)
            pos += 1

    def _parse_element_content(
        self, text: str, pos: int, element: ast.DirectElement
    ) -> int:
        """Element content: text, nested elements, enclosed expressions,
        comments, CDATA and PIs, until ``</name>``.  Whitespace-only text
        runs are boundary whitespace and are stripped (XQuery default)."""
        buf: list[str] = []

        def flush() -> None:
            if buf:
                run = "".join(buf)
                if run.strip():
                    line, col = self.lexer.location_at(pos)
                    element.content.append(
                        decode_string_entities(run, line, col)
                    )
                buf.clear()

        while True:
            if pos >= len(text):
                raise self._char_error(
                    f"unterminated element <{element.name}>", pos
                )
            if text.startswith("</", pos):
                flush()
                end_pos, end_name = self._read_xml_name(text, pos + 2)
                if end_name != element.name:
                    raise self._char_error(
                        f"mismatched end tag </{end_name}> for <{element.name}>",
                        pos,
                    )
                end_pos = self._skip_xml_space(text, end_pos)
                if end_pos >= len(text) or text[end_pos] != ">":
                    raise self._char_error("expected '>' in end tag", end_pos)
                return end_pos + 1
            if text.startswith("<!--", pos):
                flush()
                end = text.find("-->", pos + 4)
                if end < 0:
                    raise self._char_error("unterminated comment", pos)
                element.content.append(
                    ast.CompComment(
                        content=ast.StringLit(value=text[pos + 4 : end]),
                    )
                )
                pos = end + 3
                continue
            if text.startswith("<![CDATA[", pos):
                end = text.find("]]>", pos + 9)
                if end < 0:
                    raise self._char_error("unterminated CDATA section", pos)
                buf.append(text[pos + 9 : end])
                pos = end + 3
                continue
            if text.startswith("<?", pos):
                flush()
                end = text.find("?>", pos + 2)
                if end < 0:
                    raise self._char_error("unterminated PI", pos)
                body = text[pos + 2 : end]
                target, _, rest = body.partition(" ")
                element.content.append(
                    ast.CompPI(
                        target=target,
                        content=ast.StringLit(value=rest.strip()),
                    )
                )
                pos = end + 2
                continue
            c = text[pos]
            if c == "<":
                flush()
                # Nested element: emulate the token-level entry point.
                fake = Token(
                    TokenKind.LT, "<", *self.lexer.location_at(pos), pos, pos + 1
                )
                child = self._parse_direct_element(fake)
                element.content.append(child)
                pos = self.lexer.char_position()
                continue
            if c == "{":
                if text.startswith("{{", pos):
                    buf.append("{")
                    pos += 2
                    continue
                flush()
                self.lexer.seek(pos)
                self.expect(TokenKind.LBRACE)
                expr = self.parse_expr()
                self.expect(TokenKind.RBRACE)
                element.content.append(expr)
                pos = self.lexer.char_position()
                continue
            if c == "}":
                if text.startswith("}}", pos):
                    buf.append("}")
                    pos += 2
                    continue
                raise self._char_error("unescaped '}' in element content", pos)
            buf.append(c)
            pos += 1
