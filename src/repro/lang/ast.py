"""Surface abstract syntax of XQuery! (grammar of the paper's Fig. 1 over an
XQuery 1.0 subset).

Every node carries an optional source ``line`` for diagnostics.  The surface
AST is produced by :mod:`repro.lang.parser` and consumed only by
:mod:`repro.lang.normalize`, which lowers it to :mod:`repro.lang.core_ast`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Union


@dataclass
class Expr:
    """Base class of surface expressions."""

    line: int = field(default=0, kw_only=True, compare=False)


# ----------------------------------------------------------------------
# Literals, variables, basic composition
# ----------------------------------------------------------------------

@dataclass
class IntegerLit(Expr):
    value: int = 0


@dataclass
class DecimalLit(Expr):
    value: float = 0.0


@dataclass
class DoubleLit(Expr):
    value: float = 0.0


@dataclass
class StringLit(Expr):
    value: str = ""


@dataclass
class VarRef(Expr):
    name: str = ""


@dataclass
class ContextItem(Expr):
    """The '.' expression."""


@dataclass
class EmptySequence(Expr):
    """The '()' expression."""


@dataclass
class SequenceExpr(Expr):
    """Comma operator: Expr, Expr, ..."""

    items: list[Expr] = field(default_factory=list)


@dataclass
class SequencedExpr(Expr):
    """The ';' sequencing operator (paper Section 2.4, footnote 5): each
    item is *fully evaluated* before the next, values concatenate like
    ','.  Unlike ',', this ordering survives any optimizer: a
    SequencedExpr is an explicit evaluation-order barrier."""

    items: list[Expr] = field(default_factory=list)


@dataclass
class RangeExpr(Expr):
    """lo to hi."""

    lo: Expr = None  # type: ignore[assignment]
    hi: Expr = None  # type: ignore[assignment]


# ----------------------------------------------------------------------
# Operators
# ----------------------------------------------------------------------

@dataclass
class Arith(Expr):
    """Binary arithmetic: + - * div idiv mod."""

    op: str = "+"
    left: Expr = None  # type: ignore[assignment]
    right: Expr = None  # type: ignore[assignment]


@dataclass
class Unary(Expr):
    """Unary + or -."""

    op: str = "-"
    operand: Expr = None  # type: ignore[assignment]


@dataclass
class Comparison(Expr):
    """General (=, !=, <, <=, >, >=), value (eq..ge) or node (is, <<, >>)
    comparison.  ``style`` is 'general' | 'value' | 'node'."""

    style: str = "general"
    op: str = "eq"
    left: Expr = None  # type: ignore[assignment]
    right: Expr = None  # type: ignore[assignment]


@dataclass
class BoolOp(Expr):
    """'and' / 'or' (op is the keyword)."""

    op: str = "and"
    left: Expr = None  # type: ignore[assignment]
    right: Expr = None  # type: ignore[assignment]


@dataclass
class SequenceType:
    """A dynamic sequence type: an item test plus occurrence indicator.

    ``kind`` is an atomic type name ('xs:integer', ...), 'item', 'node',
    'text', 'comment', 'element', 'attribute', 'document-node',
    'processing-instruction' or 'empty-sequence'; ``name`` optionally
    restricts element()/attribute() tests; ``occurrence`` is '', '?', '*'
    or '+'.
    """

    kind: str = "item"
    name: Optional[str] = None
    occurrence: str = ""

    def __str__(self) -> str:
        if self.kind == "empty-sequence":
            return "empty-sequence()"
        if self.kind.startswith("xs:"):
            return f"{self.kind}{self.occurrence}"
        inner = self.name or ""
        return f"{self.kind}({inner}){self.occurrence}"


@dataclass
class InstanceOf(Expr):
    """Expr instance of SequenceType."""

    operand: Expr = None  # type: ignore[assignment]
    type_: SequenceType = field(default_factory=SequenceType)


@dataclass
class TreatExpr(Expr):
    """Expr treat as SequenceType: a runtime-checked type assertion."""

    operand: Expr = None  # type: ignore[assignment]
    type_: SequenceType = field(default_factory=SequenceType)


@dataclass
class CastExpr(Expr):
    """Expr cast as / castable as an atomic type (with optional '?')."""

    operand: Expr = None  # type: ignore[assignment]
    type_name: str = "xs:string"
    optional: bool = False
    castable: bool = False  # True: 'castable as' (returns a boolean)


@dataclass
class SetExpr(Expr):
    """Node-set operation: 'union' ('|'), 'intersect' or 'except'."""

    op: str = "union"
    left: Expr = None  # type: ignore[assignment]
    right: Expr = None  # type: ignore[assignment]


# ----------------------------------------------------------------------
# Control
# ----------------------------------------------------------------------

@dataclass
class IfExpr(Expr):
    cond: Expr = None  # type: ignore[assignment]
    then: Expr = None  # type: ignore[assignment]
    orelse: Expr = None  # type: ignore[assignment]


@dataclass
class ForClause:
    var: str
    expr: Expr
    position_var: Optional[str] = None


@dataclass
class LetClause:
    var: str
    expr: Expr


@dataclass
class OrderSpec:
    expr: Expr
    descending: bool = False
    empty_least: Optional[bool] = None


@dataclass
class FLWORExpr(Expr):
    """for/let clauses, optional where, optional order by, return."""

    clauses: list[Union[ForClause, LetClause]] = field(default_factory=list)
    where: Optional[Expr] = None
    order_by: list[OrderSpec] = field(default_factory=list)
    stable: bool = False
    ret: Expr = None  # type: ignore[assignment]


@dataclass
class CaseClause:
    """One branch of a typeswitch: ``case ($v as)? SequenceType return E``."""

    type_: "SequenceType"
    ret: Expr
    var: Optional[str] = None


@dataclass
class TypeswitchExpr(Expr):
    """typeswitch (op) case... default ($v)? return E."""

    operand: Expr = None  # type: ignore[assignment]
    cases: list[CaseClause] = field(default_factory=list)
    default_var: Optional[str] = None
    default: Expr = None  # type: ignore[assignment]


@dataclass
class QuantifiedExpr(Expr):
    """some/every $v in e (, $v in e)* satisfies e."""

    kind: str = "some"
    bindings: list[tuple[str, Expr]] = field(default_factory=list)
    satisfies: Expr = None  # type: ignore[assignment]


# ----------------------------------------------------------------------
# Paths
# ----------------------------------------------------------------------

@dataclass
class NodeTest:
    """A node test in an axis step.

    kind: 'name' (possibly wildcard '*'), or a kind test among 'node',
    'text', 'comment', 'processing-instruction', 'element', 'attribute',
    'document-node'.  ``name`` is the name/wildcard or the optional name
    argument of element()/attribute() tests.
    """

    kind: str = "name"
    name: Optional[str] = None


@dataclass
class AxisStep(Expr):
    """axis::test[pred]* — evaluated against the context item."""

    axis: str = "child"
    test: NodeTest = field(default_factory=NodeTest)
    predicates: list[Expr] = field(default_factory=list)


@dataclass
class PathExpr(Expr):
    """base/step — for each node of *base* (in document order), evaluate
    *step*; the '//' abbreviation inserts a descendant-or-self step."""

    base: Expr = None  # type: ignore[assignment]
    step: Expr = None  # type: ignore[assignment]


@dataclass
class RootExpr(Expr):
    """Leading '/': the root of the tree containing the context item."""


@dataclass
class FilterExpr(Expr):
    """Primary expression with predicates: e[p]."""

    base: Expr = None  # type: ignore[assignment]
    predicates: list[Expr] = field(default_factory=list)


# ----------------------------------------------------------------------
# Functions
# ----------------------------------------------------------------------

@dataclass
class FunctionCall(Expr):
    name: str = ""
    args: list[Expr] = field(default_factory=list)


# ----------------------------------------------------------------------
# Constructors
# ----------------------------------------------------------------------

@dataclass
class AttributeContent:
    """Attribute value template: alternating literal text and enclosed
    expressions, e.g. ``person="{$t/buyer/@person}"``."""

    parts: list[Union[str, Expr]] = field(default_factory=list)


@dataclass
class DirectAttribute:
    name: str
    content: AttributeContent


@dataclass
class DirectElement(Expr):
    """A literal ``<name attr="...">content</name>`` constructor.

    ``content`` items are either literal text (str), nested constructors, or
    enclosed expressions.
    """

    name: str = ""
    attributes: list[DirectAttribute] = field(default_factory=list)
    content: list[Union[str, Expr]] = field(default_factory=list)


@dataclass
class CompElement(Expr):
    """element {name} {content} (name either constant str or Expr)."""

    name: Union[str, Expr] = ""
    content: Optional[Expr] = None


@dataclass
class CompAttribute(Expr):
    name: Union[str, Expr] = ""
    content: Optional[Expr] = None


@dataclass
class CompText(Expr):
    content: Optional[Expr] = None


@dataclass
class CompComment(Expr):
    content: Optional[Expr] = None


@dataclass
class CompDocument(Expr):
    content: Optional[Expr] = None


@dataclass
class CompPI(Expr):
    target: Union[str, Expr] = ""
    content: Optional[Expr] = None


# ----------------------------------------------------------------------
# XQuery! extensions (Fig. 1)
# ----------------------------------------------------------------------

@dataclass
class InsertExpr(Expr):
    """insert {source} (as first|as last)? into|before|after {target}.

    ``position`` is one of 'into', 'first', 'last', 'before', 'after'.
    ``snap`` records the ``snap insert`` sugar.
    """

    source: Expr = None  # type: ignore[assignment]
    position: str = "into"
    target: Expr = None  # type: ignore[assignment]
    snap: bool = False


@dataclass
class DeleteExpr(Expr):
    target: Expr = None  # type: ignore[assignment]
    snap: bool = False


@dataclass
class ReplaceExpr(Expr):
    """replace {t} with {s}, or replace value of {t} with {s} (the
    value_of flag — an XQuery-Update-Facility-style extension that
    overwrites a node's content instead of the node)."""

    target: Expr = None  # type: ignore[assignment]
    source: Expr = None  # type: ignore[assignment]
    snap: bool = False
    value_of: bool = False


@dataclass
class RenameExpr(Expr):
    target: Expr = None  # type: ignore[assignment]
    name: Expr = None  # type: ignore[assignment]
    snap: bool = False


@dataclass
class CopyExpr(Expr):
    source: Expr = None  # type: ignore[assignment]


@dataclass
class SnapExpr(Expr):
    """snap (ordered | nondeterministic | conflict-detection)? { body }.

    ``mode`` is None for the engine default (ordered).
    """

    mode: Optional[str] = None
    body: Expr = None  # type: ignore[assignment]


# ----------------------------------------------------------------------
# Prolog / modules
# ----------------------------------------------------------------------

@dataclass
class Param:
    name: str
    type_: Optional[str] = None


@dataclass
class VarDecl:
    name: str
    expr: Optional[Expr]  # None for 'external'
    type_: Optional[str] = None
    line: int = field(default=0, compare=False)


@dataclass
class FunctionDecl:
    name: str
    params: list[Param]
    body: Expr
    return_type: Optional[str] = None
    line: int = field(default=0, compare=False)


@dataclass
class ModuleImport:
    """``import module namespace prefix = "uri" (at "hint")?;``"""

    prefix: str
    uri: str
    location: Optional[str] = None


@dataclass
class Module:
    """A main or library module: prolog declarations + optional body.

    Library modules carry their ``module namespace`` declaration in
    ``declared_prefix`` / ``declared_uri``.
    """

    declarations: list[Union[VarDecl, FunctionDecl]] = field(default_factory=list)
    body: Optional[Expr] = None
    imports: list[ModuleImport] = field(default_factory=list)
    declared_prefix: Optional[str] = None
    declared_uri: Optional[str] = None
