"""Static checks over core modules.

The paper defers static *typing* (Section 6) but Section 5 argues for one
piece of static knowledge: "the signature of functions coming from other
modules should contain an **updating flag**, with the 'monadic' rule that a
function that calls an updating function is updating as well."  This module
provides:

* :func:`check_module` — pre-evaluation validation: every variable
  reference is in scope, every function call resolves (name + arity), and
  snap modes are well-formed.  Catches typos before any update fires.
* :func:`updating_flags` — the Section 5 inference: for each declared
  function, whether it is *updating* (may produce pending updates) and
  whether it *snaps* (may apply them), computed with the monadic
  propagation rule.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import (
    StaticError,
    UndefinedFunctionError,
    UndefinedVariableError,
)
from repro.lang import core_ast as core
from repro.semantics.context import FunctionRegistry


@dataclass(frozen=True)
class FunctionFlags:
    """The Section 5 signature annotations for one function."""

    name: str
    arity: int
    updating: bool
    snapping: bool


_VALID_SNAP_MODES = (None, "ordered", "nondeterministic", "conflict-detection")


class StaticChecker:
    """Scope/arity checker over core expressions."""

    def __init__(
        self,
        registry: FunctionRegistry,
        globals_: set[str] | frozenset[str] = frozenset(),
    ):
        self._registry = registry
        self._globals = frozenset(globals_)

    # ------------------------------------------------------------------

    def check_module(self, module: core.CModule) -> None:
        """Validate a whole module; raises StaticError subclasses."""
        known = set(self._globals)
        # Function declarations are mutually visible (forward references
        # allowed), so register names before checking bodies.
        local_functions = {
            (f.name, len(f.params))
            for f in module.declarations
            if isinstance(f, core.CFunction)
        }
        for decl in module.declarations:
            if isinstance(decl, core.CVarDecl):
                if decl.expr is not None:
                    self._check(decl.expr, frozenset(known), local_functions)
                known.add(decl.name)
            else:
                scope = frozenset(known | set(decl.params))
                self._check(decl.body, scope, local_functions)
        if module.body is not None:
            self._check(module.body, frozenset(known), local_functions)

    def check_expr(self, expr: core.CoreExpr, bound: set[str] = frozenset()) -> None:  # type: ignore[assignment]
        """Validate a single expression against the known globals."""
        self._check(expr, frozenset(self._globals | set(bound)), set())

    # ------------------------------------------------------------------

    def _check(
        self,
        expr: core.CoreExpr,
        bound: frozenset[str],
        local_functions: set[tuple[str, int]],
    ) -> None:
        if isinstance(expr, core.CVar):
            if expr.name not in bound:
                raise UndefinedVariableError(
                    f"undefined variable ${expr.name}"
                    + (f" (line {expr.line})" if expr.line else "")
                )
            return
        if isinstance(expr, core.CCall):
            self._check_call(expr, local_functions)
            for arg in expr.args:
                self._check(arg, bound, local_functions)
            return
        if isinstance(expr, core.CSnap):
            if expr.mode not in _VALID_SNAP_MODES:
                raise StaticError(f"invalid snap mode {expr.mode!r}")
            self._check(expr.body, bound, local_functions)
            return
        if isinstance(expr, core.CFor):
            self._check(expr.source, bound, local_functions)
            inner = bound | {expr.var}
            if expr.position_var:
                inner |= {expr.position_var}
            self._check(expr.body, frozenset(inner), local_functions)
            return
        if isinstance(expr, core.CLet):
            self._check(expr.source, bound, local_functions)
            self._check(expr.body, frozenset(bound | {expr.var}), local_functions)
            return
        if isinstance(expr, core.COrderedFLWOR):
            scope = set(bound)
            for clause in expr.clauses:
                self._check(clause.source, frozenset(scope), local_functions)
                scope.add(clause.var)
                if isinstance(clause, core.CForClause) and clause.position_var:
                    scope.add(clause.position_var)
            frozen = frozenset(scope)
            if expr.where is not None:
                self._check(expr.where, frozen, local_functions)
            for spec in expr.specs:
                self._check(spec.expr, frozen, local_functions)
            self._check(expr.ret, frozen, local_functions)
            return
        if isinstance(expr, core.CTypeswitch):
            self._check(expr.operand, bound, local_functions)
            for case in expr.cases:
                case_scope = bound | {case.var} if case.var else bound
                self._check(case.ret, frozenset(case_scope), local_functions)
            default_scope = (
                bound | {expr.default_var} if expr.default_var else bound
            )
            self._check(expr.default, frozenset(default_scope), local_functions)
            return
        if isinstance(expr, core.CQuantified):
            scope = set(bound)
            for var, source in expr.bindings:
                self._check(source, frozenset(scope), local_functions)
                scope.add(var)
            self._check(expr.satisfies, frozenset(scope), local_functions)
            return
        for child in core.child_exprs(expr):
            self._check(child, bound, local_functions)

    def _check_call(
        self, expr: core.CCall, local_functions: set[tuple[str, int]]
    ) -> None:
        arity = len(expr.args)
        if (expr.name, arity) in local_functions:
            return
        if self._registry.lookup_user(expr.name, arity) is not None:
            return
        if self._registry.lookup_builtin(expr.name, arity) is not None:
            return
        raise UndefinedFunctionError(f"undefined function {expr.name}#{arity}")


def check_module(
    module: core.CModule,
    registry: FunctionRegistry,
    globals_: set[str] = frozenset(),  # type: ignore[assignment]
) -> None:
    """Convenience wrapper around :class:`StaticChecker`."""
    StaticChecker(registry, globals_).check_module(module)


def updating_flags(registry: FunctionRegistry) -> list[FunctionFlags]:
    """Infer the Section 5 updating/snapping flags for every user function
    registered in *registry* (monadic propagation included)."""
    from repro.algebra.properties import EffectAnalyzer

    analyzer = EffectAnalyzer(registry)
    flags = []
    for function in registry.user_functions():
        props = analyzer.analyze(function.body)
        flags.append(
            FunctionFlags(
                name=function.name,
                arity=len(function.params),
                updating=props.may_update,
                snapping=props.may_snap,
            )
        )
    return flags
