"""Unparser: render surface AST back to XQuery! source.

``unparse(parse(q))`` is source-equivalent to ``q``: re-parsing the output
yields an equal AST (the round-trip property tested in
``tests/property/test_parser_roundtrip.py``).  Output is fully
parenthesized where precedence could bite, which keeps the printer simple
and the property easy to maintain.
"""

from __future__ import annotations

from repro.errors import StaticError
from repro.lang import ast


def unparse(expr: ast.Expr) -> str:
    """Render a surface expression as parseable XQuery! text."""
    return _p(expr)


def unparse_module(module: ast.Module) -> str:
    """Render a whole module (prolog + body)."""
    parts: list[str] = []
    for decl in module.declarations:
        if isinstance(decl, ast.VarDecl):
            type_part = f" as {decl.type_}" if decl.type_ else ""
            if decl.expr is None:
                parts.append(f"declare variable ${decl.name}{type_part} external;")
            else:
                parts.append(
                    f"declare variable ${decl.name}{type_part} := {_p(decl.expr)};"
                )
        else:
            params = ", ".join(
                f"${p.name}" + (f" as {p.type_}" if p.type_ else "")
                for p in decl.params
            )
            ret = f" as {decl.return_type}" if decl.return_type else ""
            parts.append(
                f"declare function {decl.name}({params}){ret} "
                f"{{ {_p(decl.body)} }};"
            )
    if module.body is not None:
        parts.append(_p(module.body))
    return "\n".join(parts)


def _string_literal(value: str) -> str:
    escaped = value.replace("&", "&amp;").replace('"', '""')
    return f'"{escaped}"'


def _p(expr: ast.Expr) -> str:
    handler = _HANDLERS.get(type(expr))
    if handler is None:
        raise StaticError(f"cannot unparse {type(expr).__name__}")
    return handler(expr)


# -- leaves ---------------------------------------------------------------

def _integer(e: ast.IntegerLit) -> str:
    return str(e.value)


def _decimal(e: ast.DecimalLit) -> str:
    text = repr(e.value)
    return text if "." in text else text + ".0"


def _double(e: ast.DoubleLit) -> str:
    mantissa, _, exponent = repr(e.value).partition("e")
    if exponent:
        return f"{mantissa}E{exponent}"
    return f"{mantissa}E0"


def _string(e: ast.StringLit) -> str:
    return _string_literal(e.value)


def _var(e: ast.VarRef) -> str:
    return f"${e.name}"


def _context(e: ast.ContextItem) -> str:
    return "."


def _empty(e: ast.EmptySequence) -> str:
    return "()"


def _root(e: ast.RootExpr) -> str:
    # A bare leading '/': only legal at the start of a path; parenthesized
    # via fn:root(self::node()) equivalence is overkill — emit '/'.
    return "/"


# -- composition -----------------------------------------------------------

def _sequence(e: ast.SequenceExpr) -> str:
    return "(" + ", ".join(_p(item) for item in e.items) + ")"


def _sequenced(e: ast.SequencedExpr) -> str:
    return "(" + "; ".join(_p(item) for item in e.items) + ")"


def _range(e: ast.RangeExpr) -> str:
    return f"({_p(e.lo)} to {_p(e.hi)})"


def _arith(e: ast.Arith) -> str:
    return f"({_p(e.left)} {e.op} {_p(e.right)})"


def _unary(e: ast.Unary) -> str:
    return f"({e.op}{_p(e.operand)})"


_GENERAL_OPS = {"eq": "=", "ne": "!=", "lt": "<", "le": "<=", "gt": ">", "ge": ">="}
_NODE_OPS = {"is": "is", "precedes": "<<", "follows": ">>"}


def _comparison(e: ast.Comparison) -> str:
    if e.style == "general":
        op = _GENERAL_OPS[e.op]
    elif e.style == "value":
        op = e.op
    else:
        op = _NODE_OPS[e.op]
    return f"({_p(e.left)} {op} {_p(e.right)})"


def _bool(e: ast.BoolOp) -> str:
    return f"({_p(e.left)} {e.op} {_p(e.right)})"


def _set(e: ast.SetExpr) -> str:
    return f"({_p(e.left)} {e.op} {_p(e.right)})"


# -- control -----------------------------------------------------------------

def _if(e: ast.IfExpr) -> str:
    return f"(if ({_p(e.cond)}) then {_p(e.then)} else {_p(e.orelse)})"


def _flwor(e: ast.FLWORExpr) -> str:
    parts: list[str] = []
    for clause in e.clauses:
        if isinstance(clause, ast.ForClause):
            at = f" at ${clause.position_var}" if clause.position_var else ""
            parts.append(f"for ${clause.var}{at} in {_p(clause.expr)}")
        else:
            parts.append(f"let ${clause.var} := {_p(clause.expr)}")
    if e.where is not None:
        parts.append(f"where {_p(e.where)}")
    if e.order_by:
        specs = []
        for spec in e.order_by:
            text = _p(spec.expr)
            if spec.descending:
                text += " descending"
            if spec.empty_least is True:
                text += " empty least"
            elif spec.empty_least is False:
                text += " empty greatest"
            specs.append(text)
        stable = "stable " if e.stable else ""
        parts.append(f"{stable}order by " + ", ".join(specs))
    parts.append(f"return {_p(e.ret)}")
    return "(" + " ".join(parts) + ")"


def _typeswitch(e: ast.TypeswitchExpr) -> str:
    parts = [f"typeswitch ({_p(e.operand)})"]
    for case in e.cases:
        var = f"${case.var} as " if case.var else ""
        parts.append(f"case {var}{case.type_} return {_p(case.ret)}")
    default_var = f"${e.default_var} " if e.default_var else ""
    parts.append(f"default {default_var}return {_p(e.default)}")
    return "(" + " ".join(parts) + ")"


def _quantified(e: ast.QuantifiedExpr) -> str:
    bindings = ", ".join(f"${var} in {_p(src)}" for var, src in e.bindings)
    return f"({e.kind} {bindings} satisfies {_p(e.satisfies)})"


# -- paths ----------------------------------------------------------------------

def _node_test(test: ast.NodeTest) -> str:
    if test.kind == "name":
        return test.name or "*"
    if test.name is None:
        return f"{test.kind}()"
    return f"{test.kind}({test.name})"


def _axis_step(e: ast.AxisStep) -> str:
    text = f"{e.axis}::{_node_test(e.test)}"
    for predicate in e.predicates:
        text += f"[{_p(predicate)}]"
    return text


def _path(e: ast.PathExpr) -> str:
    base = _p(e.base)
    if base == "/":
        return f"/{_p(e.step)}"
    return f"{base}/{_p(e.step)}"


def _filter(e: ast.FilterExpr) -> str:
    text = f"({_p(e.base)})"
    for predicate in e.predicates:
        text += f"[{_p(predicate)}]"
    return text


# -- functions -----------------------------------------------------------------

def _call(e: ast.FunctionCall) -> str:
    return f"{e.name}(" + ", ".join(_p(a) for a in e.args) + ")"


# -- constructors -----------------------------------------------------------------

def _attr_content(content: ast.AttributeContent) -> str:
    out: list[str] = []
    for part in content.parts:
        if isinstance(part, str):
            out.append(
                part.replace("&", "&amp;")
                .replace('"', "&quot;")
                .replace("{", "{{")
                .replace("}", "}}")
                .replace("<", "&lt;")
            )
        else:
            out.append("{" + _p(part) + "}")
    return "".join(out)


def _direct_element(e: ast.DirectElement) -> str:
    attrs = "".join(
        f' {a.name}="{_attr_content(a.content)}"' for a in e.attributes
    )
    if not e.content:
        return f"<{e.name}{attrs}/>"
    body: list[str] = []
    for item in e.content:
        if isinstance(item, str):
            body.append(
                item.replace("&", "&amp;")
                .replace("<", "&lt;")
                .replace("{", "{{")
                .replace("}", "}}")
            )
        else:
            body.append("{" + _p(item) + "}")
    return f"<{e.name}{attrs}>" + "".join(body) + f"</{e.name}>"


def _name_part(name) -> str:
    if isinstance(name, str):
        return name
    return "{" + _p(name) + "}"


def _comp_element(e: ast.CompElement) -> str:
    content = "" if e.content is None else _p(e.content)
    return f"element {_name_part(e.name)} {{ {content} }}"


def _comp_attribute(e: ast.CompAttribute) -> str:
    content = "" if e.content is None else _p(e.content)
    return f"attribute {_name_part(e.name)} {{ {content} }}"


def _comp_text(e: ast.CompText) -> str:
    return "text { " + ("" if e.content is None else _p(e.content)) + " }"


def _comp_comment(e: ast.CompComment) -> str:
    return "comment { " + ("" if e.content is None else _p(e.content)) + " }"


def _comp_document(e: ast.CompDocument) -> str:
    return "document { " + ("" if e.content is None else _p(e.content)) + " }"


def _comp_pi(e: ast.CompPI) -> str:
    content = "" if e.content is None else _p(e.content)
    return f"processing-instruction {_name_part(e.target)} {{ {content} }}"


# -- XQuery! operations -------------------------------------------------------------

_LOCATION = {
    "into": "into",
    "first": "as first into",
    "last": "as last into",
    "before": "before",
    "after": "after",
}


def _insert(e: ast.InsertExpr) -> str:
    snap = "snap " if e.snap else ""
    return (
        f"({snap}insert {{ {_p(e.source)} }} "
        f"{_LOCATION[e.position]} {{ {_p(e.target)} }})"
    )


def _delete(e: ast.DeleteExpr) -> str:
    snap = "snap " if e.snap else ""
    return f"({snap}delete {{ {_p(e.target)} }})"


def _replace(e: ast.ReplaceExpr) -> str:
    snap = "snap " if e.snap else ""
    value_of = "value of " if e.value_of else ""
    return (
        f"({snap}replace {value_of}{{ {_p(e.target)} }} "
        f"with {{ {_p(e.source)} }})"
    )


def _rename(e: ast.RenameExpr) -> str:
    snap = "snap " if e.snap else ""
    return f"({snap}rename {{ {_p(e.target)} }} to {{ {_p(e.name)} }})"


def _copy(e: ast.CopyExpr) -> str:
    return f"copy {{ {_p(e.source)} }}"


def _snap(e: ast.SnapExpr) -> str:
    mode = f"{e.mode} " if e.mode else ""
    return f"(snap {mode}{{ {_p(e.body)} }})"


def _instance_of(e: ast.InstanceOf) -> str:
    return f"({_p(e.operand)} instance of {e.type_})"


def _treat(e: ast.TreatExpr) -> str:
    return f"({_p(e.operand)} treat as {e.type_})"


def _cast(e: ast.CastExpr) -> str:
    keyword = "castable" if e.castable else "cast"
    optional = "?" if e.optional else ""
    return f"({_p(e.operand)} {keyword} as {e.type_name}{optional})"


_HANDLERS = {
    ast.IntegerLit: _integer,
    ast.DecimalLit: _decimal,
    ast.DoubleLit: _double,
    ast.StringLit: _string,
    ast.VarRef: _var,
    ast.ContextItem: _context,
    ast.EmptySequence: _empty,
    ast.RootExpr: _root,
    ast.SequenceExpr: _sequence,
    ast.SequencedExpr: _sequenced,
    ast.RangeExpr: _range,
    ast.Arith: _arith,
    ast.Unary: _unary,
    ast.Comparison: _comparison,
    ast.BoolOp: _bool,
    ast.SetExpr: _set,
    ast.IfExpr: _if,
    ast.FLWORExpr: _flwor,
    ast.QuantifiedExpr: _quantified,
    ast.TypeswitchExpr: _typeswitch,
    ast.AxisStep: _axis_step,
    ast.PathExpr: _path,
    ast.FilterExpr: _filter,
    ast.FunctionCall: _call,
    ast.DirectElement: _direct_element,
    ast.CompElement: _comp_element,
    ast.CompAttribute: _comp_attribute,
    ast.CompText: _comp_text,
    ast.CompComment: _comp_comment,
    ast.CompDocument: _comp_document,
    ast.CompPI: _comp_pi,
    ast.InsertExpr: _insert,
    ast.DeleteExpr: _delete,
    ast.ReplaceExpr: _replace,
    ast.RenameExpr: _rename,
    ast.CopyExpr: _copy,
    ast.SnapExpr: _snap,
    ast.InstanceOf: _instance_of,
    ast.TreatExpr: _treat,
    ast.CastExpr: _cast,
}
