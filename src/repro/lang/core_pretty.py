"""Unparser for the *core* language.

Renders core expressions as XQuery!-like source text.  Used by the plan
printer (:func:`repro.algebra.plan.paper_plan`) so compiled plans display
their embedded expressions the way the paper's Section 4.3 plan does, and
by debugging tools.  Core text is denotational, not necessarily
re-parseable (e.g. the implicit copy shows as an explicit ``copy {}``,
which is in fact the point of printing it).
"""

from __future__ import annotations

from repro.lang import core_ast as core

_GENERAL_OPS = {"eq": "=", "ne": "!=", "lt": "<", "le": "<=", "gt": ">", "ge": ">="}
_NODE_OPS = {"is": "is", "precedes": "<<", "follows": ">>"}


def core_to_source(expr: core.CoreExpr) -> str:
    """Render a core expression as source-like text."""
    return _c(expr)


def _c(expr: core.CoreExpr) -> str:
    handler = _HANDLERS.get(type(expr))
    if handler is None:
        return f"<{type(expr).__name__}>"
    return handler(expr)


def _opt(expr: core.CoreExpr | None) -> str:
    return "" if expr is None else _c(expr)


def _literal(e: core.CLiteral) -> str:
    if e.value.type == "xs:string":
        escaped = e.value.value.replace('"', '""')
        return f'"{escaped}"'
    return e.value.lexical()


def _var(e: core.CVar) -> str:
    return f"${e.name}"


def _context(e: core.CContext) -> str:
    return "."


def _empty(e: core.CEmpty) -> str:
    return "()"


def _root(e: core.CRoot) -> str:
    return "fn:root(.)"


def _sequence(e: core.CSequence) -> str:
    return "(" + ", ".join(_c(item) for item in e.items) + ")"


def _sequenced(e: core.CSequenced) -> str:
    return "(" + "; ".join(_c(item) for item in e.items) + ")"


def _range(e: core.CRange) -> str:
    return f"({_c(e.lo)} to {_c(e.hi)})"


def _arith(e: core.CArith) -> str:
    return f"({_c(e.left)} {e.op} {_c(e.right)})"


def _unary(e: core.CUnary) -> str:
    return f"({e.op}{_c(e.operand)})"


def _comparison(e: core.CComparison) -> str:
    if e.style == "general":
        op = _GENERAL_OPS[e.op]
    elif e.style == "value":
        op = e.op
    else:
        op = _NODE_OPS[e.op]
    return f"({_c(e.left)} {op} {_c(e.right)})"


def _bool(e: core.CBool) -> str:
    return f"({_c(e.left)} {e.op} {_c(e.right)})"


def _set(e: core.CSet) -> str:
    return f"({_c(e.left)} {e.op} {_c(e.right)})"


def _if(e: core.CIf) -> str:
    return f"if ({_c(e.cond)}) then {_c(e.then)} else {_c(e.orelse)}"


def _for(e: core.CFor) -> str:
    at = f" at ${e.position_var}" if e.position_var else ""
    return f"for ${e.var}{at} in {_c(e.source)} return {_c(e.body)}"


def _let(e: core.CLet) -> str:
    return f"let ${e.var} := {_c(e.source)} return {_c(e.body)}"


def _ordered_flwor(e: core.COrderedFLWOR) -> str:
    parts = []
    for clause in e.clauses:
        if isinstance(clause, core.CForClause):
            at = f" at ${clause.position_var}" if clause.position_var else ""
            parts.append(f"for ${clause.var}{at} in {_c(clause.source)}")
        else:
            parts.append(f"let ${clause.var} := {_c(clause.source)}")
    if e.where is not None:
        parts.append(f"where {_c(e.where)}")
    specs = []
    for spec in e.specs:
        text = _c(spec.expr)
        if spec.descending:
            text += " descending"
        specs.append(text)
    parts.append("order by " + ", ".join(specs))
    parts.append(f"return {_c(e.ret)}")
    return " ".join(parts)


def _quantified(e: core.CQuantified) -> str:
    bindings = ", ".join(f"${var} in {_c(src)}" for var, src in e.bindings)
    return f"{e.kind} {bindings} satisfies {_c(e.satisfies)}"


def _typeswitch(e: core.CTypeswitch) -> str:
    parts = [f"typeswitch ({_c(e.operand)})"]
    for case in e.cases:
        var = f"${case.var} as " if case.var else ""
        parts.append(f"case {var}{case.type_} return {_c(case.ret)}")
    default_var = f"${e.default_var} " if e.default_var else ""
    parts.append(f"default {default_var}return {_c(e.default)}")
    return " ".join(parts)


def _node_test(test: core.CNodeTest) -> str:
    if test.kind == "name":
        return test.name or "*"
    inner = test.name or ""
    return f"{test.kind}({inner})"


_ABBREVIATIONS = {"child": "", "attribute": "@"}


def _axis_step(e: core.CAxisStep) -> str:
    if e.axis in _ABBREVIATIONS and e.test.kind == "name":
        text = _ABBREVIATIONS[e.axis] + _node_test(e.test)
    else:
        text = f"{e.axis}::{_node_test(e.test)}"
    for predicate in e.predicates:
        text += f"[{_c(predicate)}]"
    return text


def _path(e: core.CPath) -> str:
    return f"{_c(e.base)}/{_c(e.step)}"


def _filter(e: core.CFilter) -> str:
    text = _c(e.base)
    for predicate in e.predicates:
        text += f"[{_c(predicate)}]"
    return text


def _call(e: core.CCall) -> str:
    return f"{e.name}(" + ", ".join(_c(a) for a in e.args) + ")"


def _name_part(name) -> str:
    return name if isinstance(name, str) else "{" + _c(name) + "}"


def _elem(e: core.CElem) -> str:
    content = ", ".join(_c(item) for item in e.content)
    return f"element {_name_part(e.name)} {{ {content} }}"


def _attr(e: core.CAttr) -> str:
    parts = []
    for part in e.parts:
        parts.append(f'"{part}"' if isinstance(part, str) else _c(part))
    return f"attribute {_name_part(e.name)} {{ {', '.join(parts)} }}"


def _text(e: core.CText) -> str:
    return f"text {{ {_opt(e.content)} }}"


def _comment(e: core.CComment) -> str:
    return f"comment {{ {_opt(e.content)} }}"


def _doc(e: core.CDoc) -> str:
    return f"document {{ {_opt(e.content)} }}"


def _pi(e: core.CPI) -> str:
    return f"processing-instruction {_name_part(e.target)} {{ {_opt(e.content)} }}"


def _copy(e: core.CCopy) -> str:
    return f"copy {{ {_c(e.source)} }}"


_LOCATION = {
    "first": "as first into",
    "last": "as last into",
    "before": "before",
    "after": "after",
}


def _insert(e: core.CInsert) -> str:
    return (
        f"insert {{ {_c(e.source)} }} {_LOCATION[e.position]} "
        f"{{ {_c(e.target)} }}"
    )


def _delete(e: core.CDelete) -> str:
    return f"delete {{ {_c(e.target)} }}"


def _replace(e: core.CReplace) -> str:
    return f"replace {{ {_c(e.target)} }} with {{ {_c(e.source)} }}"


def _replace_value(e: core.CReplaceValue) -> str:
    return f"replace value of {{ {_c(e.target)} }} with {{ {_c(e.source)} }}"


def _rename(e: core.CRename) -> str:
    return f"rename {{ {_c(e.target)} }} to {{ {_c(e.name)} }}"


def _snap(e: core.CSnap) -> str:
    mode = f"{e.mode} " if e.mode else ""
    return f"snap {mode}{{ {_c(e.body)} }}"


def _instance_of(e: core.CInstanceOf) -> str:
    return f"({_c(e.operand)} instance of {e.type_})"


def _treat(e: core.CTreat) -> str:
    return f"({_c(e.operand)} treat as {e.type_})"


def _cast(e: core.CCast) -> str:
    keyword = "castable" if e.castable else "cast"
    optional = "?" if e.optional else ""
    return f"({_c(e.operand)} {keyword} as {e.type_name}{optional})"


_HANDLERS = {
    core.CLiteral: _literal,
    core.CVar: _var,
    core.CContext: _context,
    core.CEmpty: _empty,
    core.CRoot: _root,
    core.CSequence: _sequence,
    core.CSequenced: _sequenced,
    core.CRange: _range,
    core.CArith: _arith,
    core.CUnary: _unary,
    core.CComparison: _comparison,
    core.CBool: _bool,
    core.CSet: _set,
    core.CIf: _if,
    core.CFor: _for,
    core.CLet: _let,
    core.COrderedFLWOR: _ordered_flwor,
    core.CQuantified: _quantified,
    core.CTypeswitch: _typeswitch,
    core.CAxisStep: _axis_step,
    core.CPath: _path,
    core.CFilter: _filter,
    core.CCall: _call,
    core.CElem: _elem,
    core.CAttr: _attr,
    core.CText: _text,
    core.CComment: _comment,
    core.CDoc: _doc,
    core.CPI: _pi,
    core.CCopy: _copy,
    core.CInsert: _insert,
    core.CDelete: _delete,
    core.CReplace: _replace,
    core.CReplaceValue: _replace_value,
    core.CRename: _rename,
    core.CSnap: _snap,
    core.CInstanceOf: _instance_of,
    core.CTreat: _treat,
    core.CCast: _cast,
}
