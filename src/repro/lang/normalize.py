"""Normalization from surface XQuery! to the core language (Section 3.3).

The only semantically non-trivial rule is the paper's copy insertion:

    [insert {Expr1} into {Expr2}]
        == insert {copy{[Expr1]}} as last into {[Expr2]}

and likewise for the second argument of ``replace``.  Everything else is
syntax lowering: direct constructors to computed form, ``snap``-prefixed
update sugar to an explicit ``snap { ... }``, ``where`` clauses to ``if``,
and FLWOR clause lists to the nested ``for``/``let`` core forms of Fig. 3.
"""

from __future__ import annotations

from repro.errors import NormalizationError
from repro.lang import ast
from repro.lang import core_ast as core
from repro.xdm.values import AtomicValue


def normalize(expr: ast.Expr) -> core.CoreExpr:
    """Normalize a surface expression to core."""
    return _norm(expr)


def normalize_module(module: ast.Module) -> core.CModule:
    """Normalize a surface module (prolog + body) to core."""
    out = core.CModule(
        imports=[(imp.prefix, imp.uri) for imp in module.imports],
        declared_prefix=module.declared_prefix,
        declared_uri=module.declared_uri,
    )
    for decl in module.declarations:
        if isinstance(decl, ast.VarDecl):
            out.declarations.append(
                core.CVarDecl(
                    name=decl.name,
                    expr=None if decl.expr is None else _norm(decl.expr),
                    type_=decl.type_,
                )
            )
        else:
            out.declarations.append(
                core.CFunction(
                    name=decl.name,
                    params=[p.name for p in decl.params],
                    body=_norm(decl.body),
                    param_types=[p.type_ for p in decl.params],
                    return_type=decl.return_type,
                )
            )
    if module.body is not None:
        out.body = _norm(module.body)
    return out


def _norm(expr: ast.Expr) -> core.CoreExpr:
    handler = _HANDLERS.get(type(expr))
    if handler is None:
        raise NormalizationError(
            f"no normalization rule for {type(expr).__name__}"
        )
    return handler(expr)


def _norm_opt(expr: ast.Expr | None) -> core.CoreExpr | None:
    return None if expr is None else _norm(expr)


# ----------------------------------------------------------------------
# Leaves
# ----------------------------------------------------------------------

def _norm_integer(e: ast.IntegerLit) -> core.CoreExpr:
    return core.CLiteral(value=AtomicValue.integer(e.value), line=e.line)


def _norm_decimal(e: ast.DecimalLit) -> core.CoreExpr:
    return core.CLiteral(value=AtomicValue.decimal(e.value), line=e.line)


def _norm_double(e: ast.DoubleLit) -> core.CoreExpr:
    return core.CLiteral(value=AtomicValue.double(e.value), line=e.line)


def _norm_string(e: ast.StringLit) -> core.CoreExpr:
    return core.CLiteral(value=AtomicValue.string(e.value), line=e.line)


def _norm_var(e: ast.VarRef) -> core.CoreExpr:
    return core.CVar(name=e.name, line=e.line)


def _norm_context(e: ast.ContextItem) -> core.CoreExpr:
    return core.CContext(line=e.line)


def _norm_empty(e: ast.EmptySequence) -> core.CoreExpr:
    return core.CEmpty(line=e.line)


def _norm_root(e: ast.RootExpr) -> core.CoreExpr:
    return core.CRoot(line=e.line)


# ----------------------------------------------------------------------
# Composition and operators
# ----------------------------------------------------------------------

def _norm_sequence(e: ast.SequenceExpr) -> core.CoreExpr:
    return core.CSequence(items=[_norm(item) for item in e.items], line=e.line)


def _norm_sequenced(e: ast.SequencedExpr) -> core.CoreExpr:
    return core.CSequenced(items=[_norm(item) for item in e.items], line=e.line)


def _norm_range(e: ast.RangeExpr) -> core.CoreExpr:
    return core.CRange(lo=_norm(e.lo), hi=_norm(e.hi), line=e.line)


def _norm_arith(e: ast.Arith) -> core.CoreExpr:
    return core.CArith(
        op=e.op, left=_norm(e.left), right=_norm(e.right), line=e.line
    )


def _norm_unary(e: ast.Unary) -> core.CoreExpr:
    return core.CUnary(op=e.op, operand=_norm(e.operand), line=e.line)


def _norm_comparison(e: ast.Comparison) -> core.CoreExpr:
    return core.CComparison(
        style=e.style, op=e.op, left=_norm(e.left), right=_norm(e.right),
        line=e.line,
    )


def _norm_bool(e: ast.BoolOp) -> core.CoreExpr:
    return core.CBool(op=e.op, left=_norm(e.left), right=_norm(e.right), line=e.line)


def _norm_set(e: ast.SetExpr) -> core.CoreExpr:
    return core.CSet(op=e.op, left=_norm(e.left), right=_norm(e.right), line=e.line)


def _norm_if(e: ast.IfExpr) -> core.CoreExpr:
    return core.CIf(
        cond=_norm(e.cond), then=_norm(e.then), orelse=_norm(e.orelse), line=e.line
    )


# ----------------------------------------------------------------------
# FLWOR and quantifiers
# ----------------------------------------------------------------------

def _norm_flwor(e: ast.FLWORExpr) -> core.CoreExpr:
    if e.order_by:
        clauses: list[core.CForClause | core.CLetClause] = []
        for clause in e.clauses:
            if isinstance(clause, ast.ForClause):
                clauses.append(
                    core.CForClause(
                        var=clause.var,
                        source=_norm(clause.expr),
                        position_var=clause.position_var,
                    )
                )
            else:
                clauses.append(
                    core.CLetClause(var=clause.var, source=_norm(clause.expr))
                )
        return core.COrderedFLWOR(
            clauses=clauses,
            where=_norm_opt(e.where),
            specs=[
                core.COrderSpec(
                    expr=_norm(s.expr),
                    descending=s.descending,
                    empty_least=s.empty_least,
                )
                for s in e.order_by
            ],
            ret=_norm(e.ret),
            line=e.line,
        )
    # No order by: nest.  'where C return R' becomes 'if (C) then R else ()'.
    body = _norm(e.ret)
    if e.where is not None:
        body = core.CIf(
            cond=_norm(e.where), then=body, orelse=core.CEmpty(), line=e.line
        )
    for clause in reversed(e.clauses):
        if isinstance(clause, ast.ForClause):
            body = core.CFor(
                var=clause.var,
                position_var=clause.position_var,
                source=_norm(clause.expr),
                body=body,
                line=e.line,
            )
        else:
            body = core.CLet(
                var=clause.var, source=_norm(clause.expr), body=body, line=e.line
            )
    return body


def _norm_typeswitch(e: ast.TypeswitchExpr) -> core.CoreExpr:
    return core.CTypeswitch(
        operand=_norm(e.operand),
        cases=[
            core.CCase(type_=c.type_, ret=_norm(c.ret), var=c.var)
            for c in e.cases
        ],
        default_var=e.default_var,
        default=_norm(e.default),
        line=e.line,
    )


def _norm_quantified(e: ast.QuantifiedExpr) -> core.CoreExpr:
    return core.CQuantified(
        kind=e.kind,
        bindings=[(var, _norm(src)) for var, src in e.bindings],
        satisfies=_norm(e.satisfies),
        line=e.line,
    )


# ----------------------------------------------------------------------
# Paths
# ----------------------------------------------------------------------

def _norm_axis_step(e: ast.AxisStep) -> core.CoreExpr:
    return core.CAxisStep(
        axis=e.axis,
        test=core.CNodeTest(kind=e.test.kind, name=e.test.name),
        predicates=[_norm(p) for p in e.predicates],
        line=e.line,
    )


def _norm_path(e: ast.PathExpr) -> core.CoreExpr:
    return core.CPath(base=_norm(e.base), step=_norm(e.step), line=e.line)


def _norm_filter(e: ast.FilterExpr) -> core.CoreExpr:
    return core.CFilter(
        base=_norm(e.base),
        predicates=[_norm(p) for p in e.predicates],
        line=e.line,
    )


# ----------------------------------------------------------------------
# Functions
# ----------------------------------------------------------------------

def _norm_call(e: ast.FunctionCall) -> core.CoreExpr:
    return core.CCall(
        name=e.name, args=[_norm(a) for a in e.args], line=e.line
    )


# ----------------------------------------------------------------------
# Constructors
# ----------------------------------------------------------------------

def _norm_direct_element(e: ast.DirectElement) -> core.CoreExpr:
    content: list[core.CoreExpr] = []
    for attr in e.attributes:
        parts: list[str | core.CoreExpr] = []
        for part in attr.content.parts:
            parts.append(part if isinstance(part, str) else _norm(part))
        content.append(core.CAttr(name=attr.name, parts=parts, line=e.line))
    for item in e.content:
        if isinstance(item, str):
            content.append(
                core.CText(
                    content=core.CLiteral(value=AtomicValue.string(item)),
                    line=e.line,
                )
            )
        else:
            content.append(_norm(item))
    return core.CElem(name=e.name, content=content, line=e.line)


def _norm_comp_element(e: ast.CompElement) -> core.CoreExpr:
    name = e.name if isinstance(e.name, str) else _norm(e.name)
    content = [] if e.content is None else [_norm(e.content)]
    return core.CElem(name=name, content=content, line=e.line)


def _norm_comp_attribute(e: ast.CompAttribute) -> core.CoreExpr:
    name = e.name if isinstance(e.name, str) else _norm(e.name)
    parts: list[str | core.CoreExpr] = []
    if e.content is not None:
        parts.append(_norm(e.content))
    return core.CAttr(name=name, parts=parts, line=e.line)


def _norm_comp_text(e: ast.CompText) -> core.CoreExpr:
    return core.CText(content=_norm_opt(e.content), line=e.line)


def _norm_comp_comment(e: ast.CompComment) -> core.CoreExpr:
    return core.CComment(content=_norm_opt(e.content), line=e.line)


def _norm_comp_document(e: ast.CompDocument) -> core.CoreExpr:
    return core.CDoc(content=_norm_opt(e.content), line=e.line)


def _norm_comp_pi(e: ast.CompPI) -> core.CoreExpr:
    target = e.target if isinstance(e.target, str) else _norm(e.target)
    return core.CPI(target=target, content=_norm_opt(e.content), line=e.line)


# ----------------------------------------------------------------------
# XQuery! operations
# ----------------------------------------------------------------------

def _maybe_snap(expr: core.CoreExpr, snap: bool, line: int) -> core.CoreExpr:
    """Expand the 'snap insert{}...' sugar of Fig. 1."""
    if snap:
        return core.CSnap(mode=None, body=expr, line=line)
    return expr


def _norm_insert(e: ast.InsertExpr) -> core.CoreExpr:
    # The paper's normalization rule: wrap the source in copy{} and
    # canonicalize plain 'into' to 'as last into'.
    position = "last" if e.position == "into" else e.position
    out = core.CInsert(
        source=core.CCopy(source=_norm(e.source), line=e.line),
        position=position,
        target=_norm(e.target),
        line=e.line,
    )
    return _maybe_snap(out, e.snap, e.line)


def _norm_delete(e: ast.DeleteExpr) -> core.CoreExpr:
    out = core.CDelete(target=_norm(e.target), line=e.line)
    return _maybe_snap(out, e.snap, e.line)


def _norm_replace(e: ast.ReplaceExpr) -> core.CoreExpr:
    if e.value_of:
        # 'replace value of' atomizes the source: no copy needed.
        out: core.CoreExpr = core.CReplaceValue(
            target=_norm(e.target), source=_norm(e.source), line=e.line
        )
    else:
        out = core.CReplace(
            target=_norm(e.target),
            source=core.CCopy(source=_norm(e.source), line=e.line),
            line=e.line,
        )
    return _maybe_snap(out, e.snap, e.line)


def _norm_rename(e: ast.RenameExpr) -> core.CoreExpr:
    out = core.CRename(target=_norm(e.target), name=_norm(e.name), line=e.line)
    return _maybe_snap(out, e.snap, e.line)


def _norm_copy(e: ast.CopyExpr) -> core.CoreExpr:
    return core.CCopy(source=_norm(e.source), line=e.line)


def _norm_snap(e: ast.SnapExpr) -> core.CoreExpr:
    return core.CSnap(mode=e.mode, body=_norm(e.body), line=e.line)


def _norm_instance_of(e: ast.InstanceOf) -> core.CoreExpr:
    return core.CInstanceOf(operand=_norm(e.operand), type_=e.type_, line=e.line)


def _norm_treat(e: ast.TreatExpr) -> core.CoreExpr:
    return core.CTreat(operand=_norm(e.operand), type_=e.type_, line=e.line)


def _norm_cast(e: ast.CastExpr) -> core.CoreExpr:
    return core.CCast(
        operand=_norm(e.operand),
        type_name=e.type_name,
        optional=e.optional,
        castable=e.castable,
        line=e.line,
    )


_HANDLERS = {
    ast.IntegerLit: _norm_integer,
    ast.DecimalLit: _norm_decimal,
    ast.DoubleLit: _norm_double,
    ast.StringLit: _norm_string,
    ast.VarRef: _norm_var,
    ast.ContextItem: _norm_context,
    ast.EmptySequence: _norm_empty,
    ast.RootExpr: _norm_root,
    ast.SequenceExpr: _norm_sequence,
    ast.SequencedExpr: _norm_sequenced,
    ast.RangeExpr: _norm_range,
    ast.Arith: _norm_arith,
    ast.Unary: _norm_unary,
    ast.Comparison: _norm_comparison,
    ast.BoolOp: _norm_bool,
    ast.SetExpr: _norm_set,
    ast.IfExpr: _norm_if,
    ast.FLWORExpr: _norm_flwor,
    ast.QuantifiedExpr: _norm_quantified,
    ast.TypeswitchExpr: _norm_typeswitch,
    ast.AxisStep: _norm_axis_step,
    ast.PathExpr: _norm_path,
    ast.FilterExpr: _norm_filter,
    ast.FunctionCall: _norm_call,
    ast.DirectElement: _norm_direct_element,
    ast.CompElement: _norm_comp_element,
    ast.CompAttribute: _norm_comp_attribute,
    ast.CompText: _norm_comp_text,
    ast.CompComment: _norm_comp_comment,
    ast.CompDocument: _norm_comp_document,
    ast.CompPI: _norm_comp_pi,
    ast.InsertExpr: _norm_insert,
    ast.DeleteExpr: _norm_delete,
    ast.ReplaceExpr: _norm_replace,
    ast.RenameExpr: _norm_rename,
    ast.CopyExpr: _norm_copy,
    ast.SnapExpr: _norm_snap,
    ast.InstanceOf: _norm_instance_of,
    ast.TreatExpr: _norm_treat,
    ast.CastExpr: _norm_cast,
}
