"""Token definitions for the XQuery! lexer."""

from __future__ import annotations

import enum
from dataclasses import dataclass


class TokenKind(enum.Enum):
    """Lexical token categories.

    XQuery has no reserved words: keywords are ordinary ``NAME`` tokens that
    the parser interprets contextually (this is how ``insert`` can still be
    an element name in a path step).
    """

    NAME = "name"                 # NCName or prefixed QName (a, a:b)
    VARNAME = "varname"           # $name
    INTEGER = "integer"
    DECIMAL = "decimal"
    DOUBLE = "double"
    STRING = "string"

    LPAREN = "("
    RPAREN = ")"
    LBRACE = "{"
    RBRACE = "}"
    LBRACKET = "["
    RBRACKET = "]"
    COMMA = ","
    SEMICOLON = ";"
    DOT = "."
    DOTDOT = ".."
    SLASH = "/"
    SLASHSLASH = "//"
    AT = "@"
    PLUS = "+"
    MINUS = "-"
    STAR = "*"
    PIPE = "|"
    EQ = "="
    NE = "!="
    LT = "<"
    LE = "<="
    GT = ">"
    GE = ">="
    LTLT = "<<"
    GTGT = ">>"
    ASSIGN = ":="
    COLONCOLON = "::"
    QUESTION = "?"

    EOF = "eof"


@dataclass(frozen=True)
class Token:
    """A lexed token with its source span (for error messages and for the
    parser's char-level hand-off when parsing direct constructors)."""

    kind: TokenKind
    value: str
    line: int
    column: int
    start: int
    end: int

    def is_name(self, *names: str) -> bool:
        """True if this is a NAME token whose text is one of *names*."""
        return self.kind is TokenKind.NAME and self.value in names

    def __repr__(self) -> str:
        return f"Token({self.kind.name}, {self.value!r}@{self.line}:{self.column})"
