"""The XQuery! tokenizer.

A pull lexer over a character source.  Two properties matter for XQuery:

* **No reserved words** — keywords come out as plain ``NAME`` tokens and the
  parser decides contextually (``snap`` can still name an element).
* **Lexical states** — direct element constructors embed arbitrary XML text
  inside expressions, so the parser occasionally abandons token mode and
  reads characters itself.  The lexer supports this hand-off via
  :meth:`Lexer.char_position` / :meth:`Lexer.seek`: peeked tokens are
  discarded and scanning resumes at an explicit offset.

Comments ``(: ... :)`` nest, per the XQuery spec.
"""

from __future__ import annotations

from repro.errors import LexerError
from repro.lang.tokens import Token, TokenKind

_NAME_START = set("ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz_")
_NAME_CHARS = _NAME_START | set("0123456789.-")

_PREDEFINED = {"lt": "<", "gt": ">", "amp": "&", "apos": "'", "quot": '"'}

_TWO_CHAR = {
    "..": TokenKind.DOTDOT,
    "//": TokenKind.SLASHSLASH,
    "!=": TokenKind.NE,
    "<=": TokenKind.LE,
    ">=": TokenKind.GE,
    "<<": TokenKind.LTLT,
    ">>": TokenKind.GTGT,
    ":=": TokenKind.ASSIGN,
    "::": TokenKind.COLONCOLON,
}

_ONE_CHAR = {
    "(": TokenKind.LPAREN,
    ")": TokenKind.RPAREN,
    "{": TokenKind.LBRACE,
    "}": TokenKind.RBRACE,
    "[": TokenKind.LBRACKET,
    "]": TokenKind.RBRACKET,
    ",": TokenKind.COMMA,
    ";": TokenKind.SEMICOLON,
    "/": TokenKind.SLASH,
    "@": TokenKind.AT,
    "+": TokenKind.PLUS,
    "-": TokenKind.MINUS,
    "*": TokenKind.STAR,
    "|": TokenKind.PIPE,
    "=": TokenKind.EQ,
    "<": TokenKind.LT,
    ">": TokenKind.GT,
    ".": TokenKind.DOT,
    "?": TokenKind.QUESTION,
}


def decode_string_entities(text: str, line: int, column: int) -> str:
    """Resolve predefined entities / char references in a string literal."""
    if "&" not in text:
        return text
    out: list[str] = []
    i = 0
    while i < len(text):
        c = text[i]
        if c != "&":
            out.append(c)
            i += 1
            continue
        end = text.find(";", i + 1)
        if end < 0:
            raise LexerError("unterminated entity reference", line, column)
        name = text[i + 1 : end]
        try:
            if name.startswith("#x") or name.startswith("#X"):
                out.append(chr(int(name[2:], 16)))
            elif name.startswith("#"):
                out.append(chr(int(name[1:])))
            else:
                out.append(_PREDEFINED[name])
        except (KeyError, ValueError):
            raise LexerError(f"unknown entity &{name};", line, column) from None
        i = end + 1
    return "".join(out)


class Lexer:
    """Tokenizer with one-token pushback and char-level hand-off."""

    def __init__(self, text: str):
        self.text = text
        self.pos = 0
        self.n = len(text)
        self._pushback: list[Token] = []

    # ------------------------------------------------------------------
    # Char-level interface used by the direct-constructor parser
    # ------------------------------------------------------------------

    def char_position(self) -> int:
        """Offset where scanning will resume (discarding peeked tokens)."""
        if self._pushback:
            return self._pushback[0].start
        return self.pos

    def seek(self, offset: int) -> None:
        """Resume token scanning at *offset*; drops any pushed-back token."""
        self._pushback.clear()
        self.pos = offset

    def location_at(self, offset: int) -> tuple[int, int]:
        """(line, column) of an absolute source offset."""
        line = self.text.count("\n", 0, offset) + 1
        last_nl = self.text.rfind("\n", 0, offset)
        return line, offset - last_nl

    # ------------------------------------------------------------------
    # Token interface
    # ------------------------------------------------------------------

    def push_back(self, token: Token) -> None:
        """Return *token* to the stream (LIFO)."""
        self._pushback.append(token)

    def peek(self) -> Token:
        """Look at the next token without consuming it."""
        token = self.next()
        self.push_back(token)
        return token

    def next(self) -> Token:
        """Consume and return the next token."""
        if self._pushback:
            return self._pushback.pop()
        self._skip_trivia()
        start = self.pos
        line, column = self.location_at(start)
        if start >= self.n:
            return Token(TokenKind.EOF, "", line, column, start, start)
        c = self.text[start]
        if c in _NAME_START:
            return self._lex_name(start, line, column)
        if c.isdigit() or (c == "." and self._peek_char(1).isdigit()):
            return self._lex_number(start, line, column)
        if c in ("'", '"'):
            return self._lex_string(start, line, column, c)
        if c == "$":
            return self._lex_variable(start, line, column)
        two = self.text[start : start + 2]
        if two in _TWO_CHAR:
            self.pos = start + 2
            return Token(_TWO_CHAR[two], two, line, column, start, self.pos)
        if c in _ONE_CHAR:
            self.pos = start + 1
            return Token(_ONE_CHAR[c], c, line, column, start, self.pos)
        raise LexerError(f"unexpected character {c!r}", line, column)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _peek_char(self, offset: int = 0) -> str:
        idx = self.pos + offset
        return self.text[idx] if idx < self.n else ""

    def _skip_trivia(self) -> None:
        while self.pos < self.n:
            c = self.text[self.pos]
            if c in " \t\r\n":
                self.pos += 1
            elif self.text.startswith("(:", self.pos):
                self._skip_comment()
            else:
                return

    def _skip_comment(self) -> None:
        line, column = self.location_at(self.pos)
        depth = 0
        while self.pos < self.n:
            if self.text.startswith("(:", self.pos):
                depth += 1
                self.pos += 2
            elif self.text.startswith(":)", self.pos):
                depth -= 1
                self.pos += 2
                if depth == 0:
                    return
            else:
                self.pos += 1
        raise LexerError("unterminated comment", line, column)

    def _lex_name(self, start: int, line: int, column: int) -> Token:
        self.pos = start
        self._consume_ncname()
        # Qualified name: NAME ':' NAME with no whitespace and not '::'.
        if (
            self._peek_char() == ":"
            and self._peek_char(1) in _NAME_START
            and not self.text.startswith("::", self.pos)
        ):
            self.pos += 1
            self._consume_ncname()
        value = self.text[start : self.pos]
        return Token(TokenKind.NAME, value, line, column, start, self.pos)

    def _consume_ncname(self) -> None:
        self.pos += 1
        while self.pos < self.n and self.text[self.pos] in _NAME_CHARS:
            # A trailing '.' or '-' not followed by a name char would eat
            # the '.' of a path or a minus operator; NCName allows '.'/'-'
            # in the middle, so look ahead.
            c = self.text[self.pos]
            if c in ".-" and (
                self.pos + 1 >= self.n or self.text[self.pos + 1] not in _NAME_CHARS
            ):
                return
            if c == "." and self.text.startswith("..", self.pos):
                return
            self.pos += 1

    def _lex_number(self, start: int, line: int, column: int) -> Token:
        self.pos = start
        kind = TokenKind.INTEGER
        while self._peek_char().isdigit():
            self.pos += 1
        if self._peek_char() == "." and not self.text.startswith("..", self.pos):
            kind = TokenKind.DECIMAL
            self.pos += 1
            while self._peek_char().isdigit():
                self.pos += 1
        if self._peek_char() in ("e", "E"):
            save = self.pos
            self.pos += 1
            if self._peek_char() in ("+", "-"):
                self.pos += 1
            if self._peek_char().isdigit():
                kind = TokenKind.DOUBLE
                while self._peek_char().isdigit():
                    self.pos += 1
            else:
                self.pos = save
        value = self.text[start : self.pos]
        return Token(kind, value, line, column, start, self.pos)

    def _lex_string(self, start: int, line: int, column: int, quote: str) -> Token:
        self.pos = start + 1
        parts: list[str] = []
        while True:
            if self.pos >= self.n:
                raise LexerError("unterminated string literal", line, column)
            c = self.text[self.pos]
            if c == quote:
                if self._peek_char(1) == quote:  # doubled-quote escape
                    parts.append(quote)
                    self.pos += 2
                    continue
                self.pos += 1
                break
            parts.append(c)
            self.pos += 1
        value = decode_string_entities("".join(parts), line, column)
        return Token(TokenKind.STRING, value, line, column, start, self.pos)

    def _lex_variable(self, start: int, line: int, column: int) -> Token:
        self.pos = start + 1
        if self._peek_char() not in _NAME_START:
            raise LexerError("expected a variable name after '$'", line, column)
        name_start = self.pos
        self._consume_ncname()
        if (
            self._peek_char() == ":"
            and self._peek_char(1) in _NAME_START
            and not self.text.startswith("::", self.pos)
        ):
            self.pos += 1
            self._consume_ncname()
        value = self.text[name_start : self.pos]
        return Token(TokenKind.VARNAME, value, line, column, start, self.pos)
