"""The XQuery! core language.

Normalization (Section 3.3) maps every surface expression onto this smaller
language; the dynamic semantics (:mod:`repro.semantics.evaluator`) and the
algebra compiler (:mod:`repro.algebra.compile`) are defined on core only.

Differences from the surface AST:

* direct element constructors are lowered to computed constructors
  (:class:`CElem` / :class:`CAttr` with attribute-value-template parts),
* the implicit ``copy{}`` has been inserted around the first argument of
  ``insert`` and the second argument of ``replace`` (the paper's
  normalization rule), and ``into`` is canonicalized to ``as last into``,
* ``snap``-prefixed update sugar has been expanded into ``snap { ... }``,
* FLWOR without ``order by`` is lowered to nested :class:`CFor` /
  :class:`CLet` / :class:`CIf`; with ``order by`` the clause list is kept in
  :class:`COrderedFLWOR` (ordering needs the whole tuple stream),
* ``//`` and other abbreviations are gone (expanded by the parser).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Union

from repro.xdm.values import AtomicValue


@dataclass
class CoreExpr:
    """Base class of core expressions."""

    line: int = field(default=0, kw_only=True, compare=False)


# -- leaves -------------------------------------------------------------

@dataclass
class CLiteral(CoreExpr):
    value: AtomicValue = None  # type: ignore[assignment]


@dataclass
class CVar(CoreExpr):
    name: str = ""


@dataclass
class CContext(CoreExpr):
    """The context item '.'."""


@dataclass
class CEmpty(CoreExpr):
    """The empty sequence '()'."""


@dataclass
class CRoot(CoreExpr):
    """Leading '/' — root of the tree containing the context item."""


# -- composition ---------------------------------------------------------

@dataclass
class CSequence(CoreExpr):
    """Sequence construction; evaluation is left-to-right (Fig. 3)."""

    items: list[CoreExpr] = field(default_factory=list)


@dataclass
class CSequenced(CoreExpr):
    """The ';' sequencing operator: like CSequence, but an explicit
    evaluation-order barrier that no rewrite may cross."""

    items: list[CoreExpr] = field(default_factory=list)


@dataclass
class CRange(CoreExpr):
    lo: CoreExpr = None  # type: ignore[assignment]
    hi: CoreExpr = None  # type: ignore[assignment]


@dataclass
class CArith(CoreExpr):
    op: str = "+"
    left: CoreExpr = None  # type: ignore[assignment]
    right: CoreExpr = None  # type: ignore[assignment]


@dataclass
class CUnary(CoreExpr):
    op: str = "-"
    operand: CoreExpr = None  # type: ignore[assignment]


@dataclass
class CComparison(CoreExpr):
    style: str = "general"
    op: str = "eq"
    left: CoreExpr = None  # type: ignore[assignment]
    right: CoreExpr = None  # type: ignore[assignment]


@dataclass
class CBool(CoreExpr):
    op: str = "and"
    left: CoreExpr = None  # type: ignore[assignment]
    right: CoreExpr = None  # type: ignore[assignment]


@dataclass
class CSet(CoreExpr):
    op: str = "union"
    left: CoreExpr = None  # type: ignore[assignment]
    right: CoreExpr = None  # type: ignore[assignment]


# -- control --------------------------------------------------------------

@dataclass
class CIf(CoreExpr):
    cond: CoreExpr = None  # type: ignore[assignment]
    then: CoreExpr = None  # type: ignore[assignment]
    orelse: CoreExpr = None  # type: ignore[assignment]


@dataclass
class CFor(CoreExpr):
    """for $var (at $pos)? in source return body (Fig. 3 rule)."""

    var: str = ""
    position_var: Optional[str] = None
    source: CoreExpr = None  # type: ignore[assignment]
    body: CoreExpr = None  # type: ignore[assignment]


@dataclass
class CLet(CoreExpr):
    var: str = ""
    source: CoreExpr = None  # type: ignore[assignment]
    body: CoreExpr = None  # type: ignore[assignment]


@dataclass
class CForClause:
    var: str
    source: CoreExpr
    position_var: Optional[str] = None


@dataclass
class CLetClause:
    var: str
    source: CoreExpr


@dataclass
class COrderSpec:
    expr: CoreExpr
    descending: bool = False
    empty_least: Optional[bool] = None


@dataclass
class COrderedFLWOR(CoreExpr):
    """FLWOR with an ``order by``: kept whole because ordering operates on
    the complete tuple stream before the return clause."""

    clauses: list[Union[CForClause, CLetClause]] = field(default_factory=list)
    where: Optional[CoreExpr] = None
    specs: list[COrderSpec] = field(default_factory=list)
    ret: CoreExpr = None  # type: ignore[assignment]


@dataclass
class CQuantified(CoreExpr):
    """some/every with short-circuit, left-to-right evaluation."""

    kind: str = "some"
    bindings: list[tuple[str, CoreExpr]] = field(default_factory=list)
    satisfies: CoreExpr = None  # type: ignore[assignment]


# -- paths ------------------------------------------------------------------

@dataclass
class CNodeTest:
    kind: str = "name"  # 'name' or a kind test
    name: Optional[str] = None


@dataclass
class CAxisStep(CoreExpr):
    axis: str = "child"
    test: CNodeTest = field(default_factory=CNodeTest)
    predicates: list[CoreExpr] = field(default_factory=list)


@dataclass
class CPath(CoreExpr):
    base: CoreExpr = None  # type: ignore[assignment]
    step: CoreExpr = None  # type: ignore[assignment]


@dataclass
class CFilter(CoreExpr):
    base: CoreExpr = None  # type: ignore[assignment]
    predicates: list[CoreExpr] = field(default_factory=list)


# -- functions ---------------------------------------------------------------

@dataclass
class CCall(CoreExpr):
    name: str = ""
    args: list[CoreExpr] = field(default_factory=list)


# -- constructors --------------------------------------------------------------

@dataclass
class CAttr(CoreExpr):
    """Attribute constructor.  ``parts`` alternate literal strings and
    expressions (attribute value template); a computed constructor has a
    single expression part."""

    name: Union[str, CoreExpr] = ""
    parts: list[Union[str, CoreExpr]] = field(default_factory=list)


@dataclass
class CElem(CoreExpr):
    """Element constructor.  Content expressions are evaluated in order;
    attribute items must precede other content (XQuery rule)."""

    name: Union[str, CoreExpr] = ""
    content: list[CoreExpr] = field(default_factory=list)


@dataclass
class CText(CoreExpr):
    content: Optional[CoreExpr] = None


@dataclass
class CComment(CoreExpr):
    content: Optional[CoreExpr] = None


@dataclass
class CDoc(CoreExpr):
    content: Optional[CoreExpr] = None


@dataclass
class CPI(CoreExpr):
    target: Union[str, CoreExpr] = ""
    content: Optional[CoreExpr] = None


# -- XQuery! operations (Fig. 2) -------------------------------------------

@dataclass
class CCopy(CoreExpr):
    source: CoreExpr = None  # type: ignore[assignment]


@dataclass
class CInsert(CoreExpr):
    """Core insert; ``position`` in {'first','last','before','after'} —
    'into' was canonicalized to 'last' by normalization (Section 3.3)."""

    source: CoreExpr = None  # type: ignore[assignment]
    position: str = "last"
    target: CoreExpr = None  # type: ignore[assignment]


@dataclass
class CDelete(CoreExpr):
    target: CoreExpr = None  # type: ignore[assignment]


@dataclass
class CReplace(CoreExpr):
    target: CoreExpr = None  # type: ignore[assignment]
    source: CoreExpr = None  # type: ignore[assignment]


@dataclass
class CReplaceValue(CoreExpr):
    """replace value of {t} with {s}: overwrite content, not structure."""

    target: CoreExpr = None  # type: ignore[assignment]
    source: CoreExpr = None  # type: ignore[assignment]


@dataclass
class CRename(CoreExpr):
    target: CoreExpr = None  # type: ignore[assignment]
    name: CoreExpr = None  # type: ignore[assignment]


@dataclass
class CSnap(CoreExpr):
    """snap — mode is 'ordered' (default), 'nondeterministic' or
    'conflict-detection'."""

    mode: Optional[str] = None
    body: CoreExpr = None  # type: ignore[assignment]


@dataclass
class CCase:
    type_: "object"  # ast.SequenceType
    ret: "CoreExpr"
    var: Optional[str] = None


@dataclass
class CTypeswitch(CoreExpr):
    """typeswitch: the operand is evaluated once; the first matching case's
    return runs with the operand optionally bound."""

    operand: CoreExpr = None  # type: ignore[assignment]
    cases: list[CCase] = field(default_factory=list)
    default_var: Optional[str] = None
    default: CoreExpr = None  # type: ignore[assignment]


# -- dynamic typing operators ---------------------------------------------

@dataclass
class CInstanceOf(CoreExpr):
    operand: CoreExpr = None  # type: ignore[assignment]
    type_: "object" = None  # an ast.SequenceType (structural, no exprs)


@dataclass
class CTreat(CoreExpr):
    operand: CoreExpr = None  # type: ignore[assignment]
    type_: "object" = None  # an ast.SequenceType


@dataclass
class CCast(CoreExpr):
    operand: CoreExpr = None  # type: ignore[assignment]
    type_name: str = "xs:string"
    optional: bool = False
    castable: bool = False


# -- module-level -------------------------------------------------------------

@dataclass
class CVarDecl:
    name: str
    expr: Optional[CoreExpr]
    type_: Optional[str] = None


@dataclass
class CFunction:
    """A user-declared function over core expressions."""

    name: str
    params: list[str]
    body: CoreExpr
    param_types: list[Optional[str]] = field(default_factory=list)
    return_type: Optional[str] = None


@dataclass
class CModule:
    declarations: list[Union[CVarDecl, CFunction]] = field(default_factory=list)
    body: Optional[CoreExpr] = None
    # (prefix, uri) pairs from `import module namespace`.
    imports: list[tuple[str, str]] = field(default_factory=list)
    declared_prefix: Optional[str] = None
    declared_uri: Optional[str] = None


def child_exprs(expr: CoreExpr) -> list[CoreExpr]:
    """All direct core sub-expressions of *expr* (generic traversal used by
    the purity analysis and plan compilers)."""
    out: list[CoreExpr] = []

    def add(x: object) -> None:
        if isinstance(x, CoreExpr):
            out.append(x)

    if isinstance(expr, (CSequence, CSequenced)):
        out.extend(expr.items)
    elif isinstance(expr, CRange):
        add(expr.lo), add(expr.hi)
    elif isinstance(expr, (CArith, CComparison, CBool, CSet)):
        add(expr.left), add(expr.right)
    elif isinstance(expr, CUnary):
        add(expr.operand)
    elif isinstance(expr, CIf):
        add(expr.cond), add(expr.then), add(expr.orelse)
    elif isinstance(expr, (CFor, CLet)):
        add(expr.source), add(expr.body)
    elif isinstance(expr, COrderedFLWOR):
        for clause in expr.clauses:
            add(clause.source)
        add(expr.where)
        for spec in expr.specs:
            add(spec.expr)
        add(expr.ret)
    elif isinstance(expr, CQuantified):
        for _, src in expr.bindings:
            add(src)
        add(expr.satisfies)
    elif isinstance(expr, CPath):
        add(expr.base), add(expr.step)
    elif isinstance(expr, CAxisStep):
        out.extend(expr.predicates)
    elif isinstance(expr, CFilter):
        add(expr.base)
        out.extend(expr.predicates)
    elif isinstance(expr, CCall):
        out.extend(expr.args)
    elif isinstance(expr, CElem):
        add(expr.name)
        out.extend(expr.content)
    elif isinstance(expr, CAttr):
        add(expr.name)
        for part in expr.parts:
            add(part)
    elif isinstance(expr, (CText, CComment, CDoc)):
        add(expr.content)
    elif isinstance(expr, CPI):
        add(expr.target), add(expr.content)
    elif isinstance(expr, CCopy):
        add(expr.source)
    elif isinstance(expr, CInsert):
        add(expr.source), add(expr.target)
    elif isinstance(expr, CDelete):
        add(expr.target)
    elif isinstance(expr, (CReplace, CReplaceValue)):
        add(expr.target), add(expr.source)
    elif isinstance(expr, CRename):
        add(expr.target), add(expr.name)
    elif isinstance(expr, CSnap):
        add(expr.body)
    elif isinstance(expr, (CInstanceOf, CCast, CTreat)):
        add(expr.operand)
    elif isinstance(expr, CTypeswitch):
        add(expr.operand)
        for case in expr.cases:
            add(case.ret)
        add(expr.default)
    return out
