"""The XQuery! language front end.

Pipeline (paper Section 4.2): source text is tokenized
(:mod:`repro.lang.lexer`), parsed into a surface AST
(:mod:`repro.lang.parser` / :mod:`repro.lang.ast` — the grammar of the
paper's Fig. 1 over an XQuery 1.0 subset), then *normalized*
(:mod:`repro.lang.normalize`) into the core language
(:mod:`repro.lang.core_ast`) on which the dynamic semantics and the algebra
compiler are defined.
"""

from repro.lang.parser import parse, parse_module
from repro.lang.normalize import normalize, normalize_module

__all__ = ["parse", "parse_module", "normalize", "normalize_module"]
