"""Semantics-preserving core-to-core simplifications.

Currently one classic XPath rewrite:

    base/descendant-or-self::node()/child::NAME[P...]
        ==>   base/descendant::NAME[P...]

(the expansion of ``//NAME``), which lets the store's element-name index
answer the step directly.  Predicates make the rewrite delicate: the two
sides group candidates differently, so anything *positional* changes
meaning — ``//para[1]`` is "the first para child of each descendant"
while ``descendant::para[1]`` is "the first para descendant".  The
rewrite therefore fires only when every predicate is provably
position-insensitive: an expression whose value is always a boolean (a
comparison, and/or, some/every, or an ``fn:``-prefixed boolean built-in —
these can never trigger the numeric positional-match rule) that mentions
neither ``position()`` nor ``last()`` anywhere.  Both sides then evaluate
the predicate once per candidate in document order, keep the same nodes,
and emit the same Δ.  This matters for the server hot path: without it,
``$auction//item[@id = $itemid]`` walks the whole document instead of
probing the name index.

Also provides :func:`transform`, a generic bottom-up rewriter over core
dataclasses used by this pass (and available for future ones).
"""

from __future__ import annotations

import dataclasses
from typing import Callable

from repro.lang import core_ast as core


def transform(
    expr: core.CoreExpr, fn: Callable[[core.CoreExpr], core.CoreExpr]
) -> core.CoreExpr:
    """Rebuild *expr* bottom-up, applying *fn* to every core node.

    Children are visited first; *fn* then maps each (possibly rebuilt)
    node to its replacement.  Nodes are only copied when something
    underneath actually changed.
    """
    changes = {}
    for field in dataclasses.fields(expr):
        value = getattr(expr, field.name)
        new_value = _transform_value(value, fn)
        if new_value is not value:
            changes[field.name] = new_value
    rebuilt = dataclasses.replace(expr, **changes) if changes else expr
    return fn(rebuilt)


def _transform_value(value, fn):
    if isinstance(value, core.CoreExpr):
        return transform(value, fn)
    if isinstance(value, list):
        new_items = [_transform_value(item, fn) for item in value]
        if any(a is not b for a, b in zip(new_items, value)):
            return new_items
        return value
    if isinstance(value, tuple):
        new_items = tuple(_transform_value(item, fn) for item in value)
        if any(a is not b for a, b in zip(new_items, value)):
            return new_items
        return value
    if isinstance(
        value, (core.CForClause, core.CLetClause, core.COrderSpec, core.CCase)
    ):
        changes = {}
        for field in dataclasses.fields(value):
            inner = getattr(value, field.name)
            new_inner = _transform_value(inner, fn)
            if new_inner is not inner:
                changes[field.name] = new_inner
        return dataclasses.replace(value, **changes) if changes else value
    return value


def _is_dos_node_step(expr: core.CoreExpr) -> bool:
    return (
        isinstance(expr, core.CAxisStep)
        and expr.axis == "descendant-or-self"
        and expr.test.kind == "node"
        and not expr.predicates
    )


# fn:-prefixed built-ins whose value is always xs:boolean.  Only the
# prefixed form is trusted: an unprefixed call could resolve to a
# same-named user function returning a number (which would flip the
# predicate into positional mode), while ``fn:name`` always resolves to
# the built-in.  Comparison / and / or / some / every are syntax, not
# calls, so they cannot be shadowed at all.
_BOOLEAN_FN_BUILTINS = frozenset(
    {
        "fn:not",
        "fn:empty",
        "fn:exists",
        "fn:boolean",
        "fn:contains",
        "fn:starts-with",
        "fn:ends-with",
        "fn:deep-equal",
        "fn:true",
        "fn:false",
    }
)


def _uses_focus_position(expr: core.CoreExpr) -> bool:
    """Does *expr* mention position()/last() anywhere?

    Conservative: nested predicates introduce their own focus, so an
    inner position() would actually be safe — but distinguishing focus
    levels buys little, and over-rejecting is always sound.
    """
    if isinstance(expr, core.CCall):
        name = expr.name[3:] if expr.name.startswith("fn:") else expr.name
        if name in ("position", "last"):
            return True
    return any(_uses_focus_position(child) for child in core.child_exprs(expr))


def _position_insensitive(predicate: core.CoreExpr) -> bool:
    """True when filtering by *predicate* cannot depend on the focus
    position or size: its value is always boolean (never the numeric
    positional match) and it never reads position()/last()."""
    if isinstance(
        predicate, (core.CComparison, core.CBool, core.CQuantified)
    ):
        return not _uses_focus_position(predicate)
    if (
        isinstance(predicate, core.CCall)
        and predicate.name in _BOOLEAN_FN_BUILTINS
    ):
        return not _uses_focus_position(predicate)
    return False


def _collapse_descendant(expr: core.CoreExpr) -> core.CoreExpr:
    if not isinstance(expr, core.CPath):
        return expr
    step = expr.step
    base = expr.base
    if (
        isinstance(base, core.CPath)
        and _is_dos_node_step(base.step)
        and isinstance(step, core.CAxisStep)
        and step.axis == "child"
        and all(_position_insensitive(p) for p in step.predicates)
    ):
        return core.CPath(
            base=base.base,
            step=core.CAxisStep(
                axis="descendant",
                test=step.test,
                predicates=list(step.predicates),
                line=step.line,
            ),
            line=expr.line,
        )
    return expr


def simplify(expr: core.CoreExpr) -> core.CoreExpr:
    """Apply all simplification rules to a core expression."""
    return transform(expr, _collapse_descendant)


def simplify_module(module: core.CModule) -> core.CModule:
    """Simplify every declaration body and the query body of a module."""
    declarations = []
    for decl in module.declarations:
        if isinstance(decl, core.CVarDecl):
            declarations.append(
                core.CVarDecl(
                    name=decl.name,
                    expr=None if decl.expr is None else simplify(decl.expr),
                    type_=decl.type_,
                )
            )
        else:
            declarations.append(
                core.CFunction(
                    name=decl.name,
                    params=decl.params,
                    body=simplify(decl.body),
                    param_types=decl.param_types,
                    return_type=decl.return_type,
                )
            )
    body = None if module.body is None else simplify(module.body)
    return core.CModule(
        declarations=declarations,
        body=body,
        imports=list(module.imports),
        declared_prefix=module.declared_prefix,
        declared_uri=module.declared_uri,
    )
