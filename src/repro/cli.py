"""Command-line interface: run XQuery! queries against XML documents.

Examples::

    # run a query file against a document bound to $doc
    python -m repro query.xq --doc doc=data.xml

    # inline query, optimized, printing the plan
    python -m repro -q 'count($doc//item)' --doc doc=data.xml --plan

    # interactive session
    python -m repro --repl --doc auction=auction.xml

Exit codes: 0 — success; 1 — a typed query error (W3C-coded static or
dynamic language error, e.g. a parse failure); 2 — usage or I/O error;
3 — a typed engine-level refusal (``REPR``-registry code: timeout,
overload, circuit open, resource limit, transaction conflict); 4 — an
internal error (an untyped exception escaped the engine — always a
bug worth reporting).
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence as Seq

from repro import __version__
from repro.algebra.plan import pretty_plan
from repro.engine import Engine, ExecutionOptions
from repro.errors import XQueryError


def _error_exit(error: XQueryError) -> int:
    """3 for engine-level (REPR-registry) refusals, 1 for language
    errors — scripts can tell "retry later" from "fix the query"."""
    return 3 if (error.code or "").startswith("REPR") else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="XQuery! — an XML query language with side effects "
        "(EDBT 2006 reproduction)",
    )
    parser.add_argument(
        "--version",
        action="version",
        version=f"%(prog)s {__version__} (XQuery! reproduction, EDBT 2006)",
    )
    parser.add_argument(
        "query_file",
        nargs="?",
        help="file containing the query (module) to run",
    )
    parser.add_argument(
        "-q", "--query", help="inline query text (alternative to a file)"
    )
    parser.add_argument(
        "--doc",
        action="append",
        default=[],
        metavar="NAME=PATH",
        help="bind $NAME to the document parsed from PATH (repeatable)",
    )
    parser.add_argument(
        "--var",
        action="append",
        default=[],
        metavar="NAME=VALUE",
        help="bind $NAME to a string value (repeatable)",
    )
    parser.add_argument(
        "--param",
        action="append",
        default=[],
        metavar="NAME=VALUE",
        help="bind $NAME per execution via the prepared query (like a "
        "prepared-statement parameter: the value is data, never query "
        "text; repeatable)",
    )
    parser.add_argument(
        "--fragment",
        action="append",
        default=[],
        metavar="NAME=XML",
        help="bind $NAME to an inline XML fragment (repeatable)",
    )
    parser.add_argument(
        "--optimize",
        action="store_true",
        help="compile through the algebra optimizer (Section 4)",
    )
    parser.add_argument(
        "--plan",
        action="store_true",
        help="print the (optimized) plan instead of running the query",
    )
    parser.add_argument(
        "--explain",
        action="store_true",
        help="print the optimizer's explain report (plans before/after "
        "rewriting, rule firings, purity verdicts) instead of running",
    )
    parser.add_argument(
        "--stats",
        action="store_true",
        help="collect execution statistics and print a summary to stderr",
    )
    parser.add_argument(
        "--semantics",
        choices=["ordered", "nondeterministic", "conflict-detection"],
        default="ordered",
        help="update-application semantics for the implicit top-level snap",
    )
    parser.add_argument(
        "--atomic",
        action="store_true",
        help="roll back snaps whose update list fails mid-application",
    )
    parser.add_argument(
        "--timeout-ms",
        type=float,
        default=None,
        metavar="MS",
        help="cooperative execution deadline; a query exceeding it fails "
        "with a QueryTimeoutError and its pending updates are discarded",
    )
    parser.add_argument(
        "--indent", action="store_true", help="pretty-print XML output"
    )
    parser.add_argument(
        "--repl", action="store_true", help="start an interactive session"
    )
    parser.add_argument(
        "--load",
        metavar="PATH",
        help="load engine state from a repro database dump (see repro.persist)",
    )
    parser.add_argument(
        "--save",
        metavar="PATH",
        help="save engine state to PATH after the query/session finishes",
    )
    parser.add_argument(
        "--journal",
        metavar="DIR",
        help="run against a durable directory: every snap is write-ahead "
        "journaled to DIR before the query acknowledges, and an existing "
        "directory is recovered before the first query (see "
        "repro.durability; incompatible with --load)",
    )
    return parser


def _split_binding(text: str, what: str) -> tuple[str, str]:
    name, sep, value = text.partition("=")
    if not sep or not name:
        raise SystemExit(f"invalid {what} binding {text!r}; expected NAME=VALUE")
    return name, value


def make_engine(args: argparse.Namespace):
    trace_sink = lambda message: print(  # noqa: E731
        f"trace: {message}", file=sys.stderr
    )
    if args.journal:
        if args.load:
            raise SystemExit(
                "--journal and --load are mutually exclusive: a durable "
                "directory already carries its own state"
            )
        from repro.durability import DurableEngine
        from repro.durability.manifest import exists as manifest_exists

        if manifest_exists(args.journal):
            # Recovery: engine options live in the recovered state; only
            # the per-invocation knobs are (re)applied.
            engine = DurableEngine(args.journal)
            inner = engine.engine
            inner.default_semantics = type(inner.default_semantics)(
                args.semantics
            )
            inner.evaluator.trace_sink = trace_sink
        else:
            engine = DurableEngine(
                args.journal,
                default_semantics=args.semantics,
                trace_sink=trace_sink,
            )
        for binding in args.doc:
            name, path = _split_binding(binding, "--doc")
            with open(path, encoding="utf-8") as handle:
                engine.load_document(name, handle.read())
        for binding in args.fragment:
            name, xml = _split_binding(binding, "--fragment")
            engine.bind(name, engine.parse_fragment(xml))
        for binding in args.var:
            name, value = _split_binding(binding, "--var")
            engine.bind(name, value)
        return engine
    if args.load:
        from repro.persist import load_engine

        engine = load_engine(args.load)
        engine.default_semantics = type(engine.default_semantics)(args.semantics)
        engine.evaluator.trace_sink = lambda message: print(
            f"trace: {message}", file=sys.stderr
        )
    else:
        engine = Engine(
            default_semantics=args.semantics,
            atomic_snaps=args.atomic,
            trace_sink=lambda message: print(f"trace: {message}", file=sys.stderr),
        )
    for binding in args.doc:
        name, path = _split_binding(binding, "--doc")
        with open(path, encoding="utf-8") as handle:
            engine.load_document(name, handle.read())
    for binding in args.fragment:
        name, xml = _split_binding(binding, "--fragment")
        engine.bind(name, engine.parse_fragment(xml))
    for binding in args.var:
        name, value = _split_binding(binding, "--var")
        engine.bind(name, value)
    return engine


def _params(args: argparse.Namespace) -> dict[str, str] | None:
    bindings = dict(
        _split_binding(binding, "--param") for binding in args.param
    )
    return bindings or None


def _print_stats(result) -> None:
    stats = result.stats
    if stats is None:
        return
    print(f"-- {stats.duration_ms:.3f}ms total", file=sys.stderr)
    for phase, ms in sorted(
        stats.phase_times_ms.items(), key=lambda item: -item[1]
    ):
        print(f"--   {phase}: {ms:.3f}ms", file=sys.stderr)
    print(
        f"-- snaps={stats.snap_count} "
        f"pending_updates={stats.pending_updates_total} "
        f"cache={stats.cache_hits}h/{stats.cache_misses}m",
        file=sys.stderr,
    )
    for name, value in sorted(stats.counters.items()):
        print(f"--   {name}={value}", file=sys.stderr)


def run_query(engine: Engine, query: str, args: argparse.Namespace) -> int:
    if args.explain:
        print(engine.explain(query).render())
        return 0
    if args.plan:
        print(pretty_plan(engine.compile(query)))
        return 0
    prepared = engine.prepare(query, optimize=args.optimize)
    result = prepared.execute(
        bindings=_params(args),
        options=ExecutionOptions(
            collect_stats=args.stats, timeout_ms=args.timeout_ms
        ),
    )
    output = result.serialize(indent=args.indent)
    if output:
        print(output)
    if args.stats:
        _print_stats(result)
    return 0


def repl(engine: Engine, args: argparse.Namespace) -> int:
    """A line-oriented interactive session.

    Enter queries terminated by an empty line; ':quit' exits, ':plan on'
    toggles plan printing, ':cache' shows prepared-cache statistics.
    Re-running a query skips the frontend via the prepared-query cache;
    ``--param`` bindings apply to every query of the session.
    """
    print("XQuery! — type a query, finish with an empty line; :quit exits.")
    show_plan = False
    buffer: list[str] = []
    while True:
        try:
            prompt = "xquery! > " if not buffer else "       ... "
            line = input(prompt)
        except EOFError:
            print()
            return 0
        stripped = line.strip()
        if not buffer and stripped in (":q", ":quit", ":exit"):
            return 0
        if not buffer and stripped == ":plan on":
            show_plan = True
            continue
        if not buffer and stripped == ":plan off":
            show_plan = False
            continue
        if not buffer and stripped == ":cache":
            print(engine.prepared_cache)
            continue
        if stripped:
            buffer.append(line)
            continue
        if not buffer:
            continue
        query = "\n".join(buffer)
        buffer = []
        try:
            if show_plan:
                print(pretty_plan(engine.compile(query)))
            prepared = engine.prepare(query, optimize=args.optimize)
            result = prepared.execute(bindings=_params(args))
            print(result.serialize(indent=args.indent))
        except XQueryError as error:
            print(f"error: {error}", file=sys.stderr)


def recover_main(argv: Seq[str] | None = None) -> int:
    """``repro recover DIR`` — offline crash recovery with a report.

    Opens the durable directory's checkpoint+journal pair, truncates a
    torn tail, replays every committed snap, verifies store invariants
    and prints a recovery report.  Exit status: 0 on success, 1 when the
    journal is corrupt mid-file (:class:`JournalCorruptionError` — the
    store is *not* silently truncated), 2 on I/O errors.
    """
    parser = argparse.ArgumentParser(
        prog="repro recover",
        description="Recover a durable directory (checkpoint + write-ahead "
        "journal) and print a report.",
    )
    parser.add_argument(
        "path", help="durable directory (MANIFEST.json + checkpoint + journal)"
    )
    parser.add_argument(
        "--no-verify",
        action="store_true",
        help="skip the store invariant check after replay",
    )
    args = parser.parse_args(argv)
    from repro.durability import recover
    from repro.errors import DurabilityError

    try:
        result = recover(args.path, verify_invariants=not args.no_verify)
    except DurabilityError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    except OSError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    print(result.report.render())
    return 0


def _merge_cluster_health(path: str, report: "HealthReport") -> "HealthReport":
    """Fold a supervisor's ``cluster-health.json`` into a local probe.

    The supervisor periodically snapshots its fleet aggregate (one
    member report per replica plus a ``cluster`` section) next to the
    journal.  When present, each member is rebuilt and re-aggregated
    with the local engine's report under the name ``local``, so one
    ``repro health DIR`` shows the whole fleet: worst status wins and
    per-replica lag lands in ``replication.lag_by_replica``.  A
    missing, torn or foreign-format file never fails the probe — the
    local report stands alone.
    """
    import json as _json
    import os as _os

    from repro.cluster.supervisor import _HEALTH_FORMAT, HEALTH_FILE
    from repro.resilience.health import HealthReport, aggregate_reports

    cluster_path = _os.path.join(path, HEALTH_FILE)
    try:
        with open(cluster_path, encoding="utf-8") as handle:
            payload = _json.load(handle)
    except (OSError, ValueError):
        return report
    if (
        not isinstance(payload, dict)
        or payload.get("format") != _HEALTH_FORMAT
    ):
        return report
    fleet = HealthReport.from_dict(payload.get("report", {}))
    # "local" cannot collide: the supervisor names members "primary"
    # and "replica-N".
    named = {"local": report}
    for name, section in fleet.sections.items():
        # Member entries have exactly the {status, sections} shape the
        # aggregator writes; summary sections (cluster, replication)
        # are re-derived or copied below.
        if (
            isinstance(section, dict)
            and set(section) == {"status", "sections"}
        ):
            named[name] = HealthReport.from_dict(section)
    merged = aggregate_reports(named)
    if "cluster" in fleet.sections:
        merged.sections["cluster"] = fleet.sections["cluster"]
    return merged


def health_main(argv: Seq[str] | None = None) -> int:
    """``repro health DIR`` — a readiness probe over a durable directory.

    Opens (recovering if needed) the durable engine at DIR and prints
    its health report: overall status, store size, journal lag
    (records/bytes/unflushed batch commits), circuit-breaker state and
    the last recovery's summary.  When the directory is replicated
    (a cluster supervisor left ``cluster-health.json`` behind), the
    per-replica reports are merged in: each member lands under its own
    name, the fleet's worst status wins, and per-replica lag surfaces
    in a top-level ``replication`` section (``--json`` shows
    ``lag_by_replica``).  Exit status: 0 when HEALTHY or DEGRADED (the
    service is serving, possibly read-only), 1 when UNHEALTHY or the
    directory cannot be opened — probe-friendly for scripts and
    service managers.
    """
    parser = argparse.ArgumentParser(
        prog="repro health",
        description="Open a durable directory and print a health/readiness "
        "report (circuit state, journal lag, last recovery).",
    )
    parser.add_argument(
        "path", help="durable directory (MANIFEST.json + checkpoint + journal)"
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="print the report as JSON instead of text",
    )
    args = parser.parse_args(argv)
    from repro.durability import DurableEngine
    from repro.errors import DurabilityError
    from repro.resilience import ResiliencePolicy

    try:
        with DurableEngine(
            args.path, resilience=ResiliencePolicy()
        ) as engine:
            report = engine.health()
    except (DurabilityError, OSError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    report = _merge_cluster_health(args.path, report)
    if args.json:
        print(report.to_json(indent=2))
    else:
        print(report.render())
    return 0 if report.ok else 1


def main(argv: Seq[str] | None = None) -> int:
    arglist = list(sys.argv[1:] if argv is None else argv)
    if arglist and arglist[0] == "recover":
        return recover_main(arglist[1:])
    if arglist and arglist[0] == "health":
        return health_main(arglist[1:])
    args = build_parser().parse_args(arglist)
    if args.timeout_ms is not None and args.timeout_ms <= 0:
        print("error: --timeout-ms must be positive", file=sys.stderr)
        return 2
    try:
        engine = make_engine(args)
    except XQueryError as error:
        print(f"error: {error}", file=sys.stderr)
        return _error_exit(error)
    except OSError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    def finish(code: int) -> int:
        if args.save and code == 0:
            from repro.persist import save_engine

            save_engine(engine, args.save)
        return code

    try:
        if args.repl:
            return finish(repl(engine, args))
        if args.query is not None:
            query = args.query
        elif args.query_file:
            try:
                with open(args.query_file, encoding="utf-8") as handle:
                    query = handle.read()
            except OSError as error:
                print(f"error: {error}", file=sys.stderr)
                return 2
        elif args.load or args.save or args.journal:
            # State-only invocation: load/save/recover without a query.
            return finish(0)
        else:
            build_parser().print_usage(sys.stderr)
            print(
                "error: provide a query file, -q, or --repl", file=sys.stderr
            )
            return 2
        try:
            return finish(run_query(engine, query, args))
        except XQueryError as error:
            print(f"error: {error}", file=sys.stderr)
            return _error_exit(error)
        except Exception as error:  # noqa: BLE001 - the contract's edge
            # An untyped exception escaping the engine violates the
            # typed-refusal contract; give it an exit code of its own so
            # monitoring can separate "engine bug" from "bad query".
            print(
                f"internal error: {type(error).__name__}: {error}",
                file=sys.stderr,
            )
            return 4
    finally:
        close = getattr(engine, "close", None)
        if close is not None:
            close()


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
