"""A writer-preferring reader-writer lock.

The store's concurrency unit is the query: read-only queries hold the
read side for their whole execution (or, better, run against a
:class:`~repro.concurrent.snapshot.StoreSnapshot` and hold nothing),
while updating queries hold the write side so structural mutation is
exclusive.

Writer preference: once a writer is waiting, newly arriving readers
block behind it.  Under sustained read traffic this bounds writer
starvation — the paper's motivating workload (the auction Web service,
Section 2) is read-mostly with a steady trickle of logging updates, the
exact pattern where reader-preferring locks starve writers forever.

The lock is not reentrant on either side; a thread holding the write
side must not re-acquire either side.
"""

from __future__ import annotations

import threading
import time
from collections.abc import Callable, Iterator
from contextlib import contextmanager

# Signature: (kind, waited_seconds) with kind in {"read", "write"}.
WaitCallback = Callable[[str, float], None]


class RWLock:
    """Shared/exclusive lock with writer preference.

    Parameters:
        on_wait: optional callback invoked after any acquisition that had
            to block, with the side ("read"/"write") and the wall-clock
            seconds spent waiting.  The observability layer uses this to
            feed lock-wait histograms; the callback runs outside the
            internal mutex and must not acquire this lock.
    """

    def __init__(self, on_wait: WaitCallback | None = None):
        self._cond = threading.Condition()
        self._readers = 0
        self._writer_active = False
        self._writers_waiting = 0
        self.on_wait = on_wait

    # -- read side -------------------------------------------------------

    def acquire_read(self) -> None:
        """Acquire the shared side (blocks while a writer holds or waits)."""
        started: float | None = None
        with self._cond:
            while self._writer_active or self._writers_waiting:
                if started is None:
                    started = time.perf_counter()
                self._cond.wait()
            self._readers += 1
        if started is not None and self.on_wait is not None:
            self.on_wait("read", time.perf_counter() - started)

    def release_read(self) -> None:
        with self._cond:
            if self._readers <= 0:
                raise RuntimeError("release_read without a matching acquire")
            self._readers -= 1
            if self._readers == 0:
                self._cond.notify_all()

    # -- write side ------------------------------------------------------

    def acquire_write(self) -> None:
        """Acquire the exclusive side (blocks until all readers drain)."""
        started: float | None = None
        with self._cond:
            self._writers_waiting += 1
            try:
                while self._writer_active or self._readers:
                    if started is None:
                        started = time.perf_counter()
                    self._cond.wait()
                self._writer_active = True
            finally:
                self._writers_waiting -= 1
        if started is not None and self.on_wait is not None:
            self.on_wait("write", time.perf_counter() - started)

    def release_write(self) -> None:
        with self._cond:
            if not self._writer_active:
                raise RuntimeError("release_write without a matching acquire")
            self._writer_active = False
            self._cond.notify_all()

    # -- context managers ------------------------------------------------

    @contextmanager
    def read_locked(self) -> Iterator[None]:
        self.acquire_read()
        try:
            yield
        finally:
            self.release_read()

    @contextmanager
    def write_locked(self) -> Iterator[None]:
        self.acquire_write()
        try:
            yield
        finally:
            self.release_write()

    # -- introspection (tests, metrics) ----------------------------------

    @property
    def readers(self) -> int:
        """Number of threads currently holding the read side."""
        return self._readers

    @property
    def write_held(self) -> bool:
        return self._writer_active

    def __repr__(self) -> str:
        return (
            f"RWLock(readers={self._readers}, "
            f"writer={self._writer_active}, "
            f"writers_waiting={self._writers_waiting})"
        )
