"""Copy-on-write snapshot views of a :class:`~repro.xdm.store.Store`.

The paper's snap semantics (Section 3) already forces every query to see
a *fixed* store between snapshot boundaries: inside the innermost snap no
effect is observable, and a read-only query is one big effect-free region.
A :class:`StoreSnapshot` realizes that fixed store physically, so pure
queries can run against it from any thread with no lock at all while an
updating query mutates the live store concurrently.

Mechanism (MVCC-lite)
---------------------

* Creation is O(1): the snapshot keeps a reference to the live record
  dict, the allocation *ceiling* (``_next_id`` at creation — ids at or
  above it did not exist and are invisible), and an empty *overlay*.
* Every live-store mutator offers the snapshot a **pre-image** of the
  records it is about to change (:meth:`Store._cow` → first offer wins).
  The overlay therefore accumulates exactly the snapshot-time state of
  whatever changed since.
* A read resolves a node id *seqlock style*: check the overlay, read the
  live record's fields into an immutable :class:`_SnapRecord`, then
  re-check the overlay.  If the id appeared in the overlay in between, a
  mutation raced the read and the overlay holds the authoritative
  pre-image; otherwise the fields read are provably snapshot-time state
  (the pre-image is always saved *before* the first field changes).
  Consistent reads are memoized in ``_frozen``, so each base record is
  resolved at most once per snapshot no matter how many queries share it.
* Queries still *construct* nodes (element constructors, ``deepcopy`` of
  content).  Those allocate in a snapshot-local id space and their
  records are mutable; pre-existing (base) records can never be mutated
  through a snapshot — the purity analysis routes updating queries away
  from snapshots, and the mutators here enforce it anyway.

Because a snapshot is immutable-by-construction, it can safely cache
derived data the live store must keep invalidating: string values, name
index lookups and document-order keys computed here are shared by every
query running against the snapshot.  On read-heavy workloads this shared
memoization, not parallelism, is the throughput win.

Thread safety: any number of threads may read one snapshot concurrently
(memo dicts see benign same-value races; local allocation takes a
mutex).  The writer feeding pre-images is the serialized updating query.
Each thread must only mutate local nodes it created itself — the
executor guarantees this by giving each request its own evaluation.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator
from threading import Lock
from typing import TYPE_CHECKING

from repro.errors import StoreError, UpdateApplicationError
from repro.xdm.store import _HAS_CHILDREN, _HAS_VALUE, NodeKind, _NodeRecord

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.xdm.store import Store


class _SnapRecord:
    """An immutable pre-image of a node record at snapshot time."""

    __slots__ = ("kind", "name", "parent", "children", "attributes", "value")

    def __init__(
        self,
        kind: NodeKind,
        name: str | None,
        parent: int | None,
        children: tuple[int, ...],
        attributes: tuple[int, ...],
        value: str | None,
    ):
        self.kind = kind
        self.name = name
        self.parent = parent
        self.children = children
        self.attributes = attributes
        self.value = value


def _freeze(rec: _NodeRecord) -> _SnapRecord:
    return _SnapRecord(
        rec.kind,
        rec.name,
        rec.parent,
        tuple(rec.children),
        tuple(rec.attributes),
        rec.value,
    )


class StoreSnapshot:
    """A frozen read view of a store, plus a local space for construction.

    Duck-type compatible with :class:`~repro.xdm.store.Store` for
    everything the evaluator and the algebra interpreter touch, so a
    :class:`~repro.xdm.nodes.Node` handle works unchanged against it.
    Obtain one with :meth:`Store.begin_snapshot`; hand it back with
    :meth:`Store.release_snapshot` so later mutations stop paying the
    pre-image cost (released snapshots stay readable forever).
    """

    def __init__(
        self,
        store: "Store",
        records: dict[int, _NodeRecord],
        ceiling: int,
        version: int,
    ):
        self.store = store
        self.version = version
        self._base_records = records
        self._ceiling = ceiling
        # Pre-images fed by the live store's mutators.  Entries are never
        # removed, so a hit is authoritative forever.
        self._overlay: dict[int, _SnapRecord] = {}
        # Memo of consistent base reads (seqlock-verified or overlay).
        self._frozen: dict[int, _SnapRecord] = {}
        # Snapshot-local construction space.  Ids start at the ceiling;
        # they may numerically collide with post-snapshot live ids, which
        # is harmless because those are invisible here and the local dict
        # is consulted first.
        self._local: dict[int, _NodeRecord] = {}
        self._local_next = ceiling
        self._local_mutex = Lock()
        self._local_name_index: dict[str, set[int]] = {}
        # Shared derived-data memos (the point of immutability).
        self._string_values: dict[int, str] = {}
        self._descendants_named: dict[tuple[int, str], tuple[int, ...]] = {}
        # Document-order cache, same scheme as the live store's; base
        # entries never invalidate, local mutators invalidate their tree.
        self._order_cache: dict[int, tuple] = {}
        self._cached_roots: dict[int, set[int]] = {}
        # Set by Store.restore(): the base dict was rebound and is frozen
        # in place, so no further pre-images are needed (or wanted).
        self._detached = False
        # Store API compatibility: evaluation hot paths guard on this.
        self._obs = None

    # -- pre-image intake (called by the serialized writer) --------------

    def _save_preimages(
        self, nids: Iterable[int], records: dict[int, _NodeRecord]
    ) -> None:
        if self._detached:
            return
        overlay = self._overlay
        for nid in nids:
            if nid >= self._ceiling or nid in overlay:
                continue
            rec = records.get(nid)
            if rec is not None:
                overlay[nid] = _freeze(rec)

    # -- record resolution ------------------------------------------------

    def _rec(self, nid: int):
        """Resolve *nid* to its snapshot-time record (or local record)."""
        local = self._local.get(nid)
        if local is not None:
            return local
        frozen = self._frozen.get(nid)
        if frozen is not None:
            return frozen
        if nid >= self._ceiling:
            raise StoreError(
                f"unknown node id {nid} (created after this snapshot)"
            )
        overlay = self._overlay
        records = self._base_records
        while True:
            pre = overlay.get(nid)
            if pre is not None:
                self._frozen[nid] = pre
                return pre
            rec = records.get(nid)
            if rec is None:
                # Deleted after snapshot time: gc offered a pre-image
                # before deleting, so the overlay must have it now.
                pre = overlay.get(nid)
                if pre is not None:
                    self._frozen[nid] = pre
                    return pre
                raise StoreError(f"unknown node id {nid}")
            snap = _freeze(rec)
            if nid in overlay:
                # A mutation raced our field reads; the overlay now holds
                # the authoritative pre-image.  Loop and take it.
                continue
            # No pre-image existed before or after reading the fields, so
            # no mutation of this record has begun: the read is clean.
            self._frozen[nid] = snap
            return snap

    def _is_local(self, nid: int) -> bool:
        return nid in self._local

    def _local_rec(self, nid: int) -> _NodeRecord:
        rec = self._local.get(nid)
        if rec is None:
            raise UpdateApplicationError(
                f"node {nid} is part of the shared snapshot; snapshots are "
                "read-only for pre-existing nodes (updating queries must "
                "run against the live store)"
            )
        return rec

    def __contains__(self, nid: int) -> bool:
        if nid in self._local:
            return True
        try:
            self._rec(nid)
        except StoreError:
            return False
        return True

    def __len__(self) -> int:
        # Base records at snapshot time = ceiling minus ids never used;
        # the precise count is not tracked, so report what is resolvable.
        return self._ceiling + len(self._local)

    # -- constructors (snapshot-local) ------------------------------------

    def _alloc(
        self, kind: NodeKind, name: str | None, value: str | None
    ) -> int:
        with self._local_mutex:
            nid = self._local_next
            self._local_next += 1
        self._local[nid] = _NodeRecord(kind, name, value)
        if kind is NodeKind.ELEMENT and name:
            self._local_name_index.setdefault(name, set()).add(nid)
        return nid

    def create_document(self) -> int:
        return self._alloc(NodeKind.DOCUMENT, None, None)

    def create_element(self, name: str) -> int:
        if not name:
            raise UpdateApplicationError("element name must be non-empty")
        return self._alloc(NodeKind.ELEMENT, name, None)

    def create_attribute(self, name: str, value: str) -> int:
        if not name:
            raise UpdateApplicationError("attribute name must be non-empty")
        return self._alloc(NodeKind.ATTRIBUTE, name, value)

    def create_text(self, value: str) -> int:
        return self._alloc(NodeKind.TEXT, None, value)

    def create_comment(self, value: str) -> int:
        return self._alloc(NodeKind.COMMENT, None, value)

    def create_processing_instruction(self, target: str, value: str) -> int:
        return self._alloc(NodeKind.PROCESSING_INSTRUCTION, target, value)

    # -- accessors ---------------------------------------------------------

    def kind(self, nid: int) -> NodeKind:
        return self._rec(nid).kind

    def name(self, nid: int) -> str | None:
        return self._rec(nid).name

    def parent(self, nid: int) -> int | None:
        return self._rec(nid).parent

    def children(self, nid: int) -> tuple[int, ...]:
        return tuple(self._rec(nid).children)

    def attributes(self, nid: int) -> tuple[int, ...]:
        return tuple(self._rec(nid).attributes)

    def value(self, nid: int) -> str | None:
        return self._rec(nid).value

    def string_value(self, nid: int) -> str:
        rec = self._rec(nid)
        if rec.kind in _HAS_VALUE:
            return rec.value or ""
        local = nid in self._local
        if not local:
            cached = self._string_values.get(nid)
            if cached is not None:
                return cached
        parts: list[str] = []
        stack = list(reversed(rec.children))
        while stack:
            cur = self._rec(stack.pop())
            if cur.kind is NodeKind.TEXT:
                parts.append(cur.value or "")
            elif cur.kind in _HAS_CHILDREN:
                stack.extend(reversed(cur.children))
        result = "".join(parts)
        if not local:
            # A base subtree is frozen, so its string value never changes
            # and every query sharing this snapshot reuses it.
            self._string_values[nid] = result
        return result

    def attribute_named(self, nid: int, name: str) -> int | None:
        for aid in self._rec(nid).attributes:
            if self._rec(aid).name == name:
                return aid
        return None

    def root(self, nid: int) -> int:
        cur = nid
        while True:
            parent = self._rec(cur).parent
            if parent is None:
                return cur
            cur = parent

    def descendants_named(self, nid: int, name: str) -> list[int]:
        """Element descendants named *name* (arbitrary order), memoized.

        Candidates come from three places: the live name index filtered to
        ids below the ceiling (post-snapshot elements are invisible), the
        overlay (elements renamed or collected away *after* snapshot time
        keep their old name here), and the local index.  Every candidate
        is verified against the snapshot's own records, which also rejects
        ids renamed *to* the name after snapshot time.
        """
        local = nid in self._local
        if not local:
            memo = self._descendants_named.get((nid, name))
            if memo is not None:
                return list(memo)
        candidates: set[int] = set()
        ceiling = self._ceiling
        live = self.store._name_index.get(name)
        if live:
            # tuple(): GIL-atomic copy; construction in other threads may
            # grow the set while we iterate.
            for c in tuple(live):
                if c < ceiling:
                    candidates.add(c)
        for c, pre in list(self._overlay.items()):
            if pre.kind is NodeKind.ELEMENT and pre.name == name:
                candidates.add(c)
        if local:
            for c in tuple(self._local_name_index.get(name, ())):
                candidates.add(c)
        out = []
        for candidate in candidates:
            if candidate == nid:
                continue
            try:
                crec = self._rec(candidate)
            except StoreError:
                continue
            if crec.kind is not NodeKind.ELEMENT or crec.name != name:
                continue
            cur = crec.parent
            while cur is not None:
                if cur == nid:
                    out.append(candidate)
                    break
                cur = self._rec(cur).parent
        if not local:
            self._descendants_named[(nid, name)] = tuple(out)
        return out

    def attr_eq_probe(self, name: str, value: str) -> tuple[int, ...] | None:
        """Snapshot-consistent attribute-value probe.

        Candidates come from the live attribute index (filtered to ids
        below the ceiling — post-snapshot attributes are invisible) plus
        the overlay (attributes whose value changed, or which were
        reclaimed, after snapshot time keep their snapshot-time content
        there); each candidate is then verified against the snapshot's
        own record resolution, which also rejects attributes revalued
        *to* the target after snapshot time.  Returns None — caller
        falls back to scanning — when the live indexes are not built:
        a snapshot reader never builds them, that is the writer's job.
        """
        manager = self.store._indexes
        if not manager.built:
            return None
        ceiling = self._ceiling
        candidates: set[int] = set()
        live = manager.attr_index.get((name, value))
        if live:
            # tuple(): GIL-atomic copy; the writer may mutate postings
            # while this reader iterates.
            for c in tuple(live):
                if c < ceiling:
                    candidates.add(c)
        for c, pre in list(self._overlay.items()):
            if (
                pre.kind is NodeKind.ATTRIBUTE
                and pre.name == name
                and (pre.value or "") == value
            ):
                candidates.add(c)
        out = []
        for candidate in candidates:
            try:
                rec = self._rec(candidate)
            except StoreError:
                continue
            if (
                rec.kind is NodeKind.ATTRIBUTE
                and rec.name == name
                and (rec.value or "") == value
            ):
                out.append(candidate)
        return tuple(out)

    def token_probe(self, needle: str) -> tuple[int, ...] | None:
        """Snapshot-consistent ``contains`` candidate probe (superset;
        callers verify).  Same three-way sourcing as
        :meth:`attr_eq_probe`; None when the needle cannot be anchored
        or the live indexes are not built."""
        from repro.index.manager import token_matcher, tokenize

        matches = token_matcher(needle)
        if matches is None:
            return None
        manager = self.store._indexes
        if not manager.built:
            return None
        ceiling = self._ceiling
        candidates: set[int] = set()
        for tok, postings in list(manager.token_index.items()):
            if matches(tok):
                for c in tuple(postings):
                    if c < ceiling:
                        candidates.add(c)
        for c, pre in list(self._overlay.items()):
            if pre.kind is NodeKind.TEXT and any(
                matches(tok) for tok in tokenize(pre.value)
            ):
                candidates.add(c)
        out = []
        for candidate in candidates:
            try:
                rec = self._rec(candidate)
            except StoreError:
                continue
            # Re-run the matcher on the snapshot-visible value: a text
            # node revalued *to* a matching content after snapshot time
            # sits in the live index but must stay invisible here.
            if rec.kind is NodeKind.TEXT and any(
                matches(tok) for tok in tokenize(rec.value or "")
            ):
                out.append(candidate)
        return tuple(out)

    def descendants(
        self, nid: int, include_self: bool = False
    ) -> Iterator[int]:
        if include_self:
            yield nid
        stack = list(reversed(self._rec(nid).children))
        while stack:
            cur = stack.pop()
            yield cur
            rec = self._rec(cur)
            if rec.kind in _HAS_CHILDREN:
                stack.extend(reversed(rec.children))

    def ancestors(self, nid: int, include_self: bool = False) -> Iterator[int]:
        if include_self:
            yield nid
        cur = self._rec(nid).parent
        while cur is not None:
            yield cur
            cur = self._rec(cur).parent

    def size(self, nid: int) -> int:
        total = 0
        stack = [nid]
        while stack:
            current = self._rec(stack.pop())
            total += 1 + len(current.attributes)
            stack.extend(current.children)
        return total

    # -- document order ----------------------------------------------------

    def order_key(self, nid: int) -> tuple:
        cached = self._order_cache.get(nid)
        if cached is not None:
            return cached
        rec = self._rec(nid)
        parent = rec.parent
        if parent is None:
            key: tuple = (nid, ())
        else:
            prec = self._rec(parent)
            if rec.kind is NodeKind.ATTRIBUTE:
                mine = (-1, prec.attributes.index(nid))
            else:
                mine = (0, prec.children.index(nid))
            root, path = self.order_key(parent)
            key = (root, path + (mine,))
        self._order_cache[nid] = key
        self._cached_roots.setdefault(key[0], set()).add(nid)
        return key

    def compare_order(self, a: int, b: int) -> int:
        ka, kb = self.order_key(a), self.order_key(b)
        if ka == kb:
            return 0
        return -1 if ka < kb else 1

    def sort_document_order(self, nids: Iterable[int]) -> list[int]:
        return sorted(set(nids), key=self.order_key)

    def _touch(self, *roots: int) -> None:
        """Invalidate cached order keys for *local* trees only.

        Base entries are never passed here — base structure is frozen, so
        its keys are valid for the snapshot's whole lifetime."""
        for root in roots:
            nids = self._cached_roots.pop(root, None)
            if nids:
                for nid in nids:
                    self._order_cache.pop(nid, None)

    # -- mutators (snapshot-local nodes only) ------------------------------
    #
    # Pure queries never update pre-existing nodes (that is what makes
    # them pure), but element construction builds new trees through the
    # same mutator API.  Each mutator therefore demands a *local* target
    # and refuses to touch the shared frozen base.

    def _check_can_parent(self, parent: int) -> _NodeRecord:
        rec = self._local_rec(parent)
        if rec.kind not in _HAS_CHILDREN:
            raise UpdateApplicationError(
                f"cannot insert children into a {rec.kind.value} node"
            )
        return rec

    def _check_insertable(self, nid: int) -> _NodeRecord:
        rec = self._local_rec(nid)
        if rec.parent is not None:
            raise UpdateApplicationError(
                f"node {nid} already has a parent; insert requires a "
                "parentless node"
            )
        if rec.kind is NodeKind.DOCUMENT:
            raise UpdateApplicationError("cannot insert a document node")
        return rec

    def _check_no_cycle(self, parent: int, child: int) -> None:
        cur: int | None = parent
        while cur is not None:
            if cur == child:
                raise UpdateApplicationError(
                    "insert would create a cycle (target is a descendant "
                    "of the inserted node)"
                )
            cur = self._rec(cur).parent

    def append_child(self, parent: int, child: int) -> None:
        prec = self._check_can_parent(parent)
        crec = self._check_insertable(child)
        if crec.kind is NodeKind.ATTRIBUTE:
            raise UpdateApplicationError(
                "attribute nodes must be attached with set_attribute"
            )
        self._check_no_cycle(parent, child)
        prec.children.append(child)
        crec.parent = parent
        self._touch(child)

    def insert_child_at(self, parent: int, index: int, child: int) -> None:
        prec = self._check_can_parent(parent)
        crec = self._check_insertable(child)
        if crec.kind is NodeKind.ATTRIBUTE:
            raise UpdateApplicationError(
                "attribute nodes must be attached with set_attribute"
            )
        if not 0 <= index <= len(prec.children):
            raise UpdateApplicationError(
                f"insert position {index} out of range for node {parent}"
            )
        self._check_no_cycle(parent, child)
        roots = (child,) if index == len(prec.children) else (
            self.root(parent),
            child,
        )
        prec.children.insert(index, child)
        crec.parent = parent
        self._touch(*roots)

    def insert_after(self, parent: int, anchor: int, child: int) -> None:
        prec = self._check_can_parent(parent)
        try:
            idx = prec.children.index(anchor)
        except ValueError:
            raise UpdateApplicationError(
                f"anchor node {anchor} is not a child of {parent}"
            ) from None
        self.insert_child_at(parent, idx + 1, child)

    def insert_before(self, parent: int, anchor: int, child: int) -> None:
        prec = self._check_can_parent(parent)
        try:
            idx = prec.children.index(anchor)
        except ValueError:
            raise UpdateApplicationError(
                f"anchor node {anchor} is not a child of {parent}"
            ) from None
        self.insert_child_at(parent, idx, child)

    def set_attribute(self, element: int, attr: int) -> None:
        erec = self._local_rec(element)
        if erec.kind is not NodeKind.ELEMENT:
            raise UpdateApplicationError("attributes can only go on elements")
        arec = self._local_rec(attr)
        if arec.kind is not NodeKind.ATTRIBUTE:
            raise UpdateApplicationError(f"node {attr} is not an attribute")
        if arec.parent is not None:
            raise UpdateApplicationError(
                f"attribute {attr} already belongs to element {arec.parent}"
            )
        existing = self.attribute_named(element, arec.name or "")
        if existing is not None:
            self.detach(existing)
        erec.attributes.append(attr)
        arec.parent = element
        self._touch(attr)

    def detach(self, nid: int) -> None:
        rec = self._local_rec(nid)
        parent = rec.parent
        if parent is None:
            return
        tree_root = self.root(nid)
        prec = self._local_rec(parent)
        if rec.kind is NodeKind.ATTRIBUTE:
            prec.attributes.remove(nid)
        else:
            prec.children.remove(nid)
        rec.parent = None
        self._touch(tree_root)

    def rename(self, nid: int, name: str) -> None:
        rec = self._local_rec(nid)
        if rec.kind not in (
            NodeKind.ELEMENT,
            NodeKind.ATTRIBUTE,
            NodeKind.PROCESSING_INSTRUCTION,
        ):
            raise UpdateApplicationError(
                f"cannot rename a {rec.kind.value} node"
            )
        if not name:
            raise UpdateApplicationError("new name must be non-empty")
        if rec.kind is NodeKind.ELEMENT and rec.name != name:
            self._local_name_index.get(rec.name, set()).discard(nid)
            self._local_name_index.setdefault(name, set()).add(nid)
        rec.name = name

    def set_value(self, nid: int, value: str) -> None:
        rec = self._local_rec(nid)
        if rec.kind not in _HAS_VALUE:
            raise UpdateApplicationError(
                f"cannot set the value of a {rec.kind.value} node"
            )
        rec.value = value

    # -- deep copy ---------------------------------------------------------

    def deep_copy(self, nid: int) -> int:
        """Copy a (base or local) subtree into the local space."""
        root_rec = self._rec(nid)
        root_copy = self._alloc(root_rec.kind, root_rec.name, root_rec.value)
        stack = [(nid, root_copy)]
        while stack:
            source, copied = stack.pop()
            source_rec = self._rec(source)
            copied_rec = self._local[copied]
            for aid in source_rec.attributes:
                arec = self._rec(aid)
                acopy = self._alloc(arec.kind, arec.name, arec.value)
                self._local[acopy].parent = copied
                copied_rec.attributes.append(acopy)
            for cid in source_rec.children:
                crec = self._rec(cid)
                ccopy = self._alloc(crec.kind, crec.name, crec.value)
                self._local[ccopy].parent = copied
                copied_rec.children.append(ccopy)
                stack.append((cid, ccopy))
        return root_copy

    # -- unsupported Store operations -------------------------------------

    def gc(self, live_roots: Iterable[int]) -> int:
        """Snapshots never collect (local space dies with the snapshot)."""
        return 0

    def checkpoint(self):
        raise StoreError(
            "snapshots cannot be checkpointed; updating queries must run "
            "against the live store"
        )

    def restore(self, checkpoint) -> None:
        raise StoreError(
            "snapshots cannot be restored; updating queries must run "
            "against the live store"
        )

    # -- introspection -----------------------------------------------------

    @property
    def ceiling(self) -> int:
        """First node id *not* visible through this snapshot's base view."""
        return self._ceiling

    @property
    def detached(self) -> bool:
        """True once the base store was checkpoint-restored from under us
        (the captured view stays fully readable)."""
        return self._detached

    def __repr__(self) -> str:
        return (
            f"StoreSnapshot(ceiling={self._ceiling}, "
            f"version={self.version}, overlay={len(self._overlay)}, "
            f"local={len(self._local)}, detached={self._detached})"
        )
