"""Cooperative timeouts and cancellation for query execution.

A query cannot be preempted mid-expression — Python threads have no safe
asynchronous interruption, and semantically an interrupt must never land
inside a snap application (that would half-apply a Δ, breaking the
paper's atomicity discipline).  Instead the evaluator and the algebra's
tuple pipeline poll an :class:`ExecutionControl` at their natural
iteration boundaries:

* each FLWOR/``for`` iteration (``Evaluator._eval_for``, the ordered
  FLWOR clause loops, quantifier bindings);
* each tuple pulled through the streaming operator chain
  (``algebra.execute._chain_tuples``);
* immediately *before* an update list applies (so a fired deadline or
  token discards the pending Δ rather than interrupting its
  application).

The polling sites guard on ``None`` — a query executed without a
timeout or token pays one attribute load and pointer compare per
boundary, nothing else.
"""

from __future__ import annotations

import threading
import time
from collections.abc import Callable
from typing import TYPE_CHECKING

from repro.errors import QueryCancelledError, QueryTimeoutError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.engine import ExecutionOptions


class CancelToken:
    """A thread-safe, level-triggered cancellation flag.

    Create one, pass it to any number of executions via
    ``ExecutionOptions(cancel=...)`` (or the ``cancel=`` keyword), and
    call :meth:`cancel` from any thread; every in-flight execution
    holding the token raises :class:`~repro.errors.QueryCancelledError`
    at its next check point.  Tokens are one-shot: once fired they stay
    fired.
    """

    __slots__ = ("_event",)

    def __init__(self) -> None:
        self._event = threading.Event()

    def cancel(self) -> None:
        """Fire the token (idempotent)."""
        self._event.set()

    def cancelled(self) -> bool:
        return self._event.is_set()

    def __repr__(self) -> str:
        state = "fired" if self.cancelled() else "armed"
        return f"CancelToken({state})"


class ExecutionControl:
    """The per-execution deadline/cancellation state the hot paths poll.

    Built once per execution from the call's options; ``check()`` raises
    the typed error when the deadline has passed or the token has fired,
    and is a few attribute loads otherwise.
    """

    __slots__ = ("deadline", "timeout_ms", "token", "clock", "guard")

    def __init__(
        self,
        timeout_ms: float | None = None,
        token: CancelToken | None = None,
        clock: Callable[[], float] = time.monotonic,
        guard: "object | None" = None,
    ):
        self.clock = clock
        self.timeout_ms = timeout_ms
        self.deadline = (
            None if timeout_ms is None else clock() + timeout_ms / 1000.0
        )
        self.token = token
        # Optional per-execution resource guard (an object with check()
        # and check_delta(n) — see repro.resilience.admission).  Riding
        # the control means every boundary that polls the deadline also
        # polls the admission budgets, at zero extra plumbing.
        self.guard = guard

    @classmethod
    def from_options(
        cls,
        options: "ExecutionOptions | None",
        guard: "object | None" = None,
    ) -> "ExecutionControl | None":
        """An ExecutionControl for *options*, or None when the call asked
        for neither a timeout, cancellation nor a resource guard (the
        common, free case)."""
        if options is None:
            if guard is None:
                return None
            return cls(guard=guard)
        if options.timeout_ms is None and options.cancel is None:
            if guard is None:
                return None
        return cls(
            timeout_ms=options.timeout_ms, token=options.cancel, guard=guard
        )

    def check(self) -> None:
        """Raise the typed error if execution must stop; no-op otherwise."""
        token = self.token
        if token is not None and token.cancelled():
            raise QueryCancelledError("query cancelled by its cancel token")
        deadline = self.deadline
        if deadline is not None and self.clock() > deadline:
            raise QueryTimeoutError(
                f"query exceeded its {self.timeout_ms:g}ms timeout",
                timeout_ms=self.timeout_ms,
            )
        guard = self.guard
        if guard is not None:
            guard.check()

    def expired(self) -> bool:
        """True when a check() would raise (used to shed queued work)."""
        if self.token is not None and self.token.cancelled():
            return True
        return self.deadline is not None and self.clock() > self.deadline

    def remaining_ms(self) -> float | None:
        """Milliseconds until the deadline (None without one)."""
        if self.deadline is None:
            return None
        return max(0.0, (self.deadline - self.clock()) * 1000.0)

    def __repr__(self) -> str:
        parts = []
        if self.timeout_ms is not None:
            parts.append(f"timeout_ms={self.timeout_ms:g}")
        if self.token is not None:
            parts.append(repr(self.token))
        return f"ExecutionControl({', '.join(parts)})"
