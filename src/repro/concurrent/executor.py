"""The concurrent serving front end: worker pool, routing, deadlines.

:class:`ConcurrentExecutor` turns a single :class:`~repro.engine.Engine`
into a thread-safe query service.  Its contract follows directly from the
paper's semantics:

* A **read-only** query (the effect analysis of
  :mod:`repro.algebra.properties` proves neither updates nor explicit
  snaps) observes one fixed store between snapshot boundaries.  The
  executor gives it exactly that — a
  :class:`~repro.concurrent.snapshot.StoreSnapshot` — and runs it with a
  private evaluator, **holding no lock at all**.  Any number of readers
  share one snapshot, and with it the snapshot's memoized string values,
  name-index lookups and order keys.
* An **updating** query serializes through the store's write lock, so
  its snap applications are atomic with respect to every other query.
  The snapshot readers never see a half-applied Δ: they read the
  pre-image overlay the mutators populate *before* touching a record.
* Requests flow through a **bounded queue** with per-request deadlines.
  A full queue sheds immediately with
  :class:`~repro.errors.ServiceOverloadedError`; a request whose
  deadline passes while queued is failed without running at all; a
  running query polls its deadline cooperatively and discards its
  pending Δ when it fires (see :mod:`repro.concurrent.control`).

Service-level evidence — queue depth, lock waits, snapshot age,
timeout/cancel/shed counts, routing decisions — aggregates into a
:class:`~repro.obs.tracer.SharedTracer` exposed as :attr:`metrics`.
"""

from __future__ import annotations

import queue
import threading
import time
from collections.abc import Mapping
from concurrent.futures import Future
from typing import TYPE_CHECKING

from repro.concurrent.control import CancelToken, ExecutionControl
from repro.concurrent.snapshot import StoreSnapshot
from repro.errors import DynamicError, ServiceOverloadedError
from repro.lang import core_ast as core
from repro.obs.tracer import SharedTracer
from repro.xdm.nodes import Node

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.engine import Engine, ExecutionOptions, QueryResult
    from repro.prepared import PreparedQuery
    from repro.resilience.health import HealthReport
    from repro.resilience.policy import ResiliencePolicy


class ConcurrencyMetrics:
    """A read-only window onto an executor's aggregated evidence.

    Counters (``concurrent.*``): ``requests``, ``reads_snapshot``,
    ``reads_serialized``, ``writes``, ``timeouts``, ``cancelled``,
    ``shed``, ``expired_in_queue``, ``snapshots_built``,
    ``result_cache_hits``.  Observations:
    ``queue_depth`` (at submit), ``lock_wait_ms`` (store lock
    acquisitions that blocked), ``snapshot_age_ms`` (staleness of the
    shared snapshot at each use).
    """

    def __init__(self, tracer: SharedTracer):
        self.tracer = tracer

    def counter(self, name: str) -> int:
        return self.tracer.snapshot_counters().get(f"concurrent.{name}", 0)

    def counters(self) -> dict[str, int]:
        return self.tracer.snapshot_counters()

    def observations(self) -> dict[str, dict]:
        return self.tracer.snapshot_observations()

    def __repr__(self) -> str:
        return f"ConcurrencyMetrics({self.counters()!r})"


class _Request:
    """One queued query execution."""

    __slots__ = (
        "query",
        "bindings",
        "options",
        "control",
        "future",
        "enqueued_at",
    )

    def __init__(
        self,
        query: str,
        bindings: Mapping | None,
        options: "ExecutionOptions",
        control: ExecutionControl | None,
        future: "Future[QueryResult]",
    ):
        self.query = query
        self.bindings = bindings
        self.options = options
        self.control = control
        self.future = future
        self.enqueued_at = time.perf_counter()


class _SnapshotBundle:
    """A snapshot plus the re-handled dynamic context that goes with it.

    Global bindings and the fn:doc catalog hold :class:`Node` handles
    into the *live* store; a query evaluated against a snapshot needs
    the same values with handles into the snapshot.  The bundle captures
    both (plus the store version it was built from) in one consistent
    unit, created while holding the write lock so no mutator is
    mid-flight.
    """

    __slots__ = ("snapshot", "globals", "documents", "version", "next_id",
                 "created_at", "refs", "retired", "results", "inflight",
                 "results_mutex")

    def __init__(
        self,
        snapshot: StoreSnapshot,
        globals_: dict,
        documents: dict,
        version: int,
        next_id: int,
    ):
        self.snapshot = snapshot
        self.globals = globals_
        self.documents = documents
        self.version = version
        self.next_id = next_id
        self.created_at = time.perf_counter()
        # In-flight reader count and retirement flag, both guarded by
        # the executor's bundle mutex: the snapshot must keep receiving
        # pre-images until the last reader is done with it.
        self.refs = 0
        self.retired = False
        # Per-bundle result cache: a pure query with equal bindings over
        # an immutable snapshot is deterministic, so its result can be
        # served again without re-evaluating.  Invalidation is exact and
        # free — every write retires the bundle, cache and all.
        # ``inflight`` single-flights concurrent identical misses: the
        # first request computes, the rest wait on its event instead of
        # redundantly evaluating the same query (on one interpreter the
        # duplicates would serialize anyway — pure wasted work).
        self.results: dict = {}
        self.inflight: dict = {}
        self.results_mutex = threading.Lock()


def _rehandle_sequence(value, store) -> list:
    """Copy a sequence, pointing every Node handle at *store*."""
    out = []
    for item in value:
        if isinstance(item, Node):
            out.append(Node(store, item.nid))
        else:
            out.append(item)
    return out


class ConcurrentExecutor:
    """Serve queries against one engine from many threads.

    Parameters:
        engine: the engine (store + bindings + functions) to serve.
        workers: worker-thread count (default 4).
        queue_size: bounded request-queue capacity; a submit against a
            full queue raises :class:`ServiceOverloadedError` immediately.
        default_timeout_ms: deadline applied to requests whose options
            carry none (None = no default deadline).
        reads: ``"snapshot"`` (default) runs provably read-only queries
            lock-free against a shared copy-on-write snapshot;
            ``"serialized"`` runs them under the write lock like any
            updating query (the degenerate mode — correct, slower, and
            the baseline the benchmark compares against).
        max_snapshot_age_ms: rebuild the shared snapshot when it is older
            than this even if the store version is unchanged (None =
            only rebuild on version change).
        result_cache_size: per-snapshot result-cache capacity (0
            disables).  A pure query with equal bindings against one
            immutable snapshot is deterministic, so the executor serves
            repeats of a hot read from the cache; the cache dies with
            its bundle, so any write invalidates it exactly.
        resilience: a :class:`~repro.resilience.ResiliencePolicy`.  Its
            ``limits`` become per-query admission guards (pre-parse text
            bounds at submit, store-node and pending-Δ budgets riding the
            request's execution control); its ``max_wait_ms`` turns the
            binary queue-full shed into latency-aware load shedding; its
            ``retry`` wraps the write path so transient durability
            faults are retried with backoff inside the request's
            deadline.  ``None`` keeps all three off; sheds still carry
            the structured overload detail either way.
    """

    def __init__(
        self,
        engine: "Engine",
        workers: int = 4,
        queue_size: int = 64,
        default_timeout_ms: float | None = None,
        reads: str = "snapshot",
        max_snapshot_age_ms: float | None = None,
        result_cache_size: int = 256,
        resilience: "ResiliencePolicy | None" = None,
    ):
        if workers < 1:
            raise ValueError("need at least one worker")
        if queue_size < 1:
            raise ValueError("need a queue capacity of at least one")
        if reads not in ("snapshot", "serialized"):
            raise ValueError("reads must be 'snapshot' or 'serialized'")
        self.engine = engine
        self.reads = reads
        self.default_timeout_ms = default_timeout_ms
        self.max_snapshot_age_ms = max_snapshot_age_ms
        self.result_cache_size = result_cache_size
        self.resilience = resilience
        self.tracer = SharedTracer()
        self.metrics = ConcurrencyMetrics(self.tracer)
        from repro.resilience.admission import AdmissionController

        # Always present: without a policy it degenerates to the old
        # binary queue-full shed, but the refusal is structured either
        # way (queue depth, capacity, retry-after hint).
        self.admission = AdmissionController(
            queue_size,
            max_wait_ms=resilience.max_wait_ms if resilience else None,
            limits=resilience.limits if resilience else None,
            tracer=self.tracer,
        )
        self._limits = (
            resilience.limits
            if resilience is not None and resilience.limits.enabled
            else None
        )
        self._retry = resilience.retry if resilience is not None else None
        # Feed store-lock wait times into the shared evidence.
        engine.store.lock.on_wait = self._on_lock_wait
        self._queue: "queue.Queue[_Request | None]" = queue.Queue(queue_size)
        self._bundle: _SnapshotBundle | None = None
        self._bundle_mutex = threading.Lock()
        self._shutdown = False
        self._workers = [
            threading.Thread(
                target=self._worker_loop,
                name=f"repro-worker-{index}",
                daemon=True,
            )
            for index in range(workers)
        ]
        for thread in self._workers:
            thread.start()

    # -- public API --------------------------------------------------------

    def submit(
        self,
        query: str,
        bindings: Mapping | None = None,
        *,
        timeout_ms: float | None = None,
        cancel: CancelToken | None = None,
        options: "ExecutionOptions | None" = None,
    ) -> "Future[QueryResult]":
        """Enqueue *query*; returns a Future resolving to a QueryResult.

        Raises :class:`ServiceOverloadedError` right away when the
        admission controller sheds the request — queue full, or (with a
        latency target configured) the observed queue wait says the
        request would miss its deadline anyway.  The refusal carries the
        queue depth, capacity, the request's wait budget and a
        ``retry_after_ms`` hint.  With admission limits configured the
        query text is also bounds-checked here, before any parse work.
        The deadline — explicit, from *options*, or the executor default
        — covers queue wait *plus* execution.
        """
        if self._shutdown:
            raise RuntimeError("executor has been shut down")
        from repro.engine import _merge_options

        opts = _merge_options(
            options,
            timeout_ms=timeout_ms,
            cancel=cancel,
        )
        if opts.timeout_ms is None and self.default_timeout_ms is not None:
            from dataclasses import replace

            opts = replace(opts, timeout_ms=self.default_timeout_ms)
        tracer = self.tracer
        tracer.count("concurrent.requests")
        try:
            self.admission.admit(
                self._queue.qsize(),
                wait_budget_ms=opts.timeout_ms,
                query=query,
            )
        except ServiceOverloadedError:
            tracer.count("concurrent.shed")
            raise
        guard = (
            self._limits.guard(self.engine.store)
            if self._limits is not None
            else None
        )
        control = ExecutionControl.from_options(opts, guard=guard)
        future: "Future[QueryResult]" = Future()
        request = _Request(query, bindings, opts, control, future)
        try:
            self._queue.put_nowait(request)
        except queue.Full:
            # Raced past the admission check into a queue that filled
            # meanwhile: same structured refusal.
            tracer.count("concurrent.shed")
            raise ServiceOverloadedError(
                f"request queue is full ({self._queue.maxsize} pending); "
                "request shed",
                queue_depth=self._queue.maxsize,
                queue_capacity=self._queue.maxsize,
                wait_budget_ms=opts.timeout_ms,
                retry_after_ms=self.admission.retry_after_ms(),
            ) from None
        tracer.observe("concurrent.queue_depth", self._queue.qsize())
        return future

    def execute(
        self,
        query: str,
        bindings: Mapping | None = None,
        *,
        timeout_ms: float | None = None,
        cancel: CancelToken | None = None,
        options: "ExecutionOptions | None" = None,
    ) -> "QueryResult":
        """Blocking submit: enqueue, wait, return (or raise)."""
        future = self.submit(
            query,
            bindings,
            timeout_ms=timeout_ms,
            cancel=cancel,
            options=options,
        )
        return future.result()

    def session(self, **kwargs):
        """Open a transactional :class:`~repro.txn.Session` on the
        wrapped engine.

        Same keyword surface as :meth:`Engine.session`.  The session
        inherits the executor's shared tracer and admission limits
        unless overridden, and every commit invalidates the executor's
        read-snapshot bundle (readers re-snapshot and see the committed
        state).  Transactions run in the caller's thread — statements
        read a private MVCC view without touching the worker pool; only
        the commit itself takes the store write lock, interleaving with
        the workers' writes.
        """
        caller_hook = kwargs.pop("on_commit", None)
        kwargs.setdefault("tracer", self.tracer)
        if self._limits is not None:
            kwargs.setdefault("limits", self._limits)

        def after_commit() -> None:
            self.invalidate_snapshot()
            if caller_hook is not None:
                caller_hook()

        return self.engine.session(on_commit=after_commit, **kwargs)

    def health(self) -> "HealthReport":
        """A structured readiness report for the serving stack.

        Starts from the wrapped engine's report (``engine`` section,
        plus ``durability``/``circuit`` for a
        :class:`~repro.durability.DurableEngine`) and adds a ``serving``
        section — queue depth/capacity, workers, shed/timeout/expiry
        counters — and the admission controller's snapshot.  UNHEALTHY
        once the executor is shut down.
        """
        from repro.resilience.health import UNHEALTHY, HealthReport

        health = getattr(self.engine, "health", None)
        report = health() if health is not None else HealthReport()
        counters = self.tracer.snapshot_counters()
        report.sections["serving"] = {
            "queue_depth": self._queue.qsize(),
            "queue_capacity": self._queue.maxsize,
            "workers": len(self._workers),
            "shutdown": self._shutdown,
            "requests": counters.get("concurrent.requests", 0),
            "shed": counters.get("concurrent.shed", 0),
            "timeouts": counters.get("concurrent.timeouts", 0),
            "cancelled": counters.get("concurrent.cancelled", 0),
            "expired_in_queue": counters.get(
                "concurrent.expired_in_queue", 0
            ),
            "retries": counters.get("resilience.retry.retries", 0),
        }
        report.sections["admission"] = self.admission.to_dict()
        if self._shutdown:
            report.worsen(UNHEALTHY)
        return report

    def invalidate_snapshot(self) -> None:
        """Force the next read-only query onto a fresh snapshot.

        The executor notices store mutations made through it (the store
        version changes); call this after mutating the engine *directly*
        (``engine.bind``, ``load_document``, …) while the executor is
        serving."""
        with self._bundle_mutex:
            self._drop_bundle_locked()

    def shutdown(self, wait: bool = True) -> None:
        """Stop accepting work; drain workers; release the snapshot."""
        if self._shutdown:
            return
        self._shutdown = True
        for _ in self._workers:
            self._queue.put(None)  # one stop token per worker
        if wait:
            for thread in self._workers:
                thread.join()
        with self._bundle_mutex:
            self._drop_bundle_locked()
        if self.engine.store.lock.on_wait is self._on_lock_wait:
            self.engine.store.lock.on_wait = None

    def __enter__(self) -> "ConcurrentExecutor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()

    # -- internals ---------------------------------------------------------

    def _on_lock_wait(self, kind: str, waited_s: float) -> None:
        self.tracer.observe("concurrent.lock_wait_ms", waited_s * 1000.0)

    def _worker_loop(self) -> None:
        while True:
            request = self._queue.get()
            if request is None:
                return
            future = request.future
            waited_ms = (time.perf_counter() - request.enqueued_at) * 1000.0
            # Measured queue wait feeds the admission controller's EWMA:
            # the load-shedding decision is driven by what the queue
            # actually does, not by a static depth threshold.
            self.admission.observe_wait(waited_ms)
            self.tracer.observe("concurrent.queue_wait_ms", waited_ms)
            if not future.set_running_or_notify_cancel():
                continue  # cancelled via the Future while queued
            control = request.control
            if control is not None and control.expired():
                # Don't run work that is already dead — fail it with the
                # same typed error an in-flight expiry would raise.
                self.tracer.count("concurrent.expired_in_queue")
                try:
                    control.check()
                except Exception as exc:
                    self._count_interrupt(exc)
                    future.set_exception(exc)
                continue
            try:
                result = self._run(request)
            except Exception as exc:
                self._count_interrupt(exc)
                future.set_exception(exc)
            else:
                future.set_result(result)

    def _count_interrupt(self, exc: Exception) -> None:
        from repro.errors import QueryCancelledError, QueryTimeoutError

        if isinstance(exc, QueryTimeoutError):
            self.tracer.count("concurrent.timeouts")
        elif isinstance(exc, QueryCancelledError):
            self.tracer.count("concurrent.cancelled")

    def _run(self, request: _Request) -> "QueryResult":
        engine = self.engine
        options = request.options
        prepared = engine.prepare(
            request.query,
            optimize=options.optimize or None,
            semantics=options.semantics,
        )
        if self.reads == "snapshot" and prepared.is_readonly():
            self.tracer.count("concurrent.reads_snapshot")
            return self._run_readonly(prepared, request)
        # Updating (or deliberately serialized) path: exclusive access.
        if prepared.is_readonly():
            self.tracer.count("concurrent.reads_serialized")
        else:
            self.tracer.count("concurrent.writes")
        # The submit-time control (deadline includes queue wait) is
        # installed around the call; strip timeout/cancel from the
        # options so PreparedQuery.execute does not restart the clock.
        if options.timeout_ms is not None or options.cancel is not None:
            from dataclasses import replace

            options = replace(options, timeout_ms=None, cancel=None)

        def attempt() -> "QueryResult":
            with engine.store.lock.write_locked():
                engine.evaluator.control = request.control
                try:
                    return prepared.execute(
                        request.bindings, options=options
                    )
                finally:
                    engine.evaluator.control = None

        try:
            if self._retry is not None and not prepared.is_readonly():
                # Transient durability faults (journal EIO, shed load)
                # are retried with backoff inside the request's own
                # deadline: each attempt re-acquires the lock and
                # re-runs the query — safe because a failed snap rolled
                # the store back and journaled nothing.
                return self._retry.call(attempt, tracer=self.tracer)
            return attempt()
        finally:
            # The store may have changed; retire the bundle so readers
            # re-snapshot.  Outside the write lock: bundle building takes
            # bundle-mutex -> write-lock, so taking them in the opposite
            # order here would deadlock.
            with self._bundle_mutex:
                self._maybe_refresh_bundle_locked()
            # Durability hook: a DurableEngine folds its journal into a
            # fresh checkpoint once it crosses the size bound.  Also
            # outside the write lock — compaction re-acquires it.
            maybe_compact = getattr(engine, "maybe_compact", None)
            if maybe_compact is not None:
                maybe_compact()

    # -- the lock-free read path -------------------------------------------

    def _run_readonly(
        self, prepared: "PreparedQuery", request: _Request
    ) -> "QueryResult":
        from repro.engine import QueryResult

        bundle = self._acquire_bundle()
        try:
            self.tracer.observe(
                "concurrent.snapshot_age_ms",
                (time.perf_counter() - bundle.created_at) * 1000.0,
            )
            key = self._result_key(request)
            lead_event = None
            if key is not None:
                while True:
                    with bundle.results_mutex:
                        hit = bundle.results.get(key)
                        if hit is not None:
                            self.tracer.count(
                                "concurrent.result_cache_hits"
                            )
                            return QueryResult(list(hit), self.engine)
                        event = bundle.inflight.get(key)
                        if event is None:
                            lead_event = threading.Event()
                            bundle.inflight[key] = lead_event
                            break
                    # Single-flight: an identical request is already
                    # evaluating on this snapshot; wait for its result
                    # instead of redundantly recomputing it.  Short wait
                    # slices keep our own deadline/token responsive, and
                    # if the leader failed we loop around and lead.
                    event.wait(0.05)
                    if request.control is not None:
                        request.control.check()
            try:
                result = _evaluate_on_snapshot(
                    prepared, bundle, request.bindings, request.options,
                    request.control,
                )
                if key is not None:
                    with bundle.results_mutex:
                        if len(bundle.results) < self.result_cache_size:
                            bundle.results[key] = list(result.items)
                return result
            finally:
                if lead_event is not None:
                    with bundle.results_mutex:
                        bundle.inflight.pop(key, None)
                    lead_event.set()
        finally:
            self._release_bundle(bundle)

    def _result_key(self, request: _Request) -> tuple | None:
        """The result-cache key for *request*, or None when uncacheable.

        Cacheable means: caching is on, the call wants a plain result
        (no per-call stats/explain evidence), and every binding is an
        immutable atomic — a Node binding pins store identity and a
        mutable value could change between equal-looking requests, so
        both bypass the cache (correct, just uncached).
        """
        if self.result_cache_size <= 0:
            return None
        options = request.options
        if options.collect_stats or options.explain:
            return None
        merged: dict = {}
        if options.bindings:
            merged.update(options.bindings)
        if request.bindings:
            merged.update(request.bindings)
        for value in merged.values():
            if not isinstance(value, (str, int, float)):
                return None
        return (
            request.query,
            options.semantics,
            bool(options.optimize),
            tuple(sorted(merged.items())),
        )

    def _acquire_bundle(self) -> _SnapshotBundle:
        """Pin the current bundle (building a fresh one if stale).

        Pinning (refs) keeps the snapshot registered with the store —
        still receiving pre-images — until the last in-flight reader
        releases it; releasing the snapshot while a reader is mid-query
        would let subsequent writes go unrecorded and tear its view."""
        store = self.engine.store
        with self._bundle_mutex:
            bundle = self._bundle
            if bundle is None or not self._bundle_fresh(bundle, store):
                bundle = self._build_bundle_locked()
            bundle.refs += 1
            return bundle

    def _release_bundle(self, bundle: _SnapshotBundle) -> None:
        with self._bundle_mutex:
            bundle.refs -= 1
            if bundle.retired and bundle.refs == 0:
                self.engine.store.release_snapshot(bundle.snapshot)

    def _bundle_fresh(self, bundle: _SnapshotBundle, store) -> bool:
        if bundle.snapshot.detached:
            return False
        if bundle.version != store._version:
            return False
        if bundle.next_id != store._next_id:
            return False
        # New global names (engine.bind of a fresh name, a module import
        # declaring library variables) without any node construction slip
        # past the version checks; the cheap length compare catches them.
        if len(bundle.globals) != len(self.engine.evaluator.globals):
            return False
        if self.max_snapshot_age_ms is not None:
            age_ms = (time.perf_counter() - bundle.created_at) * 1000.0
            if age_ms > self.max_snapshot_age_ms:
                return False
        return True

    def _build_bundle_locked(self) -> _SnapshotBundle:
        """Build a fresh bundle; caller holds ``_bundle_mutex``.

        The store write lock is held for the (O(1) + globals-copy) build
        so no mutator is mid-record and the globals/documents copies are
        mutually consistent with the snapshot."""
        engine = self.engine
        store = engine.store
        with store.lock.write_locked():
            self._drop_bundle_locked()
            snapshot = store.begin_snapshot()
            globals_ = {
                name: _rehandle_sequence(value, snapshot)
                for name, value in engine.evaluator.globals.items()
            }
            documents = {
                name: Node(snapshot, node.nid)
                for name, node in engine.evaluator.documents.items()
            }
            bundle = _SnapshotBundle(
                snapshot, globals_, documents,
                version=store._version, next_id=store._next_id,
            )
        self.tracer.count("concurrent.snapshots_built")
        self._bundle = bundle
        return bundle

    def _maybe_refresh_bundle_locked(self) -> None:
        """After a write: retire a stale bundle so readers re-snapshot.

        (Lazily — the next reader builds the new one; back-to-back
        writes then cost one snapshot, not one each.)"""
        bundle = self._bundle
        if bundle is not None and not self._bundle_fresh(
            bundle, self.engine.store
        ):
            self._drop_bundle_locked()

    def _drop_bundle_locked(self) -> None:
        bundle = self._bundle
        if bundle is not None:
            bundle.retired = True
            if bundle.refs == 0:
                self.engine.store.release_snapshot(bundle.snapshot)
            self._bundle = None


def _evaluate_on_snapshot(
    prepared: "PreparedQuery",
    bundle: _SnapshotBundle,
    bindings: Mapping | None,
    options: "ExecutionOptions",
    control: ExecutionControl | None,
) -> "QueryResult":
    """Run a provably-pure prepared query against a snapshot bundle.

    Mirrors :meth:`PreparedQuery.execute`'s dynamic steps with a
    *private* evaluator, so nothing here touches the engine's shared
    evaluator state: globals come from the bundle, bindings overlay a
    private dict, and the control is installed on the private evaluator
    only.  Result node handles below the snapshot ceiling are re-pointed
    at the live store; constructed nodes keep their snapshot handles
    (the snapshot outlives its release and stays readable).
    """
    from repro.engine import QueryResult, to_sequence
    from repro.semantics.evaluator import Evaluator
    from repro.semantics.context import DynamicContext

    engine = prepared._engine
    module = prepared._module
    snapshot = bundle.snapshot
    shared = engine.evaluator
    evaluator = Evaluator(
        snapshot,
        engine.functions,
        trace_sink=shared.trace_sink,
        atomic_snaps=shared.atomic_snaps,
        use_name_index=shared.use_name_index,
    )
    evaluator.globals = dict(bundle.globals)
    evaluator.documents = dict(bundle.documents)
    evaluator.control = control
    tracer = None
    if options.collect_stats:
        from repro.obs.tracer import Tracer

        tracer = Tracer()
        # Private evaluator, private tracer: no install/uninstall dance
        # (and no store._obs — the snapshot is shared across threads).
        evaluator.tracer = tracer
    semantics = prepared._semantics or engine.default_semantics
    merged = {}
    if options.bindings:
        merged.update(options.bindings)
    if bindings:
        merged.update(bindings)
    for name, value in merged.items():
        evaluator.globals[name] = _rehandle_sequence(
            to_sequence(value), snapshot
        )
    # Prolog: functions are already in the shared registry (prepare did
    # that; per-execution re-registration is an identity write we can
    # skip under concurrency), so only the dynamic steps remain.
    for decl in module.declarations:
        if not isinstance(decl, core.CVarDecl):
            continue
        if decl.expr is None:
            if decl.name not in evaluator.globals:
                raise DynamicError(
                    f"external variable ${decl.name} is not bound; pass "
                    "it via bindings"
                )
            continue
        context = DynamicContext(dict(evaluator.globals))
        evaluator.globals[decl.name] = evaluator.run_snapped(
            decl.expr, context, semantics
        )
    if module.body is None:
        return QueryResult([], engine)
    context = DynamicContext(dict(evaluator.globals))
    items = evaluator.run_snapped(module.body, context, semantics)
    live = engine.store
    out = []
    for item in items:
        if isinstance(item, Node) and not snapshot._is_local(item.nid):
            out.append(Node(live, item.nid))
        else:
            out.append(item)
    result = QueryResult(out, engine)
    if tracer is not None:
        from repro.obs.report import QueryStats

        result.stats = QueryStats.from_tracer(tracer)
    return result
