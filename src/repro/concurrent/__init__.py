"""Concurrent execution subsystem: thread-safe serving of an XQuery! store.

The paper's central semantic guarantee — inside an innermost ``snap`` no
side effect is observable (Section 1) — means read-only work between
snapshot boundaries can run concurrently without changing any result.
This package exploits that dynamically, the way FLUX exploits it
statically:

* :class:`~repro.concurrent.locks.RWLock` — the reader-writer lock
  guarding the store (``Store.lock``); updating queries serialize through
  it while readers share.
* :class:`~repro.concurrent.snapshot.StoreSnapshot` — a cheap
  copy-on-write frozen view of the store; read-only queries (as judged by
  the optimizer's purity analysis) run lock-free against it, with shared
  memoization that a mutable store can never have.
* :class:`~repro.concurrent.control.CancelToken` /
  :class:`~repro.concurrent.control.ExecutionControl` — cooperative
  timeouts and cancellation, checked at FLWOR-iteration and
  tuple-pipeline boundaries.
* :class:`~repro.concurrent.executor.ConcurrentExecutor` — the worker
  pool front end: bounded queue, per-request deadlines, load shedding,
  and purity-based routing of queries to the snapshot or the serialized
  write path.

Submodules import lazily (PEP 562) so that low layers (``repro.xdm``)
can depend on :mod:`repro.concurrent.locks` without an import cycle
through the engine.
"""

from __future__ import annotations

from importlib import import_module

_EXPORTS = {
    "RWLock": "repro.concurrent.locks",
    "CancelToken": "repro.concurrent.control",
    "ExecutionControl": "repro.concurrent.control",
    "StoreSnapshot": "repro.concurrent.snapshot",
    "ConcurrentExecutor": "repro.concurrent.executor",
    "ConcurrencyMetrics": "repro.concurrent.executor",
}

__all__ = sorted(_EXPORTS)


def __getattr__(name: str):
    module = _EXPORTS.get(name)
    if module is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    return getattr(import_module(module), name)


def __dir__() -> list[str]:
    return sorted(set(globals()) | set(_EXPORTS))
