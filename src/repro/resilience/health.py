"""Health and readiness probes.

Every serving layer answers the same two questions — *can I serve?* and
*should you send me traffic?* — through one :class:`HealthReport`
shape:

* :meth:`Engine.health <repro.engine.Engine.health>` — store size and
  prepared-cache state (a bare engine is healthy by construction);
* :meth:`DurableEngine.health <repro.durability.DurableEngine.health>`
  — adds circuit-breaker state, journal lag (records and commits not
  yet fsynced under batch mode) and the last recovery report;
* :meth:`ConcurrentExecutor.health
  <repro.concurrent.ConcurrentExecutor.health>` — adds queue
  depth/capacity, worker count and shed/timeout counters;
* the CLI exposes the same report as ``repro health DIR`` (JSON).

``status`` is three-valued: ``healthy`` (serve everything),
``degraded`` (circuit open — reads fine, writes refused with
:class:`~repro.errors.CircuitOpenError`) and ``unhealthy`` (do not
route traffic: executor shut down, journal closed unexpectedly).
A report's sections compose: wrapping layers fold the wrapped layer's
sections into their own, so one probe at the outermost layer sees the
whole stack.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from typing import Any

HEALTHY = "healthy"
DEGRADED = "degraded"
UNHEALTHY = "unhealthy"

_RANK = {HEALTHY: 0, DEGRADED: 1, UNHEALTHY: 2}


@dataclass
class HealthReport:
    """One layer's (or one stack's) health snapshot.

    Attributes:
        status: ``healthy`` / ``degraded`` / ``unhealthy``.
        sections: named probe payloads (``store``, ``journal``,
            ``circuit``, ``queue``, ``recovery``, ...), each JSON-able.
        generated_at: ``time.time()`` when the probe ran.
    """

    status: str = HEALTHY
    sections: dict[str, Any] = field(default_factory=dict)
    generated_at: float = field(default_factory=time.time)

    @property
    def ok(self) -> bool:
        """Readiness: True unless the layer reports unhealthy.  A
        degraded layer still serves (reads), so it stays ready."""
        return self.status != UNHEALTHY

    @property
    def degraded(self) -> bool:
        return self.status == DEGRADED

    def worsen(self, status: str) -> None:
        """Fold another verdict in; the worse one wins."""
        if _RANK[status] > _RANK[self.status]:
            self.status = status

    def merge(self, other: "HealthReport") -> "HealthReport":
        """Fold *other* (an inner layer's report) into this one."""
        self.worsen(other.status)
        for name, payload in other.sections.items():
            self.sections.setdefault(name, payload)
        return self

    def to_dict(self) -> dict:
        return {
            "status": self.status,
            "ok": self.ok,
            "generated_at": self.generated_at,
            "sections": self.sections,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "HealthReport":
        """Rebuild a report from :meth:`to_dict` output (a report that
        crossed a process boundary — replica workers serialize theirs
        over the replication channel / into ``cluster-health.json``)."""
        status = payload.get("status", HEALTHY)
        if status not in _RANK:
            status = UNHEALTHY  # an unknown verdict is not a healthy one
        sections = payload.get("sections")
        return cls(
            status=status,
            sections=dict(sections) if isinstance(sections, dict) else {},
            generated_at=payload.get("generated_at", 0.0) or 0.0,
        )

    def to_json(self, indent: int | None = None) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    def render(self) -> str:
        """A terse human-readable summary (CLI output)."""
        lines = [f"status: {self.status}"]
        for name in sorted(self.sections):
            payload = self.sections[name]
            if isinstance(payload, dict):
                inner = ", ".join(
                    f"{key}={value}" for key, value in sorted(payload.items())
                )
                lines.append(f"  {name}: {inner}")
            else:
                lines.append(f"  {name}: {payload}")
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (
            f"HealthReport(status={self.status!r}, "
            f"sections={sorted(self.sections)})"
        )


def aggregate_reports(named: dict[str, "HealthReport"]) -> "HealthReport":
    """Compose many *processes'* reports into one fleet report.

    :meth:`HealthReport.merge` folds a wrapped layer's sections into the
    wrapper's flat namespace — right for one process's stack, wrong for
    a fleet where every member has its own ``store``/``durability``/
    ``circuit`` sections that must not shadow each other.  Here each
    member's whole report lands under its own name (status included),
    while the fleet status keeps the same monotone worsen semantics:
    the worst member wins.

    A ``replication`` summary section surfaces per-member lag at the
    top level (what ``repro health --json`` shows): for every member
    that carries a ``replication`` section, its ``lag_seq`` is copied
    into ``replication.lag_by_replica``.
    """
    fleet = HealthReport()
    lag_by_replica: dict[str, Any] = {}
    for name in sorted(named):
        report = named[name]
        fleet.worsen(report.status)
        fleet.sections[name] = {
            "status": report.status,
            "sections": report.sections,
        }
        replication = report.sections.get("replication")
        if isinstance(replication, dict) and "lag_seq" in replication:
            lag_by_replica[name] = replication["lag_seq"]
    if lag_by_replica:
        fleet.sections["replication"] = {
            "lag_by_replica": lag_by_replica,
            "max_lag_seq": max(
                (v for v in lag_by_replica.values() if isinstance(v, int)),
                default=None,
            ),
        }
    return fleet
