"""The whole-stack chaos harness.

Crash-matrix tests (:mod:`repro.durability.faults`) prove single faults
at single points; this harness proves the *composition*: a concurrent
auction service — journal, circuit breaker, admission control, worker
pool — driven by reader and writer threads while faults fire underneath
it.  The faults are the survivable kind a production store actually
meets:

* **journal EIO** — every append fails while the window is open; the
  breaker should trip and flip the stack into degraded read-only mode;
* **slow fsync** — commits succeed but each fsync stalls (a congested
  device); callers should see latency, timeouts, or shed load — never
  corruption;
* **lock stall** — a harness thread camps on the store write lock
  (writer convoy / stop-the-world pause);
* **snapshot pressure** — the shared read snapshot is invalidated in a
  tight loop, forcing constant rebuilds under read load.

The subsystem invariant the harness asserts (and
``tests/resilience/test_chaos.py`` enforces in CI):

1. every request ends in a **success or a typed refusal** — no untyped
   error ever reaches a client;
2. the store is **never silently wrong**: invariants hold, the
   log/archive accounting brackets the acknowledged successes, and a
   post-mortem recovery from disk agrees with the surviving process;
3. the service **returns to healthy** once the faults stop.
"""

from __future__ import annotations

import os
import sys
import tempfile
import threading
import time
from dataclasses import dataclass, field

from repro.durability.faults import (
    EIO_ON_WRITE,
    SLOW_FSYNC,
    FaultInjector,
)
from repro.errors import (
    CircuitOpenError,
    DurabilityError,
    QueryTimeoutError,
    ResourceLimitError,
    ServiceOverloadedError,
    XQueryError,
)
from repro.resilience.health import HEALTHY
from repro.resilience.policy import ResiliencePolicy

#: Outcome classes a request may legally end in.
SUCCESS = "success"
OVERLOADED = "overloaded"  # structured ServiceOverloadedError
CIRCUIT_OPEN = "circuit-open"  # degraded read-only refusal
DURABILITY = "durability"  # typed journal-append failure
TIMEOUT = "timeout"
RESOURCE_LIMIT = "resource-limit"
SEMANTIC = "semantic"  # other typed XQueryError (none expected here)
UNEXPECTED = "unexpected"  # anything untyped — an invariant violation


@dataclass(frozen=True)
class ChaosSchedule:
    """When each fault window opens and closes (seconds from start).

    Windows may overlap; a fault with ``start >= stop`` is disabled.
    ``stop`` values must leave slack before the run's ``duration_s`` so
    the recovery invariant (return to healthy) has quiet time to pass.
    """

    duration_s: float = 3.0
    eio_start_s: float = 0.5
    eio_stop_s: float = 1.5
    slow_fsync_start_s: float = 0.0
    slow_fsync_stop_s: float = 0.0
    slow_fsync_delay_s: float = 0.05
    lock_stall_at_s: float | None = None
    lock_stall_hold_s: float = 0.2
    snapshot_pressure: bool = False

    @classmethod
    def everything(cls, duration_s: float = 4.0) -> "ChaosSchedule":
        """All four fault families in one run (the CI schedule)."""
        return cls(
            duration_s=duration_s,
            eio_start_s=duration_s * 0.15,
            eio_stop_s=duration_s * 0.45,
            slow_fsync_start_s=duration_s * 0.3,
            slow_fsync_stop_s=duration_s * 0.55,
            slow_fsync_delay_s=0.02,
            lock_stall_at_s=duration_s * 0.5,
            lock_stall_hold_s=duration_s * 0.1,
            snapshot_pressure=True,
        )


@dataclass
class ChaosReport:
    """What a chaos run observed, plus the invariant verdicts."""

    outcomes: dict[str, int] = field(default_factory=dict)
    unexpected: list[str] = field(default_factory=list)
    read_successes: int = 0
    write_successes: int = 0
    write_failures: int = 0
    hostile_cases: int = 0
    injection_escapes: list[str] = field(default_factory=list)
    total_entries_live: int = 0
    total_entries_recovered: int = 0
    faults_fired: dict[str, int] = field(default_factory=dict)
    degraded_observed: bool = False
    recovered_healthy: bool = False
    store_invariants_ok: bool = False
    accounting_ok: bool = False
    durability_consistent: bool = False
    final_status: str = ""

    @property
    def all_typed(self) -> bool:
        """Invariant 1: no request ended in an untyped error."""
        return not self.unexpected

    @property
    def invariant_holds(self) -> bool:
        """The whole subsystem invariant (see the module docstring)."""
        return (
            self.all_typed
            and not self.injection_escapes
            and self.store_invariants_ok
            and self.accounting_ok
            and self.durability_consistent
            and self.recovered_healthy
        )

    def to_dict(self) -> dict:
        return {
            "schema": "repro.chaos.report/v1",
            "outcomes": dict(sorted(self.outcomes.items())),
            "unexpected": self.unexpected[:16],
            "read_successes": self.read_successes,
            "write_successes": self.write_successes,
            "write_failures": self.write_failures,
            "hostile_cases": self.hostile_cases,
            "injection_escapes": self.injection_escapes[:16],
            "total_entries_live": self.total_entries_live,
            "total_entries_recovered": self.total_entries_recovered,
            "faults_fired": dict(sorted(self.faults_fired.items())),
            "degraded_observed": self.degraded_observed,
            "recovered_healthy": self.recovered_healthy,
            "store_invariants_ok": self.store_invariants_ok,
            "accounting_ok": self.accounting_ok,
            "durability_consistent": self.durability_consistent,
            "final_status": self.final_status,
            "invariant_holds": self.invariant_holds,
        }

    def render(self) -> str:
        lines = [
            "chaos run: "
            + ("INVARIANT HOLDS" if self.invariant_holds else "VIOLATED"),
            f"  outcomes: {dict(sorted(self.outcomes.items()))}",
            f"  faults fired: {dict(sorted(self.faults_fired.items()))}",
            f"  degraded mode observed: {self.degraded_observed}",
            f"  entries live/recovered: {self.total_entries_live}/"
            f"{self.total_entries_recovered}",
            f"  store invariants: {self.store_invariants_ok}  "
            f"accounting: {self.accounting_ok}  "
            f"durability: {self.durability_consistent}",
            f"  returned to healthy: {self.recovered_healthy} "
            f"(final status: {self.final_status})",
        ]
        if self.hostile_cases:
            lines.append(
                f"  hostile cases: {self.hostile_cases} "
                f"(injection escapes: {len(self.injection_escapes)})"
            )
        if self.injection_escapes:
            lines.append(
                f"  INJECTION ESCAPES: {self.injection_escapes[:5]}"
            )
        if self.unexpected:
            lines.append(f"  UNTYPED ERRORS: {self.unexpected[:5]}")
        return "\n".join(lines)


class ChaosHarness:
    """Drive a durable auction service through a fault schedule.

    Builds the full stack — :class:`~repro.durability.DurableEngine`
    (with a :class:`~repro.durability.faults.FaultInjector` and a
    resilience policy), :class:`~repro.usecases.webservice.AuctionService`,
    :class:`~repro.usecases.webservice.AuctionFrontEnd` — runs reader
    and writer client threads against it for the schedule's duration
    while fault windows open and close, then shuts down, checks every
    invariant and reopens the durable directory to cross-check disk
    against memory.

    Parameters:
        schedule: the fault timeline (defaults to
            :meth:`ChaosSchedule.everything`).
        path: durable directory (a temp dir is created — and kept, for
            post-mortems — when omitted).
        readers / writers: client thread counts.
        hostile: hostile client thread count (0 disables).  Each cycles
            a :class:`~repro.loadgen.hostile.HostileCorpus` against the
            stack *while the faults fire*: binding payloads go through
            the executor's parameter-binding boundary (round-trip
            checked — a mutation is an injection escape and fails the
            invariant), hostile query text goes through admission plus
            a scratch engine's prepare, hostile XML through the
            document parser.
        hostile_seed: corpus seed for the hostile clients.
        request_timeout_ms: per-request deadline.
        policy: resilience policy for the stack (defaults to breaker on,
            latency-aware shedding, modest per-query limits).
        items / persons: XMark scale for the auction document.
    """

    def __init__(
        self,
        schedule: ChaosSchedule | None = None,
        *,
        path: str | None = None,
        readers: int = 3,
        writers: int = 2,
        hostile: int = 0,
        hostile_seed: int = 1,
        workers: int = 4,
        queue_size: int = 16,
        request_timeout_ms: float = 2000.0,
        policy: ResiliencePolicy | None = None,
        items: int = 12,
        persons: int = 12,
    ):
        self.schedule = schedule if schedule is not None else ChaosSchedule.everything()
        self.path = path or os.path.join(
            tempfile.mkdtemp(prefix="repro-chaos-"), "state"
        )
        self.readers = readers
        self.writers = writers
        self.hostile = hostile
        self.hostile_seed = hostile_seed
        self.workers = workers
        self.queue_size = queue_size
        self.request_timeout_ms = request_timeout_ms
        self.policy = policy if policy is not None else ResiliencePolicy(
            breaker_failure_threshold=3,
            breaker_min_calls=4,
            breaker_reset_timeout_ms=200.0,
            max_wait_ms=request_timeout_ms,
        )
        self.items = items
        self.persons = persons

    # -- outcome classification -------------------------------------------

    @staticmethod
    def classify(error: BaseException | None) -> str:
        """Map a request's terminal error (or None) to an outcome class."""
        if error is None:
            return SUCCESS
        if isinstance(error, CircuitOpenError):
            return CIRCUIT_OPEN
        if isinstance(error, ServiceOverloadedError):
            return OVERLOADED
        if isinstance(error, QueryTimeoutError):
            return TIMEOUT
        if isinstance(error, ResourceLimitError):
            return RESOURCE_LIMIT
        if isinstance(error, DurabilityError):
            return DURABILITY
        if isinstance(error, XQueryError):
            return SEMANTIC
        return UNEXPECTED

    # -- the run ----------------------------------------------------------

    def run(self) -> ChaosReport:
        from repro.usecases.webservice import AuctionFrontEnd, AuctionService
        from repro.xmark import XMarkConfig, generate_auction_xml

        report = ChaosReport()
        injector = FaultInjector()
        xml = generate_auction_xml(
            XMarkConfig(
                persons=self.persons,
                items=self.items,
                open_auctions=4,
                closed_auctions=4,
            )
        )
        service = AuctionService(
            auction_xml=xml,
            maxlog=8,
            durable_path=self.path,
            faults=injector,
            resilience=self.policy,
        )
        front = AuctionFrontEnd(
            service,
            workers=self.workers,
            queue_size=self.queue_size,
            default_timeout_ms=self.request_timeout_ms,
            resilience=self.policy,
        )
        mutex = threading.Lock()
        stop = threading.Event()
        started = time.monotonic()

        def record(kind: str, error: BaseException | None) -> None:
            outcome = self.classify(error)
            with mutex:
                report.outcomes[outcome] = report.outcomes.get(outcome, 0) + 1
                if outcome == SUCCESS:
                    if kind == "read":
                        report.read_successes += 1
                    elif kind == "write":
                        report.write_successes += 1
                elif kind == "write":
                    report.write_failures += 1
                if outcome == UNEXPECTED:
                    report.unexpected.append(repr(error))

        def client(kind: str, seed: int) -> None:
            index = seed
            while not stop.is_set():
                index += 1
                itemid = f"item{index % self.items}"
                userid = f"person{index % self.persons}"
                try:
                    if kind == "read":
                        front.get_item_nolog(itemid, userid)
                    else:
                        front.get_item(itemid, userid)
                except BaseException as error:  # noqa: BLE001 - classified
                    record(kind, error)
                else:
                    record(kind, None)
                # A short breath keeps the queue contended but not
                # permanently saturated, so sheds and successes mix.
                time.sleep(0.002 if kind == "read" else 0.005)

        def hostile_client(thread_index: int) -> None:
            # Hostile traffic mixed into the fault windows: the typed-
            # refusal and binding-inertness contracts must hold under
            # load and partial failure, not just in isolation.
            from repro.engine import Engine
            from repro.loadgen.hostile import HostileCorpus
            from repro.resilience.admission import AdmissionLimits
            from repro.xmlio.parser import parse_fragment

            corpus = HostileCorpus(self.hostile_seed + thread_index)
            limits = AdmissionLimits(max_query_bytes=32768, max_depth=128)
            scratch = Engine()
            index = 0
            while not stop.is_set():
                channel, payload = corpus.case(index)
                index += 1
                if channel == "parser" and index % 256 == 0:
                    scratch = Engine()  # bound the prepared-cache growth
                try:
                    if channel == "binding":
                        out = front.submit_query(
                            "string($v)",
                            {"v": payload},
                            timeout_ms=self.request_timeout_ms,
                        ).result().first_value()
                        if out != payload:
                            with mutex:
                                report.injection_escapes.append(
                                    f"binding round-trip mutated "
                                    f"{payload!r:.80} -> {out!r:.80}"
                                )
                    elif channel == "parser":
                        limits.check_query_text(payload)
                        scratch.prepare(payload)
                    else:
                        parse_fragment(payload)
                except BaseException as error:  # noqa: BLE001 - classified
                    record("hostile", error)
                else:
                    record("hostile", None)
                with mutex:
                    report.hostile_cases += 1
                time.sleep(0.001)

        def chaos_driver() -> None:
            sched = self.schedule
            eio_open = False
            fsync_slow = False
            stalled = False
            while not stop.is_set():
                now = time.monotonic() - started
                in_eio = sched.eio_start_s <= now < sched.eio_stop_s
                if in_eio and not eio_open:
                    # Persistent arming: EVERY append inside the window
                    # fails, so the breaker's consecutive-failure rule
                    # trips deterministically (one-shot re-arming would
                    # let successes interleave between driver ticks).
                    injector.arm(EIO_ON_WRITE, after=1, persistent=True)
                elif eio_open and not in_eio:
                    injector.disarm(EIO_ON_WRITE)
                eio_open = in_eio
                in_slow = (
                    sched.slow_fsync_start_s
                    <= now
                    < sched.slow_fsync_stop_s
                )
                if in_slow and not fsync_slow:
                    injector.arm_delay(SLOW_FSYNC, sched.slow_fsync_delay_s)
                elif fsync_slow and not in_slow:
                    injector.disarm_delay(SLOW_FSYNC)
                fsync_slow = in_slow
                if (
                    sched.lock_stall_at_s is not None
                    and not stalled
                    and now >= sched.lock_stall_at_s
                ):
                    stalled = True
                    threading.Thread(
                        target=self._hold_write_lock,
                        args=(service, sched.lock_stall_hold_s),
                        daemon=True,
                    ).start()
                if sched.snapshot_pressure:
                    front.executor.invalidate_snapshot()
                degraded = getattr(service.engine, "degraded", False)
                if degraded:
                    with mutex:
                        report.degraded_observed = True
                time.sleep(0.01)
            injector.disarm(EIO_ON_WRITE)
            injector.disarm_delay(SLOW_FSYNC)

        threads = [threading.Thread(target=chaos_driver, daemon=True)]
        for index in range(self.readers):
            threads.append(
                threading.Thread(
                    target=client, args=("read", index * 7), daemon=True
                )
            )
        for index in range(self.writers):
            threads.append(
                threading.Thread(
                    target=client, args=("write", index * 13), daemon=True
                )
            )
        for index in range(self.hostile):
            threads.append(
                threading.Thread(
                    target=hostile_client, args=(index,), daemon=True
                )
            )
        for thread in threads:
            thread.start()
        time.sleep(self.schedule.duration_s)
        stop.set()
        for thread in threads:
            thread.join(timeout=10.0)
        injector.disarm(EIO_ON_WRITE)
        injector.disarm_delay(SLOW_FSYNC)

        # -- recovery-to-healthy: with faults gone, writes must start
        # succeeding again (the half-open probe closes the circuit).
        deadline = time.monotonic() + 5.0
        while time.monotonic() < deadline:
            try:
                front.get_item("item0", "person0")
            except XQueryError:
                time.sleep(0.05)
                continue
            if service.health().status == HEALTHY:
                break
            time.sleep(0.05)
        health = front.health()
        report.final_status = health.status
        # The front end itself reports UNHEALTHY only after shutdown;
        # judge recovery on the engine stack.
        report.recovered_healthy = service.health().status == HEALTHY

        # -- invariant 2a: structural store invariants.
        try:
            service.engine.store.check_invariants()
            report.store_invariants_ok = True
        except Exception:
            report.store_invariants_ok = False

        # -- invariant 2b: accounting.  Every acknowledged get_item
        # inserted exactly one log entry (later possibly archived); a
        # failed call inserted at most one (the call spans several
        # snaps — snap, not call, is the atomicity unit).  The recovery
        # probe writes above add their own successes, already counted
        # into neither bucket — recount successes from the live store
        # bracket instead.
        live_total = service.log_entries() + service.archived_entries()
        report.total_entries_live = live_total
        lower = report.write_successes
        upper = (
            report.write_successes
            + report.write_failures
            + 128  # recovery probes above (bounded by the 5s loop)
        )
        report.accounting_ok = lower <= live_total <= upper
        front.shutdown()
        service.close()

        # -- invariant 2c: disk agrees with the surviving process.  A
        # clean close fsynced everything, so recovery must rebuild the
        # exact same log/archive counts.
        report.durability_consistent = self._recovered_matches(
            live_total, report
        )
        report.faults_fired = _count(injector.fired) | {
            point: injector.delayed.count(point)
            for point in set(injector.delayed)
        }
        return report

    # -- helpers -----------------------------------------------------------

    @staticmethod
    def _hold_write_lock(service, hold_s: float) -> None:
        """The LOCK_STALL fault: camp on the store write lock."""
        store = service.engine.store
        with store.lock.write_locked():
            time.sleep(hold_s)

    def _recovered_matches(self, live_total: int, report: ChaosReport) -> bool:
        from repro.durability import DurableEngine
        from repro.usecases.webservice import SERVICE_MODULE

        try:
            recovered = DurableEngine(self.path)
            try:
                inner = recovered.engine
                saved = dict(inner.evaluator.globals)
                inner.load_module(SERVICE_MODULE)
                inner.evaluator.globals.update(saved)
                total = int(
                    inner.execute(
                        "count($log/logentry) + count($archive/batch/logentry)"
                    ).first_value()
                )
                report.total_entries_recovered = total
                return total == live_total
            finally:
                recovered.close()
        except Exception:
            return False


def _count(items: list) -> dict[str, int]:
    out: dict[str, int] = {}
    for item in items:
        out[item] = out.get(item, 0) + 1
    return out


def main(argv: list | None = None) -> int:
    """``python -m repro.resilience.chaos`` — run the full schedule.

    Exit codes: 0 — the whole-stack invariant held; 1 — an invariant
    violation (untyped error, injection escape, store/accounting/
    durability mismatch, failed recovery); 2 — the harness itself
    crashed before producing a verdict.
    """
    import argparse
    import json as _json

    parser = argparse.ArgumentParser(
        prog="python -m repro.resilience.chaos",
        description=(
            "Whole-stack chaos harness: drive the durable auction "
            "service through overlapping fault windows and assert the "
            "typed-refusal / consistency / recovery invariants."
        ),
    )
    parser.add_argument(
        "--duration", type=float, default=4.0,
        help="run duration in seconds (default 4)",
    )
    parser.add_argument(
        "--hostile", type=int, default=0, metavar="N",
        help="mix in N hostile client threads (fuzz under faults)",
    )
    parser.add_argument(
        "--seed", type=int, default=1,
        help="hostile corpus seed (default 1)",
    )
    parser.add_argument(
        "--json", action="store_true",
        help="print the JSON report instead of the summary",
    )
    args = parser.parse_args(argv)
    try:
        harness = ChaosHarness(
            ChaosSchedule.everything(duration_s=args.duration),
            hostile=args.hostile,
            hostile_seed=args.seed,
        )
        report = harness.run()
    except Exception as error:  # noqa: BLE001 - the harness itself broke
        print(
            f"chaos harness crashed before a verdict: "
            f"{type(error).__name__}: {error}",
            file=sys.stderr,
        )
        return 2
    if args.json:
        print(_json.dumps(report.to_dict(), sort_keys=True, indent=2))
    else:
        print(report.render())
    return 0 if report.invariant_holds else 1


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
