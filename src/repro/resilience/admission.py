"""Admission control: per-query resource guards and graceful shedding.

Two layers, both producing *typed* refusals:

**Per-query guards** (:class:`AdmissionLimits` → :class:`ResourceGuard`)
bound what one admitted query may consume:

* ``max_depth`` — bracket-nesting depth of the query text, checked by a
  single pre-parse scan (:func:`nesting_depth`) before the frontend
  spends any work on a pathological input;
* ``max_query_bytes`` — query text size, same pre-parse refusal;
* ``max_store_nodes`` — store-node construction budget, enforced
  *while the query runs* at the same polling boundaries as timeouts:
  the guard rides the request's
  :class:`~repro.concurrent.control.ExecutionControl`, so every FLWOR
  iteration and tuple pull that polls the deadline also polls the
  budget;
* ``max_pending_delta`` — pending-update-list length bound, enforced at
  each snap application before any request applies (the Δ is discarded
  whole, store untouched).

**Load shedding** (:class:`AdmissionController`) replaces the binary
queue-full shed with a depth- *and* latency-aware policy: below
``soft_limit`` everything is admitted; between ``soft_limit`` and
capacity a request is shed only when the observed queue wait (EWMA)
says it would likely miss its deadline anyway; at capacity everything
is shed.  Every refusal is a
:class:`~repro.errors.ServiceOverloadedError` carrying queue depth,
capacity, the request's wait budget and a ``retry_after_ms`` hint
derived from the measured drain rate.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Any

from repro.errors import ResourceLimitError, ServiceOverloadedError

_OPENERS = {"{": "}", "(": ")", "[": "]"}
_CLOSERS = frozenset(_OPENERS.values())


def nesting_depth(query: str) -> int:
    """Maximum bracket-nesting depth of *query* (a cheap proxy for parse
    recursion depth; one linear scan, no tokenization)."""
    depth = 0
    deepest = 0
    for char in query:
        if char in _OPENERS:
            depth += 1
            if depth > deepest:
                deepest = depth
        elif char in _CLOSERS and depth > 0:
            depth -= 1
    return deepest


@dataclass(frozen=True)
class AdmissionLimits:
    """Per-query resource bounds (None disables a bound).

    Immutable and shareable; one limits value typically configures a
    whole serving stack via
    :class:`~repro.resilience.ResiliencePolicy`.
    """

    max_depth: int | None = None
    max_query_bytes: int | None = None
    max_store_nodes: int | None = None
    max_pending_delta: int | None = None

    def __post_init__(self) -> None:
        for name in (
            "max_depth",
            "max_query_bytes",
            "max_store_nodes",
            "max_pending_delta",
        ):
            value = getattr(self, name)
            if value is not None and value < 1:
                raise ValueError(f"{name} must be >= 1 (or None)")

    @property
    def enabled(self) -> bool:
        return any(
            value is not None
            for value in (
                self.max_depth,
                self.max_query_bytes,
                self.max_store_nodes,
                self.max_pending_delta,
            )
        )

    # -- pre-parse guards -------------------------------------------------

    def check_query_text(self, query: str) -> None:
        """Refuse a query whose *text* already exceeds the static bounds
        (runs before parsing — a refusal costs one linear scan)."""
        if self.max_query_bytes is not None:
            size = len(query.encode("utf-8"))
            if size > self.max_query_bytes:
                raise ResourceLimitError(
                    f"query is {size} bytes, over the {self.max_query_bytes}"
                    " byte admission bound",
                    limit_name="max_query_bytes",
                    limit=self.max_query_bytes,
                    observed=size,
                )
        if self.max_depth is not None:
            depth = nesting_depth(query)
            if depth > self.max_depth:
                raise ResourceLimitError(
                    f"query nests {depth} levels deep, over the "
                    f"{self.max_depth} level admission bound",
                    limit_name="max_depth",
                    limit=self.max_depth,
                    observed=depth,
                )

    # -- runtime guard ----------------------------------------------------

    def guard(self, store: Any) -> "ResourceGuard | None":
        """A per-execution :class:`ResourceGuard`, or None when neither
        runtime bound is configured (the common, free case)."""
        if self.max_store_nodes is None and self.max_pending_delta is None:
            return None
        return ResourceGuard(self, store)


class ResourceGuard:
    """The runtime half of the limits, attached to one execution's
    :class:`~repro.concurrent.control.ExecutionControl`.

    ``check()`` is called from ``ExecutionControl.check()`` — i.e. at
    every boundary that already polls the deadline — and compares the
    store's id watermark against the budget captured at admission.
    ``check_delta(n)`` is called by ``apply_update_list`` with the snap's
    Δ length before anything applies.
    """

    __slots__ = ("limits", "_store", "_start_next_id")

    def __init__(self, limits: AdmissionLimits, store: Any):
        self.limits = limits
        self._store = store
        self._start_next_id = getattr(store, "_next_id", 0)

    def check(self) -> None:
        """Raise when the query's store-node budget is exhausted."""
        budget = self.limits.max_store_nodes
        if budget is None:
            return
        created = self._store._next_id - self._start_next_id
        if created > budget:
            raise ResourceLimitError(
                f"query constructed {created} store nodes, over its "
                f"{budget} node admission budget",
                limit_name="max_store_nodes",
                limit=budget,
                observed=created,
            )

    def check_delta(self, length: int) -> None:
        """Raise when a snap's pending-update list is over the bound."""
        bound = self.limits.max_pending_delta
        if bound is not None and length > bound:
            raise ResourceLimitError(
                f"snap accumulated {length} pending updates, over the "
                f"{bound} update admission bound; the update list was "
                "discarded whole",
                limit_name="max_pending_delta",
                limit=bound,
                observed=length,
            )


class AdmissionController:
    """Queue-depth- and latency-aware load shedding for a bounded queue.

    Parameters:
        capacity: the request queue's capacity (the hard bound).
        soft_limit: queue depth at which latency-aware shedding starts
            (defaults to 75% of capacity).  Below it, every request is
            admitted without further checks.
        max_wait_ms: target bound on queue wait.  In the soft region a
            request is shed when the EWMA'd observed wait already
            exceeds this (the queue is not keeping up), or when the
            request's own deadline budget is smaller than the expected
            wait (it would expire queued — running it is pure waste).
        limits: per-query :class:`AdmissionLimits` applied to admitted
            requests (optional).
        tracer: optional tracer fed ``resilience.admission.*`` counters.
    """

    def __init__(
        self,
        capacity: int,
        *,
        soft_limit: int | None = None,
        max_wait_ms: float | None = None,
        limits: AdmissionLimits | None = None,
        tracer: Any | None = None,
    ):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self.soft_limit = (
            soft_limit if soft_limit is not None else max(1, (capacity * 3) // 4)
        )
        if not 1 <= self.soft_limit <= capacity:
            raise ValueError("soft_limit must be in [1, capacity]")
        self.max_wait_ms = max_wait_ms
        self.limits = limits
        self.tracer = tracer
        self._mutex = threading.Lock()
        self._ewma_wait_ms = 0.0
        self._samples = 0

    # -- wait evidence ----------------------------------------------------

    def observe_wait(self, wait_ms: float) -> None:
        """Fold one measured queue wait into the EWMA (alpha = 0.2)."""
        with self._mutex:
            if self._samples == 0:
                self._ewma_wait_ms = wait_ms
            else:
                self._ewma_wait_ms += 0.2 * (wait_ms - self._ewma_wait_ms)
            self._samples += 1

    @property
    def expected_wait_ms(self) -> float:
        with self._mutex:
            return self._ewma_wait_ms

    def retry_after_ms(self) -> float:
        """Backoff hint attached to shed responses: the expected time
        for the backlog to drain to the soft limit (floored at 50ms so
        clients never busy-spin on a hint of 0)."""
        return max(50.0, self.expected_wait_ms)

    # -- the admit decision -----------------------------------------------

    def admit(
        self,
        queue_depth: int,
        *,
        wait_budget_ms: float | None = None,
        query: str | None = None,
    ) -> None:
        """Admit or shed one request arriving at *queue_depth*.

        Raises :class:`ServiceOverloadedError` (structured) on a shed,
        :class:`ResourceLimitError` when the query text violates the
        static per-query bounds.  Admission implies nothing about
        execution: the runtime guards still ride the request.
        """
        if queue_depth >= self.capacity:
            self._shed(
                "request queue is full",
                queue_depth,
                wait_budget_ms,
            )
        if queue_depth >= self.soft_limit and self.max_wait_ms is not None:
            expected = self.expected_wait_ms
            if expected > self.max_wait_ms:
                self._shed(
                    f"queue wait ({expected:.0f}ms observed) exceeds the "
                    f"{self.max_wait_ms:g}ms service target",
                    queue_depth,
                    wait_budget_ms,
                )
            if wait_budget_ms is not None and expected > wait_budget_ms:
                self._shed(
                    f"expected queue wait ({expected:.0f}ms) exceeds the "
                    f"request's {wait_budget_ms:g}ms budget; it would "
                    "expire before running",
                    queue_depth,
                    wait_budget_ms,
                )
        if self.limits is not None and query is not None:
            self.limits.check_query_text(query)

    def _shed(
        self,
        why: str,
        queue_depth: int,
        wait_budget_ms: float | None,
    ) -> None:
        if self.tracer is not None:
            self.tracer.count("resilience.admission.shed")
        raise ServiceOverloadedError(
            f"{why} ({queue_depth}/{self.capacity} pending); request shed",
            queue_depth=queue_depth,
            queue_capacity=self.capacity,
            wait_budget_ms=wait_budget_ms,
            retry_after_ms=self.retry_after_ms(),
        )

    def to_dict(self) -> dict:
        """JSON-able snapshot for health reports."""
        return {
            "capacity": self.capacity,
            "soft_limit": self.soft_limit,
            "max_wait_ms": self.max_wait_ms,
            "expected_wait_ms": self.expected_wait_ms,
        }
