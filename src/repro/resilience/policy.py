"""The policy object that configures the whole resilience layer.

One :class:`ResiliencePolicy` value bundles the three independent
defenses — retry/backoff, circuit breaking, admission control — so a
serving stack is configured in one place and every layer reads the same
contract::

    from repro.resilience import ResiliencePolicy, AdmissionLimits, RetryPolicy

    policy = ResiliencePolicy(
        retry=RetryPolicy(max_attempts=3, budget_ms=2000),
        limits=AdmissionLimits(max_pending_delta=10_000,
                               max_store_nodes=500_000,
                               max_depth=128),
        breaker_failure_threshold=5,
        breaker_reset_timeout_ms=500,
        max_wait_ms=250,
    )
    engine = DurableEngine(path, resilience=policy)
    executor = ConcurrentExecutor(engine, resilience=policy)

``ResiliencePolicy()`` (all defaults) enables the circuit breaker with
conservative settings and nothing else; ``ResiliencePolicy.disabled()``
is the explicit off switch.  The policy object is immutable — build
once, share everywhere.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.resilience.admission import AdmissionLimits
from repro.resilience.breaker import CircuitBreaker
from repro.resilience.retry import RetryPolicy


@dataclass(frozen=True)
class ResiliencePolicy:
    """Immutable configuration for the resilience layer.

    Attributes:
        retry: retry/backoff policy for transient faults (None = no
            retries; the default — retrying is an explicit choice).
        limits: per-query admission bounds (defaults to no bounds).
        breaker_enabled: put a circuit breaker on the durability path.
        breaker_failure_threshold / breaker_failure_rate /
        breaker_window / breaker_min_calls / breaker_reset_timeout_ms:
            forwarded to :class:`~repro.resilience.CircuitBreaker`.
        max_wait_ms: queue-latency target for admission-control load
            shedding (None = shed only on a full queue, the pre-policy
            behaviour).
    """

    retry: RetryPolicy | None = None
    limits: AdmissionLimits = field(default_factory=AdmissionLimits)
    breaker_enabled: bool = True
    breaker_failure_threshold: int = 5
    breaker_failure_rate: float = 0.5
    breaker_window: int = 32
    breaker_min_calls: int = 8
    breaker_reset_timeout_ms: float = 1000.0
    max_wait_ms: float | None = None

    @classmethod
    def disabled(cls) -> "ResiliencePolicy":
        """A policy with every mechanism off (baseline behaviour)."""
        return cls(retry=None, breaker_enabled=False)

    def make_breaker(self, tracer: Any | None = None) -> CircuitBreaker | None:
        """A breaker per this policy (None when disabled)."""
        if not self.breaker_enabled:
            return None
        return CircuitBreaker(
            failure_threshold=self.breaker_failure_threshold,
            failure_rate=self.breaker_failure_rate,
            window=self.breaker_window,
            min_calls=self.breaker_min_calls,
            reset_timeout_ms=self.breaker_reset_timeout_ms,
            tracer=tracer,
        )
