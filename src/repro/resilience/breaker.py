"""A circuit breaker for the durability path.

When the journal starts failing — disk full, dying device, injected
``EIO`` — every write request would otherwise ride the full execute →
apply → journal-append → rollback cycle just to fail, while the cause
persists.  The breaker converts that into a *specified* degraded mode:

* **closed** — normal operation; failures and successes are recorded
  into a sliding count window.
* **open** — entered when the window holds at least ``min_calls``
  outcomes and the failure rate reaches ``failure_rate`` (or
  ``failure_threshold`` consecutive failures, whichever trips first).
  While open, :meth:`admit` refuses instantly with a typed
  :class:`~repro.errors.CircuitOpenError` carrying the reason and a
  ``retry_after_ms`` hint.  The engine above this is in *degraded
  read-only mode*: reads never consult the breaker (an empty Δ commits
  nothing), writes get the refusal without touching the store.
* **half-open** — after ``reset_timeout_ms`` one probe is admitted.
  Its success closes the circuit (window cleared); its failure re-opens
  it and restarts the clock.  Concurrent requests during the probe are
  refused like open ones, so a recovering disk sees one canary, not a
  thundering herd.

State transitions are counted into the tracer
(``resilience.breaker.opened`` / ``.half_open`` / ``.closed``) and the
current state is part of every health report.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Any, Callable

from repro.errors import CircuitOpenError

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half-open"


class CircuitBreaker:
    """Failure-rate circuit breaker (closed / open / half-open).

    Parameters:
        failure_threshold: consecutive failures that trip the circuit
            regardless of rate (fast trip on a hard-down disk).
        failure_rate: fraction of failures in the window that trips the
            circuit once ``min_calls`` outcomes are recorded.
        window: outcomes kept in the sliding count window.
        min_calls: outcomes required before the rate rule applies (the
            consecutive-failure rule is always live).
        reset_timeout_ms: open-state dwell time before one half-open
            probe is admitted.
        clock: injectable monotonic clock (tests).
        tracer: optional tracer fed ``resilience.breaker.*`` counters.
    """

    def __init__(
        self,
        *,
        failure_threshold: int = 5,
        failure_rate: float = 0.5,
        window: int = 32,
        min_calls: int = 8,
        reset_timeout_ms: float = 1000.0,
        clock: Callable[[], float] = time.monotonic,
        tracer: Any | None = None,
    ):
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if not 0.0 < failure_rate <= 1.0:
            raise ValueError("failure_rate must be in (0, 1]")
        if window < 1 or min_calls < 1:
            raise ValueError("window and min_calls must be >= 1")
        if reset_timeout_ms <= 0:
            raise ValueError("reset_timeout_ms must be positive")
        self.failure_threshold = failure_threshold
        self.failure_rate = failure_rate
        self.min_calls = min_calls
        self.reset_timeout_ms = reset_timeout_ms
        self.clock = clock
        self.tracer = tracer
        self._mutex = threading.Lock()
        self._window: deque[bool] = deque(maxlen=window)  # True = failure
        self._consecutive = 0
        self._state = CLOSED
        self._opened_at: float | None = None
        self._open_reason: str | None = None
        self._probe_inflight = False

    # -- inspection -------------------------------------------------------

    @property
    def state(self) -> str:
        """``closed``, ``open`` or ``half-open`` (time-aware: an open
        circuit whose reset timeout has passed reports half-open)."""
        with self._mutex:
            return self._state_locked()

    def _state_locked(self) -> str:
        if self._state == OPEN and not self._probe_inflight:
            assert self._opened_at is not None
            waited_ms = (self.clock() - self._opened_at) * 1000.0
            if waited_ms >= self.reset_timeout_ms:
                return HALF_OPEN
        return self._state

    @property
    def open_reason(self) -> str | None:
        with self._mutex:
            return self._open_reason

    def retry_after_ms(self) -> float:
        """Milliseconds until a probe becomes admissible (0 when now)."""
        with self._mutex:
            if self._state != OPEN or self._opened_at is None:
                return 0.0
            waited_ms = (self.clock() - self._opened_at) * 1000.0
            return max(0.0, self.reset_timeout_ms - waited_ms)

    def to_dict(self) -> dict:
        """JSON-able snapshot for health reports."""
        with self._mutex:
            failures = sum(self._window)
            return {
                "state": self._state_locked(),
                "failures_in_window": failures,
                "calls_in_window": len(self._window),
                "consecutive_failures": self._consecutive,
                "open_reason": self._open_reason,
            }

    # -- the protocol -----------------------------------------------------

    def admit(self) -> None:
        """Refuse (typed) or admit one protected call.

        Closed: always admits.  Open: refuses until the reset timeout,
        then admits exactly one probe (half-open) and refuses the rest
        until that probe reports its outcome.
        """
        with self._mutex:
            if self._state == CLOSED:
                return
            state = self._state_locked()
            if state == HALF_OPEN:
                self._probe_inflight = True
                if self.tracer is not None:
                    self.tracer.count("resilience.breaker.half_open")
                return
            retry_ms = None
            if self._opened_at is not None:
                waited_ms = (self.clock() - self._opened_at) * 1000.0
                retry_ms = max(0.0, self.reset_timeout_ms - waited_ms)
            reason = self._open_reason or "failure rate over threshold"
            opened_at = self._opened_at
        raise CircuitOpenError(
            "durability circuit is open (degraded read-only mode): "
            f"{reason}; writes are refused, reads keep serving",
            reason=reason,
            opened_at=opened_at,
            retry_after_ms=retry_ms,
        )

    def record_success(self) -> None:
        """A protected call succeeded (closes a probing circuit)."""
        with self._mutex:
            self._consecutive = 0
            if self._state == OPEN:
                # The half-open probe came back clean: full reset.
                self._window.clear()
                self._state = CLOSED
                self._opened_at = None
                self._open_reason = None
                self._probe_inflight = False
                if self.tracer is not None:
                    self.tracer.count("resilience.breaker.closed")
                return
            self._window.append(False)

    def record_failure(self, reason: str | None = None) -> None:
        """A protected call failed (re-opens a probing circuit)."""
        with self._mutex:
            if self._state == OPEN:
                # The probe failed: stay open, restart the dwell clock.
                self._opened_at = self.clock()
                self._probe_inflight = False
                if reason:
                    self._open_reason = reason
                if self.tracer is not None:
                    self.tracer.count("resilience.breaker.reopened")
                return
            self._window.append(True)
            self._consecutive += 1
            failures = sum(self._window)
            rate_tripped = (
                len(self._window) >= self.min_calls
                and failures / len(self._window) >= self.failure_rate
            )
            if rate_tripped or self._consecutive >= self.failure_threshold:
                self._state = OPEN
                self._opened_at = self.clock()
                self._open_reason = reason or (
                    f"{failures}/{len(self._window)} recent journal "
                    "operations failed"
                )
                self._probe_inflight = False
                if self.tracer is not None:
                    self.tracer.count("resilience.breaker.opened")

    def release_probe(self) -> None:
        """The admitted call ended without exercising the protected
        operation (e.g. a precondition failure before the journal was
        touched): neither a success nor a failure.  Frees the half-open
        probe slot so the next write can probe instead of being refused
        forever."""
        with self._mutex:
            self._probe_inflight = False

    def reset(self) -> None:
        """Force-close the circuit (operator override, tests)."""
        with self._mutex:
            self._window.clear()
            self._consecutive = 0
            self._state = CLOSED
            self._opened_at = None
            self._open_reason = None
            self._probe_inflight = False

    def __repr__(self) -> str:
        return f"CircuitBreaker(state={self.state!r})"
