"""Resilience subsystem: specified failure behaviour under faults.

The paper's ``snap`` gives the engine a clean unit of atomicity, and the
durability layer made it the unit of persistence; this package makes the
*serving stack around it* degrade in specified, typed, observable ways
instead of falling over:

* :class:`~repro.resilience.retry.RetryPolicy` — exponential backoff
  with full jitter and a deadline budget, applied to transient faults
  only (journal ``EIO``, shed load, wait starvation), never to semantic
  errors.
* :class:`~repro.resilience.breaker.CircuitBreaker` — closed / open /
  half-open protection of the durability path.  An open circuit flips
  the engine into *degraded read-only mode*: reads keep serving, writes
  get a typed :class:`~repro.errors.CircuitOpenError` carrying the
  degradation reason, and recovery is probed half-open.
* :class:`~repro.resilience.admission.AdmissionController` /
  :class:`~repro.resilience.admission.AdmissionLimits` — per-query
  resource guards (nesting depth, query size, store-node budget,
  pending-Δ bound) enforced at the same polling boundaries as timeouts,
  plus queue-depth- and latency-aware load shedding.
* :class:`~repro.resilience.health.HealthReport` — the uniform
  health/readiness probe shape exposed by ``Engine.health()``,
  ``DurableEngine.health()``, ``ConcurrentExecutor.health()`` and the
  ``repro health`` CLI.
* :class:`~repro.resilience.policy.ResiliencePolicy` — the single
  configuration value the layers above share.
* :mod:`repro.resilience.chaos` — the whole-stack chaos harness that
  injects journal/lock/overload faults under concurrent load and
  asserts the subsystem's invariant: every request ends in success, a
  typed refusal or a clean degraded-mode answer; the store is never
  silently wrong; the service returns to healthy once faults stop.

Submodules import lazily (PEP 562), matching :mod:`repro.concurrent`.
"""

from __future__ import annotations

from importlib import import_module

_EXPORTS = {
    "RetryPolicy": "repro.resilience.retry",
    "DEFAULT_TRANSIENT": "repro.resilience.retry",
    "CircuitBreaker": "repro.resilience.breaker",
    "AdmissionController": "repro.resilience.admission",
    "AdmissionLimits": "repro.resilience.admission",
    "ResourceGuard": "repro.resilience.admission",
    "nesting_depth": "repro.resilience.admission",
    "HealthReport": "repro.resilience.health",
    "aggregate_reports": "repro.resilience.health",
    "ResiliencePolicy": "repro.resilience.policy",
    "ChaosHarness": "repro.resilience.chaos",
    "ChaosSchedule": "repro.resilience.chaos",
    "ChaosReport": "repro.resilience.chaos",
}

__all__ = sorted(_EXPORTS)


def __getattr__(name: str):
    module = _EXPORTS.get(name)
    if module is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    return getattr(import_module(module), name)


def __dir__() -> list[str]:
    return sorted(set(globals()) | set(_EXPORTS))
