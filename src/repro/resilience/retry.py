"""Retry with exponential backoff, full jitter and a deadline budget.

The serving stack distinguishes *transient* faults — a journal append
that hit a passing ``EIO``, a request shed by a momentarily full queue,
a lock-wait that exceeded its slice — from *semantic* errors (a parse
error, a type error, a conflict the semantics proved).  Retrying the
first class converts blips into latency; retrying the second class
converts a correct refusal into a livelock.  :class:`RetryPolicy`
encodes that line once:

* only errors in an explicit transient whitelist are retried — never
  :class:`~repro.errors.StaticError`, never conflict/type/update errors,
  never :class:`~repro.errors.JournalCorruptionError` (corruption does
  not heal on retry) and never
  :class:`~repro.errors.CircuitOpenError` by default (the breaker's
  ``retry_after_ms`` is the right signal, not blind backoff);
* the backoff schedule is exponential with **full jitter**
  (``delay = uniform(0, min(cap, base * 2**attempt))``), the scheme
  that minimizes synchronized retry storms across many clients;
* the whole retry loop runs under one **deadline budget**: a retry that
  could not complete before the budget expires is not attempted, so
  retrying never turns a bounded call into an unbounded one.

Attempt evidence feeds the standard tracer counters
(``resilience.retry.attempts`` / ``.retries`` / ``.exhausted`` /
``.recovered``), so retry behaviour is visible in the same place as
every other engine statistic.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator

from repro.errors import (
    CircuitOpenError,
    DurabilityError,
    JournalCorruptionError,
    QueryTimeoutError,
    ReplicaLagError,
    ServiceOverloadedError,
    StaleEpochError,
    TransactionConflictError,
    XQueryError,
)

#: The default transient whitelist: faults that plausibly pass on retry.
DEFAULT_TRANSIENT = (
    DurabilityError,  # journal append EIO (CircuitOpen/Corruption excluded)
    ServiceOverloadedError,  # shed load — the queue drains
    QueryTimeoutError,  # lock-wait/queue-wait starvation under a burst
    TransactionConflictError,  # OCC abort — rerun on a fresh snapshot
    ReplicaLagError,  # replicas catch up / restart / partitions heal
)

#: Never retried, whatever the whitelist says.  Journal corruption does
#: not heal on retry (and a follower needing resync subclasses it); a
#: stale fencing epoch marks a deposed primary — retrying a fenced
#: write would be split-brain by persistence.
NEVER_RETRY = (JournalCorruptionError, StaleEpochError)


@dataclass(frozen=True)
class RetryPolicy:
    """An immutable, shareable retry policy.

    Parameters:
        max_attempts: total tries, the first included (1 = no retry).
        base_delay_ms: first backoff cap; doubles every retry.
        max_delay_ms: upper bound on any single backoff.
        budget_ms: wall-clock budget for the whole loop, sleeps
            included (None = bounded only by ``max_attempts``).
        transient: exception types eligible for retry.  Kept
            deliberately explicit — anything outside the tuple
            (semantic errors above all) propagates immediately.
        retry_circuit_open: opt in to retrying
            :class:`~repro.errors.CircuitOpenError`, honouring the
            error's ``retry_after_ms`` as a floor for the backoff.
    """

    max_attempts: int = 4
    base_delay_ms: float = 10.0
    max_delay_ms: float = 2000.0
    budget_ms: float | None = 10_000.0
    transient: tuple[type, ...] = field(default=DEFAULT_TRANSIENT)
    retry_circuit_open: bool = False

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.base_delay_ms < 0 or self.max_delay_ms < 0:
            raise ValueError("backoff delays must be >= 0")
        if self.budget_ms is not None and self.budget_ms <= 0:
            raise ValueError("budget_ms must be positive (or None)")

    # -- classification ---------------------------------------------------

    def is_transient(self, exc: BaseException) -> bool:
        """True when *exc* is in the transient whitelist.

        :class:`JournalCorruptionError` never is;
        :class:`CircuitOpenError` only with ``retry_circuit_open``.
        """
        if isinstance(exc, NEVER_RETRY):
            return False
        if isinstance(exc, CircuitOpenError):
            return self.retry_circuit_open
        return isinstance(exc, self.transient)

    # -- backoff schedule -------------------------------------------------

    def backoff_ms(self, attempt: int, rng: random.Random | None = None) -> float:
        """The full-jitter backoff before retry *attempt* (1-based)."""
        draw = rng.uniform if rng is not None else random.uniform
        cap = min(self.max_delay_ms, self.base_delay_ms * (2 ** (attempt - 1)))
        return draw(0.0, cap)

    def delays_ms(self, rng: random.Random | None = None) -> Iterator[float]:
        """The backoff sequence for retries 1..max_attempts-1."""
        for attempt in range(1, self.max_attempts):
            yield self.backoff_ms(attempt, rng)

    # -- the loop ---------------------------------------------------------

    def call(
        self,
        fn: Callable[[], Any],
        *,
        tracer: Any | None = None,
        rng: random.Random | None = None,
        sleep: Callable[[float], None] = time.sleep,
        clock: Callable[[], float] = time.monotonic,
        on_retry: Callable[[int, BaseException, float], None] | None = None,
    ) -> Any:
        """Run ``fn()`` under this policy and return its value.

        Non-transient errors propagate from the first attempt; a
        transient error is retried after a jittered backoff until the
        attempts or the budget run out, at which point the *last* error
        propagates unchanged (typed, with its original code).
        ``on_retry(attempt, error, delay_ms)`` is invoked before each
        sleep — the chaos harness and tests hook it for evidence.
        """
        start = clock()
        last_error: BaseException | None = None
        for attempt in range(1, self.max_attempts + 1):
            if tracer is not None:
                tracer.count("resilience.retry.attempts")
            try:
                result = fn()
            except XQueryError as exc:
                if not self.is_transient(exc):
                    raise
                last_error = exc
                if attempt == self.max_attempts:
                    break
                delay_ms = self.backoff_ms(attempt, rng)
                if isinstance(exc, CircuitOpenError) and exc.retry_after_ms:
                    # The breaker knows when a probe becomes admissible;
                    # sleeping less than that is guaranteed wasted work.
                    delay_ms = max(delay_ms, exc.retry_after_ms)
                retry_hint = getattr(exc, "retry_after_ms", None)
                if (
                    isinstance(exc, (ServiceOverloadedError, ReplicaLagError))
                    and retry_hint is not None
                ):
                    # The service's own backoff hint (queue drain time,
                    # one shipping interval) floors the jittered delay.
                    delay_ms = max(delay_ms, retry_hint)
                if self.budget_ms is not None:
                    elapsed_ms = (clock() - start) * 1000.0
                    if elapsed_ms + delay_ms >= self.budget_ms:
                        # A retry that cannot land inside the budget is
                        # not attempted: fail now with the real error.
                        break
                if tracer is not None:
                    tracer.count("resilience.retry.retries")
                if on_retry is not None:
                    on_retry(attempt, exc, delay_ms)
                if delay_ms > 0:
                    sleep(delay_ms / 1000.0)
            else:
                if attempt > 1 and tracer is not None:
                    tracer.count("resilience.retry.recovered")
                return result
        if tracer is not None:
            tracer.count("resilience.retry.exhausted")
        assert last_error is not None
        raise last_error
