"""Log-shipping replication with supervised, fenced failover.

The durability layer made the paper's ``snap`` the unit of persistence
(one CRC-framed journal record per committed snap); this package makes
it the unit of **replication**: a primary process appends to the WAL
exactly as before, and N read-replica worker processes consume the
journal's frame groups — validated Δs, the only thing that ever
crosses between processes — through the same replay machinery crash
recovery uses.  A replica's store at watermark *s* is definitionally
what single-process recovery would rebuild at *s*.

The moving parts:

* :class:`~repro.cluster.supervisor.ClusterSupervisor` — spawns and
  health-probes the worker fleet, ships frames
  (:class:`~repro.cluster.shipper.ShipBuffer` over one
  :class:`~repro.durability.journal.JournalFollower`), restarts dead
  replicas with from-disk catch-up, publishes the aggregated fleet
  report to ``cluster-health.json``, and on primary death performs
  fenced failover;
* :mod:`~repro.cluster.fence` — the monotone fencing-epoch file.
  Every journal frame carries its epoch; a deposed primary's next
  append fails with :class:`~repro.errors.StaleEpochError` (REPR0009)
  instead of interleaving two writers' frames;
* :class:`~repro.cluster.replica.ReplicaApplier` — the replica-side
  state machine: strict sequence/epoch discipline, commit groups
  staged and applied atomically, read-only until promoted;
* :class:`~repro.cluster.router.QueryRouter` — staleness-bounded read
  routing (``max_lag_seq``) over interchangeable in-process and
  replica backends; an unsatisfiable bound is a transient typed
  :class:`~repro.errors.ReplicaLagError` (REPR0010), never a silent
  stale read;
* :mod:`~repro.cluster.chaos` — the fleet-level chaos harness:
  replica-kill, primary-kill/failover and partition windows under
  concurrent load, asserting the standing invariant (every request
  ends in success or typed refusal; the promoted store byte-agrees
  with single-process replay).

Submodules import lazily (PEP 562), matching :mod:`repro.resilience`.
"""

from __future__ import annotations

from importlib import import_module

_EXPORTS = {
    "ClusterConfig": "repro.cluster.supervisor",
    "ClusterSupervisor": "repro.cluster.supervisor",
    "ReplicaHandle": "repro.cluster.supervisor",
    "ReplicaApplier": "repro.cluster.replica",
    "store_fingerprint": "repro.cluster.replica",
    "ShipBuffer": "repro.cluster.shipper",
    "QueryRouter": "repro.cluster.router",
    "InProcessBackend": "repro.cluster.router",
    "ReplicaBackend": "repro.cluster.router",
    "RoutedResult": "repro.cluster.router",
    "FrameChannel": "repro.cluster.protocol",
    "ChannelClosed": "repro.cluster.protocol",
    "read_epoch": "repro.cluster.fence",
    "advance_epoch": "repro.cluster.fence",
    "make_fence": "repro.cluster.fence",
    "ClusterChaosHarness": "repro.cluster.chaos",
    "ClusterChaosReport": "repro.cluster.chaos",
    "ClusterChaosSchedule": "repro.cluster.chaos",
}

__all__ = sorted(_EXPORTS)


def __getattr__(name: str):
    module = _EXPORTS.get(name)
    if module is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    return getattr(import_module(module), name)


def __dir__() -> list[str]:
    return sorted(set(globals()) | set(_EXPORTS))
