"""The replication wire protocol: WAL frames over a byte stream.

The journal already solved "detect a torn or damaged record" once —
length-prefixed frames with separate header and payload CRCs (see
:mod:`repro.durability.journal`).  The replication channel reuses that
exact frame format over a socket, so one framing implementation guards
both the disk and the wire:

    frame := header(16 bytes) + payload
    header := little-endian u32 x 4:
        FRAME_MAGIC, payload length, CRC32(payload),
        CRC32(first 12 header bytes)
    payload := UTF-8 JSON message object with a ``"t"`` type tag

Message types (``MSG_*``): the supervisor ships journal records
(``frames``), probes health, routes reads, and drives failover
(``promote``); the worker answers with ``ack``/``result``/
``health-report``/``promoted`` or a serialized typed error
(``error`` — :func:`raise_remote` rebuilds the original exception
class from its registered code, so a replica's typed refusal crosses
the process boundary without losing its type).

Transport failures (peer died, pipe reset) raise
:class:`ChannelClosed`; callers map that to the cluster's typed
vocabulary — the supervisor treats it as a dead replica, the router as
:class:`~repro.errors.ReplicaLagError` (transient: the supervisor
restarts the replica and the fleet heals).
"""

from __future__ import annotations

import json
import socket
import struct
from typing import Any
from zlib import crc32

from repro.errors import (
    CircuitOpenError,
    DurabilityError,
    JournalCorruptionError,
    QueryCancelledError,
    QueryTimeoutError,
    ReplicaLagError,
    ServiceOverloadedError,
    StaleEpochError,
    TransactionConflictError,
    XQueryError,
)

from repro.durability.journal import FRAME_MAGIC, HEADER_SIZE

_HEADER = struct.Struct("<IIII")

#: Refuse to allocate for a length field no sane message can carry
#: (a corrupted or hostile header must not become a giant allocation).
MAX_MESSAGE_BYTES = 64 * 1024 * 1024

# -- message type tags -----------------------------------------------------

MSG_INIT = "init"  # supervisor -> worker: module source, fault config
MSG_HELLO = "hello"  # worker -> supervisor: ready, watermark, epoch
MSG_FRAMES = "frames"  # supervisor -> worker: journal records to apply
MSG_ACK = "ack"  # worker -> supervisor: applied watermark
MSG_QUERY = "query"  # supervisor -> worker: read-only query
MSG_EXEC = "exec"  # supervisor -> worker: write query (promoted only)
MSG_RESULT = "result"  # worker -> supervisor: query answer
MSG_HEALTH = "health"  # supervisor -> worker: probe
MSG_HEALTH_REPORT = "health-report"  # worker -> supervisor: report dict
MSG_PROMOTE = "promote"  # supervisor -> worker: take over as primary
MSG_PROMOTED = "promoted"  # worker -> supervisor: promotion done
MSG_FINGERPRINT = "fingerprint"  # supervisor -> worker: store digest?
MSG_FINGERPRINT_REPORT = "fingerprint-report"
MSG_SHUTDOWN = "shutdown"  # supervisor -> worker: exit cleanly
MSG_BYE = "bye"  # worker -> supervisor: exiting
MSG_ERROR = "error"  # worker -> supervisor: typed failure


class ChannelClosed(ConnectionError):
    """The peer is gone (EOF, reset, or a garbled frame).

    A transport-level condition, not a typed engine error: what it
    *means* depends on who saw it (dead replica vs. unreachable
    primary), so callers translate it at the routing layer.
    """


def encode_message(message: dict) -> bytes:
    """One message as a CRC-framed blob (same framing as the WAL)."""
    payload = json.dumps(message, separators=(",", ":")).encode("utf-8")
    head = struct.pack("<III", FRAME_MAGIC, len(payload), crc32(payload))
    return head + struct.pack("<I", crc32(head)) + payload


def decode_message(blob: bytes) -> dict:
    """Validate and decode one complete framed blob.

    The exact checks :meth:`FrameChannel.recv` performs on a socket
    stream — magic, header CRC, length bound, payload CRC, JSON object
    — applied to an in-memory frame (the :class:`SimChannel` receive
    path).  Raises :class:`ChannelClosed` on any violation, so both
    transports refuse garbled frames with the same vocabulary.
    """
    if len(blob) < HEADER_SIZE:
        raise ChannelClosed(
            f"truncated frame: {len(blob)} bytes < {HEADER_SIZE}-byte header"
        )
    header = blob[:HEADER_SIZE]
    magic, length, payload_crc, header_crc = _HEADER.unpack(header)
    if crc32(header[:12]) != header_crc or magic != FRAME_MAGIC:
        raise ChannelClosed("garbled frame header on channel")
    if length > MAX_MESSAGE_BYTES:
        raise ChannelClosed(
            f"frame declares {length} bytes (limit {MAX_MESSAGE_BYTES})"
        )
    payload = blob[HEADER_SIZE:]
    if len(payload) != length:
        raise ChannelClosed(
            f"frame declares {length} payload bytes, carries {len(payload)}"
        )
    if crc32(payload) != payload_crc:
        raise ChannelClosed("frame payload failed its CRC on channel")
    try:
        message = json.loads(payload.decode("utf-8"))
    except (ValueError, UnicodeDecodeError) as exc:
        raise ChannelClosed(f"undecodable frame payload: {exc}") from exc
    if not isinstance(message, dict):
        raise ChannelClosed("frame payload is not a message object")
    return message


class FrameChannel:
    """A message channel over a connected socket.

    Both ends speak the same framed-JSON protocol; the channel itself is
    direction-agnostic.  Not thread-safe — the supervisor serializes
    per-replica RPCs under a per-handle lock, and the worker is a
    single-threaded request loop.
    """

    def __init__(self, sock: socket.socket):
        self._sock = sock
        self._recv_buffer = b""
        self.closed = False

    def fileno(self) -> int:
        return self._sock.fileno()

    def close(self) -> None:
        if not self.closed:
            self.closed = True
            try:
                self._sock.close()
            except OSError:
                pass

    def settimeout(self, timeout: float | None) -> None:
        self._sock.settimeout(timeout)

    # -- sending -----------------------------------------------------------

    def send(self, message: dict) -> None:
        """Send one message; :class:`ChannelClosed` when the peer died."""
        if self.closed:
            raise ChannelClosed("channel is closed")
        try:
            self._sock.sendall(encode_message(message))
        except (BrokenPipeError, ConnectionError, OSError) as exc:
            self.close()
            raise ChannelClosed(f"peer went away during send: {exc}") from exc

    # -- receiving ---------------------------------------------------------

    def _read_exact(self, count: int) -> bytes:
        while len(self._recv_buffer) < count:
            try:
                chunk = self._sock.recv(65536)
            except socket.timeout:
                raise
            except (ConnectionError, OSError) as exc:
                self.close()
                raise ChannelClosed(
                    f"peer went away during recv: {exc}"
                ) from exc
            if not chunk:
                self.close()
                raise ChannelClosed("peer closed the channel (EOF)")
            self._recv_buffer += chunk
        data = self._recv_buffer[:count]
        self._recv_buffer = self._recv_buffer[count:]
        return data

    def recv(self, timeout: float | None = None) -> dict:
        """Receive one message.

        Raises :class:`ChannelClosed` on EOF/reset and on a frame that
        fails its CRCs — on a reliable local transport a garbled frame
        means a dead or insane peer, and resynchronizing mid-stream
        would risk applying a half-message; ``socket.timeout`` when
        *timeout* elapses with no complete message.
        """
        self._sock.settimeout(timeout)
        header = self._read_exact(HEADER_SIZE)
        magic, length, payload_crc, header_crc = _HEADER.unpack(header)
        if crc32(header[:12]) != header_crc or magic != FRAME_MAGIC:
            self.close()
            raise ChannelClosed("garbled frame header on channel")
        if length > MAX_MESSAGE_BYTES:
            self.close()
            raise ChannelClosed(
                f"frame declares {length} bytes (limit {MAX_MESSAGE_BYTES})"
            )
        payload = self._read_exact(length)
        if crc32(payload) != payload_crc:
            self.close()
            raise ChannelClosed("frame payload failed its CRC on channel")
        try:
            message = json.loads(payload.decode("utf-8"))
        except (ValueError, UnicodeDecodeError) as exc:
            self.close()
            raise ChannelClosed(f"undecodable frame payload: {exc}") from exc
        if not isinstance(message, dict):
            self.close()
            raise ChannelClosed("frame payload is not a message object")
        return message

    def request(self, message: dict, timeout: float | None = None) -> dict:
        """Send *message* and return the peer's next reply."""
        self.send(message)
        return self.recv(timeout)


class SimChannel:
    """An in-memory channel endpoint with the wire frame discipline.

    The deterministic simulator's stand-in for :class:`FrameChannel`:
    every ``send`` still round-trips through
    :func:`encode_message`/:func:`decode_message`, so the CRC framing
    is genuinely exercised — but the bytes travel through a *transport*
    object instead of a socket, and the transport owns delivery
    (seeded delay, loss, partition, per-link FIFO; see
    :class:`repro.sim.net.SimNetwork`).

    The transport contract is one method::

        transmit(source: SimChannel, blob: bytes) -> None

    called at send time; the transport later calls
    :meth:`deliver` on the *peer* endpoint with the (possibly dropped,
    always whole) blob.  Receive is event-driven: a delivered message
    lands in :attr:`on_message` when set, else queues for a
    non-blocking :meth:`recv` — the simulator's hosts never block,
    the event scheduler owns all waiting.
    """

    def __init__(self, name: str, transport: Any):
        self.name = name
        self._transport = transport
        self.peer: "SimChannel | None" = None
        self.closed = False
        self.on_message: Any | None = None
        self._inbox: list[dict] = []

    @staticmethod
    def pair(
        transport: Any, a_name: str, b_name: str
    ) -> tuple["SimChannel", "SimChannel"]:
        """Two connected endpoints over one transport."""
        a = SimChannel(a_name, transport)
        b = SimChannel(b_name, transport)
        a.peer, b.peer = b, a
        return a, b

    def close(self) -> None:
        self.closed = True

    def send(self, message: dict) -> None:
        """Frame *message* and hand the bytes to the transport.

        Raises :class:`ChannelClosed` when either endpoint is closed —
        the same contract a dead socket gives the real channel.
        """
        if self.closed:
            raise ChannelClosed("channel is closed")
        if self.peer is None or self.peer.closed:
            self.close()
            raise ChannelClosed("peer went away during send")
        self._transport.transmit(self, encode_message(message))

    def deliver(self, blob: bytes) -> None:
        """Transport callback: one whole frame arrived at this endpoint.

        A garbled frame closes the channel (exactly like
        :meth:`FrameChannel.recv`); deliveries after close are dropped
        on the floor, as a dead process's socket buffer would be.
        """
        if self.closed:
            return
        try:
            message = decode_message(blob)
        except ChannelClosed:
            self.close()
            return
        if self.on_message is not None:
            self.on_message(message)
        else:
            self._inbox.append(message)

    def recv(self, timeout: float | None = None) -> dict:
        """Pop one queued message; never blocks.

        Simulated hosts are event-driven — an empty inbox means the
        caller scheduled its receive wrong, so it raises
        :class:`ChannelClosed` rather than wait on virtual time.
        """
        if self._inbox:
            return self._inbox.pop(0)
        raise ChannelClosed(
            "no message pending on simulated channel (recv would block)"
        )

    def pending(self) -> int:
        return len(self._inbox)

    def __repr__(self) -> str:
        return (
            f"SimChannel(name={self.name!r}, closed={self.closed}, "
            f"pending={len(self._inbox)})"
        )


# -- typed errors across the process boundary ------------------------------

#: Error classes a worker may legitimately hand back; keyed by their
#: registered REPR codes so the supervisor side re-raises the *same*
#: type (retry classification and chaos accounting stay exact).
_CODE_TO_CLASS: dict[str, type[XQueryError]] = {
    cls.default_code: cls  # type: ignore[misc]
    for cls in (
        DurabilityError,
        JournalCorruptionError,
        QueryTimeoutError,
        QueryCancelledError,
        ServiceOverloadedError,
        CircuitOpenError,
        TransactionConflictError,
        StaleEpochError,
        ReplicaLagError,
    )
}


def error_payload(exc: XQueryError) -> dict:
    """Serialize a typed error for an ``error`` message."""
    payload = exc.to_dict()
    payload.setdefault("code", exc.code)
    return payload


def raise_remote(payload: dict) -> None:
    """Re-raise the typed error a worker serialized.

    The registered class for the error's code is reconstructed with its
    message and detail fields; an unregistered code (a semantic error —
    parse, type, update) comes back as a bare
    :class:`~repro.errors.XQueryError` carrying the original code.
    """
    code = payload.get("code", "")
    message = payload.get("message", "remote error")
    cls = _CODE_TO_CLASS.get(code)
    if cls is None:
        raise XQueryError(message, code=code or None)
    error = cls(message)
    error.code = code
    for name, value in payload.items():
        if name in ("code", "message", "type"):
            continue
        if hasattr(error, name):
            setattr(error, name, value)
    raise error


def socketpair_channel() -> tuple[FrameChannel, socket.socket]:
    """A channel plus the raw peer socket to hand a child process.

    The supervisor keeps the :class:`FrameChannel`; the peer socket's
    file descriptor is passed to the worker via ``pass_fds`` and
    wrapped in the worker's own channel (see
    :func:`repro.cluster.worker.main`).
    """
    parent, child = socket.socketpair()
    return FrameChannel(parent), child
