"""Staleness-bounded read routing over interchangeable backends.

:class:`QueryRouter` is the single read path the serving layer uses
whether or not a replica fleet exists.  Backends implement one small
protocol — ``name``, ``ready()``, ``lag_seq()``, ``execute_read()`` —
and come in two transports:

* :class:`InProcessBackend` — the primary's
  :class:`~repro.concurrent.ConcurrentExecutor` (lag 0 by
  definition).  With no cluster configured this is the only backend
  and routing degenerates to exactly the pre-cluster behaviour;
* :class:`ReplicaBackend` — one replica process, reached through the
  supervisor's framed channel.

Routing policy: prefer the **freshest healthy replica** within the
request's staleness bound (``max_lag_seq``, per call or from
:class:`~repro.engine.ExecutionOptions`), falling back through staler
candidates and finally the primary; a backend that fails transiently
mid-read (connection reset — the supervisor will restart it) is
skipped, not fatal.  When nothing qualifies the caller gets a typed
:class:`~repro.errors.ReplicaLagError` (REPR0010) carrying the best
observed lag and a ``retry_after_ms`` hint of one shipping interval —
transient by classification, so standard retry policies do the right
thing while the fleet catches up.
"""

from __future__ import annotations

import threading
from concurrent.futures import Future, ThreadPoolExecutor
from typing import TYPE_CHECKING, Any

from repro.errors import ReplicaLagError, StaleEpochError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cluster.supervisor import ClusterSupervisor, ReplicaHandle
    from repro.concurrent.executor import ConcurrentExecutor


class RoutedResult:
    """A query answer that crossed (or could have crossed) a process
    boundary: the stringified items plus the serialized XML.

    Duck-compatible with the read-side surface of
    :class:`~repro.engine.QueryResult` (``strings()``, ``serialize()``,
    ``first_value()``), so callers do not care which transport served
    them.
    """

    def __init__(
        self,
        strings: list[str] | None = None,
        xml: str | None = None,
        backend: str = "",
    ):
        self.strings_list = list(strings) if strings else []
        self.xml = xml
        self.backend = backend

    def strings(self) -> list[str]:
        return list(self.strings_list)

    def serialize(self, indent: bool = False) -> str:
        return self.xml if self.xml is not None else ""

    def first_value(self) -> str | None:
        return self.strings_list[0] if self.strings_list else None

    def __len__(self) -> int:
        return len(self.strings_list)


class InProcessBackend:
    """The primary's executor as a routing backend (lag 0).

    ``is_ready`` lets a cluster-aware front end tie this backend's
    availability to the supervisor's view of the primary (a dead
    primary's executor must not serve, even though the pool threads
    are still running).
    """

    def __init__(
        self,
        executor: "ConcurrentExecutor",
        name: str = "primary",
        is_ready: Any | None = None,
    ):
        self.executor = executor
        self.name = name
        self.alive = True
        self._is_ready = is_ready

    def ready(self) -> bool:
        if self._is_ready is not None and not self._is_ready():
            return False
        return self.alive

    def lag_seq(self) -> int | None:
        return 0

    def execute_read(
        self,
        query: str,
        bindings: dict | None = None,
        *,
        timeout_ms: float | None = None,
    ):
        return self.executor.submit(
            query, bindings=bindings, timeout_ms=timeout_ms
        ).result()

    def submit_read(
        self,
        query: str,
        bindings: dict | None = None,
        *,
        timeout_ms: float | None = None,
        cancel: Any | None = None,
    ) -> Future:
        return self.executor.submit(
            query, bindings=bindings, timeout_ms=timeout_ms, cancel=cancel
        )


class ReplicaBackend:
    """One replica process as a routing backend."""

    def __init__(
        self, supervisor: "ClusterSupervisor", handle: "ReplicaHandle"
    ):
        self.supervisor = supervisor
        self.handle = handle
        self.name = handle.name

    def ready(self) -> bool:
        return (
            self.handle.alive
            and not self.handle.stalled
            and not self.handle.promoted
        )

    def lag_seq(self) -> int | None:
        return self.supervisor.lag_of(self.handle)

    def execute_read(
        self,
        query: str,
        bindings: dict | None = None,
        *,
        timeout_ms: float | None = None,
    ):
        return self.supervisor.query_replica(
            self.handle, query, bindings, timeout_ms=timeout_ms
        )


class QueryRouter:
    """Route reads to the freshest backend within a staleness bound.

    Parameters:
        primary: the in-process backend (None once the primary died).
        supervisor: when given, replica backends are derived live from
            the fleet (restarts and promotions are picked up
            automatically); ``replicas`` offers a static list instead
            (unit tests).
        default_max_lag_seq: bound applied when a call specifies none.
        retry_after_ms: the hint stamped on lag refusals (defaults to
            the supervisor's shipping interval).
    """

    def __init__(
        self,
        primary: InProcessBackend | None = None,
        *,
        supervisor: "ClusterSupervisor | None" = None,
        replicas: list[Any] | None = None,
        default_max_lag_seq: int | None = None,
        retry_after_ms: float | None = None,
    ):
        self.primary = primary
        self.supervisor = supervisor
        self._static_replicas = replicas
        self.default_max_lag_seq = (
            default_max_lag_seq
            if default_max_lag_seq is not None
            else (
                supervisor.config.default_max_lag_seq
                if supervisor is not None
                else None
            )
        )
        self.retry_after_ms = (
            retry_after_ms
            if retry_after_ms is not None
            else (
                supervisor.config.ship_interval_s * 1000.0
                if supervisor is not None
                else 50.0
            )
        )
        self._pool: ThreadPoolExecutor | None = None
        self._pool_lock = threading.Lock()

    # -- backend discovery -------------------------------------------------

    def replica_backends(self) -> list[Any]:
        if self._static_replicas is not None:
            return list(self._static_replicas)
        if self.supervisor is None:
            return []
        return [
            ReplicaBackend(self.supervisor, handle)
            for handle in self.supervisor.handles
        ]

    def _candidates(
        self, max_lag_seq: int | None
    ) -> tuple[list[Any], int | None]:
        """(ordered candidate backends, best observed lag)."""
        bound = (
            max_lag_seq
            if max_lag_seq is not None
            else self.default_max_lag_seq
        )
        scored: list[tuple[int, Any]] = []
        best_lag: int | None = None
        for backend in self.replica_backends():
            if not backend.ready():
                continue
            lag = backend.lag_seq()
            if lag is not None and (best_lag is None or lag < best_lag):
                best_lag = lag
            if bound is not None and (lag is None or lag > bound):
                continue
            scored.append((lag if lag is not None else 1 << 62, backend))
        scored.sort(key=lambda pair: pair[0])
        ordered = [backend for _, backend in scored]
        # The primary is the freshest possible answer but the point of
        # replicas is to take read traffic off it: it goes last, as the
        # fallback that keeps reads serving while the fleet heals.
        if self.primary is not None and self.primary.ready():
            ordered.append(self.primary)
            if best_lag is None:
                best_lag = 0
        return ordered, best_lag

    # -- the read path -----------------------------------------------------

    def execute_read(
        self,
        query: str,
        bindings: dict | None = None,
        *,
        timeout_ms: float | None = None,
        max_lag_seq: int | None = None,
        options: Any | None = None,
    ):
        """Execute a read on the best qualifying backend.

        ``options`` may carry ``max_lag_seq`` / ``timeout_ms``
        (:class:`~repro.engine.ExecutionOptions`); explicit keyword
        arguments win.  Transient backend failures fall through to the
        next candidate; semantic/typed errors (and
        :class:`~repro.errors.StaleEpochError`) propagate — they would
        fail identically anywhere.
        """
        if options is not None:
            if max_lag_seq is None:
                max_lag_seq = getattr(options, "max_lag_seq", None)
            if timeout_ms is None:
                timeout_ms = getattr(options, "timeout_ms", None)
        candidates, best_lag = self._candidates(max_lag_seq)
        last_lag_error: ReplicaLagError | None = None
        for backend in candidates:
            try:
                return backend.execute_read(
                    query, bindings, timeout_ms=timeout_ms
                )
            except ReplicaLagError as exc:
                last_lag_error = exc  # that backend fell over; try next
            except StaleEpochError:
                raise  # fencing is never routed around
        bound = (
            max_lag_seq
            if max_lag_seq is not None
            else self.default_max_lag_seq
        )
        if last_lag_error is not None:
            raise last_lag_error
        raise ReplicaLagError(
            "no backend satisfies the staleness bound "
            f"(max_lag_seq={bound}, best observed lag={best_lag})",
            lag_seq=best_lag,
            max_lag_seq=bound,
            retry_after_ms=self.retry_after_ms,
        )

    def submit_read(
        self,
        query: str,
        bindings: dict | None = None,
        *,
        timeout_ms: float | None = None,
        cancel: Any | None = None,
        max_lag_seq: int | None = None,
    ) -> Future:
        """The asynchronous read path the front end uses.

        With no qualifying replica the in-process executor's native
        future is returned — byte-for-byte the pre-cluster behaviour,
        admission control included.  Replica-served reads run on a
        small router pool (the replica process does the work; the pool
        thread just waits on the channel).
        """
        bound = (
            max_lag_seq
            if max_lag_seq is not None
            else self.default_max_lag_seq
        )
        replicas = [b for b in self.replica_backends() if b.ready()]
        if not replicas:
            if self.primary is not None and self.primary.ready():
                return self.primary.submit_read(
                    query, bindings, timeout_ms=timeout_ms, cancel=cancel
                )
            future: Future = Future()
            future.set_exception(
                ReplicaLagError(
                    "no backend is ready",
                    max_lag_seq=bound,
                    retry_after_ms=self.retry_after_ms,
                )
            )
            return future
        return self._pool_submit(
            self.execute_read,
            query,
            bindings,
            timeout_ms=timeout_ms,
            max_lag_seq=max_lag_seq,
        )

    def submit_call(self, fn: Any, *args: Any, **kwargs: Any) -> Future:
        """Run an arbitrary call on the router pool (the front end's
        post-failover write path: the promoted replica is reached over
        a channel, so the call blocks a pool thread, not a caller)."""
        return self._pool_submit(fn, *args, **kwargs)

    def _pool_submit(self, fn: Any, *args: Any, **kwargs: Any) -> Future:
        with self._pool_lock:
            if self._pool is None:
                self._pool = ThreadPoolExecutor(
                    max_workers=8, thread_name_prefix="router"
                )
            return self._pool.submit(fn, *args, **kwargs)

    def shutdown(self, wait: bool = True) -> None:
        """Stop the router pool.  ``wait=True`` (the default) drains
        queued work first — a caller that timed out may have left a
        write in the queue, and quiescence means letting it finish,
        not letting it commit after the caller decided we stopped."""
        with self._pool_lock:
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=wait)

    def __repr__(self) -> str:
        return (
            f"QueryRouter(replicas={len(self.replica_backends())}, "
            f"default_max_lag_seq={self.default_max_lag_seq})"
        )


__all__ = [
    "InProcessBackend",
    "QueryRouter",
    "ReplicaBackend",
    "RoutedResult",
]
